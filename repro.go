// Package repro is a Go reproduction of "Random Sampling for Group-By
// Queries" (Nguyen, Shih, Parvathaneni, Xu, Srivastava, Tirthapura;
// ICDE 2020, arXiv:1909.02629): CVOPT, a query- and data-driven
// stratified sampling framework that, for a row budget M and a set of
// group-by queries, provably minimizes the ℓ2 (or ℓ∞) norm of the
// coefficients of variation of all per-group estimates.
//
// This root package is the user-facing facade. It re-exports the core
// types and wires the typical flow together:
//
//	tbl, _ := table.LoadCSV("sales", schema, "sales.csv")
//	s, _ := repro.Build(tbl, []repro.QuerySpec{{
//	    GroupBy: []string{"region", "product"},
//	    Aggs:    []repro.AggColumn{{Column: "amount"}},
//	}}, repro.BudgetRate(tbl, 0.01), repro.Options{}, rng)
//	res, _ := repro.Answer(tbl, s, "SELECT region, AVG(amount) FROM sales GROUP BY region")
//
// The full machinery lives in the internal packages: internal/core (the
// CVOPT allocation, Theorems 1-2, Lemmas 1-4, CVOPT-INF, workload
// weights), internal/samplers (CVOPT plus the Uniform/CS/RL/Sample+Seek
// competitors), internal/exec (the SQL subset engine), internal/datagen
// (synthetic OpenAQ/Bikes) and internal/experiments (every table and
// figure of the paper's evaluation; run them with cmd/cvbench).
package repro

import (
	"log/slog"
	"math/rand"
	"net/http"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/samplers"
	"repro/internal/serve"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// Re-exported core types; see internal/core for full documentation.
type (
	// QuerySpec describes one group-by query a sample must serve.
	QuerySpec = core.QuerySpec
	// AggColumn is an aggregation column with optional weights.
	AggColumn = core.AggColumn
	// Options selects the norm (L2, LInf, Lp) and allocation repair.
	Options = core.Options
	// Norm is the CV-aggregation norm.
	Norm = core.Norm
	// Plan is CVOPT's precomputed offline state.
	Plan = core.Plan
	// WorkloadQuery is one entry of a query workload (Section 4.3).
	WorkloadQuery = core.WorkloadQuery
	// Sample is a weighted row sample of a table.
	Sample = samplers.RowSample
	// Result is a query answer (exact or approximate).
	Result = exec.Result
	// Registry is the concurrent sample-serving store: immutable built
	// samples keyed by (table, workload, budget), deduplicated builds,
	// parallel reads. See internal/serve.
	Registry = serve.Registry
	// SampleEntry is one immutable built sample held by a Registry.
	SampleEntry = serve.Entry
	// BuildRequest identifies one sample a Registry should build.
	BuildRequest = serve.BuildRequest
	// StreamConfig configures a streaming (live) table: the workload
	// its resident sample must serve, the per-generation budget, the
	// reservoir capacity and the refresh policy. See internal/ingest.
	StreamConfig = ingest.Config
	// RefreshPolicy selects when a streaming table republishes its
	// sample (row-count threshold and/or periodic tick).
	RefreshPolicy = ingest.Policy
	// Publication is one atomically-published generation of a
	// streaming table: immutable snapshot + weighted sample.
	Publication = ingest.Publication
	// IngestStream is the standalone streaming primitive behind
	// Registry.RegisterStreamingTable, usable without a registry.
	IngestStream = ingest.Stream
	// AppendStatus reports stream state right after a batch append.
	AppendStatus = ingest.AppendStatus
	// StreamStatus is the ops view of one streaming table.
	StreamStatus = serve.StreamStatus
	// QueryOptions tunes one Registry.Query call (mode, compare,
	// autoscaling target CV).
	QueryOptions = serve.QueryOptions
	// QueryAnswer is the outcome of one Registry.Query call.
	QueryAnswer = serve.QueryAnswer
	// AutoscaleParams configures a budget autoscale search: the
	// per-group CV goal, the hard budget cap and the allocation options.
	AutoscaleParams = core.AutoscaleParams
	// AutoscaleResult reports the chosen budget and the a-priori CV
	// guarantee it carries.
	AutoscaleResult = core.AutoscaleResult
)

// Query modes for QueryOptions.Mode.
const (
	ModeAuto   = serve.ModeAuto
	ModeSample = serve.ModeSample
	ModeExact  = serve.ModeExact
)

// DefaultStreamCapacity is the per-stratum reservoir capacity used when
// StreamConfig.Capacity is zero.
const DefaultStreamCapacity = ingest.DefaultCapacity

// Norm constants.
const (
	L2   = core.L2
	LInf = core.LInf
	Lp   = core.Lp
)

// NewPlan runs CVOPT's statistics pass for a table and query set.
func NewPlan(tbl *table.Table, queries []QuerySpec) (*Plan, error) {
	return core.NewPlan(tbl, queries)
}

// Build constructs a CVOPT sample of m rows serving the given queries.
func Build(tbl *table.Table, queries []QuerySpec, m int, opts Options, rng *rand.Rand) (*Sample, error) {
	s := &samplers.CVOPT{Opts: opts}
	return s.Build(tbl, queries, m, rng)
}

// BudgetRate converts a sampling rate (e.g. 0.01 for 1%) into a row
// budget for tbl, with a minimum of one row.
func BudgetRate(tbl *table.Table, rate float64) int {
	m := int(float64(tbl.NumRows()) * rate)
	if m < 1 {
		m = 1
	}
	return m
}

// Autoscale searches for the smallest row budget whose predicted worst
// per-group CV meets params.TargetCV (budget autoscaling: state the
// accuracy, let the system pick the cheapest sufficient budget). The
// returned budget feeds Build unchanged; AchievedCV is the a-priori CV
// bound — via Chebyshev, an error guarantee fixed before any row is
// drawn. When even params.MaxBudget cannot meet the target the result
// is best-effort at the cap with Met == false.
func Autoscale(tbl *table.Table, queries []QuerySpec, params AutoscaleParams) (*AutoscaleResult, error) {
	p, err := core.NewPlan(tbl, queries)
	if err != nil {
		return nil, err
	}
	return p.Autoscale(params)
}

// Answer evaluates sql approximately over a sample of tbl.
func Answer(tbl *table.Table, s *Sample, sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return exec.RunWeighted(tbl, q, s.Rows, s.Weights)
}

// Exact evaluates sql exactly over the full table (the ground truth).
func Exact(tbl *table.Table, sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return exec.Run(tbl, q)
}

// WorkloadWeights deduces per-aggregation-group weights from a query
// workload (Section 4.3) and returns QuerySpecs ready for Build.
func WorkloadWeights(tbl *table.Table, workload []WorkloadQuery) ([]QuerySpec, error) {
	return core.WorkloadWeights(tbl, workload)
}

// CubeQueries expands a WITH CUBE grouping into one QuerySpec per
// grouping set, all sharing the same aggregates.
func CubeQueries(attrs []string, aggs []AggColumn) []QuerySpec {
	return core.CubeQueries(attrs, aggs)
}

// NewRegistry returns an empty sample-serving registry: register
// tables (static via RegisterTable, live via RegisterStreamingTable or
// StreamTable), build samples once, answer queries concurrently off
// them, and Append/Refresh streaming tables in place. The registry is
// sharded by table name so load on one table never locks out another;
// options tune the shard count (WithRegistryShards) and bound resident
// sample memory with LRU eviction (WithMaxSampleBytes). Call Close when
// done to stop streaming refresh loops.
func NewRegistry(opts ...RegistryOption) *Registry {
	return serve.NewRegistry(opts...)
}

// RegistryOption configures a Registry at construction.
type RegistryOption = serve.Option

// WithMaxSampleBytes bounds the registry's resident sample memory:
// least-valuable built samples (never-hit first, then
// least-recently-used) are evicted once the estimated total exceeds the
// budget; live streaming samples are pinned. 0 disables eviction.
func WithMaxSampleBytes(max int64) RegistryOption {
	return serve.WithMaxSampleBytes(max)
}

// WithRegistryShards sets the registry's shard count (default
// serve.DefaultShards). Tables hash to shards by name; more shards mean
// less cross-table lock sharing.
func WithRegistryShards(n int) RegistryOption {
	return serve.WithShards(n)
}

// NewServerHandler exposes a registry over the HTTP/JSON serving API
// (POST /v1/query, POST /v1/samples, GET /v1/samples, the streaming
// POST /v1/tables/{name}/stream|rows|refresh endpoints, GET /healthz,
// plus the observability surface: GET /metrics and
// GET /debug/requests — see docs/OBSERVABILITY.md); cmd/cvserve is
// the ready-made daemon around it. Options tune the server
// (WithDefaultTargetCV, WithServerLogger).
func NewServerHandler(reg *Registry, opts ...ServerOption) http.Handler {
	return serve.NewServer(reg, opts...)
}

// Server is the serving API handler behind NewServerHandler. Embedders
// that want the private debug surface too (net/http/pprof, /metrics,
// /debug/requests on a separate loopback listener, as cvserve
// -debug-addr does) construct one Server and mount both it and its
// DebugHandler(), so the debug trace rings show the API's traffic.
type Server = serve.Server

// NewServer is NewServerHandler returning the concrete *Server, for
// callers that also need DebugHandler().
func NewServer(reg *Registry, opts ...ServerOption) *Server {
	return serve.NewServer(reg, opts...)
}

// ServerOption configures the HTTP serving layer at construction.
type ServerOption = serve.ServerOption

// WithDefaultTargetCV autoscales POST /v1/samples requests that name no
// budget, rate or target_cv of their own to this per-group CV goal.
func WithDefaultTargetCV(cv float64) ServerOption {
	return serve.WithDefaultTargetCV(cv)
}

// WithServerLogger routes the server's structured per-request log
// (route pattern, X-Request-ID, status, duration) through l; the
// default discards. cvserve wires its -log-format handler here.
func WithServerLogger(l *slog.Logger) ServerOption {
	return serve.WithLogger(l)
}

// Wire-contract types of the versioned HTTP API (internal/api/v1),
// aliased so external callers can construct requests for Client. The
// server marshals exactly these types; see docs/API.md.
type (
	// APIBuildRequest is the POST /v1/samples request body.
	APIBuildRequest = apiv1.BuildRequest
	// APIQuerySpec is one workload query of a build or stream request.
	APIQuerySpec = apiv1.QuerySpec
	// APIAgg is one aggregation column of an APIQuerySpec.
	APIAgg = apiv1.Agg
	// APISample describes one built sample in responses.
	APISample = apiv1.Sample
	// APISamplesList is the GET /v1/samples response body.
	APISamplesList = apiv1.SamplesList
	// APITable describes one registered table in GET /v1/tables.
	APITable = apiv1.Table
	// APIQueryRequest is the POST /v1/query request body.
	APIQueryRequest = apiv1.QueryRequest
	// APIQueryResponse is the POST /v1/query response body.
	APIQueryResponse = apiv1.QueryResponse
	// APIStreamRequest is the POST /v1/tables/{name}/stream request body.
	APIStreamRequest = apiv1.StreamRequest
	// APIStreamState is its response body.
	APIStreamState = apiv1.StreamState
	// APIAppendResponse is the POST /v1/tables/{name}/rows response body.
	APIAppendResponse = apiv1.AppendResponse
	// APIHealth is the GET /healthz response body.
	APIHealth = apiv1.Health
)

// Client is the typed Go client for the cvserve HTTP API: one method
// per route (BuildSample, Query, Tables, Samples, MakeStreaming,
// AppendRows, Refresh, Healthz), context-aware, with every non-2xx
// response decoded into an *APIError whose contract code resolves to a
// typed sentinel — branch with errors.Is(err, repro.ErrTableNotFound),
// never by matching message strings. See internal/client.
type Client = client.Client

// APIError is a non-2xx server response as a Go error: HTTP status,
// machine-readable contract code and the server's message.
type APIError = client.APIError

// NewClient returns a client for the daemon at baseURL, e.g.
// "http://localhost:8080". hc == nil uses http.DefaultClient; builds
// can run long, so prefer per-call context deadlines over a blanket
// http.Client.Timeout.
func NewClient(baseURL string, hc *http.Client) (*Client, error) {
	return client.New(baseURL, hc)
}

// Typed sentinels for the API's contract error codes; every APIError
// unwraps to the one matching its code.
var (
	ErrTableNotFound    = client.ErrTableNotFound
	ErrBudgetConflict   = client.ErrBudgetConflict
	ErrNotStreaming     = client.ErrNotStreaming
	ErrAlreadyStreaming = client.ErrAlreadyStreaming
	ErrInvalidBody      = client.ErrInvalidBody
	ErrInvalidRequest   = client.ErrInvalidRequest
	ErrBodyTooLarge     = client.ErrBodyTooLarge
	ErrUnsupportedMedia = client.ErrUnsupportedMedia
	ErrBuildFailed      = client.ErrBuildFailed
	ErrQueryFailed      = client.ErrQueryFailed
	ErrAppendFailed     = client.ErrAppendFailed
)

// NewStream creates a standalone streaming sampler for a table: seed's
// rows are copied in, publish receives every finalized generation. Most
// callers want Registry.RegisterStreamingTable instead, which wires the
// publications into the serving read path.
func NewStream(seed *table.Table, cfg StreamConfig, publish func(*Publication)) (*IngestStream, error) {
	return ingest.New(seed, cfg, publish)
}
