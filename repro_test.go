package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/table"
)

func facadeTable(t testing.TB) *table.Table {
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "product", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(5))
	regions := []struct {
		name     string
		n        int
		mean, sd float64
	}{
		{"NA", 8000, 120, 12},
		{"EU", 3000, 90, 45},
		{"APAC", 300, 400, 200},
	}
	products := []string{"widget", "gadget"}
	for _, r := range regions {
		for i := 0; i < r.n; i++ {
			p := products[i%2]
			if err := tbl.AppendRow(r.name, p, r.mean+r.sd*rng.NormFloat64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func TestFacadeEndToEnd(t *testing.T) {
	tbl := facadeTable(t)
	queries := []QuerySpec{{
		GroupBy: []string{"region"},
		Aggs:    []AggColumn{{Column: "amount"}},
	}}
	rng := rand.New(rand.NewSource(1))
	m := BudgetRate(tbl, 0.02)
	s, err := Build(tbl, queries, m, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() == 0 || s.Len() > m {
		t.Fatalf("sample size %d for budget %d", s.Len(), m)
	}

	sql := "SELECT region, AVG(amount) FROM sales GROUP BY region"
	exact, err := Exact(tbl, sql)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Answer(tbl, s, sql)
	if err != nil {
		t.Fatal(err)
	}
	sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
	if sum.N != 3 {
		t.Fatalf("expected 3 groups, got %d", sum.N)
	}
	if sum.Max > 0.5 {
		t.Fatalf("2%% CVOPT sample max error implausible: %v", sum.Max)
	}

	// runtime predicate + different group-by on the same sample
	sql2 := "SELECT product, AVG(amount) FROM sales WHERE region != 'NA' GROUP BY product"
	exact2, err := Exact(tbl, sql2)
	if err != nil {
		t.Fatal(err)
	}
	approx2, err := Answer(tbl, s, sql2)
	if err != nil {
		t.Fatal(err)
	}
	sum2 := metrics.Summarize(metrics.GroupErrors(exact2, approx2))
	if sum2.N != 2 || sum2.Max > 0.6 {
		t.Fatalf("reuse query summary implausible: %+v", sum2)
	}
}

func TestFacadeNormOptions(t *testing.T) {
	tbl := facadeTable(t)
	queries := []QuerySpec{{GroupBy: []string{"region"}, Aggs: []AggColumn{{Column: "amount"}}}}
	rng := rand.New(rand.NewSource(2))
	for _, opts := range []Options{{}, {Norm: LInf}, {Norm: Lp, P: 4}} {
		s, err := Build(tbl, queries, 200, opts, rng)
		if err != nil {
			t.Fatalf("norm %v: %v", opts.Norm, err)
		}
		if s.Len() == 0 {
			t.Fatalf("norm %v produced empty sample", opts.Norm)
		}
	}
}

func TestFacadeErrors(t *testing.T) {
	tbl := facadeTable(t)
	rng := rand.New(rand.NewSource(3))
	if _, err := Build(tbl, nil, 100, Options{}, rng); err == nil {
		t.Fatalf("want error for no queries")
	}
	if _, err := Exact(tbl, "SELECT"); err == nil {
		t.Fatalf("want parse error")
	}
	s, err := Build(tbl, []QuerySpec{{GroupBy: []string{"region"}, Aggs: []AggColumn{{Column: "amount"}}}}, 100, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Answer(tbl, s, "not sql"); err == nil {
		t.Fatalf("want parse error from Answer")
	}
}

func TestBudgetRateClamp(t *testing.T) {
	tbl := facadeTable(t)
	if got := BudgetRate(tbl, 1e-9); got != 1 {
		t.Fatalf("tiny rate should clamp to 1, got %d", got)
	}
	want := int(float64(tbl.NumRows()) * 0.5)
	if got := BudgetRate(tbl, 0.5); got != want {
		t.Fatalf("BudgetRate(0.5) = %d want %d", got, want)
	}
}

func TestFacadeWorkloadAndCube(t *testing.T) {
	tbl := facadeTable(t)
	specs, err := WorkloadWeights(tbl, []WorkloadQuery{
		{GroupBy: []string{"region"}, Aggs: []string{"amount"}, Freq: 5},
		{GroupBy: []string{"product"}, Aggs: []string{"amount"}, Freq: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("expected 2 merged specs, got %d", len(specs))
	}
	rng := rand.New(rand.NewSource(4))
	s, err := Build(tbl, specs, 300, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 300 {
		t.Fatalf("workload-driven sample size %d", s.Len())
	}

	cube := CubeQueries([]string{"region", "product"}, []AggColumn{{Column: "amount"}})
	if len(cube) != 3 {
		t.Fatalf("cube specs = %d", len(cube))
	}
	s2, err := Build(tbl, cube, 300, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Answer(tbl, s2, "SELECT region, product, SUM(amount) FROM sales GROUP BY region, product WITH CUBE")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sets) != 4 {
		t.Fatalf("cube result sets = %d", len(res.Sets))
	}
	// grand total estimate sanity
	var grand float64
	col := tbl.Column("amount")
	for r := 0; r < tbl.NumRows(); r++ {
		grand += col.Float[r]
	}
	for _, row := range res.Rows {
		if len(res.Sets[row.Set]) == 0 {
			if math.Abs(row.Aggs[0]-grand)/grand > 0.15 {
				t.Fatalf("grand total estimate %v vs %v", row.Aggs[0], grand)
			}
		}
	}
	_ = NewPlan // exported facade symbol sanity
}
