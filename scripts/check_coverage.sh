#!/usr/bin/env bash
# Coverage gate: the packages that carry the correctness-critical logic
# (the CVOPT core, the serving layer, the physical planner and the WAL
# that crash recovery rides on) must not lose test coverage — a new
# engine (e.g. the budget autoscaler) cannot land untested. Floors sit
# at the coverage measured when each gate was introduced (core 88.8%,
# serve 90.5%, plan 88.6%, wal 88.8%, qos 99.5%), minus a sliver of
# refactoring headroom.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
check() {
    local pkg=$1 floor=$2
    local out pct
    out=$(go test -cover -count=1 "$pkg")
    pct=$(grep -o 'coverage: [0-9.]*%' <<<"$out" | grep -o '[0-9.]*' | head -1)
    if [ -z "$pct" ]; then
        echo "check_coverage: $pkg reported no coverage (output: $out)" >&2
        fail=1
        return
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit (p + 0 >= f + 0) ? 0 : 1 }'; then
        echo "check_coverage: $pkg ${pct}% (floor ${floor}%) OK"
    else
        echo "check_coverage: $pkg coverage ${pct}% fell below the ${floor}% floor" >&2
        fail=1
    fi
}

check ./internal/core 88.5
check ./internal/serve 89.5
check ./internal/plan 88.0
check ./internal/wal 88.0
check ./internal/qos 95.0

exit "$fail"
