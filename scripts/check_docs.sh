#!/usr/bin/env bash
# Docs freshness gate: the docs layer must exist, and every HTTP route
# the server registers must be documented in docs/API.md — so the API
# reference cannot silently rot when a route is added or renamed.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for f in README.md docs/ARCHITECTURE.md docs/API.md; do
    if [ ! -s "$f" ]; then
        echo "check_docs: missing or empty: $f" >&2
        fail=1
    fi
done

# Every route string registered in server.go ("GET /healthz",
# "POST /v1/query", ...) must appear verbatim in docs/API.md.
routes=$(grep -o '"\(GET\|POST\|PUT\|PATCH\|DELETE\) [^"]*"' internal/serve/server.go | tr -d '"')
if [ -z "$routes" ]; then
    echo "check_docs: found no routes in internal/serve/server.go (pattern drift?)" >&2
    fail=1
fi
while IFS=' ' read -r method path; do
    if ! grep -qF -- "$path" docs/API.md; then
        echo "check_docs: route '$method $path' is not documented in docs/API.md" >&2
        fail=1
    fi
done <<<"$routes"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: OK ($(wc -l <<<"$routes") routes documented)"
