#!/usr/bin/env bash
# Docs freshness gate: the docs layer must exist, and the versioned API
# contract (internal/api/v1) must be fully documented — every HTTP
# route *and* every machine-readable error code must appear in
# docs/API.md, so the API reference cannot silently rot when a route or
# code is added or renamed.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for f in README.md docs/ARCHITECTURE.md docs/API.md docs/OBSERVABILITY.md; do
    if [ ! -s "$f" ]; then
        echo "check_docs: missing or empty: $f" >&2
        fail=1
    fi
done

# Every route constant in the contract package ("GET /healthz",
# "POST /v1/query", ...) must appear (path part, verbatim) in
# docs/API.md.
routes=$(grep -ho '"\(GET\|POST\|PUT\|PATCH\|DELETE\) [^"]*"' internal/api/v1/routes.go | tr -d '"' | sort -u)
if [ -z "$routes" ]; then
    echo "check_docs: found no routes in internal/api/v1/routes.go (pattern drift?)" >&2
    fail=1
fi
while IFS=' ' read -r method path; do
    if ! grep -qF -- "$path" docs/API.md; then
        echo "check_docs: route '$method $path' is not documented in docs/API.md" >&2
        fail=1
    fi
done <<<"$routes"

# Literal route strings outside the contract package are now caught by
# the wirecontract analyzer (cmd/reprolint), which sees every package
# with type information instead of grepping one file. This gate only
# checks that the analyzer is still there to run.
if [ ! -f cmd/reprolint/main.go ]; then
    echo "check_docs: cmd/reprolint is missing; the wirecontract analyzer enforces route-constant usage (see docs/LINTING.md)" >&2
    fail=1
fi

# Every error code constant (Code* = "...") must appear in docs/API.md:
# clients branch on these, so each needs a documented meaning. The
# pattern tolerates gofmt's '=' alignment padding.
codes=$(sed -n 's/^\tCode[A-Za-z]*[[:space:]]*=[[:space:]]*"\([a-z_]*\)"$/\1/p' internal/api/v1/error.go)
if [ -z "$codes" ]; then
    echo "check_docs: found no error codes in internal/api/v1/error.go (pattern drift?)" >&2
    fail=1
fi
while read -r code; do
    if ! grep -qF -- "\`$code\`" docs/API.md; then
        echo "check_docs: error code '$code' is not documented in docs/API.md" >&2
        fail=1
    fi
done <<<"$codes"

# Every Prometheus series the daemon registers (the "repro_..." name
# constants in internal/serve/obsmetrics.go) must appear, backticked,
# in docs/OBSERVABILITY.md: operators alert on these, so each needs a
# documented meaning.
metrics=$(grep -ho '"repro_[a-z_]*"' internal/serve/obsmetrics.go | tr -d '"' | sort -u)
if [ -z "$metrics" ]; then
    echo "check_docs: found no metric names in internal/serve/obsmetrics.go (pattern drift?)" >&2
    fail=1
fi
while read -r metric; do
    if ! grep -qF -- "\`$metric\`" docs/OBSERVABILITY.md; then
        echo "check_docs: metric '$metric' is not documented in docs/OBSERVABILITY.md" >&2
        fail=1
    fi
done <<<"$metrics"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: OK ($(wc -l <<<"$routes") routes, $(wc -l <<<"$codes") error codes, $(wc -l <<<"$metrics") metrics documented)"
