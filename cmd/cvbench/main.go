// Command cvbench regenerates the paper's tables and figures on the
// synthetic datasets. Run a single experiment by id or all of them:
//
//	cvbench -exp fig1
//	cvbench -exp all -openaq-rows 1000000 -reps 5
//
// Experiment ids: fig1 sec61 table4 fig2 fig3 fig4 table5 fig5 table6
// fig6 ablp ablcap (see DESIGN.md for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all' or 'list'")
		aqRows = flag.Int("openaq-rows", 400000, "synthetic OpenAQ row count")
		bkRows = flag.Int("bikes-rows", 150000, "synthetic Bikes row count")
		scale  = flag.Int("scale", 5, "duplication factor for the Table 6 large dataset")
		seed   = flag.Int64("seed", 1, "base RNG seed")
		reps   = flag.Int("reps", 3, "repetitions per cell (paper uses 5)")
	)
	flag.Parse()

	if *exp == "list" {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		OpenAQRows: *aqRows,
		BikesRows:  *bkRows,
		Scale:      *scale,
		Seed:       *seed,
		Reps:       *reps,
		Out:        os.Stdout,
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cvbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "cvbench: unknown experiment %q (use -exp list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
