// Command cvbench regenerates the paper's tables and figures on the
// synthetic datasets. Run a single experiment by id or all of them:
//
//	cvbench -exp fig1
//	cvbench -exp all -openaq-rows 1000000 -reps 5
//
// Experiment ids: fig1 sec61 table4 fig2 fig3 fig4 table5 fig5 table6
// fig6 ablp ablcap (see DESIGN.md for the per-experiment index).
//
// It also carries the serving-path microbenchmark suite
// (internal/benchserve): -bench serve measures each scenario with the
// testing package and writes BENCH_serve.json; -check-bench validates a
// previously written report (the CI smoke runs both at -benchtime 1x):
//
//	cvbench -bench serve -benchtime 10s -bench-out BENCH_serve.json
//	cvbench -check-bench BENCH_serve.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchserve"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// benchSchema identifies the BENCH_serve.json format; bump it when the
// shape changes so downstream tooling fails loudly instead of
// misreading.
const benchSchema = "repro/bench-serve/v1"

// benchReport is the BENCH_serve.json document.
type benchReport struct {
	Schema    string        `json:"schema"`
	Version   string        `json:"version"`
	Go        string        `json:"go"`
	Timestamp string        `json:"timestamp"`
	Scenarios []benchResult `json:"scenarios"`
}

// benchResult is one scenario's measurement on the wire.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all' or 'list'")
		aqRows     = flag.Int("openaq-rows", 400000, "synthetic OpenAQ row count")
		bkRows     = flag.Int("bikes-rows", 150000, "synthetic Bikes row count")
		scale      = flag.Int("scale", 5, "duplication factor for the Table 6 large dataset")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		reps       = flag.Int("reps", 3, "repetitions per cell (paper uses 5)")
		bench      = flag.String("bench", "", "run a benchmark suite instead of experiments ('serve')")
		benchTime  = flag.String("benchtime", "1s", "per-scenario benchmark time, testing -benchtime syntax (e.g. 2s, 100x)")
		benchOut   = flag.String("bench-out", "BENCH_serve.json", "benchmark report output path")
		checkBench = flag.String("check-bench", "", "validate a benchmark report written by -bench serve, then exit")
	)
	// testing.Init registers the testing flags so -benchtime can be
	// forwarded to testing.Benchmark below; it must run before Parse
	testing.Init()
	flag.Parse()

	if *checkBench != "" {
		fatalIf(checkBenchReport(*checkBench))
		fmt.Printf("cvbench: %s ok\n", *checkBench)
		return
	}
	if *bench != "" {
		if *bench != "serve" {
			fmt.Fprintf(os.Stderr, "cvbench: unknown -bench suite %q (want serve)\n", *bench)
			os.Exit(2)
		}
		fatalIf(runBenchServe(*benchTime, *benchOut))
		return
	}

	if *exp == "list" {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		OpenAQRows: *aqRows,
		BikesRows:  *bkRows,
		Scale:      *scale,
		Seed:       *seed,
		Reps:       *reps,
		Out:        os.Stdout,
	}

	run := func(e experiments.Experiment) {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cvbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.Registry() {
			run(e)
		}
		return
	}
	e, ok := experiments.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "cvbench: unknown experiment %q (use -exp list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}

// runBenchServe measures the serving scenarios and writes the report.
// The harness core (internal/benchserve) never reads the clock; the
// timestamp and build identity are stamped here.
func runBenchServe(benchtime, out string) error {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return fmt.Errorf("bad -benchtime %q: %w", benchtime, err)
	}
	results, err := benchserve.Run(context.Background())
	if err != nil {
		return err
	}
	report := benchReport{
		Schema:    benchSchema,
		Version:   serve.Version,
		Go:        runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, r := range results {
		report.Scenarios = append(report.Scenarios, benchResult{
			Name:        r.Name,
			Iterations:  r.Iterations,
			NsPerOp:     r.NsPerOp,
			AllocsPerOp: r.AllocsPerOp,
			BytesPerOp:  r.BytesPerOp,
		})
		fmt.Printf("%-16s %12.0f ns/op %8d allocs/op %10d B/op  (n=%d)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Iterations)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cvbench: wrote %s\n", out)
	return nil
}

var benchNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// requiredScenarios is the scenario roster a valid report must cover.
// Adding a scenario to internal/benchserve means adding it here, so a
// report from a stale binary (or a suite that silently dropped a
// scenario) fails validation instead of passing with a hole in it.
var requiredScenarios = []string{
	"build", "query_sample", "query_exact", "append",
	"exec_interpreted", "exec_planned", "exec_plan_cold",
	"qos_baseline", "qos_coalesced", "qos_shed",
	"metrics_render",
}

// checkBenchReport validates a BENCH_serve.json document: the schema
// tag, the identity fields, scenario-roster completeness, and
// per-scenario sanity (names, positive iteration counts and timings).
// The CI smoke runs it right after -bench serve -benchtime 1x, so a
// malformed report fails the build.
func checkBenchReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var report benchReport
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if report.Schema != benchSchema {
		return fmt.Errorf("%s: schema is %q, want %q", path, report.Schema, benchSchema)
	}
	if report.Version == "" || report.Go == "" {
		return fmt.Errorf("%s: version/go identity fields are required", path)
	}
	if _, err := time.Parse(time.RFC3339, report.Timestamp); err != nil {
		return fmt.Errorf("%s: bad timestamp: %w", path, err)
	}
	if len(report.Scenarios) == 0 {
		return fmt.Errorf("%s: no scenarios", path)
	}
	seen := map[string]bool{}
	for i, s := range report.Scenarios {
		switch {
		case !benchNameRE.MatchString(s.Name):
			return fmt.Errorf("%s: scenario %d has bad name %q", path, i, s.Name)
		case seen[s.Name]:
			return fmt.Errorf("%s: duplicate scenario %q", path, s.Name)
		case s.Iterations <= 0:
			return fmt.Errorf("%s: scenario %q ran %d iterations", path, s.Name, s.Iterations)
		case s.NsPerOp < 0 || s.AllocsPerOp < 0 || s.BytesPerOp < 0:
			return fmt.Errorf("%s: scenario %q has negative measurements", path, s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range requiredScenarios {
		if !seen[name] {
			return fmt.Errorf("%s: scenario %q missing from report", path, name)
		}
	}
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvbench:", err)
		os.Exit(1)
	}
}
