// Command cvsample materializes a CVOPT stratified sample from a CSV
// file. The output CSV carries the sampled rows plus a _weight column
// (n_c/s_c scale-up factors) that cvquery — or any engine — can use for
// unbiased approximate aggregation.
//
//	cvsample -in data.csv -out sample.csv -groupby region,product -agg amount -rate 0.01
//	cvsample -in data.csv -out sample.csv -groupby region -agg amount -m 5000 -norm linf
//
// Instead of guessing a budget, -target-cv autoscales it: the smallest
// budget whose predicted worst per-group CV meets the goal is found by
// search (a-priori error guarantee via Chebyshev) and reported along
// with the achieved CV:
//
//	cvsample -in data.csv -out sample.csv -groupby region -agg amount -target-cv 0.05
//
// With -server the sample is registered *remotely* on a live cvserve
// daemon through its typed Go client: -table names a table the daemon
// serves, the build runs (or is fetched from the daemon's cache)
// server-side, and queries sent to the daemon answer off it — no CSV
// is read or written locally:
//
//	cvsample -server http://localhost:8080 -table sales -groupby region -agg amount -rate 0.01
//	cvsample -server http://localhost:8080 -table sales -groupby region -agg amount -target-cv 0.05
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/samplers"
	"repro/internal/table"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV path (header required)")
		out      = flag.String("out", "", "output CSV path for the weighted sample")
		groupBy  = flag.String("groupby", "", "comma-separated group-by columns (the stratification)")
		aggs     = flag.String("agg", "", "comma-separated aggregation columns")
		rate     = flag.Float64("rate", 0, "sample rate, e.g. 0.01 for 1%")
		m        = flag.Int("m", 0, "absolute row budget (overrides -rate)")
		targetCV = flag.Float64("target-cv", 0, "autoscale the budget: smallest budget whose predicted worst per-group CV meets this goal (cvopt only; mutually exclusive with -m/-rate)")
		maxM     = flag.Int("max-budget", 0, "hard cap for -target-cv autoscaling (0 = table rows); when it binds the sample is best-effort")
		norm     = flag.String("norm", "l2", "objective norm: l2, linf, or lp:<p>")
		seed     = flag.Int64("seed", 1, "RNG seed")
		method   = flag.String("method", "cvopt", "sampler: cvopt, uniform, senate, cs, rl, sampleseek")
		server   = flag.String("server", "", "cvserve base URL (e.g. http://localhost:8080): register the sample remotely on the daemon (-table names the served table) instead of reading/writing CSVs")
		tableN   = flag.String("table", "", "remote mode: the daemon-registered table to sample")
	)
	flag.Parse()
	if *server != "" {
		runRemote(*server, *tableN, *groupBy, *aggs, *norm, *method, *in, *out, *m, *rate, *targetCV, *maxM, *seed)
		return
	}
	if *tableN != "" {
		fatalIf(fmt.Errorf("-table is a remote-mode flag; it requires -server"))
	}
	if *in == "" || *out == "" || *groupBy == "" || *aggs == "" {
		fmt.Fprintln(os.Stderr, "cvsample: -in, -out, -groupby and -agg are required")
		flag.Usage()
		os.Exit(2)
	}

	tbl, err := table.LoadCSVInferred("input", *in)
	fatalIf(err)
	schema := tbl.Schema()

	budget := *m
	switch {
	case *targetCV < 0:
		fatalIf(fmt.Errorf("-target-cv must be positive, got %v", *targetCV))
	case *targetCV > 0 && (budget != 0 || *rate != 0):
		fatalIf(fmt.Errorf("-target-cv is mutually exclusive with -m and -rate: the autoscaler chooses the budget"))
	case *maxM < 0:
		fatalIf(fmt.Errorf("-max-budget must be non-negative, got %d", *maxM))
	case *maxM != 0 && *targetCV == 0:
		fatalIf(fmt.Errorf("-max-budget caps -target-cv autoscaling; it requires -target-cv"))
	case *targetCV == 0 && budget == 0:
		if *rate <= 0 || *rate > 1 {
			fatalIf(fmt.Errorf("need -m, -rate in (0,1] or -target-cv, got rate %v", *rate))
		}
		budget = int(float64(tbl.NumRows()) * *rate)
		if budget < 1 {
			budget = 1
		}
	}

	spec := core.QuerySpec{GroupBy: splitList(*groupBy)}
	for _, a := range splitList(*aggs) {
		spec.Aggs = append(spec.Aggs, core.AggColumn{Column: a})
	}

	// one parse of the CLI norm spelling serves both modes: local maps
	// the (kind, p) pair onto core.Options here, remote sends it as the
	// wire fields — the spelling cannot diverge between the two
	parseOpts := func() core.Options {
		kind, p, err := wireNorm(*norm)
		fatalIf(err)
		opts := core.Options{}
		switch kind {
		case apiv1.NormLInf:
			opts.Norm = core.LInf
		case apiv1.NormLp:
			opts.Norm, opts.P = core.Lp, p
		}
		return opts
	}

	rng := rand.New(rand.NewSource(*seed))
	var rs *samplers.RowSample
	var methodName string
	if *targetCV > 0 {
		// Budget autoscaling: only CVOPT carries the CV predictor the
		// search evaluates, so the competitor methods keep requiring
		// -m/-rate. One plan serves both the search and the draw — the
		// statistics pass over the input runs once.
		if strings.ToLower(*method) != "cvopt" {
			fatalIf(fmt.Errorf("-target-cv requires -method cvopt (only CVOPT predicts per-group CVs a-priori)"))
		}
		opts := parseOpts()
		plan, err := core.NewPlan(tbl, []core.QuerySpec{spec})
		fatalIf(err)
		res, err := plan.Autoscale(core.AutoscaleParams{TargetCV: *targetCV, MaxBudget: *maxM, Opts: opts})
		fatalIf(err)
		budget = res.Budget
		if res.Met {
			fmt.Printf("cvsample: autoscaled to budget %d (target CV %g, achieved %.4g, %d probes)\n",
				res.Budget, *targetCV, res.AchievedCV, res.Evaluations)
		} else {
			fmt.Printf("cvsample: target CV %g not reachable under cap %d; best effort achieved CV %.4g\n",
				*targetCV, res.Budget, res.AchievedCV)
		}
		ss, _, err := plan.Sample(res.Budget, opts, rng)
		fatalIf(err)
		rows, weights := core.RowWeights(ss)
		rs = &samplers.RowSample{Rows: rows, Weights: weights}
		methodName = (&samplers.CVOPT{Opts: opts}).Name()
	} else {
		var sampler samplers.Sampler
		switch strings.ToLower(*method) {
		case "cvopt":
			sampler = &samplers.CVOPT{Opts: parseOpts()}
		case "uniform":
			sampler = samplers.Uniform{}
		case "senate":
			sampler = samplers.Senate{}
		case "cs":
			sampler = samplers.Congress{}
		case "rl":
			sampler = samplers.RL{}
		case "sampleseek":
			sampler = samplers.SampleSeek{}
		default:
			fatalIf(fmt.Errorf("unknown method %q", *method))
		}
		var err error
		rs, err = sampler.Build(tbl, []core.QuerySpec{spec}, budget, rng)
		fatalIf(err)
		methodName = sampler.Name()
	}

	// materialize: original schema + _weight
	outSchema := append(append(table.Schema{}, schema...), table.ColumnSpec{Name: "_weight", Kind: table.Float})
	outTbl := table.New("sample", outSchema)
	for i, r := range rs.Rows {
		vals := make([]any, 0, len(schema)+1)
		for _, c := range tbl.Columns {
			switch c.Spec.Kind {
			case table.String:
				vals = append(vals, c.StringAt(int(r)))
			case table.Float:
				vals = append(vals, c.Float[r])
			case table.Int:
				vals = append(vals, c.Int[r])
			}
		}
		vals = append(vals, rs.Weights[i])
		fatalIf(outTbl.AppendRow(vals...))
	}
	fatalIf(outTbl.SaveCSV(*out))
	fmt.Printf("cvsample: %s: wrote %d of %d rows (budget %d) to %s\n",
		methodName, outTbl.NumRows(), tbl.NumRows(), budget, *out)
}

// runRemote registers the sample on a running cvserve daemon through
// the typed client. Sizing semantics mirror the local mode — -m, -rate
// or -target-cv (+ -max-budget) — but the build runs server-side and
// is deduplicated against the daemon's cache: re-running the same
// command is an idempotent fetch. With no sizing at all the daemon's
// -default-target-cv applies, if configured.
func runRemote(server, tableName, groupBy, aggs, norm, method, in, out string, m int, rate, targetCV float64, maxM int, seed int64) {
	if tableName == "" || groupBy == "" || aggs == "" {
		fmt.Fprintln(os.Stderr, "cvsample: -server mode requires -table, -groupby and -agg")
		flag.Usage()
		os.Exit(2)
	}
	if in != "" || out != "" {
		fatalIf(fmt.Errorf("-in and -out do not apply with -server: the daemon owns the table and keeps the sample resident"))
	}
	if strings.ToLower(method) != "cvopt" {
		fatalIf(fmt.Errorf("the serving daemon builds CVOPT samples only; -method %s requires local mode", method))
	}
	wireNorm, p, err := wireNorm(norm)
	fatalIf(err)

	spec := apiv1.QuerySpec{GroupBy: splitList(groupBy)}
	for _, a := range splitList(aggs) {
		spec.Aggs = append(spec.Aggs, apiv1.Agg{Column: a})
	}
	c, err := client.New(server, nil)
	fatalIf(err)
	s, err := c.BuildSample(context.Background(), apiv1.BuildRequest{
		Table:     tableName,
		Queries:   []apiv1.QuerySpec{spec},
		Budget:    m,
		Rate:      rate,
		TargetCV:  targetCV,
		MaxBudget: maxM,
		Norm:      wireNorm,
		P:         p,
		Seed:      seed,
	})
	fatalIf(err)
	if s.TargetCV > 0 {
		achieved := "inf"
		if s.AchievedCV != nil {
			achieved = fmt.Sprintf("%.4g", *s.AchievedCV)
		}
		if s.TargetMet != nil && *s.TargetMet {
			fmt.Printf("cvsample: autoscaled to budget %d (target CV %g, achieved %s)\n", s.Budget, s.TargetCV, achieved)
		} else {
			fmt.Printf("cvsample: target CV %g not reachable under cap %d; best effort achieved CV %s\n", s.TargetCV, s.Budget, achieved)
		}
	}
	state := "registered"
	if s.Cached {
		state = "reusing cached"
	}
	fmt.Printf("cvsample: %s sample of %q on %s: %d rows (budget %d)\n  key %s\n",
		state, s.Table, c.BaseURL(), s.Rows, s.Budget, s.Key)
}

// wireNorm translates the CLI norm spelling (l2, linf, lp:<p>) to the
// wire fields of the contract package.
func wireNorm(norm string) (string, float64, error) {
	switch {
	case norm == "l2":
		return apiv1.NormL2, 0, nil
	case norm == "linf":
		return apiv1.NormLInf, 0, nil
	case strings.HasPrefix(norm, "lp:"):
		p, err := strconv.ParseFloat(strings.TrimPrefix(norm, "lp:"), 64)
		if err != nil {
			return "", 0, fmt.Errorf("bad -norm %q: %v", norm, err)
		}
		return apiv1.NormLp, p, nil
	}
	return "", 0, fmt.Errorf("unknown norm %q", norm)
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvsample: %v\n", err)
		os.Exit(1)
	}
}
