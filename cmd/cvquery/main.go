// Command cvquery answers a SQL group-by query over a CSV table: exactly,
// approximately through a freshly built CVOPT sample (-rate), or
// approximately through a previously materialized weighted sample from
// cvsample (-sample). Approximate answers carry ± standard errors, and
// the per-group relative errors against the exact answer are reported.
//
//	cvquery -in data.csv -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
//	cvquery -in data.csv -rate 0.01 -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
//	cvsample -in data.csv -out s.csv -groupby region -agg amount -rate 0.01
//	cvquery -in s.csv -sample -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV path")
		sql      = flag.String("sql", "", "SELECT statement (FROM input)")
		rate     = flag.Float64("rate", 0, "if > 0, also answer from a CVOPT sample of this rate and compare")
		isSample = flag.Bool("sample", false, "treat the input as a cvsample output (weighted rows via its _weight column)")
		seed     = flag.Int64("seed", 1, "RNG seed for sampling")
	)
	flag.Parse()
	if *in == "" || *sql == "" {
		fmt.Fprintln(os.Stderr, "cvquery: -in and -sql are required")
		flag.Usage()
		os.Exit(2)
	}

	tbl, err := table.LoadCSVInferred("input", *in)
	fatalIf(err)

	q, err := sqlparse.Parse(*sql)
	fatalIf(err)

	printResult := func(title string, res *exec.Result) {
		fmt.Printf("-- %s\n", title)
		for _, row := range res.Rows {
			key := strings.Join(row.Key, ", ")
			if key == "" {
				key = "(all)"
			}
			cells := make([]string, len(row.Aggs))
			for i, v := range row.Aggs {
				cells[i] = fmt.Sprintf("%s=%.6g", res.AggLabels[i], v)
				if row.SE != nil && !math.IsNaN(row.SE[i]) {
					cells[i] += fmt.Sprintf("±%.3g", row.SE[i])
				}
			}
			fmt.Printf("  %-30s %s\n", key, strings.Join(cells, "  "))
		}
	}

	if *isSample {
		// the CSV is a materialized weighted sample: every row counts
		// with its _weight
		wcol := tbl.Column("_weight")
		if wcol == nil {
			fatalIf(fmt.Errorf("-sample input has no _weight column (produce it with cvsample)"))
		}
		rows := make([]int32, tbl.NumRows())
		for i := range rows {
			rows[i] = int32(i)
		}
		approx, err := exec.RunWeighted(tbl, q, rows, wcol.Float)
		fatalIf(err)
		printResult(fmt.Sprintf("approximate (materialized sample, %d rows)", tbl.NumRows()), approx)
		return
	}

	exact, err := exec.Run(tbl, q)
	fatalIf(err)
	printResult("exact ("+fmt.Sprint(tbl.NumRows())+" rows)", exact)

	if *rate > 0 {
		if len(q.GroupBy) == 0 {
			fatalIf(fmt.Errorf("approximate mode needs a GROUP BY"))
		}
		spec := core.QuerySpec{GroupBy: q.GroupBy}
		seen := map[string]bool{}
		for _, item := range q.Select {
			for _, col := range sqlparse.Columns(item.Expr) {
				c := tbl.Column(col)
				if c != nil && c.Spec.Kind != table.String && !seen[col] && sqlparse.HasAggregate(item.Expr) {
					seen[col] = true
					spec.Aggs = append(spec.Aggs, core.AggColumn{Column: col})
				}
			}
		}
		if len(spec.Aggs) == 0 {
			// COUNT-only queries: stratify on frequency alone by using any
			// numeric column, or fall back to uniform within strata.
			for _, c := range tbl.Columns {
				if c.Spec.Kind != table.String {
					spec.Aggs = append(spec.Aggs, core.AggColumn{Column: c.Spec.Name})
					break
				}
			}
		}
		if len(spec.Aggs) == 0 {
			fatalIf(fmt.Errorf("no numeric column available for allocation statistics"))
		}
		m := int(float64(tbl.NumRows()) * *rate)
		if m < 1 {
			m = 1
		}
		rng := rand.New(rand.NewSource(*seed))
		rs, err := (&samplers.CVOPT{}).Build(tbl, []core.QuerySpec{spec}, m, rng)
		fatalIf(err)
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		fatalIf(err)
		printResult(fmt.Sprintf("approximate (CVOPT, %d rows = %.3g%%)", rs.Len(), *rate*100), approx)
		sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
		fmt.Printf("-- error: %s\n", sum)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvquery: %v\n", err)
		os.Exit(1)
	}
}
