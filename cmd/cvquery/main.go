// Command cvquery answers a SQL group-by query over a CSV table: exactly,
// approximately through a freshly built CVOPT sample (-rate), or
// approximately through a previously materialized weighted sample from
// cvsample (-sample). Approximate answers carry ± standard errors, and
// the per-group relative errors against the exact answer are reported.
//
//	cvquery -in data.csv -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
//	cvquery -in data.csv -rate 0.01 -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
//	cvsample -in data.csv -out s.csv -groupby region -agg amount -rate 0.01
//	cvquery -in s.csv -sample -sql "SELECT region, AVG(amount) FROM input GROUP BY region"
//
// With -server the query runs *remotely* against a live cvserve daemon
// through its typed Go client — no CSV is loaded locally, and FROM
// names a table the daemon serves. -rate builds the covering sample on
// the daemon first if it is missing; -target-cv autoscales the budget
// server-side instead:
//
//	cvquery -server http://localhost:8080 -sql "SELECT region, AVG(amount) FROM sales GROUP BY region"
//	cvquery -server http://localhost:8080 -rate 0.01 -sql "..."
//	cvquery -server http://localhost:8080 -target-cv 0.05 -sql "..."
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV path")
		sql      = flag.String("sql", "", "SELECT statement (FROM input)")
		rate     = flag.Float64("rate", 0, "if > 0, also answer from a CVOPT sample of this rate and compare (remote mode: build the covering sample on the daemon if missing)")
		isSample = flag.Bool("sample", false, "treat the input as a cvsample output (weighted rows via its _weight column)")
		seed     = flag.Int64("seed", 1, "RNG seed for sampling")
		server   = flag.String("server", "", "cvserve base URL (e.g. http://localhost:8080): answer remotely over the daemon's API instead of loading a CSV")
		targetCV = flag.Float64("target-cv", 0, "remote mode: answer from a server-side autoscaled sample — the smallest budget whose predicted worst per-group CV meets this goal (mutually exclusive with -rate)")
		maxM     = flag.Int("max-budget", 0, "remote mode: hard cap for -target-cv autoscaling (0 = table rows)")
	)
	flag.Parse()
	if *server != "" {
		runRemote(*server, *sql, *in, *isSample, *rate, *targetCV, *maxM, *seed)
		return
	}
	if *targetCV != 0 || *maxM != 0 {
		fatalIf(fmt.Errorf("-target-cv and -max-budget are remote-mode flags; they require -server"))
	}
	if *in == "" || *sql == "" {
		fmt.Fprintln(os.Stderr, "cvquery: -in and -sql are required")
		flag.Usage()
		os.Exit(2)
	}

	tbl, err := table.LoadCSVInferred("input", *in)
	fatalIf(err)

	q, err := sqlparse.Parse(*sql)
	fatalIf(err)

	printResult := func(title string, res *exec.Result) {
		fmt.Printf("-- %s\n", title)
		for _, row := range res.Rows {
			key := strings.Join(row.Key, ", ")
			if key == "" {
				key = "(all)"
			}
			cells := make([]string, len(row.Aggs))
			for i, v := range row.Aggs {
				cells[i] = fmt.Sprintf("%s=%.6g", res.AggLabels[i], v)
				if row.SE != nil && !math.IsNaN(row.SE[i]) {
					cells[i] += fmt.Sprintf("±%.3g", row.SE[i])
				}
			}
			fmt.Printf("  %-30s %s\n", key, strings.Join(cells, "  "))
		}
	}

	if *isSample {
		// the CSV is a materialized weighted sample: every row counts
		// with its _weight
		wcol := tbl.Column("_weight")
		if wcol == nil {
			fatalIf(fmt.Errorf("-sample input has no _weight column (produce it with cvsample)"))
		}
		rows := make([]int32, tbl.NumRows())
		for i := range rows {
			rows[i] = int32(i)
		}
		approx, err := exec.RunWeighted(tbl, q, rows, wcol.Float)
		fatalIf(err)
		printResult(fmt.Sprintf("approximate (materialized sample, %d rows)", tbl.NumRows()), approx)
		return
	}

	exact, err := exec.Run(tbl, q)
	fatalIf(err)
	printResult("exact ("+fmt.Sprint(tbl.NumRows())+" rows)", exact)

	if *rate > 0 {
		if len(q.GroupBy) == 0 {
			fatalIf(fmt.Errorf("approximate mode needs a GROUP BY"))
		}
		spec := core.QuerySpec{GroupBy: q.GroupBy}
		seen := map[string]bool{}
		for _, item := range q.Select {
			for _, col := range sqlparse.Columns(item.Expr) {
				c := tbl.Column(col)
				if c != nil && c.Spec.Kind != table.String && !seen[col] && sqlparse.HasAggregate(item.Expr) {
					seen[col] = true
					spec.Aggs = append(spec.Aggs, core.AggColumn{Column: col})
				}
			}
		}
		if len(spec.Aggs) == 0 {
			// COUNT-only queries: stratify on frequency alone by using any
			// numeric column, or fall back to uniform within strata.
			for _, c := range tbl.Columns {
				if c.Spec.Kind != table.String {
					spec.Aggs = append(spec.Aggs, core.AggColumn{Column: c.Spec.Name})
					break
				}
			}
		}
		if len(spec.Aggs) == 0 {
			fatalIf(fmt.Errorf("no numeric column available for allocation statistics"))
		}
		m := int(float64(tbl.NumRows()) * *rate)
		if m < 1 {
			m = 1
		}
		rng := rand.New(rand.NewSource(*seed))
		rs, err := (&samplers.CVOPT{}).Build(tbl, []core.QuerySpec{spec}, m, rng)
		fatalIf(err)
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		fatalIf(err)
		printResult(fmt.Sprintf("approximate (CVOPT, %d rows = %.3g%%)", rs.Len(), *rate*100), approx)
		sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
		fmt.Printf("-- error: %s\n", sum)
	}
}

// runRemote answers the query against a live cvserve daemon through
// the typed client: optionally build-if-missing (a -rate build of the
// query's own workload, idempotent thanks to the server cache), then
// POST /v1/query — with the autoscale flags forwarded as
// target_cv/max_budget when set.
func runRemote(server, sqlText, in string, isSample bool, rate, targetCV float64, maxBudget int, seed int64) {
	if sqlText == "" {
		fmt.Fprintln(os.Stderr, "cvquery: -sql is required")
		flag.Usage()
		os.Exit(2)
	}
	if in != "" || isSample {
		fatalIf(fmt.Errorf("-in and -sample do not apply with -server: the daemon owns the tables (FROM names one of them)"))
	}
	if rate > 0 && targetCV > 0 {
		fatalIf(fmt.Errorf("set -rate or -target-cv, not both: -target-cv lets the server choose the budget"))
	}
	if maxBudget != 0 && targetCV == 0 {
		// the server would reject this too (budget_conflict), but only
		// after a -rate build already ran; fail before any network work
		fatalIf(fmt.Errorf("-max-budget caps -target-cv autoscaling; it requires -target-cv"))
	}
	c, err := client.New(server, nil)
	fatalIf(err)
	ctx := context.Background()

	// parse locally only to learn the FROM table and derive the
	// build-if-missing workload; the daemon re-parses authoritatively
	q, err := sqlparse.Parse(sqlText)
	fatalIf(err)

	if rate > 0 {
		if len(q.GroupBy) == 0 {
			fatalIf(fmt.Errorf("approximate mode needs a GROUP BY"))
		}
		// the same derivation the server's query-driven builds use, so
		// the built sample is guaranteed to cover the query
		spec := apiv1.QuerySpec{GroupBy: q.GroupBy}
		for _, col := range sqlparse.QueryAggColumns(q) {
			spec.Aggs = append(spec.Aggs, apiv1.Agg{Column: col})
		}
		if len(spec.Aggs) == 0 {
			fatalIf(fmt.Errorf("remote -rate needs at least one aggregated column in the query (a COUNT-only query answers exactly; drop -rate)"))
		}
		s, err := c.BuildSample(ctx, apiv1.BuildRequest{
			Table:   q.From,
			Queries: []apiv1.QuerySpec{spec},
			Rate:    rate,
			Seed:    seed,
		})
		fatalIf(err)
		state := "built"
		if s.Cached {
			state = "reusing"
		}
		fmt.Printf("cvquery: %s sample on %s: %d rows (budget %d)\n", state, c.BaseURL(), s.Rows, s.Budget)
	}

	resp, err := c.Query(ctx, apiv1.QueryRequest{SQL: sqlText, TargetCV: targetCV, MaxBudget: maxBudget})
	fatalIf(err)
	printRemote(resp)
}

// printRemote renders a wire query response in the same per-group
// layout as the local modes.
func printRemote(resp *apiv1.QueryResponse) {
	title := fmt.Sprintf("remote exact (table %s)", resp.Table)
	if !resp.Exact {
		title = fmt.Sprintf("remote approximate (table %s, %d sample rows", resp.Table, resp.SampleRows)
		if resp.Generation > 0 {
			title += fmt.Sprintf(", generation %d", resp.Generation)
		}
		title += ")"
	}
	fmt.Printf("-- %s\n", title)
	for _, g := range resp.Groups {
		key := strings.Join(g.Key, ", ")
		if key == "" {
			key = "(all)"
		}
		cells := make([]string, len(g.Aggs))
		for i, v := range g.Aggs {
			label := ""
			if i < len(resp.AggLabels) {
				label = resp.AggLabels[i]
			}
			if v == nil {
				cells[i] = label + "=null"
				continue
			}
			cells[i] = fmt.Sprintf("%s=%.6g", label, *v)
			if i < len(g.SE) && g.SE[i] != nil {
				cells[i] += fmt.Sprintf("±%.3g", *g.SE[i])
			}
		}
		fmt.Printf("  %-30s %s\n", key, strings.Join(cells, "  "))
	}
	if resp.TargetCV > 0 {
		achieved := "inf"
		if resp.AchievedCV != nil {
			achieved = fmt.Sprintf("%.4g", *resp.AchievedCV)
		}
		if resp.TargetMet != nil && *resp.TargetMet {
			fmt.Printf("-- autoscaled to budget %d (target CV %g, achieved %s)\n",
				resp.ChosenBudget, resp.TargetCV, achieved)
		} else {
			fmt.Printf("-- target CV %g not met under the cap; best effort at budget %d (achieved CV %s)\n",
				resp.TargetCV, resp.ChosenBudget, achieved)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "cvquery: %v\n", err)
		os.Exit(1)
	}
}
