// Command cvserve runs the CVOPT sample-serving daemon: it loads CSV
// tables, then serves the build-once/query-many HTTP API — register a
// sample for a table + workload + budget once, answer any number of
// group-by queries off it in parallel.
//
//	cvserve -addr :8080 -load sales=sales.csv -load events=events.csv
//
//	curl -s localhost:8080/v1/samples -H 'content-type: application/json' -d '{
//	  "table": "sales", "rate": 0.01,
//	  "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]
//	}'
//	curl -s localhost:8080/v1/query -H 'content-type: application/json' -d '{
//	  "sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"
//	}'
//
// Loaded tables can be made *live* over the API: POST
// /v1/tables/{name}/stream registers a streaming workload, POST
// /v1/tables/{name}/rows appends, and the sample republishes on the
// refresh policy (-refresh-rows / -refresh-interval set the daemon-wide
// defaults; POST /v1/tables/{name}/refresh flushes explicitly).
//
// Callers that know the accuracy they need instead of a budget send
// "target_cv" (POST /v1/samples or /v1/query): the daemon autoscales to
// the smallest budget whose predicted worst per-group CV meets it.
// -default-target-cv applies that goal to /v1/samples requests that
// name no sizing at all.
//
// The registry behind the API is sharded by table name (-shards), so
// heavy builds or refreshes on one table never stall queries on
// another, and -max-sample-bytes bounds resident sample memory with
// least-recently-used eviction (live streaming samples are pinned).
//
// The process exits cleanly on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/table"
)

// tableFlags collects repeated -table name=path flags.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }

func (t *tableFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*t = append(*t, v)
	return nil
}

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		refreshRows     = flag.Int("refresh-rows", 0, "default streaming refresh threshold: republish a live table's sample after this many appended rows (0 = explicit refresh only)")
		refreshInterval = flag.Duration("refresh-interval", 0, "default streaming refresh period: republish a live table's sample this often while rows are pending (0 = off)")
		maxSampleBytes  = flag.Int64("max-sample-bytes", 0, "resident sample memory budget in bytes: least-recently-used samples are evicted once built samples exceed it (0 = unbounded)")
		shards          = flag.Int("shards", 0, "registry shard count; tables hash to shards so load on one table never locks out another (0 = default)")
		defaultTargetCV = flag.Float64("default-target-cv", 0, "autoscale POST /v1/samples requests that name no budget, rate or target_cv to this per-group CV goal (0 = sizing stays mandatory)")
		tables          tableFlags
	)
	flag.Var(&tables, "table", "table to serve, as name=path.csv (repeatable)")
	// -load is the preload spelling of the same flag: both feed one
	// list, so mixing them works and ordering is preserved per flag
	flag.Var(&tables, "load", "alias of -table: preload a CSV at startup so the daemon is queryable without a client bootstrap step (repeatable)")
	flag.Parse()
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "cvserve: at least one -table/-load name=path is required")
		flag.Usage()
		os.Exit(2)
	}
	if *refreshRows < 0 || *refreshInterval < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: refresh policy flags must be non-negative")
		os.Exit(2)
	}
	if *maxSampleBytes < 0 || *shards < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -max-sample-bytes and -shards must be non-negative")
		os.Exit(2)
	}
	if *defaultTargetCV < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -default-target-cv must be non-negative")
		os.Exit(2)
	}

	// serve.Version is a link-time stamp: build releases with
	//   go build -ldflags "-X repro/internal/serve.Version=v1.2.3" ./cmd/cvserve
	// and /healthz (plus this line) reports it to fleet operators.
	log.Printf("cvserve: version %s (%s)", serve.Version, runtime.Version())

	reg := serve.NewRegistry(serve.WithMaxSampleBytes(*maxSampleBytes), serve.WithShards(*shards))
	defer reg.Close()
	reg.SetStreamDefaults(ingest.Policy{MaxPending: *refreshRows, Interval: *refreshInterval})
	for _, spec := range tables {
		name, path, _ := strings.Cut(spec, "=")
		tbl, err := table.LoadCSVInferred(name, path)
		fatalIf(err)
		fatalIf(reg.RegisterTable(tbl))
		log.Printf("cvserve: loaded table %s (%d rows, %d cols) from %s",
			name, tbl.NumRows(), tbl.NumCols(), path)
	}

	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	srv := &http.Server{
		Handler: logRequests(serve.NewServer(reg, serve.WithDefaultTargetCV(*defaultTargetCV))),
		// slow-client protection for a resident daemon: bodies are
		// size-bounded by the handler (1 MiB), these bound duration so
		// a dripping client cannot pin a connection forever
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// the integration test (and port-0 users) read the bound address
	// from this line
	fmt.Printf("cvserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		fatalIf(err)
	case <-ctx.Done():
		stop()
		log.Printf("cvserve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("cvserve: shutdown: %v", err)
			os.Exit(1)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalIf(err)
		}
	}
}

// logRequests is a minimal ops log: one line per request with status
// and latency.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.code, time.Since(start))
	})
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer (the
// build handler clears its write deadline through it).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvserve:", err)
		os.Exit(1)
	}
}
