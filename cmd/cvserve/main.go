// Command cvserve runs the CVOPT sample-serving daemon: it loads CSV
// tables, then serves the build-once/query-many HTTP API — register a
// sample for a table + workload + budget once, answer any number of
// group-by queries off it in parallel.
//
//	cvserve -addr :8080 -load sales=sales.csv -load events=events.csv
//
//	curl -s localhost:8080/v1/samples -H 'content-type: application/json' -d '{
//	  "table": "sales", "rate": 0.01,
//	  "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]
//	}'
//	curl -s localhost:8080/v1/query -H 'content-type: application/json' -d '{
//	  "sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"
//	}'
//
// Loaded tables can be made *live* over the API: POST
// /v1/tables/{name}/stream registers a streaming workload, POST
// /v1/tables/{name}/rows appends, and the sample republishes on the
// refresh policy (-refresh-rows / -refresh-interval set the daemon-wide
// defaults; POST /v1/tables/{name}/refresh flushes explicitly).
//
// Callers that know the accuracy they need instead of a budget send
// "target_cv" (POST /v1/samples or /v1/query): the daemon autoscales to
// the smallest budget whose predicted worst per-group CV meets it.
// -default-target-cv applies that goal to /v1/samples requests that
// name no sizing at all.
//
// The registry behind the API is sharded by table name (-shards), so
// heavy builds or refreshes on one table never stall queries on
// another, and -max-sample-bytes bounds resident sample memory with
// least-recently-used eviction (live streaming samples are pinned).
//
// With -data-dir the daemon is durable: every streaming table keeps a
// write-ahead log and periodic checkpoints under the directory, built
// static samples spill to disk, and a restart — clean or kill -9 —
// recovers both, replaying the WAL suffix so streaming samples come
// back bit-identical. -fsync picks the durability policy (always /
// interval / never) and -checkpoint-bytes bounds WAL disk usage per
// table (docs/ARCHITECTURE.md describes the recovery protocol).
//
// Under heavy traffic the optional QoS front end (-max-inflight)
// bounds concurrent execution with a queue, answers overflow with 429 +
// Retry-After, coalesces identical queries arriving within
// -coalesce-window into one executor pass, degrades target_cv queries
// to the cheapest resident sample instead of queueing them, and
// enforces -tenant-limits token buckets keyed by X-API-Token
// (docs/ARCHITECTURE.md, "The QoS front end").
//
// Observability (docs/OBSERVABILITY.md): every request is logged
// structured via log/slog (-log-format picks text or JSON) with its
// route, status, duration and X-Request-ID; GET /metrics serves the
// Prometheus exposition and GET /debug/requests the recent per-route
// traces. -debug-addr opens a second listener carrying net/http/pprof
// plus the same two endpoints, so profiling never requires exposing
// /debug/pprof on the query port.
//
// The process exits cleanly on SIGINT/SIGTERM, draining in-flight
// requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/ingest"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/table"
	"repro/internal/wal"
)

// tableFlags collects repeated -table name=path flags.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, ",") }

func (t *tableFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*t = append(*t, v)
	return nil
}

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		debugAddr       = flag.String("debug-addr", "", "optional second listen address serving net/http/pprof, /metrics and /debug/requests (empty = off)")
		logFormat       = flag.String("log-format", "text", "structured log format: text or json (stderr)")
		refreshRows     = flag.Int("refresh-rows", 0, "default streaming refresh threshold: republish a live table's sample after this many appended rows (0 = explicit refresh only)")
		refreshInterval = flag.Duration("refresh-interval", 0, "default streaming refresh period: republish a live table's sample this often while rows are pending (0 = off)")
		maxSampleBytes  = flag.Int64("max-sample-bytes", 0, "resident sample memory budget in bytes: least-recently-used samples are evicted once built samples exceed it (0 = unbounded)")
		shards          = flag.Int("shards", 0, "registry shard count; tables hash to shards so load on one table never locks out another (0 = default)")
		defaultTargetCV = flag.Float64("default-target-cv", 0, "autoscale POST /v1/samples requests that name no budget, rate or target_cv to this per-group CV goal (0 = sizing stays mandatory)")
		dataDir         = flag.String("data-dir", "", "durable state directory: streaming tables get a write-ahead log and checkpoints, built samples spill to disk, and a restart recovers both (empty = in-memory only)")
		fsync           = flag.String("fsync", "interval", "WAL durability policy under -data-dir: always (fsync before acknowledging), interval (background fsync), never (leave flushing to the OS)")
		checkpointBytes = flag.Int64("checkpoint-bytes", 0, "cut a checkpoint and truncate covered WAL segments once a table's log exceeds this many bytes (0 = 4 MiB default; with -data-dir)")
		maxInflight     = flag.Int("max-inflight", 0, "QoS admission limit: how many queries/builds may execute at once; excess waits in a bounded queue, overflow gets 429 + Retry-After (0 = QoS front end off)")
		coalesceWindow  = flag.Duration("coalesce-window", 0, "QoS coalescing window: identical queries arriving within it share one executor pass (0 = off; needs -max-inflight)")
		tenantLimits    = flag.String("tenant-limits", "", "QoS per-tenant request budgets keyed by X-API-Token, as token=rate[:burst],... with * as the default bucket (empty = off; needs -max-inflight)")
		ingestHorizon   = flag.Int("ingest-horizon-rows", 0, "warn on /healthz once a streaming table holds more than this many resident rows (0 = off)")
		tables          tableFlags
	)
	flag.Var(&tables, "table", "table to serve, as name=path.csv (repeatable)")
	// -load is the preload spelling of the same flag: both feed one
	// list, so mixing them works and ordering is preserved per flag
	flag.Var(&tables, "load", "alias of -table: preload a CSV at startup so the daemon is queryable without a client bootstrap step (repeatable)")
	flag.Parse()
	if len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "cvserve: at least one -table/-load name=path is required")
		flag.Usage()
		os.Exit(2)
	}
	if *refreshRows < 0 || *refreshInterval < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: refresh policy flags must be non-negative")
		os.Exit(2)
	}
	if *maxSampleBytes < 0 || *shards < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -max-sample-bytes and -shards must be non-negative")
		os.Exit(2)
	}
	if *defaultTargetCV < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -default-target-cv must be non-negative")
		os.Exit(2)
	}
	if *checkpointBytes < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -checkpoint-bytes must be non-negative")
		os.Exit(2)
	}
	if *maxInflight < 0 || *ingestHorizon < 0 {
		fmt.Fprintln(os.Stderr, "cvserve: -max-inflight and -ingest-horizon-rows must be non-negative")
		os.Exit(2)
	}
	if *maxInflight == 0 && (*coalesceWindow != 0 || *tenantLimits != "") {
		fmt.Fprintln(os.Stderr, "cvserve: -coalesce-window and -tenant-limits need -max-inflight")
		os.Exit(2)
	}
	var fe *qos.FrontEnd
	if *maxInflight > 0 {
		var err error
		fe, err = qos.New(qos.Config{
			MaxInflight:    *maxInflight,
			CoalesceWindow: *coalesceWindow,
			TenantLimits:   *tenantLimits,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvserve:", err)
			os.Exit(2)
		}
	}
	var popts serve.PersistOptions
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cvserve:", err)
			os.Exit(2)
		}
		popts = serve.PersistOptions{Dir: *dataDir, Fsync: policy, CheckpointBytes: *checkpointBytes}
	}
	logger, err := newLogger(*logFormat)
	fatalIf(err)

	// serve.Version is a link-time stamp: build releases with
	//   go build -ldflags "-X repro/internal/serve.Version=v1.2.3" ./cmd/cvserve
	// and /healthz (plus this line) reports it to fleet operators.
	logger.Info("starting", "version", serve.Version, "go", runtime.Version())

	reg := serve.NewRegistry(serve.WithMaxSampleBytes(*maxSampleBytes), serve.WithShards(*shards),
		serve.WithPersistence(popts))
	defer reg.Close()
	reg.SetStreamDefaults(ingest.Policy{MaxPending: *refreshRows, Interval: *refreshInterval})
	for _, spec := range tables {
		name, path, _ := strings.Cut(spec, "=")
		tbl, err := table.LoadCSVInferred(name, path)
		fatalIf(err)
		fatalIf(reg.RegisterTable(tbl))
		logger.Info("loaded table",
			"table", name, "rows", tbl.NumRows(), "cols", tbl.NumCols(), "path", path)
	}
	// recovery runs after the CSV loads: a recovered streaming table is
	// newer than its -load snapshot and replaces it
	if *dataDir != "" {
		rep, err := reg.Recover(context.Background())
		fatalIf(err)
		logger.Info("recovered state",
			"dir", *dataDir, "tables", rep.Tables, "replayed_records", rep.ReplayedRecords,
			"torn_tails", rep.TornTails, "spilled_samples", rep.SpilledSamples,
			"duration", rep.Duration)
	}

	sopts := []serve.ServerOption{
		serve.WithDefaultTargetCV(*defaultTargetCV),
		serve.WithLogger(logger),
		serve.WithIngestHorizonRows(*ingestHorizon),
	}
	if fe != nil {
		sopts = append(sopts, serve.WithQoS(fe))
		logger.Info("qos front end",
			"max_inflight", *maxInflight, "coalesce_window", *coalesceWindow,
			"tenant_limits", *tenantLimits != "")
	}
	app := serve.NewServer(reg, sopts...)

	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	srv := &http.Server{
		Handler: app,
		// slow-client protection for a resident daemon: bodies are
		// size-bounded by the handler (1 MiB), these bound duration so
		// a dripping client cannot pin a connection forever
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// the debug listener (pprof + /metrics + /debug/requests) is a
	// separate server on a separate port: profiling a production daemon
	// must not require exposing /debug/pprof to query clients
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		fatalIf(err)
		debugSrv = &http.Server{
			Handler:           app.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		logger.Info("debug listener", "addr", fmt.Sprintf("http://%s", dln.Addr()))
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err)
			}
		}()
	}

	// the integration test (and port-0 users) read the bound address
	// from this line
	fmt.Printf("cvserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		fatalIf(err)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutCtx)
		}
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalIf(err)
		}
	}
}

// newLogger builds the daemon's structured logger on stderr in the
// chosen format (stdout stays reserved for the listening line).
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cvserve:", err)
		os.Exit(1)
	}
}
