// Command reprolint is the repo's multichecker: it loads the packages
// matching its arguments (default ./...), runs every analyzer in
// internal/lint over them, and exits 1 if any finding survives the
// //lint:allow filter. CI runs it as a tier-1 gate next to go vet; see
// docs/LINTING.md for the invariants each analyzer encodes.
//
// Usage:
//
//	reprolint [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: reprolint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
