package repro

// Crash-recovery end to end: kill -9 a durable cvserve mid-stream,
// corrupt the WAL tail the way a crash would, restart on the same
// -data-dir and check the daemon comes back with the same generation
// and the same answers — bit-identical against an uninterrupted control
// run, since WAL replay reproduces the sampler's RNG consumption. The
// second test drives enough appends through a small checkpoint
// threshold to watch checkpoints truncate the WAL (bounded disk), then
// recovers from the resulting mid-life checkpoint with exact results
// intact.

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// startCvserveProc is startCvserve returning the process too, for tests
// that kill -9 mid-run instead of letting cleanup reap the daemon.
func startCvserveProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			if _, addr, ok := strings.Cut(scanner.Text(), "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
				return
			}
		}
		close(addrCh)
	}()
	select {
	case base := <-addrCh:
		if base == "" {
			t.Fatal("cvserve never reported its address")
		}
		return cmd, base
	case <-time.After(10 * time.Second):
		t.Fatal("cvserve never reported its address")
	}
	return nil, ""
}

// sigkill terminates the daemon without any chance to flush — the crash
// being simulated — and reaps the process.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
}

func postJSON(t *testing.T, base, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, data
}

// queryGroups runs a sample-mode GROUP BY query and returns group key →
// (aggs, se), plus the serving sample's generation.
func queryGroups(t *testing.T, base, sql string) map[string][]float64 {
	t.Helper()
	code, body := postJSON(t, base, "/v1/query", `{"sql": "`+sql+`", "mode": "sample"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var qr struct {
		Groups []struct {
			Key  []string   `json:"key"`
			Aggs []*float64 `json:"aggs"`
			SE   []*float64 `json:"se"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	out := make(map[string][]float64, len(qr.Groups))
	for _, g := range qr.Groups {
		var vals []float64
		for _, v := range append(g.Aggs, g.SE...) {
			if v == nil {
				t.Fatalf("null agg/se in group %v: %s", g.Key, body)
			}
			vals = append(vals, *v)
		}
		out[strings.Join(g.Key, "\x00")] = vals
	}
	return out
}

func exactCount(t *testing.T, base string) float64 {
	t.Helper()
	code, body := postJSON(t, base, "/v1/query", `{"sql": "SELECT COUNT(*) FROM sales", "mode": "exact"}`)
	if code != http.StatusOK {
		t.Fatalf("exact count: %d %s", code, body)
	}
	var qr struct {
		Groups []struct {
			Aggs []*float64 `json:"aggs"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if len(qr.Groups) != 1 || len(qr.Groups[0].Aggs) != 1 || qr.Groups[0].Aggs[0] == nil {
		t.Fatalf("exact count groups: %s", body)
	}
	return *qr.Groups[0].Aggs[0]
}

// healthPersistence fetches the /healthz persistence block and the
// streaming generation of sales.
type persistenceHealth struct {
	WalSegments       int    `json:"wal_segments"`
	WalBytes          int64  `json:"wal_bytes"`
	Checkpoints       int64  `json:"checkpoints"`
	TruncatedSegments int64  `json:"truncated_segments"`
	RecoveredTables   int64  `json:"recovered_tables"`
	ReplayedRecords   int64  `json:"replayed_records"`
	TornTails         int64  `json:"torn_tails"`
	Errors            int64  `json:"errors"`
	Dir               string `json:"dir"`
}

func healthPersistence(t *testing.T, base string) (persistenceHealth, uint64) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		StreamTables map[string]struct {
			Generation uint64 `json:"generation"`
		} `json:"stream_tables"`
		Persistence *persistenceHealth `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Persistence == nil {
		t.Fatal("healthz has no persistence block on a -data-dir daemon")
	}
	return *h.Persistence, h.StreamTables["sales"].Generation
}

// streamAndFeed registers the deterministic streaming workload (fixed
// seed and budget) and drives batches rounds of append+refresh, plus
// one final unrefreshed batch left pending.
func streamAndFeed(t *testing.T, base string, rounds int) {
	t.Helper()
	code, body := postJSON(t, base, "/v1/tables/sales/stream", `{
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"budget": 300, "seed": 42
	}`)
	if code != http.StatusCreated {
		t.Fatalf("stream: %d %s", code, body)
	}
	for i := 0; i < rounds; i++ {
		appendBatch(t, base, i)
		if code, body := postJSON(t, base, "/v1/tables/sales/refresh", ""); code != http.StatusOK {
			t.Fatalf("refresh %d: %d %s", i, code, body)
		}
	}
	appendBatch(t, base, rounds) // pending at the crash
}

// appendBatch posts a deterministic 30-row batch (schema region,
// amount, qty) varying by round.
func appendBatch(t *testing.T, base string, round int) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"rows": [`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		region := []string{"NA", "EU", "APAC"}[(round+i)%3]
		amt := 90 + float64((round*31+i*7)%40)
		sb.WriteString(`["` + region + `", ` + jsonFloat(amt) + `, 2]`)
	}
	sb.WriteString(`]}`)
	if code, body := postJSON(t, base, "/v1/tables/sales/rows", sb.String()); code != http.StatusOK {
		t.Fatalf("append round %d: %d %s", round, code, body)
	}
}

func jsonFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// TestCmdCvserveCrashRecoveryBitIdentical: kill -9 a -fsync=always
// daemon with acknowledged appends and a pending tail, garble the WAL
// tail the way a torn write would, restart on the same -data-dir, and
// require the recovered daemon to answer the streaming query
// bit-identically to an uninterrupted daemon fed the same operations.
func TestCmdCvserveCrashRecoveryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvserve")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)
	dataDir := filepath.Join(dir, "data")
	const sql = "SELECT region, AVG(amount) FROM sales GROUP BY region"

	// the crashing run: fsync=always so every acknowledged append is
	// durable at the moment of the kill
	cmd1, base1 := startCvserveProc(t, bin, "-load", "sales="+in, "-data-dir", dataDir, "-fsync", "always")
	streamAndFeed(t, base1, 2)
	preKill := queryGroups(t, base1, sql)
	_, preGen := healthPersistence(t, base1)
	sigkill(t, cmd1)

	// the crash signature: a torn (partially written) record at the WAL
	// tail, which recovery must truncate away rather than reject
	segs, err := filepath.Glob(filepath.Join(dataDir, "tables", "sales", "wal", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments under the data dir: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x99, 0x00, 0x00, 0x00, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// restart on the same data dir; the CSV loads too, and the recovered
	// stream must take over from it
	_, base2 := startCvserveProc(t, bin, "-load", "sales="+in, "-data-dir", dataDir, "-fsync", "always")
	ph, gen := healthPersistence(t, base2)
	if ph.RecoveredTables != 1 || ph.TornTails != 1 || ph.Errors != 0 {
		t.Fatalf("recovery health %+v, want 1 recovered table, 1 torn tail, 0 errors", ph)
	}
	if ph.ReplayedRecords == 0 {
		t.Fatalf("recovery health %+v, want replayed records", ph)
	}
	if gen != preGen {
		t.Fatalf("recovered generation %d, want %d", gen, preGen)
	}
	recovered := queryGroups(t, base2, sql)

	// the control: an uninterrupted in-memory daemon fed the exact same
	// operations (same seed, same batches, same publication points)
	_, base3 := startCvserveProc(t, bin, "-load", "sales="+in)
	streamAndFeed(t, base3, 2)
	control := queryGroups(t, base3, sql)

	for name, want := range map[string]map[string][]float64{"pre-kill": preKill, "control": control} {
		if len(recovered) != len(want) {
			t.Fatalf("recovered answer has %d groups, %s has %d", len(recovered), name, len(want))
		}
		for key, vals := range want {
			got, ok := recovered[key]
			if !ok || len(got) != len(vals) {
				t.Fatalf("group %q: recovered %v, %s %v", key, got, name, vals)
			}
			for i := range vals {
				if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
					t.Fatalf("group %q value %d: recovered %v != %s %v (replay diverged)",
						key, i, got[i], name, vals[i])
				}
			}
		}
	}
}

// TestCmdCvserveCrashRecoveryBoundsWal: a small -checkpoint-bytes makes
// checkpoints cut and truncate during normal streaming, so WAL disk
// stays bounded; a kill -9 then recovers from the mid-life checkpoint
// with the generation and exact results intact.
func TestCmdCvserveCrashRecoveryBoundsWal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvserve")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)
	dataDir := filepath.Join(dir, "data")
	const checkpointBytes = 16 << 10

	cmd1, base1 := startCvserveProc(t, bin, "-load", "sales="+in,
		"-data-dir", dataDir, "-fsync", "always", "-checkpoint-bytes", "16384")
	streamAndFeed(t, base1, 25)
	ph, preGen := healthPersistence(t, base1)
	if ph.Checkpoints == 0 || ph.TruncatedSegments == 0 {
		t.Fatalf("persistence health %+v, want checkpoints and truncated segments > 0", ph)
	}
	if ph.WalBytes > 3*checkpointBytes {
		t.Fatalf("wal bytes = %d not bounded by truncation (threshold %d)", ph.WalBytes, checkpointBytes)
	}
	preCount := exactCount(t, base1)
	sigkill(t, cmd1)

	// on-disk WAL footprint stays bounded too (truncation deleted
	// covered segments, not just stopped counting them)
	var diskBytes int64
	segs, _ := filepath.Glob(filepath.Join(dataDir, "tables", "sales", "wal", "*.seg"))
	for _, s := range segs {
		if fi, err := os.Stat(s); err == nil {
			diskBytes += fi.Size()
		}
	}
	if diskBytes == 0 || diskBytes > 3*checkpointBytes {
		t.Fatalf("wal disk footprint %d bytes, want within ~%d", diskBytes, checkpointBytes)
	}

	_, base2 := startCvserveProc(t, bin, "-load", "sales="+in,
		"-data-dir", dataDir, "-fsync", "always", "-checkpoint-bytes", "16384")
	ph2, gen := healthPersistence(t, base2)
	if ph2.RecoveredTables != 1 || ph2.Errors != 0 {
		t.Fatalf("recovery health %+v, want 1 recovered table and 0 errors", ph2)
	}
	if gen != preGen {
		t.Fatalf("recovered generation %d, want %d", gen, preGen)
	}
	if got := exactCount(t, base2); got != preCount {
		t.Fatalf("exact COUNT(*) after recovery = %g, want %g", got, preCount)
	}
}
