package repro

// Benchmarks regenerating every table and figure of the paper (one per
// artifact, wrapping the internal/experiments drivers at reduced scale)
// plus micro-benchmarks of the pipeline stages. Run:
//
//	go test -bench=. -benchmem
//
// For full-scale experiment output use cmd/cvbench.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// benchCfg keeps artifact benchmarks to a few hundred ms each.
func benchCfg() experiments.Config {
	return experiments.Config{
		OpenAQRows: 60000,
		BikesRows:  40000,
		Scale:      2,
		Seed:       1,
		Reps:       1,
		Out:        io.Discard,
	}
}

func benchArtifact(b *testing.B, id string) {
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not found", id)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1(b *testing.B)       { benchArtifact(b, "fig1") }
func BenchmarkSec61(b *testing.B)      { benchArtifact(b, "sec61") }
func BenchmarkTable4(b *testing.B)     { benchArtifact(b, "table4") }
func BenchmarkFig2(b *testing.B)       { benchArtifact(b, "fig2") }
func BenchmarkFig3(b *testing.B)       { benchArtifact(b, "fig3") }
func BenchmarkFig4(b *testing.B)       { benchArtifact(b, "fig4") }
func BenchmarkTable5(b *testing.B)     { benchArtifact(b, "table5") }
func BenchmarkFig5(b *testing.B)       { benchArtifact(b, "fig5") }
func BenchmarkTable6(b *testing.B)     { benchArtifact(b, "table6") }
func BenchmarkFig6(b *testing.B)       { benchArtifact(b, "fig6") }
func BenchmarkAblationLp(b *testing.B) { benchArtifact(b, "ablp") }
func BenchmarkAblationCap(b *testing.B) {
	benchArtifact(b, "ablcap")
}

// Micro-benchmarks of the pipeline stages at a fixed scale.

func benchOpenAQ(b *testing.B, rows int) *table.Table {
	b.Helper()
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: rows, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

func benchSpecs() []QuerySpec {
	return []QuerySpec{{
		GroupBy: []string{"country", "parameter", "unit"},
		Aggs:    []AggColumn{{Column: "value"}},
	}}
}

// BenchmarkStatsPass measures pass 1 (per-stratum Welford statistics).
func BenchmarkStatsPass(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(tbl, benchSpecs()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkAllocate measures the closed-form L2 allocation given stats.
func BenchmarkAllocate(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	plan, err := core.NewPlan(tbl, benchSpecs())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Allocate(2000, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocateInf measures the CVOPT-INF binary search.
func BenchmarkAllocateInf(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	plan, err := core.NewPlan(tbl, benchSpecs())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Allocate(2000, Options{Norm: LInf}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSamplePass measures pass 2 (stratified reservoir draw).
func BenchmarkSamplePass(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	plan, err := core.NewPlan(tbl, benchSpecs())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.Sample(2000, Options{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndCVOPT measures the full offline phase (stats +
// allocate + draw) through the sampler interface.
func BenchmarkEndToEndCVOPT(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	rng := rand.New(rand.NewSource(1))
	s := &samplers.CVOPT{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Build(tbl, benchSpecs(), 2000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryExact measures exact group-by evaluation (the paper's
// "Full Data" row of Table 6).
func BenchmarkQueryExact(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	q, err := sqlparse.Parse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ GROUP BY country, parameter, unit")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(tbl, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkQuerySampled measures approximate evaluation over a 1%
// weighted sample (the sample-query rows of Table 6).
func BenchmarkQuerySampled(b *testing.B) {
	tbl := benchOpenAQ(b, 200000)
	rng := rand.New(rand.NewSource(1))
	rs, err := (&samplers.CVOPT{}).Build(tbl, benchSpecs(), 2000, rng)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sqlparse.Parse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ GROUP BY country, parameter, unit")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the parser on a representative query.
func BenchmarkSQLParse(b *testing.B) {
	const sql = "SELECT country, parameter, unit, SUM(value) AS agg1, COUNT(*) AS agg2 FROM OpenAQ WHERE hour BETWEEN 0 AND 17 AND country IN ('US', 'VN') GROUP BY country, parameter, unit WITH CUBE"
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}
