package repro_test

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/table"
)

// ExampleBuild materializes a 10% CVOPT sample over a small table and
// answers a group-by query approximately. The deterministic seed makes
// the output stable.
func ExampleBuild() {
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(1))
	for _, spec := range []struct {
		region   string
		n        int
		mean, sd float64
	}{
		{"NA", 4000, 100, 5},
		{"EU", 1000, 80, 40},
	} {
		for i := 0; i < spec.n; i++ {
			if err := tbl.AppendRow(spec.region, spec.mean+spec.sd*rng.NormFloat64()); err != nil {
				log.Fatal(err)
			}
		}
	}

	queries := []repro.QuerySpec{{
		GroupBy: []string{"region"},
		Aggs:    []repro.AggColumn{{Column: "amount"}},
	}}
	s, err := repro.Build(tbl, queries, repro.BudgetRate(tbl, 0.1), repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Answer(tbl, s, "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		// COUNT estimates are exact here: stratification matches the
		// grouping, so group sizes are design metadata
		fmt.Printf("%s %.0f\n", row.Key[0], row.Aggs[0])
	}
	// Output:
	// EU 1000
	// NA 4000
}
