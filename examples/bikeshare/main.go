// Bike-share scenario (the paper's Bikes workload): a MASG query with
// two aggregates — AVG(age) and AVG(trip_duration) per station — and
// user-assigned weights trading accuracy between them (Section 6.2 /
// Figure 2).
//
//	go run ./examples/bikeshare
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
)

func main() {
	tbl, err := datagen.Bikes(datagen.BikesConfig{Rows: 200000, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic Bikes: %d rows, %d stations\n\n", tbl.NumRows(), 619)

	sql := "SELECT from_station_id, AVG(age) AS agg1, AVG(trip_duration) AS agg2 FROM Bikes WHERE age > 0 GROUP BY from_station_id"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		log.Fatal(err)
	}

	m := repro.BudgetRate(tbl, 0.05)
	fmt.Println("5% CVOPT samples with different (w1, w2) weightings of the two aggregates:")
	fmt.Printf("%-12s %18s %18s\n", "w1/w2", "avg err AVG(age)", "avg err AVG(dur)")
	for _, w := range [][2]float64{{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}} {
		queries := []repro.QuerySpec{{
			GroupBy: []string{"from_station_id"},
			Aggs: []repro.AggColumn{
				{Column: "age", Weight: w[0]},
				{Column: "trip_duration", Weight: w[1]},
			},
		}}
		rng := rand.New(rand.NewSource(3))
		s, err := repro.Build(tbl, queries, m, repro.Options{}, rng)
		if err != nil {
			log.Fatal(err)
		}
		approx, err := exec.RunWeighted(tbl, q, s.Rows, s.Weights)
		if err != nil {
			log.Fatal(err)
		}
		perAgg := metrics.GroupErrorsPerAgg(exact, approx)
		fmt.Printf("%.1f/%.1f %17.2f%% %17.2f%%\n",
			w[0], w[1],
			metrics.Summarize(perAgg[0]).Mean*100,
			metrics.Summarize(perAgg[1]).Mean*100)
	}
	fmt.Println("\nRaising an aggregate's weight buys it accuracy at the other's cost —")
	fmt.Println("the sample calibration knob of Section 6.2.")
}
