// Workload-driven weighting (Section 4.3): reproduce the paper's worked
// example — the Student table of Table 1, the 45-query workload of
// Table 2 — and show the deduced aggregation-group frequencies (Table 3)
// flowing into the sample allocation as weights.
//
//	go run ./examples/workload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/table"
)

func main() {
	tbl := table.New("student", table.Schema{
		{Name: "id", Kind: table.Int},
		{Name: "age", Kind: table.Float},
		{Name: "gpa", Kind: table.Float},
		{Name: "sat", Kind: table.Float},
		{Name: "major", Kind: table.String},
		{Name: "college", Kind: table.String},
	})
	rows := []struct {
		id             int64
		age, gpa, sat  float64
		major, college string
	}{
		{1, 25, 3.4, 1250, "CS", "Science"},
		{2, 22, 3.1, 1280, "CS", "Science"},
		{3, 24, 3.8, 1230, "Math", "Science"},
		{4, 28, 3.6, 1270, "Math", "Science"},
		{5, 21, 3.5, 1210, "EE", "Engineering"},
		{6, 23, 3.2, 1260, "EE", "Engineering"},
		{7, 27, 3.7, 1220, "ME", "Engineering"},
		{8, 26, 3.3, 1230, "ME", "Engineering"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.age, r.gpa, r.sat, r.major, r.college); err != nil {
			log.Fatal(err)
		}
	}

	// Table 2: A x20, B x10, C x15 (C has WHERE college = 'Science').
	science := func(tb *table.Table, row int) bool {
		return tb.Column("college").StringAt(row) == "Science"
	}
	workload := []repro.WorkloadQuery{
		{GroupBy: []string{"major"}, Aggs: []string{"age", "gpa"}, Freq: 20},
		{GroupBy: []string{"college"}, Aggs: []string{"age", "sat"}, Freq: 10},
		{GroupBy: []string{"major"}, Aggs: []string{"gpa"}, Freq: 15, Pred: science},
	}
	specs, err := repro.WorkloadWeights(tbl, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Aggregation groups deduced from the workload (paper Table 3):")
	fmt.Printf("%-10s %-14s %s\n", "column", "group", "frequency")
	for _, s := range specs {
		for _, a := range s.Aggs {
			for g, f := range a.GroupWeights {
				fmt.Printf("%-10s %-14s %g\n", a.Column, g, f)
			}
		}
	}

	// The frequencies act as weights in the allocation.
	plan, err := repro.NewPlan(tbl, specs)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	_, sizes, err := plan.Sample(6, repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAllocation of a 6-row budget over the finest strata (major x college):")
	fmt.Print(plan.DescribeAllocation(sizes))
	fmt.Println("Hot aggregation groups (GPA of Science majors, frequency 35) pull budget")
	fmt.Println("toward their strata; untouched groups would get only the coverage floor.")
}
