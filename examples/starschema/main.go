// Star-schema / join scenario: the warehouse pattern the paper's intro
// motivates. Trips (fact) reference stations (dimension); analysts group
// by *dimension* attributes the fact table does not carry. The joined
// view is materialized once (table.Join), CVOPT stratifies it on the
// dimension attribute, and the sample answers neighborhood-level queries
// with per-group error bars.
//
//	go run ./examples/starschema
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// Dimension: 200 stations across 6 neighborhoods of very different
	// character.
	neighborhoods := []struct {
		name     string
		stations int
		mean, sd float64
	}{
		{"Loop", 60, 420, 120},
		{"Lincoln Park", 50, 700, 300},
		{"Hyde Park", 40, 650, 200},
		{"O'Hare", 20, 1800, 1200}, // long airport rides, wild variance
		{"Pullman", 20, 500, 150},
		{"Hegewisch", 10, 300, 700}, // tiny and noisy
	}
	dim := table.New("stations", table.Schema{
		{Name: "id", Kind: table.Int},
		{Name: "neighborhood", Kind: table.String},
	})
	type stationInfo struct{ mean, sd float64 }
	var info []stationInfo
	id := int64(0)
	for _, n := range neighborhoods {
		for s := 0; s < n.stations; s++ {
			id++
			if err := dim.AppendRow(id, n.name); err != nil {
				log.Fatal(err)
			}
			info = append(info, stationInfo{n.mean * (0.8 + 0.4*rng.Float64()), n.sd})
		}
	}

	// Fact: 300k trips referencing stations with Zipf popularity.
	fact := table.New("trips", table.Schema{
		{Name: "station", Kind: table.Int},
		{Name: "duration", Kind: table.Float},
	})
	fact.Grow(300000)
	for i := 0; i < 300000; i++ {
		s := int64(rng.Intn(int(id))) + 1
		st := info[s-1]
		d := st.mean + st.sd*rng.NormFloat64()
		if d < 60 {
			d = 60
		}
		if err := fact.AppendRow(s, d); err != nil {
			log.Fatal(err)
		}
	}

	// Denormalize once; sampling a joined view keeps Horvitz-Thompson
	// weights valid because each trip matches exactly one station.
	joined, dropped, err := table.Join(fact, "station", dim, "id", "station_")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined view: %d rows (%d dangling facts dropped)\n\n", joined.NumRows(), dropped)

	queries := []repro.QuerySpec{{
		GroupBy: []string{"station_neighborhood"},
		Aggs:    []repro.AggColumn{{Column: "duration"}},
	}}
	sample, err := repro.Build(joined, queries, repro.BudgetRate(joined, 0.01), repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}

	sql := "SELECT station_neighborhood, AVG(duration), COUNT(*) FROM trips_stations GROUP BY station_neighborhood ORDER BY AVG(duration) DESC"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(joined, q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := exec.RunWeighted(joined, q, sample.Rows, sample.Weights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %16s %10s\n", "neighborhood", "exact AVG", "approx AVG ±SE", "rel.err")
	exIdx := exact.Index()
	for _, row := range approx.Rows {
		want := exIdx[exec.KeyOf(row.Set, row.Key)]
		rel := math.Abs(row.Aggs[0]-want[0]) / want[0]
		fmt.Printf("%-14s %12.1f %10.1f ±%-5.1f %9.2f%%\n",
			row.Key[0], want[0], row.Aggs[0], row.SE[0], rel*100)
	}
	fmt.Println("\nThe 1% sample was stratified on a DIMENSION attribute the fact table")
	fmt.Println("doesn't even store — join first, then let CVOPT allocate. O'Hare's")
	fmt.Println("huge variance earns it a disproportionate share of the budget.")
}
