// Error budgeting with predicted CVs: before drawing a single row,
// CVOPT's statistics pass can forecast the coefficient of variation of
// every per-group estimate under a candidate budget (Chebyshev then
// bounds the relative-error tail, Section 1 of the paper). This example
// sizes a sample to meet a target worst-group CV, then verifies the
// forecast against realized errors.
//
//	go run ./examples/errorbudget
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/sqlparse"
)

func main() {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 300000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	queries := []repro.QuerySpec{{
		GroupBy: []string{"country"},
		Aggs:    []repro.AggColumn{{Column: "value"}},
	}}
	plan, err := repro.NewPlan(tbl, queries)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep budgets and report the predicted worst-group CV; pick the
	// smallest budget meeting the target.
	const targetCV = 0.10
	fmt.Printf("target: worst-group CV <= %.0f%%\n\n", targetCV*100)
	fmt.Printf("%10s %18s\n", "budget", "predicted max CV")
	chosen := 0
	for _, m := range []int{500, 1000, 2000, 4000, 8000, 16000, 32000, 64000} {
		alloc, err := plan.Allocate(m, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, e := range plan.PredictedCVs(alloc) {
			if e.CV > worst {
				worst = e.CV
			}
		}
		mark := ""
		if chosen == 0 && worst <= targetCV {
			chosen = m
			mark = "  <- smallest budget meeting the target"
		}
		fmt.Printf("%10d %17.2f%%%s\n", m, worst*100, mark)
	}
	if chosen == 0 {
		log.Fatal("no budget met the target")
	}

	// Draw the chosen sample and compare realized errors to the forecast.
	rng := rand.New(rand.NewSource(2))
	s, err := repro.Build(tbl, queries, chosen, repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	sql := "SELECT country, AVG(value) FROM OpenAQ GROUP BY country"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := exec.RunWeighted(tbl, q, s.Rows, s.Weights)
	if err != nil {
		log.Fatal(err)
	}
	var worstErr float64
	for _, row := range exact.Rows {
		est, ok := approx.Lookup(row.Set, row.Key)
		if !ok {
			continue
		}
		rel := math.Abs(est[0]-row.Aggs[0]) / math.Abs(row.Aggs[0])
		if rel > worstErr {
			worstErr = rel
		}
	}
	fmt.Printf("\ndrew %d rows; realized worst-group error %.2f%% (one draw;\n", s.Len(), worstErr*100)
	fmt.Printf("the CV bounds the error *distribution*: Pr[err > eps] <= (CV/eps)^2)\n")
}
