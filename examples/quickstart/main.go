// Quickstart: build a CVOPT sample over a small table and answer a
// group-by query approximately.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/table"
)

func main() {
	// A sales table with three regions of very different size, mean and
	// spread — the setting stratified sampling is built for.
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(7))
	add := func(region string, n int, mean, sd float64) {
		for i := 0; i < n; i++ {
			if err := tbl.AppendRow(region, mean+sd*rng.NormFloat64()); err != nil {
				log.Fatal(err)
			}
		}
	}
	add("NA", 50000, 120, 15)  // huge, calm
	add("EU", 8000, 95, 60)    // mid-sized, noisy
	add("APAC", 400, 480, 350) // tiny, wild

	// CVOPT: one group-by query to serve, 1% budget.
	queries := []repro.QuerySpec{{
		GroupBy: []string{"region"},
		Aggs:    []repro.AggColumn{{Column: "amount"}},
	}}
	m := repro.BudgetRate(tbl, 0.01)
	s, err := repro.Build(tbl, queries, m, repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled %d of %d rows (1%% budget)\n\n", s.Len(), tbl.NumRows())

	sql := "SELECT region, AVG(amount), COUNT(*) FROM sales GROUP BY region"
	exact, err := repro.Exact(tbl, sql)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := repro.Answer(tbl, s, sql)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %14s %14s %10s\n", "region", "exact AVG", "approx AVG", "rel.err")
	for _, row := range exact.Rows {
		est, ok := approx.Lookup(row.Set, row.Key)
		if !ok {
			fmt.Printf("%-8s %14.2f %14s\n", row.Key[0], row.Aggs[0], "(missing)")
			continue
		}
		relErr := 0.0
		if row.Aggs[0] != 0 {
			relErr = abs(est[0]-row.Aggs[0]) / abs(row.Aggs[0])
		}
		fmt.Printf("%-8s %14.2f %14.2f %9.2f%%\n", row.Key[0], row.Aggs[0], est[0], relErr*100)
	}
	fmt.Println("\nNote the tiny, high-variance APAC region: a uniform 1% sample")
	fmt.Println("would draw ~4 of its rows; CVOPT gives it the lion's share of the")
	fmt.Println("budget because its coefficient of variation dominates the objective.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
