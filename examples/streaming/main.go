// One-pass streaming CVOPT (the paper's future-work item (3)), in two
// acts.
//
// Act 1 — the primitive: when the data can only be scanned once — a
// live feed, a tape-speed log — the StreamSampler maintains per-stratum
// statistics and candidate reservoirs simultaneously, then applies the
// CVOPT allocation by subsampling. This part streams the synthetic
// OpenAQ rows once and compares the one-pass sample's accuracy against
// the classic two-pass sample.
//
// Act 2 — the subsystem: the serving registry turns the primitive into
// a *live table*. Register the table as streaming, append batches as
// they arrive, refresh to publish a new sample generation atomically
// (queries racing a refresh keep reading the previous complete
// generation), and watch the per-group CVs shrink as data accumulates
// under a rate budget. The same flow is available over HTTP via
// cmd/cvserve — see README.md next to this file.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func main() {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 200000, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	queries := []repro.QuerySpec{{
		GroupBy: []string{"country", "parameter"},
		Aggs:    []repro.AggColumn{{Column: "value"}},
	}}
	const m = 2000 // 1% budget

	// ---- Act 1: one pass vs two passes over the same frozen data ----

	// One pass: statistics + reservoirs together. The reservoir capacity
	// is the memory knob; with capacity = M the result matches two-pass
	// CVOPT exactly, smaller capacities clip heavy strata.
	rng := rand.New(rand.NewSource(1))
	stream, err := core.NewStreamSampler(queries, 64, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.StreamTable(stream, tbl); err != nil {
		log.Fatal(err)
	}
	ss, err := stream.Finalize(m, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sRows, sWeights := core.RowWeights(ss)
	fmt.Printf("one-pass:  %d strata discovered on the fly, %d rows sampled (cap 64/stratum)\n",
		stream.NumStrata(), len(sRows))

	// Two passes for reference.
	twoPass, err := repro.Build(tbl, queries, m, repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-pass:  %d rows sampled\n\n", twoPass.Len())

	sql := "SELECT country, parameter, AVG(value) FROM OpenAQ GROUP BY country, parameter"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		rows    []int32
		weights []float64
	}{
		{"one-pass (stream)", sRows, sWeights},
		{"two-pass (classic)", twoPass.Rows, twoPass.Weights},
	} {
		approx, err := exec.RunWeighted(tbl, q, c.rows, c.weights)
		if err != nil {
			log.Fatal(err)
		}
		sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
		fmt.Printf("%-20s mean err %6.2f%%   median %6.2f%%   max %6.2f%%\n",
			c.name, sum.Mean*100, sum.Median*100, sum.Max*100)
	}
	fmt.Println("\nThe single scan pays only a reservoir-capacity clipping penalty;")
	fmt.Println("with capacity >= the largest allocation the two variants coincide.")

	// ---- Act 2: a live table in the serving registry ----

	fmt.Println("\n=== live table: append -> refresh -> query ===")
	reg := repro.NewRegistry()
	defer reg.Close()

	// the first quarter of the feed seeds the stream; the rest arrives
	// later in batches
	const seedRows = 50000
	seedIdx := make([]int, seedRows)
	for i := range seedIdx {
		seedIdx[i] = i
	}
	if err := reg.RegisterStreamingTable(tbl.Select(seedIdx), repro.StreamConfig{
		Queries: queries,
		Rate:    0.01, // 1% of *current* rows: the sample grows with the stream
		Seed:    7,
	}); err != nil {
		log.Fatal(err)
	}

	report := func() {
		ans, err := reg.Query(context.Background(), sql, repro.QueryOptions{Mode: repro.ModeSample})
		if err != nil {
			log.Fatal(err)
		}
		var cv, worst float64
		n := 0
		for _, row := range ans.Result.Rows {
			if row.SE == nil || row.Aggs[0] == 0 {
				continue
			}
			c := row.SE[0] / row.Aggs[0]
			cv += c
			if c > worst {
				worst = c
			}
			n++
		}
		st, _ := reg.StreamStatus("OpenAQ")
		fmt.Printf("gen %d: %6d rows ingested, %4d sampled -> mean CV %5.2f%%, worst group %5.2f%% (%d groups)\n",
			st.Generation, st.Rows, ans.Entry.Sample.Len(), cv/float64(n)*100, worst*100, n)
	}
	report()

	for batch := 0; batch < 3; batch++ {
		start := seedRows + batch*seedRows
		rows := make([][]any, 0, seedRows)
		for r := start; r < start+seedRows; r++ {
			rows = append(rows, rowValues(tbl, r))
		}
		if _, err := reg.Append("OpenAQ", rows); err != nil {
			log.Fatal(err)
		}
		if _, err := reg.Refresh("OpenAQ"); err != nil {
			log.Fatal(err)
		}
		report()
	}
	fmt.Println("\nEach refresh publishes a complete (snapshot, sample) generation")
	fmt.Println("atomically; under the rate budget the per-group CVs shrink as the")
	fmt.Println("stream accumulates. Over HTTP the same flow is POST /v1/tables/")
	fmt.Println("{name}/stream, .../rows and .../refresh against cmd/cvserve.")
}

// rowValues converts one table row into the loosely-typed row shape
// Append ingests (what a JSON client would send).
func rowValues(tbl *table.Table, r int) []any {
	out := make([]any, tbl.NumCols())
	for i, c := range tbl.Columns {
		switch c.Spec.Kind {
		case table.String:
			out[i] = c.StringAt(r)
		case table.Float:
			out[i] = c.Float[r]
		case table.Int:
			out[i] = c.Int[r]
		}
	}
	return out
}
