// One-pass streaming CVOPT (the paper's future-work item (3)): when the
// data can only be scanned once — a live feed, a tape-speed log — the
// StreamSampler maintains per-stratum statistics and candidate
// reservoirs simultaneously, then applies the CVOPT allocation by
// subsampling. This example streams the synthetic OpenAQ rows once and
// compares the one-pass sample's accuracy against the classic two-pass
// sample.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
)

func main() {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 200000, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	queries := []repro.QuerySpec{{
		GroupBy: []string{"country", "parameter"},
		Aggs:    []repro.AggColumn{{Column: "value"}},
	}}
	const m = 2000 // 1% budget

	// One pass: statistics + reservoirs together. The reservoir capacity
	// is the memory knob; with capacity = M the result matches two-pass
	// CVOPT exactly, smaller capacities clip heavy strata.
	rng := rand.New(rand.NewSource(1))
	stream, err := core.NewStreamSampler(queries, 64, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.StreamTable(stream, tbl); err != nil {
		log.Fatal(err)
	}
	ss, err := stream.Finalize(m, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sRows, sWeights := core.RowWeights(ss)
	fmt.Printf("one-pass:  %d strata discovered on the fly, %d rows sampled (cap 64/stratum)\n",
		stream.NumStrata(), len(sRows))

	// Two passes for reference.
	twoPass, err := repro.Build(tbl, queries, m, repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-pass:  %d rows sampled\n\n", twoPass.Len())

	sql := "SELECT country, parameter, AVG(value) FROM OpenAQ GROUP BY country, parameter"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		rows    []int32
		weights []float64
	}{
		{"one-pass (stream)", sRows, sWeights},
		{"two-pass (classic)", twoPass.Rows, twoPass.Weights},
	} {
		approx, err := exec.RunWeighted(tbl, q, c.rows, c.weights)
		if err != nil {
			log.Fatal(err)
		}
		sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
		fmt.Printf("%-20s mean err %6.2f%%   median %6.2f%%   max %6.2f%%\n",
			c.name, sum.Mean*100, sum.Median*100, sum.Max*100)
	}
	fmt.Println("\nThe single scan pays only a reservoir-capacity clipping penalty;")
	fmt.Println("with capacity >= the largest allocation the two variants coincide.")
}
