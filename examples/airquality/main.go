// Air-quality scenario (the paper's OpenAQ workload): build one
// materialized 1% sample over the synthetic OpenAQ table and compare
// CVOPT against Uniform, Congressional sampling and RL on the SASG query
// AQ3 — average measurement per (country, parameter, unit) — including
// reuse of the same sample under a runtime predicate the sample was not
// optimized for.
//
//	go run ./examples/airquality
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
)

func main() {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 300000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic OpenAQ: %d rows, %d countries, %d parameters\n\n",
		tbl.NumRows(), tbl.Column("country").Dict.Len(), tbl.Column("parameter").Dict.Len())

	specs := []core.QuerySpec{{
		GroupBy: []string{"country", "parameter", "unit"},
		Aggs:    []core.AggColumn{{Column: "value"}},
	}}
	queries := map[string]string{
		"AQ3 (full)":          "SELECT country, parameter, unit, AVG(value) FROM OpenAQ GROUP BY country, parameter, unit",
		"AQ3.a (hour < 6)":    "SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 5 GROUP BY country, parameter, unit",
		"AQ5 (lat > 0)":       "SELECT country, parameter, unit, AVG(value) AS average FROM OpenAQ WHERE latitude > 0 GROUP BY country, parameter, unit",
		"AQ6 (VN, new group)": "SELECT parameter, unit, COUNT_IF(value > 0.5) AS count FROM OpenAQ WHERE country = 'VN' GROUP BY parameter, unit",
	}

	methods := []samplers.Sampler{
		samplers.Uniform{}, samplers.Congress{}, samplers.RL{}, &samplers.CVOPT{},
	}
	m := tbl.NumRows() / 100 // 1%

	// one materialized sample per method, reused across all queries
	built := map[string]*samplers.RowSample{}
	for _, s := range methods {
		rng := rand.New(rand.NewSource(99))
		rs, err := s.Build(tbl, specs, m, rng)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		built[s.Name()] = rs
	}

	fmt.Printf("%-22s", "query")
	for _, s := range methods {
		fmt.Printf(" %12s", s.Name())
	}
	fmt.Println("  (max group error)")
	for label, sql := range queries {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := exec.Run(tbl, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s", label)
		for _, s := range methods {
			rs := built[s.Name()]
			approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
			if err != nil {
				log.Fatal(err)
			}
			sum := metrics.Summarize(metrics.GroupErrors(exact, approx))
			fmt.Printf(" %11.1f%%", sum.Max*100)
		}
		fmt.Println()
	}
	fmt.Println("\nThe same materialized sample answers every query — predicates and")
	fmt.Println("even new group-by attribute sets are applied at query time (Sec 6.3).")
}
