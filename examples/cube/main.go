// CUBE queries (Section 4.1 / Figure 5): one CVOPT sample jointly
// optimized for every grouping set of GROUP BY country, parameter WITH
// CUBE, answering all four groupings of AQ7 from the same sample.
//
//	go run ./examples/cube
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
)

func main() {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 250000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// One QuerySpec per grouping set: (country,parameter), (country),
	// (parameter). The sampler stratifies on the union and jointly
	// optimizes the l2 norm over all groupings' CVs.
	specs := repro.CubeQueries([]string{"country", "parameter"},
		[]repro.AggColumn{{Column: "value"}})
	fmt.Printf("cube over (country, parameter): %d grouping-set query specs\n", len(specs))

	rng := rand.New(rand.NewSource(4))
	s, err := repro.Build(tbl, specs, repro.BudgetRate(tbl, 0.01), repro.Options{}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized %d rows (1%%)\n\n", s.Len())

	sql := "SELECT country, parameter, SUM(value) FROM OpenAQ GROUP BY country, parameter WITH CUBE"
	q, err := sqlparse.Parse(sql)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := exec.RunWeighted(tbl, q, s.Rows, s.Weights)
	if err != nil {
		log.Fatal(err)
	}

	// errors per grouping set
	fmt.Printf("%-24s %8s %12s %12s\n", "grouping set", "groups", "mean err", "max err")
	for setIdx, attrs := range exact.Sets {
		var exSet, apSet exec.Result
		for _, r := range exact.Rows {
			if r.Set == setIdx {
				exSet.Rows = append(exSet.Rows, r)
			}
		}
		for _, r := range approx.Rows {
			if r.Set == setIdx {
				apSet.Rows = append(apSet.Rows, r)
			}
		}
		sum := metrics.Summarize(metrics.GroupErrors(&exSet, &apSet))
		label := "(" + strings.Join(attrs, ", ") + ")"
		if len(attrs) == 0 {
			label = "() grand total"
		}
		fmt.Printf("%-24s %8d %11.2f%% %11.2f%%\n", label, sum.N, sum.Mean*100, sum.Max*100)
	}
	fmt.Println("\nAll grouping sets — including ones the paper's CS heuristic would")
	fmt.Println("trade off — are served by the single jointly-optimized sample.")
}
