// Package exec evaluates the SQL subset of internal/sqlparse against the
// columnar tables of internal/table. It is the stand-in for the paper's
// Hive query processing: Run computes exact answers over the full table
// (the ground truth of Section 6), and RunWeighted computes approximate
// answers over a weighted row sample, where each sampled row carries a
// Horvitz-Thompson weight (n_c/s_c for stratified samples) so that
// weighted aggregates are unbiased estimates. GROUP BY ... WITH CUBE
// expands into all grouping sets.
package exec

import (
	"fmt"
	"math"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

// valueKind discriminates runtime values.
type valueKind uint8

const (
	numVal valueKind = iota
	strVal
	boolVal
)

// value is a runtime scalar.
type value struct {
	kind valueKind
	num  float64
	str  string
	b    bool
}

func (v value) truthy() bool {
	switch v.kind {
	case boolVal:
		return v.b
	case numVal:
		return v.num != 0
	default:
		return v.str != ""
	}
}

// scalarFn evaluates a compiled scalar expression for one row.
type scalarFn func(row int) value

// compileScalar turns an expression into a closure over row ids. It
// rejects aggregate calls (those are handled by the grouping layer).
func compileScalar(tbl *table.Table, e sqlparse.Expr) (scalarFn, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		v := value{kind: numVal, num: n.Value}
		return func(int) value { return v }, nil

	case *sqlparse.StringLit:
		v := value{kind: strVal, str: n.Value}
		return func(int) value { return v }, nil

	case *sqlparse.ColumnRef:
		col := tbl.Column(n.Name)
		if col == nil {
			return nil, fmt.Errorf("exec: unknown column %q", n.Name)
		}
		switch col.Spec.Kind {
		case table.String:
			return func(r int) value { return value{kind: strVal, str: col.Dict.Value(col.Str[r])} }, nil
		case table.Float:
			return func(r int) value { return value{kind: numVal, num: col.Float[r]} }, nil
		default: // Int
			return func(r int) value { return value{kind: numVal, num: float64(col.Int[r])} }, nil
		}

	case *sqlparse.UnaryExpr:
		inner, err := compileScalar(tbl, n.Expr)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "-":
			return func(r int) value {
				v := inner(r)
				return value{kind: numVal, num: -v.num}
			}, nil
		case "NOT":
			return func(r int) value {
				return value{kind: boolVal, b: !inner(r).truthy()}
			}, nil
		}
		return nil, fmt.Errorf("exec: unknown unary operator %q", n.Op)

	case *sqlparse.BinaryExpr:
		left, err := compileScalar(tbl, n.Left)
		if err != nil {
			return nil, err
		}
		right, err := compileScalar(tbl, n.Right)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "+", "-", "*", "/":
			op := n.Op
			return func(r int) value {
				a, b := left(r).num, right(r).num
				var out float64
				switch op {
				case "+":
					out = a + b
				case "-":
					out = a - b
				case "*":
					out = a * b
				case "/":
					if b == 0 {
						out = math.NaN()
					} else {
						out = a / b
					}
				}
				return value{kind: numVal, num: out}
			}, nil
		case "=", "!=", "<", "<=", ">", ">=":
			op := n.Op
			return func(r int) value {
				return value{kind: boolVal, b: compare(left(r), right(r), op)}
			}, nil
		case "AND":
			return func(r int) value {
				return value{kind: boolVal, b: left(r).truthy() && right(r).truthy()}
			}, nil
		case "OR":
			return func(r int) value {
				return value{kind: boolVal, b: left(r).truthy() || right(r).truthy()}
			}, nil
		}
		return nil, fmt.Errorf("exec: unknown operator %q", n.Op)

	case *sqlparse.BetweenExpr:
		x, err := compileScalar(tbl, n.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := compileScalar(tbl, n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := compileScalar(tbl, n.Hi)
		if err != nil {
			return nil, err
		}
		return func(r int) value {
			v := x(r)
			return value{kind: boolVal, b: compare(v, lo(r), ">=") && compare(v, hi(r), "<=")}
		}, nil

	case *sqlparse.InExpr:
		x, err := compileScalar(tbl, n.Expr)
		if err != nil {
			return nil, err
		}
		items := make([]scalarFn, len(n.Items))
		for i, it := range n.Items {
			f, err := compileScalar(tbl, it)
			if err != nil {
				return nil, err
			}
			items[i] = f
		}
		return func(r int) value {
			v := x(r)
			for _, f := range items {
				if compare(v, f(r), "=") {
					return value{kind: boolVal, b: true}
				}
			}
			return value{kind: boolVal, b: false}
		}, nil

	case *sqlparse.FuncCall:
		if sqlparse.AggFuncs[n.Name] {
			return nil, fmt.Errorf("exec: aggregate %s not allowed in scalar context", n.Name)
		}
		switch n.Name {
		case "IF":
			if len(n.Args) != 3 {
				return nil, fmt.Errorf("exec: IF takes 3 arguments, got %d", len(n.Args))
			}
			cond, err := compileScalar(tbl, n.Args[0])
			if err != nil {
				return nil, err
			}
			a, err := compileScalar(tbl, n.Args[1])
			if err != nil {
				return nil, err
			}
			b, err := compileScalar(tbl, n.Args[2])
			if err != nil {
				return nil, err
			}
			return func(r int) value {
				if cond(r).truthy() {
					return a(r)
				}
				return b(r)
			}, nil
		case "ABS":
			if len(n.Args) != 1 {
				return nil, fmt.Errorf("exec: ABS takes 1 argument")
			}
			a, err := compileScalar(tbl, n.Args[0])
			if err != nil {
				return nil, err
			}
			return func(r int) value {
				return value{kind: numVal, num: math.Abs(a(r).num)}
			}, nil
		}
		return nil, fmt.Errorf("exec: unknown function %s", n.Name)
	}
	return nil, fmt.Errorf("exec: unsupported expression %T", e)
}

// compare applies a comparison operator across value kinds: strings
// compare lexicographically with strings, everything else numerically.
func compare(a, b value, op string) bool {
	if a.kind == strVal && b.kind == strVal {
		switch op {
		case "=":
			return a.str == b.str
		case "!=":
			return a.str != b.str
		case "<":
			return a.str < b.str
		case "<=":
			return a.str <= b.str
		case ">":
			return a.str > b.str
		case ">=":
			return a.str >= b.str
		}
		return false
	}
	x, y := a.asNum(), b.asNum()
	switch op {
	case "=":
		return x == y
	case "!=":
		return x != y
	case "<":
		return x < y
	case "<=":
		return x <= y
	case ">":
		return x > y
	case ">=":
		return x >= y
	}
	return false
}

func (v value) asNum() float64 {
	switch v.kind {
	case numVal:
		return v.num
	case boolVal:
		if v.b {
			return 1
		}
		return 0
	default:
		return math.NaN()
	}
}
