package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

// TestRunVarianceAggregates covers the Section 5 extension: per-group
// VAR and STDDEV evaluated exactly and from weighted samples.
func TestRunVarianceAggregates(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, VAR(v), STDDEV(v) FROM t GROUP BY g")
	// group a: values 1,3,5 -> mean 3, population variance 8/3
	got, ok := res.Lookup(0, []string{"a"})
	if !ok {
		t.Fatal("group a missing")
	}
	if math.Abs(got[0]-8.0/3) > 1e-12 {
		t.Fatalf("VAR(a) = %v want %v", got[0], 8.0/3)
	}
	if math.Abs(got[1]-math.Sqrt(8.0/3)) > 1e-12 {
		t.Fatalf("STDDEV(a) = %v", got[1])
	}
	// single-row group c: variance 0
	got, _ = res.Lookup(0, []string{"c"})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("VAR of singleton should be 0: %v", got)
	}
}

func TestVarianceWeightedEstimate(t *testing.T) {
	// a weighted half-sample still estimates variance approximately
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 4000; i++ {
		if err := tbl.AppendRow("g", 100+rng.NormFloat64()*20); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sqlparse.Parse("SELECT g, VAR(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, 0, 2000)
	weights := make([]float64, 0, 2000)
	for i := 0; i < tbl.NumRows(); i += 2 {
		rows = append(rows, int32(i))
		weights = append(weights, 2)
	}
	approx, err := RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	want := exact.Rows[0].Aggs[0]
	got := approx.Rows[0].Aggs[0]
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("weighted VAR = %v vs exact %v", got, want)
	}
}

func TestVarianceNeverNegative(t *testing.T) {
	// large offsets provoke catastrophic cancellation in the naive
	// sum-of-squares; the result must be clamped at 0, never negative
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow("g", 1e9); err != nil {
			t.Fatal(err)
		}
	}
	res := run(t, tbl, "SELECT g, VAR(v) FROM t GROUP BY g")
	if res.Rows[0].Aggs[0] < 0 {
		t.Fatalf("variance negative: %v", res.Rows[0].Aggs[0])
	}
}
