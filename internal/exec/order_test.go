package exec

import (
	"math"
	"testing"

	"repro/internal/sqlparse"
)

func TestHavingFiltersGroups(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 5")
	// sums: a=9, b=60, c=-2 -> a and b survive
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d want 2: %+v", len(res.Rows), res.Rows)
	}
	if _, ok := res.Lookup(0, []string{"c"}); ok {
		t.Fatalf("group c should be filtered by HAVING")
	}
}

func TestHavingBooleanCombinations(t *testing.T) {
	tbl := testTable(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 5 AND COUNT(*) >= 3", 2},
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) > 50 OR SUM(v) < 0", 2}, // b and c
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING NOT SUM(v) > 5", 1},            // c
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) BETWEEN 0 AND 10", 1},   // a
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING AVG(v) != 3", 2},               // b, c
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING COUNT(*) = 1", 1},              // c
		{"SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) <= -2", 1},              // c
	}
	for _, c := range cases {
		res := run(t, tbl, c.sql)
		if len(res.Rows) != c.want {
			t.Fatalf("%q returned %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestHavingErrors(t *testing.T) {
	tbl := testTable(t)
	bad := []string{
		"SELECT g, SUM(v) FROM t GROUP BY g HAVING g = 'a'",    // plain column
		"SELECT g, SUM(v) FROM t GROUP BY g HAVING SUM(v) + 1", // not boolean
		"SELECT g, SUM(v) FROM t GROUP BY g HAVING v > 1",      // ungrouped scalar
	}
	for _, sql := range bad {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Run(tbl, q); err == nil {
			t.Fatalf("Run(%q) should fail", sql)
		}
	}
}

func TestOrderByAggregate(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC")
	want := []string{"b", "a", "c"} // 60, 9, -2
	for i, w := range want {
		if res.Rows[i].Key[0] != w {
			t.Fatalf("row %d = %s want %s (rows %+v)", i, res.Rows[i].Key[0], w, res.Rows)
		}
	}
	// by rendered expression, ascending
	res = run(t, tbl, "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY SUM(v)")
	want = []string{"c", "a", "b"}
	for i, w := range want {
		if res.Rows[i].Key[0] != w {
			t.Fatalf("asc row %d = %s want %s", i, res.Rows[i].Key[0], w)
		}
	}
}

func TestOrderByGroupColumn(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g DESC")
	want := []string{"c", "b", "a"}
	for i, w := range want {
		if res.Rows[i].Key[0] != w {
			t.Fatalf("row %d = %s want %s", i, res.Rows[i].Key[0], w)
		}
	}
	// numeric group column sorts numerically, not lexically
	res = run(t, tbl, "SELECT year, COUNT(*) FROM t GROUP BY year ORDER BY year")
	if res.Rows[0].Key[0] != "2019" || res.Rows[1].Key[0] != "2020" {
		t.Fatalf("numeric order wrong: %+v", res.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, h, SUM(v) FROM t GROUP BY g, h ORDER BY h, SUM(v) DESC")
	// h ascending groups x before y; within h, larger sums first
	if res.Rows[0].Key[1] != "x" {
		t.Fatalf("first row should have h=x: %+v", res.Rows[0])
	}
	lastX := -1
	for i, r := range res.Rows {
		if r.Key[1] == "x" {
			if lastX >= 0 && i != lastX+1 {
				t.Fatalf("x rows not contiguous")
			}
			lastX = i
		}
	}
	// within the x block, sums descending: b/x=10, a/x=4, c/x=-2
	if res.Rows[0].Key[0] != "b" || res.Rows[1].Key[0] != "a" || res.Rows[2].Key[0] != "c" {
		t.Fatalf("within-h ordering wrong: %+v", res.Rows[:3])
	}
}

func TestLimit(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d want 2", len(res.Rows))
	}
	if res.Rows[0].Key[0] != "b" || res.Rows[1].Key[0] != "a" {
		t.Fatalf("top-2 wrong: %+v", res.Rows)
	}
	// limit without order: applies to natural order
	res = run(t, tbl, "SELECT g, SUM(v) FROM t GROUP BY g LIMIT 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d want 1", len(res.Rows))
	}
}

func TestOrderByWithCube(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, h, SUM(v) FROM t GROUP BY g, h WITH CUBE ORDER BY SUM(v) DESC LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// grand total (67) is the largest sum in the cube
	if len(res.Sets[res.Rows[0].Set]) != 0 {
		t.Fatalf("grand total should sort first: %+v", res.Rows[0])
	}
	if res.Rows[0].Aggs[0] != 67 {
		t.Fatalf("grand total = %v", res.Rows[0].Aggs[0])
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Aggs[0] > res.Rows[i-1].Aggs[0] {
			t.Fatalf("descending order violated")
		}
	}
}

func TestOrderByNaNSortsLast(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) / COUNT_IF(v > 25) AS ratio FROM t GROUP BY g ORDER BY ratio")
	// groups a and c divide by zero -> NaN, must sort after b in both directions
	if math.IsNaN(res.Rows[0].Aggs[0]) {
		t.Fatalf("NaN sorted first ascending: %+v", res.Rows)
	}
	res = run(t, tbl, "SELECT g, SUM(v) / COUNT_IF(v > 25) AS ratio FROM t GROUP BY g ORDER BY ratio DESC")
	if math.IsNaN(res.Rows[0].Aggs[0]) {
		t.Fatalf("NaN sorted first descending: %+v", res.Rows)
	}
}

func TestOrderByErrors(t *testing.T) {
	tbl := testTable(t)
	bad := []string{
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER BY zz",
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER BY AVG(v)", // not an output
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER BY h",      // ungrouped column
	}
	for _, sql := range bad {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := Run(tbl, q); err == nil {
			t.Fatalf("Run(%q) should fail", sql)
		}
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER g",
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER BY",
		"SELECT g, SUM(v) FROM t GROUP BY g LIMIT",
		"SELECT g, SUM(v) FROM t GROUP BY g LIMIT x",
		"SELECT g, SUM(v) FROM t GROUP BY g LIMIT 0",
		"SELECT g, SUM(v) FROM t GROUP BY g HAVING",
	}
	for _, sql := range bad {
		if _, err := sqlparse.Parse(sql); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}

func TestQueryStringWithNewClauses(t *testing.T) {
	src := "SELECT g, SUM(v) AS total FROM t GROUP BY g HAVING SUM(v) > 1 ORDER BY total DESC, g LIMIT 5"
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	round, err := sqlparse.Parse(q.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", q.String(), err)
	}
	if round.String() != q.String() {
		t.Fatalf("unstable render:\n%s\n%s", q.String(), round.String())
	}
	if q.Limit != 5 || len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("clauses misparsed: %+v", q)
	}
}

// Approximate top-k: ORDER BY + LIMIT over a weighted sample returns the
// same top groups as the exact engine when the sample is decent.
func TestApproximateTopK(t *testing.T) {
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, tbl.NumRows())
	weights := make([]float64, tbl.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		weights[i] = 1
	}
	res, err := RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0] != "b" {
		t.Fatalf("approximate top-1 wrong: %+v", res.Rows)
	}
}
