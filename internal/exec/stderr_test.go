package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

func TestExactRunHasNoSE(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, AVG(v) FROM t GROUP BY g")
	for _, row := range res.Rows {
		if row.SE != nil {
			t.Fatalf("exact answers must not report SEs: %+v", row)
		}
	}
}

func TestWeightedRunReportsSE(t *testing.T) {
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, AVG(v), SUM(v), COUNT(*), COUNT_IF(v > 2), SUM(v) / COUNT(*), MIN(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, tbl.NumRows())
	weights := make([]float64, tbl.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		weights[i] = 1
	}
	res, err := RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if len(row.SE) != 6 {
			t.Fatalf("SE arity = %d", len(row.SE))
		}
		// unit weights mean the sample IS the population: the finite-
		// population correction zeroes every reportable SE
		for i := 0; i <= 3; i++ {
			if row.SE[i] != 0 {
				t.Fatalf("unit-weight SE should be 0, got %v at %d", row.SE[i], i)
			}
		}
		// arithmetic combination and MIN have no SE
		if !math.IsNaN(row.SE[4]) || !math.IsNaN(row.SE[5]) {
			t.Fatalf("combined/min outputs should have NaN SE: %v", row.SE)
		}
	}
}

// The reported SE must forecast the actual sampling spread: over many
// independent samples, the realized standard deviation of the AVG
// estimate should match the average reported SE within a modest factor.
func TestSEForecastsSamplingSpread(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(33))
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow("g", 100+rng.NormFloat64()*25); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sqlparse.Parse("SELECT g, AVG(v), SUM(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	const k, reps = 250, 120
	var estimates, sums []float64
	var seAvgTotal, seSumTotal float64
	for rep := 0; rep < reps; rep++ {
		idx := rng.Perm(n)[:k]
		rows := make([]int32, k)
		weights := make([]float64, k)
		for i, p := range idx {
			rows[i] = int32(p)
			weights[i] = float64(n) / float64(k)
		}
		res, err := RunWeighted(tbl, q, rows, weights)
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, res.Rows[0].Aggs[0])
		sums = append(sums, res.Rows[0].Aggs[1])
		seAvgTotal += res.Rows[0].SE[0]
		seSumTotal += res.Rows[0].SE[1]
	}
	sd := func(xs []float64) float64 {
		var m float64
		for _, x := range xs {
			m += x
		}
		m /= float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		return math.Sqrt(ss / float64(len(xs)))
	}
	realizedAvgSD := sd(estimates)
	meanSEAvg := seAvgTotal / reps
	if realizedAvgSD > meanSEAvg*1.6 || realizedAvgSD < meanSEAvg/1.6 {
		t.Fatalf("AVG: realized spread %v vs reported SE %v", realizedAvgSD, meanSEAvg)
	}
	realizedSumSD := sd(sums)
	meanSESum := seSumTotal / reps
	if realizedSumSD > meanSESum*1.6 || realizedSumSD < meanSESum/1.6 {
		t.Fatalf("SUM: realized spread %v vs reported SE %v", realizedSumSD, meanSESum)
	}
}

func TestSEScalesWithSampleSize(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(44))
	const n = 4000
	for i := 0; i < n; i++ {
		if err := tbl.AppendRow("g", 50+rng.NormFloat64()*10); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	seAt := func(k int) float64 {
		idx := rng.Perm(n)[:k]
		rows := make([]int32, k)
		weights := make([]float64, k)
		for i, p := range idx {
			rows[i] = int32(p)
			weights[i] = float64(n) / float64(k)
		}
		res, err := RunWeighted(tbl, q, rows, weights)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0].SE[0]
	}
	se100, se1600 := seAt(100), seAt(1600)
	// quadrupling sqrt(k) ratio: SE should shrink ~4x
	ratio := se100 / se1600
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("SE(100)/SE(1600) = %v, want ~4", ratio)
	}
}
