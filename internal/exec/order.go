package exec

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/sqlparse"
)

// havingFn evaluates a HAVING predicate for one group given the
// finalized aggregate-site values.
type havingFn func(siteVals []float64) bool

// compileHaving compiles a HAVING expression: boolean combinations of
// comparisons between aggregate expressions and numeric literals.
// References to plain columns are rejected (standard SQL would allow
// grouped columns; restricting to aggregates keeps the surface the
// paper's workloads need while staying unambiguous under CUBE, where a
// grouped column is absent from some grouping sets).
func (c *compiledQuery) compileHaving(e sqlparse.Expr) (havingFn, error) {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			left, err := c.compileHaving(n.Left)
			if err != nil {
				return nil, err
			}
			right, err := c.compileHaving(n.Right)
			if err != nil {
				return nil, err
			}
			if n.Op == "AND" {
				return func(v []float64) bool { return left(v) && right(v) }, nil
			}
			return func(v []float64) bool { return left(v) || right(v) }, nil
		case "=", "!=", "<", "<=", ">", ">=":
			left, err := c.compileAggItem(n.Left)
			if err != nil {
				return nil, err
			}
			right, err := c.compileAggItem(n.Right)
			if err != nil {
				return nil, err
			}
			op := n.Op
			return func(v []float64) bool {
				a, b := left(v), right(v)
				switch op {
				case "=":
					return a == b
				case "!=":
					return a != b
				case "<":
					return a < b
				case "<=":
					return a <= b
				case ">":
					return a > b
				default:
					return a >= b
				}
			}, nil
		}
		return nil, fmt.Errorf("exec: operator %q not supported in HAVING", n.Op)
	case *sqlparse.UnaryExpr:
		if n.Op != "NOT" {
			return nil, fmt.Errorf("exec: operator %q not supported in HAVING", n.Op)
		}
		inner, err := c.compileHaving(n.Expr)
		if err != nil {
			return nil, err
		}
		return func(v []float64) bool { return !inner(v) }, nil
	case *sqlparse.BetweenExpr:
		x, err := c.compileAggItem(n.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := c.compileAggItem(n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := c.compileAggItem(n.Hi)
		if err != nil {
			return nil, err
		}
		return func(v []float64) bool {
			val := x(v)
			return val >= lo(v) && val <= hi(v)
		}, nil
	}
	return nil, fmt.Errorf("exec: HAVING must be a boolean expression over aggregates, got %T", e)
}

// OrderSpec is one resolved ORDER BY key. Exported (with opaque fields)
// so the planned executor (internal/plan) shares the interpreter's exact
// ordering semantics: both resolve via ResolveOrderBy and sort via
// ApplyOrderAndLimit, so the two engines cannot drift on tie-breaking,
// NaN placement or numeric-vs-string ordering.
type OrderSpec struct {
	aggIdx int    // >= 0: sort by Aggs[aggIdx]
	attr   string // when aggIdx < 0: sort by this group attribute
	desc   bool
}

// ResolveOrderBy matches ORDER BY items against the query's outputs: a
// plain column must be a group-by attribute; anything else must match a
// select item by alias or by rendered expression.
func ResolveOrderBy(q *sqlparse.Query) ([]OrderSpec, error) {
	var specs []OrderSpec
	for _, item := range q.OrderBy {
		spec := OrderSpec{aggIdx: -1, desc: item.Desc}
		if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
			matched := false
			for _, g := range q.GroupBy {
				if g == ref.Name {
					spec.attr = g
					matched = true
					break
				}
			}
			if !matched {
				// an alias of an aggregate select item?
				for i, sel := range q.Select {
					if sel.Alias == ref.Name && sqlparse.HasAggregate(sel.Expr) {
						spec.aggIdx = aggIndexOf(q, i)
						matched = spec.aggIdx >= 0
						break
					}
				}
			}
			if !matched {
				return nil, fmt.Errorf("exec: ORDER BY %q matches no group-by column or output alias", ref.Name)
			}
		} else {
			rendered := item.Expr.String()
			found := -1
			for i, sel := range q.Select {
				if sqlparse.HasAggregate(sel.Expr) && sel.Expr.String() == rendered {
					found = aggIndexOf(q, i)
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("exec: ORDER BY expression %q does not match any output", rendered)
			}
			spec.aggIdx = found
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// aggIndexOf converts a select-item index into its position among the
// aggregate outputs (plain grouped columns are not output aggregates).
func aggIndexOf(q *sqlparse.Query, selIdx int) int {
	agg := 0
	for i, sel := range q.Select {
		if _, ok := sel.Expr.(*sqlparse.ColumnRef); ok {
			continue
		}
		if i == selIdx {
			return agg
		}
		agg++
	}
	return -1
}

// ApplyOrderAndLimit sorts result rows by the resolved keys (stable,
// ties broken by grouping set then key) and truncates to the limit.
func ApplyOrderAndLimit(res *Result, specs []OrderSpec, limit int) {
	if len(specs) > 0 {
		attrPos := make([]map[string]int, len(res.Sets))
		for si, set := range res.Sets {
			attrPos[si] = make(map[string]int, len(set))
			for i, a := range set {
				attrPos[si][a] = i
			}
		}
		keyOf := func(r *Row, s OrderSpec) (num float64, str string, isNum bool) {
			if s.aggIdx >= 0 {
				return r.Aggs[s.aggIdx], "", true
			}
			pos, ok := attrPos[r.Set][s.attr]
			if !ok {
				return 0, "", false // attribute collapsed in this grouping set
			}
			v := r.Key[pos]
			if f, err := strconv.ParseFloat(v, 64); err == nil {
				return f, "", true
			}
			return 0, v, false
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			a, b := &res.Rows[i], &res.Rows[j]
			for _, s := range specs {
				an, as, aNum := keyOf(a, s)
				bn, bs, bNum := keyOf(b, s)
				var less, eq bool
				switch {
				case aNum && bNum:
					// NaNs sort last regardless of direction
					switch {
					case math.IsNaN(an) && math.IsNaN(bn):
						eq = true
					case math.IsNaN(an):
						return false
					case math.IsNaN(bn):
						return true
					default:
						less, eq = an < bn, an == bn
					}
				case !aNum && !bNum:
					less, eq = as < bs, as == bs
				default:
					// numeric values sort before strings
					less, eq = aNum, false
				}
				if eq {
					continue
				}
				if s.desc {
					return !less
				}
				return less
			}
			return false
		})
	}
	if limit > 0 && len(res.Rows) > limit {
		res.Rows = res.Rows[:limit]
	}
}
