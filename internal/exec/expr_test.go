package exec

import (
	"math"
	"testing"

	"repro/internal/sqlparse"
)

// compileExpr is a test helper binding a WHERE expression string to the
// shared test table of run_test.go.
func compileExpr(t *testing.T, expr string) scalarFn {
	t.Helper()
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t WHERE " + expr + " GROUP BY g")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	f, err := compileScalar(tbl, q.Where)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return f
}

func TestScalarStringComparisons(t *testing.T) {
	f := compileExpr(t, "g < 'b'")
	// row 0 has g = "a"
	if !f(0).truthy() {
		t.Fatalf("'a' < 'b' should hold")
	}
	f = compileExpr(t, "g >= 'b'")
	if f(0).truthy() {
		t.Fatalf("'a' >= 'b' should not hold")
	}
	f = compileExpr(t, "g != 'a'")
	if f(0).truthy() {
		t.Fatalf("'a' != 'a' should not hold")
	}
	f = compileExpr(t, "g <= 'a' AND g = 'a' AND g > '' ")
	if !f(0).truthy() {
		t.Fatalf("conjunction of string comparisons failed")
	}
}

func TestScalarMixedComparisonIsNaNSafe(t *testing.T) {
	// comparing a string column to a number compares NaN: always false
	f := compileExpr(t, "g = 1")
	if f(0).truthy() {
		t.Fatalf("string-number comparison should be false")
	}
	f = compileExpr(t, "g < 1")
	if f(0).truthy() {
		t.Fatalf("string-number comparison should be false")
	}
}

func TestScalarAbsAndIf(t *testing.T) {
	f := compileExpr(t, "ABS(0 - v) = v")
	// row 0 has v = 1 (positive)
	if !f(0).truthy() {
		t.Fatalf("ABS(-v) should equal v for positive v")
	}
	f = compileExpr(t, "IF(v > 2, 10, 20) = 20")
	if !f(0).truthy() { // v=1 -> else branch
		t.Fatalf("IF else branch wrong")
	}
	f = compileExpr(t, "IF(v > 0, 10, 20) = 10")
	if !f(0).truthy() {
		t.Fatalf("IF then branch wrong")
	}
}

func TestScalarArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want bool
	}{
		{"v + 1 = 2", true}, // v=1
		{"v - 1 = 0", true},
		{"v * 6 = 6", true},
		{"v / 2 = 0.5", true},
		{"-v = 0 - 1", true},
		{"2 + 3 * 4 = 14", true}, // precedence
		{"(2 + 3) * 4 = 20", true},
	}
	for _, c := range cases {
		f := compileExpr(t, c.expr)
		if f(0).truthy() != c.want {
			t.Fatalf("%q = %v, want %v", c.expr, f(0).truthy(), c.want)
		}
	}
}

func TestScalarDivisionByZero(t *testing.T) {
	f := compileExpr(t, "v / 0 > 100")
	if f(0).truthy() {
		t.Fatalf("NaN comparison should be false")
	}
}

func TestScalarNotAndOr(t *testing.T) {
	f := compileExpr(t, "NOT v > 100")
	if !f(0).truthy() {
		t.Fatalf("NOT of false should be true")
	}
	f = compileExpr(t, "v > 100 OR g = 'a'")
	if !f(0).truthy() {
		t.Fatalf("OR short-path failed")
	}
	f = compileExpr(t, "NOT (v > 0 AND g = 'a')")
	if f(0).truthy() {
		t.Fatalf("NOT of true conjunction should be false")
	}
}

func TestScalarInWithColumnItems(t *testing.T) {
	// IN items may themselves be expressions referencing columns
	f := compileExpr(t, "v IN (year, 1, 2)")
	if !f(0).truthy() { // v=1 matches literal 1
		t.Fatalf("IN with literal failed")
	}
	f = compileExpr(t, "g IN ('x', 'a')")
	if !f(0).truthy() {
		t.Fatalf("string IN failed")
	}
	f = compileExpr(t, "g IN ('x', 'y')")
	if f(0).truthy() {
		t.Fatalf("string IN should miss")
	}
}

func TestScalarBetweenStrings(t *testing.T) {
	f := compileExpr(t, "g BETWEEN 'a' AND 'c'")
	if !f(0).truthy() {
		t.Fatalf("string BETWEEN failed")
	}
}

func TestScalarCompileErrors(t *testing.T) {
	tbl := testTable(t)
	bad := []string{
		"SELECT g, AVG(v) FROM t WHERE zz = 1 GROUP BY g",        // unknown column
		"SELECT g, AVG(v) FROM t WHERE SUM(v) > 1 GROUP BY g",    // aggregate in scalar
		"SELECT g, AVG(v) FROM t WHERE ABS(v, v) > 1 GROUP BY g", // ABS arity
		"SELECT g, AVG(v) FROM t WHERE NOPE(v) > 1 GROUP BY g",   // unknown function
		"SELECT g, AVG(v) FROM t WHERE IF(v, 1) > 1 GROUP BY g",  // IF arity
		"SELECT g, AVG(v) FROM t WHERE v IN (zz) GROUP BY g",     // unknown col in IN
		"SELECT g, AVG(v) FROM t WHERE v BETWEEN zz AND 2 GROUP BY g",
	}
	for _, sql := range bad {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if _, err := compileScalar(tbl, q.Where); err == nil {
			t.Fatalf("compile of %q should fail", sql)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if (value{kind: boolVal, b: true}).asNum() != 1 {
		t.Fatalf("true should convert to 1")
	}
	if (value{kind: boolVal, b: false}).asNum() != 0 {
		t.Fatalf("false should convert to 0")
	}
	if !math.IsNaN((value{kind: strVal, str: "x"}).asNum()) {
		t.Fatalf("string asNum should be NaN")
	}
	if !(value{kind: strVal, str: "x"}).truthy() {
		t.Fatalf("non-empty string truthy")
	}
	if (value{kind: strVal}).truthy() {
		t.Fatalf("empty string not truthy")
	}
	if !(value{kind: numVal, num: 2}).truthy() || (value{kind: numVal}).truthy() {
		t.Fatalf("number truthiness wrong")
	}
}
