package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

func testTable(t testing.TB) *table.Table {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "h", Kind: table.String},
		{Name: "year", Kind: table.Int},
		{Name: "v", Kind: table.Float},
	})
	rows := []struct {
		g, h string
		year int64
		v    float64
	}{
		{"a", "x", 2019, 1},
		{"a", "x", 2019, 3},
		{"a", "y", 2020, 5},
		{"b", "x", 2019, 10},
		{"b", "y", 2020, 20},
		{"b", "y", 2020, 30},
		{"c", "x", 2019, -2},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.g, r.h, r.year, r.v); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func run(t *testing.T, tbl *table.Table, sql string) *Result {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := Run(tbl, q)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	return res
}

func wantAggs(t *testing.T, res *Result, set int, key []string, want ...float64) {
	t.Helper()
	got, ok := res.Lookup(set, key)
	if !ok {
		t.Fatalf("group %v missing from result", key)
	}
	for i, w := range want {
		if math.IsNaN(w) && math.IsNaN(got[i]) {
			continue
		}
		if math.Abs(got[i]-w) > 1e-9*(math.Abs(w)+1) {
			t.Fatalf("group %v agg %d = %v want %v", key, i, got[i], w)
		}
	}
}

func TestRunAvgGroupBy(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, AVG(v) FROM t GROUP BY g")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d want 3", len(res.Rows))
	}
	wantAggs(t, res, 0, []string{"a"}, 3)
	wantAggs(t, res, 0, []string{"b"}, 20)
	wantAggs(t, res, 0, []string{"c"}, -2)
}

func TestRunMultipleAggregates(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v), COUNT(*), MIN(v), MAX(v), COUNT_IF(v > 2) FROM t GROUP BY g")
	wantAggs(t, res, 0, []string{"a"}, 9, 3, 1, 5, 2)
	wantAggs(t, res, 0, []string{"b"}, 60, 3, 10, 30, 3)
	if len(res.AggLabels) != 5 {
		t.Fatalf("agg labels = %v", res.AggLabels)
	}
}

func TestRunWhere(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, AVG(v) FROM t WHERE year = 2019 GROUP BY g")
	wantAggs(t, res, 0, []string{"a"}, 2)
	wantAggs(t, res, 0, []string{"b"}, 10)
	if _, ok := res.Lookup(0, []string{"zzz"}); ok {
		t.Fatalf("phantom group")
	}
}

func TestRunWherePredicates(t *testing.T) {
	tbl := testTable(t)
	cases := []struct {
		sql  string
		want float64 // AVG(v) of group a
	}{
		{"SELECT g, AVG(v) FROM t WHERE v BETWEEN 1 AND 3 GROUP BY g", 2},
		{"SELECT g, AVG(v) FROM t WHERE h IN ('x') GROUP BY g", 2},
		{"SELECT g, AVG(v) FROM t WHERE NOT h = 'y' GROUP BY g", 2},
		{"SELECT g, AVG(v) FROM t WHERE h = 'x' AND year = 2019 GROUP BY g", 2},
		{"SELECT g, AVG(v) FROM t WHERE h = 'y' OR v < 4 GROUP BY g", 3},
		{"SELECT g, AVG(v) FROM t WHERE v + 1 >= 2 GROUP BY g", 3},
		{"SELECT g, AVG(v) FROM t WHERE v * 2 != 6 GROUP BY g", 3},
	}
	for _, c := range cases {
		res := run(t, tbl, c.sql)
		wantAggs(t, res, 0, []string{"a"}, c.want)
	}
}

func TestRunMultiAttrGroupBy(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, h, SUM(v) FROM t GROUP BY g, h")
	wantAggs(t, res, 0, []string{"a", "x"}, 4)
	wantAggs(t, res, 0, []string{"a", "y"}, 5)
	wantAggs(t, res, 0, []string{"b", "y"}, 50)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d want 5 (only occurring combos)", len(res.Rows))
	}
}

func TestRunGroupByIntColumn(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT year, COUNT(*) FROM t GROUP BY year")
	wantAggs(t, res, 0, []string{"2019"}, 4)
	wantAggs(t, res, 0, []string{"2020"}, 3)
}

func TestRunCube(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, h, SUM(v) FROM t GROUP BY g, h WITH CUBE")
	if len(res.Sets) != 4 {
		t.Fatalf("grouping sets = %d want 4", len(res.Sets))
	}
	// set order: {g,h}, {g}, {h}, {}
	full, gOnly, hOnly, grand := -1, -1, -1, -1
	for i, s := range res.Sets {
		switch {
		case len(s) == 2:
			full = i
		case len(s) == 1 && s[0] == "g":
			gOnly = i
		case len(s) == 1 && s[0] == "h":
			hOnly = i
		case len(s) == 0:
			grand = i
		}
	}
	if full < 0 || gOnly < 0 || hOnly < 0 || grand < 0 {
		t.Fatalf("missing grouping sets: %v", res.Sets)
	}
	wantAggs(t, res, full, []string{"b", "y"}, 50)
	wantAggs(t, res, gOnly, []string{"a"}, 9)
	wantAggs(t, res, hOnly, []string{"x"}, 12)
	wantAggs(t, res, grand, nil, 67)
}

func TestRunAggArithmetic(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) / COUNT(*) AS mean, SUM(v) - 1, -SUM(v) FROM t GROUP BY g")
	wantAggs(t, res, 0, []string{"a"}, 3, 8, -9)
}

func TestRunCountIfWithIf(t *testing.T) {
	tbl := testTable(t)
	// SUM(IF(cond,1,0)) is the paper's AQ6 idiom; equals COUNT_IF
	res := run(t, tbl, "SELECT g, SUM(IF(v > 2, 1, 0)), COUNT_IF(v > 2) FROM t GROUP BY g")
	for _, key := range [][]string{{"a"}, {"b"}, {"c"}} {
		got, _ := res.Lookup(0, key)
		if got[0] != got[1] {
			t.Fatalf("SUM(IF) %v != COUNT_IF %v for %v", got[0], got[1], key)
		}
	}
}

func TestRunNoGroupBy(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT AVG(v) FROM t")
	wantAggs(t, res, 0, nil, 67.0/7)
}

func TestRunEmptyGroupAfterPredicate(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, AVG(v) FROM t WHERE v > 100 GROUP BY g")
	if len(res.Rows) != 0 {
		t.Fatalf("no rows should qualify, got %d", len(res.Rows))
	}
}

func TestRunDivisionByZeroNaN(t *testing.T) {
	tbl := testTable(t)
	res := run(t, tbl, "SELECT g, SUM(v) / COUNT_IF(v > 1000) FROM t GROUP BY g")
	got, _ := res.Lookup(0, []string{"a"})
	if !math.IsNaN(got[0]) {
		t.Fatalf("division by zero should be NaN, got %v", got[0])
	}
}

func TestCompileErrors(t *testing.T) {
	tbl := testTable(t)
	bad := []string{
		"SELECT g FROM t GROUP BY g",                      // no aggregate output
		"SELECT h, AVG(v) FROM t GROUP BY g",              // ungrouped column
		"SELECT zz, AVG(v) FROM t GROUP BY zz",            // unknown group col
		"SELECT g, AVG(zz) FROM t GROUP BY g",             // unknown agg col
		"SELECT g, AVG(v) FROM t WHERE zz = 1 GROUP BY g", // unknown where col
		"SELECT g, v FROM t GROUP BY g, v",                // group by float
		"SELECT g, AVG(SUM(v)) FROM t GROUP BY g",         // nested aggregate
		"SELECT g, SUM(v, v) FROM t GROUP BY g",           // arity
		"SELECT g, AVG(*) FROM t GROUP BY g",              // star on non-count
		"SELECT g, IF(v > 1, 1, 0) FROM t GROUP BY g",     // bare scalar func output
		"SELECT g, IF(v > 1, 1) FROM t GROUP BY g",        // IF arity (scalar context)
		"SELECT g, FOO(v) FROM t GROUP BY g",              // unknown function
		"SELECT g, AVG(v) FROM other GROUP BY g",          // wrong table
		"SELECT g, v + 1 FROM t GROUP BY g",               // non-aggregate expression output
	}
	for _, sql := range bad {
		q, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q failed: %v", sql, err)
		}
		if _, err := Run(tbl, q); err == nil {
			t.Fatalf("Run(%q) should fail", sql)
		}
	}
}

func TestRunWeightedMatchesExactWithUnitWeights(t *testing.T) {
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, AVG(v), SUM(v), COUNT(*) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int32, tbl.NumRows())
	weights := make([]float64, tbl.NumRows())
	for i := range rows {
		rows[i] = int32(i)
		weights[i] = 1
	}
	approx, err := RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Rows) != len(exact.Rows) {
		t.Fatalf("row counts differ")
	}
	idx := exact.Index()
	for _, row := range approx.Rows {
		want := idx[KeyOf(row.Set, row.Key)]
		for i := range want {
			if math.Abs(row.Aggs[i]-want[i]) > 1e-9 {
				t.Fatalf("weighted full-table run differs: %v vs %v", row.Aggs, want)
			}
		}
	}
}

func TestRunWeightedScalesCounts(t *testing.T) {
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	// half of group a's rows with weight 2 estimates the full group
	rows := []int32{0, 3, 4} // a(v=1), b(10), b(20)
	weights := []float64{3, 1.5, 1.5}
	res, err := RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Lookup(0, []string{"a"})
	if got[0] != 3 || got[1] != 3 {
		t.Fatalf("group a estimates = %v want [3 3]", got)
	}
	got, _ = res.Lookup(0, []string{"b"})
	if got[0] != 3 || got[1] != 45 {
		t.Fatalf("group b estimates = %v want [3 45]", got)
	}
}

func TestRunWeightedErrors(t *testing.T) {
	tbl := testTable(t)
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWeighted(tbl, q, []int32{1}, []float64{1, 2}); err == nil {
		t.Fatalf("want rows/weights mismatch error")
	}
}

// An unbiasedness check on the full estimator path: stratified sampling
// + Horvitz-Thompson weights recover per-group means within sampling
// tolerance when averaged over repetitions.
func TestRunWeightedUnbiased(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		g := "g0"
		mean := 50.0
		if i%5 == 0 {
			g, mean = "g1", 500.0
		}
		if err := tbl.AppendRow(g, mean+rng.NormFloat64()*mean/5); err != nil {
			t.Fatal(err)
		}
	}
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	exactIdx := exact.Index()
	gi, err := table.BuildGroupIndex(tbl, []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	rowsBy := gi.RowsByStratum()
	const reps = 60
	sums := map[string]float64{}
	for rep := 0; rep < reps; rep++ {
		var rows []int32
		var weights []float64
		for _, strat := range rowsBy {
			k := len(strat) / 10
			for _, p := range randPerm(rng, len(strat))[:k] {
				rows = append(rows, strat[p])
				weights = append(weights, float64(len(strat))/float64(k))
			}
		}
		res, err := RunWeighted(tbl, q, rows, weights)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.Rows {
			sums[row.Key[0]] += row.Aggs[0]
		}
	}
	for g, sum := range sums {
		est := sum / reps
		want := exactIdx[KeyOf(0, []string{g})][0]
		if math.Abs(est-want)/want > 0.03 {
			t.Fatalf("group %s mean estimate %v vs exact %v (bias too large)", g, est, want)
		}
	}
}

func randPerm(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

func BenchmarkRunExactGroupBy(b *testing.B) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		if err := tbl.AppendRow(string(rune('A'+i%64)), rng.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
	q, err := sqlparse.Parse("SELECT g, AVG(v), SUM(v), COUNT(*) FROM t GROUP BY g")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tbl, q); err != nil {
			b.Fatal(err)
		}
	}
}
