package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

// Result is the output of a query evaluation.
type Result struct {
	// GroupAttrs are the query's GROUP BY attributes (empty for a full-
	// table aggregate).
	GroupAttrs []string
	// Sets are the evaluated grouping sets: for a plain GROUP BY there is
	// exactly one (the full attribute list); WITH CUBE adds every subset
	// including the empty (grand total) set.
	Sets [][]string
	// AggLabels are the labels of the aggregate select items, in select
	// order (plain group-by columns are carried in Row.Key, not here).
	AggLabels []string
	Rows      []Row

	// idx memoizes the (set, key) → aggregates map behind Lookup. It is
	// built at most once, so Rows must not be mutated after the first
	// Lookup call. Guarded by idxOnce; safe for concurrent Lookups.
	idxOnce sync.Once
	idx     map[string][]float64
}

// Row is one output group of one grouping set.
type Row struct {
	Set  int      // index into Result.Sets
	Key  []string // group values aligned with Sets[Set]
	Aggs []float64
	// SE holds estimated standard errors per aggregate, populated only
	// by RunWeighted (approximate answers) and only for outputs that are
	// a single AVG/SUM/COUNT/COUNT_IF call; other entries are NaN. The
	// estimator is the weighted linearization: for AVG,
	// sqrt(Σw²(x−x̄)²)/Σw; for totals, sqrt(Σw(w−1)x²) (the
	// Horvitz-Thompson with-replacement approximation).
	SE []float64
}

// keyString renders a row key for map lookups.
func keyString(set int, key []string) string {
	return fmt.Sprintf("%d\x00%s", set, strings.Join(key, "\x00"))
}

// Lookup finds the aggregates of a group within a grouping set. The
// first call builds a map index over all rows (amortized O(1) per
// lookup thereafter), so repeated Lookups over large results — e.g. a
// serving loop touching every exact group — stay linear overall rather
// than quadratic. Concurrent Lookups are safe; mutating Rows after the
// first Lookup is not.
func (r *Result) Lookup(set int, key []string) ([]float64, bool) {
	r.idxOnce.Do(func() { r.idx = r.Index() })
	v, ok := r.idx[keyString(set, key)]
	return v, ok
}

// Index builds a map from (set, key) to aggregate values.
func (r *Result) Index() map[string][]float64 {
	m := make(map[string][]float64, len(r.Rows))
	for i := range r.Rows {
		m[keyString(r.Rows[i].Set, r.Rows[i].Key)] = r.Rows[i].Aggs
	}
	return m
}

// KeyOf is the exported key renderer matching Index.
func KeyOf(set int, key []string) string { return keyString(set, key) }

// aggKind is the aggregation function of one aggregate call site.
type aggKind uint8

const (
	aggAvg aggKind = iota
	aggSum
	aggCount   // COUNT(*) and COUNT(expr): we have no NULLs, both count rows
	aggCountIf // COUNT_IF(pred)
	aggMin
	aggMax
	aggVar    // VAR(expr): population variance (Section 5 extension)
	aggStdDev // STDDEV(expr)
)

// aggSite is one aggregate call discovered in the select list.
type aggSite struct {
	kind aggKind
	arg  scalarFn // nil for COUNT(*)
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	sumW, sumWX float64
	sumWX2      float64 // weighted sum of squares, for VAR/STDDEV and SE
	sumW2       float64 // Σw², for SE of AVG
	sumW2X      float64 // Σw²x
	sumW2X2     float64 // Σw²x²
	nObs        int64   // number of sampled rows contributing
	minV, maxV  float64
	seen        bool
}

func (s *aggState) update(site *aggSite, row int, w float64) {
	switch site.kind {
	case aggAvg, aggSum:
		x := site.arg(row).asNum()
		s.accumulate(x, w)
	case aggVar, aggStdDev:
		x := site.arg(row).asNum()
		s.accumulate(x, w)
	case aggCount:
		s.accumulate(1, w)
	case aggCountIf:
		x := 0.0
		if site.arg(row).truthy() {
			x = 1
		}
		s.accumulate(x, w)
	case aggMin, aggMax:
		x := site.arg(row).asNum()
		if !s.seen {
			s.minV, s.maxV = x, x
			s.seen = true
		} else {
			if x < s.minV {
				s.minV = x
			}
			if x > s.maxV {
				s.maxV = x
			}
		}
	}
}

// accumulate folds one weighted observation, tracking the second-order
// moments the SE estimators need.
func (s *aggState) accumulate(x, w float64) {
	s.sumW += w
	s.sumWX += w * x
	s.sumWX2 += w * x * x
	s.sumW2 += w * w
	s.sumW2X += w * w * x
	s.sumW2X2 += w * w * x * x
	s.nObs++
}

// stdErr estimates the standard error of the finalized aggregate using
// the weighted linearization with a finite-population correction
// 1 − k/Σw (exact for simple random sampling within a group; zero when
// the "sample" is the whole population, i.e. unit weights):
//
//	AVG: sqrt(fpc · Σw²(x−x̄)²) / Σw
//	SUM/COUNT/COUNT_IF (totals): sqrt(fpc · (k·Σw²x² − Ŷ²)/(k−1)),
//	  the classical with-replacement PPS estimator for Ŷ = Σwx.
func (s *aggState) stdErr(kind aggKind) float64 {
	if s.nObs == 0 || s.sumW <= 0 {
		return math.NaN()
	}
	fpc := 1 - float64(s.nObs)/s.sumW
	if fpc < 0 {
		fpc = 0
	}
	switch kind {
	case aggAvg:
		mean := s.sumWX / s.sumW
		v := s.sumW2X2 - 2*mean*s.sumW2X + mean*mean*s.sumW2
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v*fpc) / s.sumW
	case aggSum, aggCount, aggCountIf:
		if s.nObs < 2 {
			if fpc == 0 {
				return 0 // single fully-weighted row: no sampling error
			}
			return math.NaN()
		}
		k := float64(s.nObs)
		v := (k*s.sumW2X2 - s.sumWX*s.sumWX) / (k - 1)
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v * fpc)
	default:
		return math.NaN()
	}
}

func (s *aggState) final(kind aggKind) float64 {
	switch kind {
	case aggAvg:
		if s.sumW == 0 {
			return math.NaN()
		}
		return s.sumWX / s.sumW
	case aggSum, aggCount, aggCountIf:
		return s.sumWX
	case aggVar, aggStdDev:
		if s.sumW == 0 {
			return math.NaN()
		}
		mean := s.sumWX / s.sumW
		v := s.sumWX2/s.sumW - mean*mean
		if v < 0 {
			v = 0
		}
		if kind == aggStdDev {
			return math.Sqrt(v)
		}
		return v
	case aggMin:
		if !s.seen {
			return math.NaN()
		}
		return s.minV
	default: // aggMax
		if !s.seen {
			return math.NaN()
		}
		return s.maxV
	}
}

// compiledQuery is a query bound to a table.
type compiledQuery struct {
	tbl       *table.Table
	where     scalarFn // nil = all rows
	groupCols []*table.Column
	sets      [][]int // per grouping set: positions into groupCols
	setNames  [][]string
	sites     []*aggSite
	// outputs: for each aggregate select item, a function combining site
	// values into the item value.
	items []func(siteVals []float64) float64
	// itemSite[i] is the aggregate-site index when select item i is a
	// bare aggregate call (SE is reportable), else -1.
	itemSite  []int
	aggLabels []string
	having    havingFn // nil when absent
	orderBy   []OrderSpec
	limit     int
}

// compile validates and binds a query against a table.
func compile(tbl *table.Table, q *sqlparse.Query) (*compiledQuery, error) {
	if q.From != "" && !strings.EqualFold(q.From, tbl.Name) {
		return nil, fmt.Errorf("exec: query targets table %q, got %q", q.From, tbl.Name)
	}
	c := &compiledQuery{tbl: tbl}
	if q.Where != nil {
		f, err := compileScalar(tbl, q.Where)
		if err != nil {
			return nil, err
		}
		c.where = f
	}
	grouped := map[string]bool{}
	for _, g := range q.GroupBy {
		col := tbl.Column(g)
		if col == nil {
			return nil, fmt.Errorf("exec: unknown group-by column %q", g)
		}
		if col.Spec.Kind == table.Float {
			return nil, fmt.Errorf("exec: cannot group by float column %q", g)
		}
		c.groupCols = append(c.groupCols, col)
		grouped[g] = true
	}
	if q.Cube && len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("exec: WITH CUBE requires GROUP BY columns")
	}

	// grouping sets
	if q.Cube {
		n := len(q.GroupBy)
		for mask := (1 << n) - 1; mask >= 0; mask-- {
			var pos []int
			var names []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					pos = append(pos, i)
					names = append(names, q.GroupBy[i])
				}
			}
			c.sets = append(c.sets, pos)
			c.setNames = append(c.setNames, names)
		}
	} else {
		pos := make([]int, len(q.GroupBy))
		for i := range pos {
			pos[i] = i
		}
		c.sets = append(c.sets, pos)
		c.setNames = append(c.setNames, append([]string(nil), q.GroupBy...))
	}

	// select items: plain grouped columns or aggregate expressions
	for _, item := range q.Select {
		if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
			if !grouped[ref.Name] {
				return nil, fmt.Errorf("exec: column %q must appear in GROUP BY or inside an aggregate", ref.Name)
			}
			continue // carried in the group key
		}
		if !sqlparse.HasAggregate(item.Expr) {
			return nil, fmt.Errorf("exec: select item %q is neither a grouped column nor an aggregate", item.Label())
		}
		siteBefore := len(c.sites)
		combine, err := c.compileAggItem(item.Expr)
		if err != nil {
			return nil, err
		}
		site := -1
		if _, bare := item.Expr.(*sqlparse.FuncCall); bare && len(c.sites) == siteBefore+1 {
			site = siteBefore
		}
		c.items = append(c.items, combine)
		c.itemSite = append(c.itemSite, site)
		c.aggLabels = append(c.aggLabels, item.Label())
	}
	if len(c.items) == 0 {
		return nil, fmt.Errorf("exec: query has no aggregate outputs")
	}
	if q.Having != nil {
		h, err := c.compileHaving(q.Having)
		if err != nil {
			return nil, err
		}
		c.having = h
	}
	if len(q.OrderBy) > 0 {
		specs, err := ResolveOrderBy(q)
		if err != nil {
			return nil, err
		}
		c.orderBy = specs
	}
	c.limit = q.Limit
	return c, nil
}

// compileAggItem compiles a select expression that contains aggregate
// calls into (a) registered aggregate sites and (b) a combiner applied
// to the finalized site values (supporting e.g. SUM(a)/COUNT(*)).
func (c *compiledQuery) compileAggItem(e sqlparse.Expr) (func([]float64) float64, error) {
	switch n := e.(type) {
	case *sqlparse.FuncCall:
		if sqlparse.AggFuncs[n.Name] {
			site := &aggSite{}
			switch n.Name {
			case "AVG":
				site.kind = aggAvg
			case "SUM":
				site.kind = aggSum
			case "COUNT":
				site.kind = aggCount
			case "COUNT_IF":
				site.kind = aggCountIf
			case "MIN":
				site.kind = aggMin
			case "MAX":
				site.kind = aggMax
			case "VAR":
				site.kind = aggVar
			case "STDDEV":
				site.kind = aggStdDev
			}
			if n.Star {
				if site.kind != aggCount {
					return nil, fmt.Errorf("exec: %s(*) is not valid", n.Name)
				}
			} else {
				if len(n.Args) != 1 {
					return nil, fmt.Errorf("exec: %s takes exactly one argument", n.Name)
				}
				if sqlparse.HasAggregate(n.Args[0]) {
					return nil, fmt.Errorf("exec: nested aggregates are not supported")
				}
				f, err := compileScalar(c.tbl, n.Args[0])
				if err != nil {
					return nil, err
				}
				if site.kind != aggCount { // COUNT(expr) ignores the arg (no NULLs)
					site.arg = f
				}
			}
			idx := len(c.sites)
			c.sites = append(c.sites, site)
			return func(vals []float64) float64 { return vals[idx] }, nil
		}
		return nil, fmt.Errorf("exec: scalar function %s cannot be an output without an enclosing aggregate", n.Name)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "+", "-", "*", "/":
		default:
			return nil, fmt.Errorf("exec: operator %q not supported over aggregates", n.Op)
		}
		left, err := c.compileAggItem(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := c.compileAggItem(n.Right)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(vals []float64) float64 {
			a, b := left(vals), right(vals)
			switch op {
			case "+":
				return a + b
			case "-":
				return a - b
			case "*":
				return a * b
			default:
				if b == 0 {
					return math.NaN()
				}
				return a / b
			}
		}, nil
	case *sqlparse.UnaryExpr:
		if n.Op != "-" {
			return nil, fmt.Errorf("exec: operator %q not supported over aggregates", n.Op)
		}
		inner, err := c.compileAggItem(n.Expr)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) float64 { return -inner(vals) }, nil
	case *sqlparse.NumberLit:
		v := n.Value
		return func([]float64) float64 { return v }, nil
	}
	return nil, fmt.Errorf("exec: unsupported aggregate expression %T", e)
}

// Run evaluates q exactly over the full table.
func Run(tbl *table.Table, q *sqlparse.Query) (*Result, error) {
	c, err := compile(tbl, q)
	if err != nil {
		return nil, err
	}
	return c.execute(nil, nil, q)
}

// RunWeighted evaluates q approximately over a weighted row sample.
func RunWeighted(tbl *table.Table, q *sqlparse.Query, rows []int32, weights []float64) (*Result, error) {
	if len(rows) != len(weights) {
		return nil, fmt.Errorf("exec: %d rows but %d weights", len(rows), len(weights))
	}
	c, err := compile(tbl, q)
	if err != nil {
		return nil, err
	}
	return c.execute(rows, weights, q)
}

// execute groups and aggregates. rows == nil means the full table with
// unit weights.
func (c *compiledQuery) execute(rows []int32, weights []float64, q *sqlparse.Query) (*Result, error) {
	res := &Result{
		GroupAttrs: append([]string(nil), q.GroupBy...),
		Sets:       c.setNames,
		AggLabels:  c.aggLabels,
	}
	type groupAcc struct {
		key    []string
		states []aggState
	}
	for setIdx, setPos := range c.sets {
		groups := map[string]*groupAcc{}
		var order []string
		visit := func(r int, w float64) {
			if c.where != nil && !c.where(r).truthy() {
				return
			}
			keyParts := make([]string, len(setPos))
			for i, p := range setPos {
				keyParts[i] = c.groupCols[p].StringAt(r)
			}
			k := strings.Join(keyParts, "\x00")
			g, ok := groups[k]
			if !ok {
				g = &groupAcc{key: keyParts, states: make([]aggState, len(c.sites))}
				groups[k] = g
				order = append(order, k)
			}
			for si, site := range c.sites {
				g.states[si].update(site, r, w)
			}
		}
		if rows == nil {
			for r := 0; r < c.tbl.NumRows(); r++ {
				visit(r, 1)
			}
		} else {
			for i, r := range rows {
				visit(int(r), weights[i])
			}
		}
		sort.Strings(order)
		for _, k := range order {
			g := groups[k]
			siteVals := make([]float64, len(c.sites))
			for si := range c.sites {
				siteVals[si] = g.states[si].final(c.sites[si].kind)
			}
			if c.having != nil && !c.having(siteVals) {
				continue
			}
			aggs := make([]float64, len(c.items))
			for ii, combine := range c.items {
				aggs[ii] = combine(siteVals)
			}
			row := Row{Set: setIdx, Key: g.key, Aggs: aggs}
			if rows != nil {
				row.SE = make([]float64, len(c.items))
				for ii, site := range c.itemSite {
					if site >= 0 {
						row.SE[ii] = g.states[site].stdErr(c.sites[site].kind)
					} else {
						row.SE[ii] = math.NaN()
					}
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	ApplyOrderAndLimit(res, c.orderBy, c.limit)
	return res, nil
}
