// Package benchserve is the serving-path benchmark harness behind
// cvbench -bench serve: a fixed set of named scenarios, each exercising
// one hot path of the registry/server stack (sampler builds, sampled
// and exact queries, streaming appends, the /metrics exposition),
// measured with testing.Benchmark and reported as machine-readable
// results (BENCH_serve.json).
//
// The harness core is deliberately clock-free: it reports what the
// testing package measured and nothing else. Build identity and the
// run timestamp are stamped by the caller (cmd/cvbench), so two runs of
// the same binary over the same scenarios are byte-comparable.
package benchserve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	apiv1 "repro/internal/api/v1"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/table"
)

// Scenario is one named serving benchmark.
type Scenario struct {
	// Name identifies the scenario in the report ([a-z_]+).
	Name string
	// Run is the benchmark body, in standard testing.B form.
	Run func(b *testing.B)
}

// Result is one scenario's measurement. The fields mirror
// testing.BenchmarkResult; cmd/cvbench owns the wire encoding.
type Result struct {
	Name        string
	Iterations  int
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
}

// benchRows sizes the scenario table: big enough that per-row work
// dominates fixed dispatch overhead, small enough that -benchtime=1x
// smoke runs stay instant.
const benchRows = 4096

// execRows sizes the executor-comparison table. The exec_* scenarios
// measure per-row execution cost (interpreted closures vs columnar
// batches), so they want enough rows that the fixed costs — parse,
// plan-cache lookup, result assembly — disappear into the noise.
const execRows = 32768

// benchTable builds the scenario table: one group column with a few
// strata, one aggregate column.
func benchTable(name string) *table.Table {
	tbl := table.New(name, table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	regions := []string{"NA", "EU", "APAC", "LATAM"}
	for i := 0; i < benchRows; i++ {
		if err := tbl.AppendRow(regions[i%len(regions)], float64(i%97)); err != nil {
			panic(err)
		}
	}
	return tbl
}

// execTable builds the executor-comparison table: eight strata, a
// float measure and an int measure, so the benchmark query exercises a
// predicate, a group-by and mixed-kind aggregate arguments.
func execTable(name string) *table.Table {
	tbl := table.New(name, table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
		{Name: "qty", Kind: table.Int},
	})
	regions := []string{"NA", "EU", "APAC", "LATAM", "MEA", "ANZ", "SA", "CN"}
	for i := 0; i < execRows; i++ {
		if err := tbl.AppendRow(regions[i%len(regions)], float64(i%97), int64(i%13)); err != nil {
			panic(err)
		}
	}
	return tbl
}

func benchSpecs() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"region"},
		Aggs:    []core.AggColumn{{Column: "amount"}},
	}}
}

// Scenarios returns the serving benchmark suite. Each scenario owns its
// registry, so measurements are independent; ctx threads through to
// every registry call (the scenarios honor cancellation between
// iterations only as far as the registry itself does).
func Scenarios(ctx context.Context) []Scenario {
	const sql = "SELECT region, AVG(amount) FROM bench GROUP BY region"
	const execSQL = "SELECT region, AVG(amount), SUM(amount * qty), COUNT(*) FROM benchx WHERE amount > 12 GROUP BY region"
	newExecReg := func(b *testing.B) *serve.Registry {
		b.Helper()
		reg := serve.NewRegistry()
		if err := reg.RegisterTable(execTable("benchx")); err != nil {
			b.Fatal(err)
		}
		return reg
	}
	newReg := func(b *testing.B, build bool) *serve.Registry {
		b.Helper()
		reg := serve.NewRegistry()
		if err := reg.RegisterTable(benchTable("bench")); err != nil {
			b.Fatal(err)
		}
		if build {
			_, _, err := reg.Build(ctx, serve.BuildRequest{
				Table: "bench", Queries: benchSpecs(), Budget: 256, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		return reg
	}
	return []Scenario{
		{
			// a fresh sampler build per iteration: the per-iteration seed
			// changes the cache key, so every pass runs the sampler
			Name: "build",
			Run: func(b *testing.B) {
				reg := newReg(b, false)
				defer reg.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, _, err := reg.Build(ctx, serve.BuildRequest{
						Table: "bench", Queries: benchSpecs(), Budget: 256, Seed: int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "query_sample",
			Run: func(b *testing.B) {
				reg := newReg(b, true)
				defer reg.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := reg.Query(ctx, sql, serve.QueryOptions{Mode: serve.ModeSample}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "query_exact",
			Run: func(b *testing.B) {
				reg := newReg(b, false)
				defer reg.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := reg.Query(ctx, sql, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			Name: "append",
			Run: func(b *testing.B) {
				reg := newReg(b, false)
				defer reg.Close()
				if err := reg.StreamTable("bench", ingest.Config{
					Queries: benchSpecs(), Budget: 256, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
				batch := [][]any{{"NA", 1.0}, {"EU", 2.0}, {"APAC", 3.0}, {"LATAM", 4.0}}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := reg.Append("bench", batch); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// the row interpreter on the grouped-aggregate query: the
			// baseline the compiled plans are measured against
			Name: "exec_interpreted",
			Run: func(b *testing.B) {
				reg := newExecReg(b)
				defer reg.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := reg.Query(ctx, execSQL, serve.QueryOptions{
						Mode: serve.ModeExact, Executor: serve.ExecInterpreted,
					}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// the columnar executor with a warm plan cache: the steady
			// state of a repeated dashboard query
			Name: "exec_planned",
			Run: func(b *testing.B) {
				reg := newExecReg(b)
				defer reg.Close()
				if _, err := reg.Query(ctx, execSQL, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := reg.Query(ctx, execSQL, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// a never-before-seen query per iteration (the LIMIT varies,
			// changing the normalized-SQL cache key): compile + execute,
			// the plan cache's worst case
			Name: "exec_plan_cold",
			Run: func(b *testing.B) {
				reg := newExecReg(b)
				defer reg.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sql := fmt.Sprintf("%s LIMIT %d", execSQL, 1_000_000+i)
					if _, err := reg.Query(ctx, sql, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// a thundering herd of identical queries with no coalescing:
			// every request pays its own executor pass. One op = one herd
			// of herdSize concurrent HTTP queries.
			Name: "qos_baseline",
			Run: func(b *testing.B) {
				runHerd(ctx, b, 0)
			},
		},
		{
			// the same herd through the coalescing window: requests
			// arriving within the window share one executor pass, so the
			// herd costs ~one pass instead of herdSize
			Name: "qos_coalesced",
			Run: func(b *testing.B) {
				runHerd(ctx, b, 2*time.Millisecond)
			},
		},
		{
			// a herd of target_cv queries against a saturated admission
			// controller: every query degrades onto the resident sample
			// instead of queueing, measuring the shed path end to end
			Name: "qos_shed",
			Run: func(b *testing.B) {
				fe, err := qos.New(qos.Config{MaxInflight: 1, MaxQueue: -1, ShedSlots: herdSize})
				if err != nil {
					b.Fatal(err)
				}
				reg := serve.NewRegistry()
				defer reg.Close()
				if err := reg.RegisterTable(execTable("benchx")); err != nil {
					b.Fatal(err)
				}
				if _, _, err := reg.Build(ctx, serve.BuildRequest{
					Table: "benchx", Queries: benchSpecs(), Budget: 256, Seed: 1,
				}); err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(serve.NewServer(reg, serve.WithQoS(fe)))
				defer ts.Close()
				// saturate the only slot so every herd query sheds
				release, ok := fe.Admission.TryAcquire()
				if !ok {
					b.Fatal("TryAcquire on idle controller")
				}
				defer release()
				body := `{"sql": "SELECT region, AVG(amount) FROM benchx GROUP BY region", "target_cv": 0.5}`
				client := herdClient()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fireHerd(b, client, ts.URL, body)
				}
			},
		},
		{
			// one /metrics scrape against a populated registry: the cost
			// an operator's Prometheus pays per scrape interval
			Name: "metrics_render",
			Run: func(b *testing.B) {
				reg := newReg(b, true)
				defer reg.Close()
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, apiv1.Path(apiv1.RouteMetrics), nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rec := httptest.NewRecorder()
					reg.Obs().ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("scrape returned %d", rec.Code)
					}
				}
			},
		},
	}
}

// herdSize is the thundering-herd width of the qos_* scenarios: how
// many identical-class queries hit the front end concurrently per op.
const herdSize = 64

// herdClient returns an HTTP client with enough idle connections that
// herd iterations reuse sockets instead of measuring connection churn.
func herdClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = herdSize
	tr.MaxIdleConnsPerHost = herdSize
	return &http.Client{Transport: tr}
}

// fireHerd sends herdSize concurrent identical POST /v1/query requests
// and waits for all of them; any non-200 fails the benchmark.
func fireHerd(b *testing.B, client *http.Client, baseURL, body string) {
	b.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, herdSize)
	start := make(chan struct{})
	for i := 0; i < herdSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := client.Post(baseURL+apiv1.Path(apiv1.RouteQuery), "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("herd query returned %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
}

// runHerd measures thundering-herd latency through the QoS front end:
// one op is one herd of herdSize concurrent identical exact-mode
// queries over the 32k-row executor table. window 0 is the baseline
// (admission only); a positive window coalesces the herd into a
// handful of shared executor passes.
func runHerd(ctx context.Context, b *testing.B, window time.Duration) {
	b.Helper()
	// the queue holds the whole herd: the scenario measures pass
	// sharing vs per-request passes, not rejection timing (whether the
	// default queue overflows depends on goroutine scheduling speed)
	fe, err := qos.New(qos.Config{MaxInflight: 8, MaxQueue: herdSize, CoalesceWindow: window})
	if err != nil {
		b.Fatal(err)
	}
	reg := serve.NewRegistry()
	defer reg.Close()
	if err := reg.RegisterTable(execTable("benchx")); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg, serve.WithQoS(fe)))
	defer ts.Close()
	body := `{"sql": "SELECT region, AVG(amount), SUM(amount * qty), COUNT(*) FROM benchx WHERE amount > 12 GROUP BY region", "mode": "exact"}`
	client := herdClient()
	// warm the path (parse + plan caches, TCP connections) outside the
	// measured region
	fireHerd(b, client, ts.URL, body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fireHerd(b, client, ts.URL, body)
	}
	_ = ctx
}

// Run measures every scenario in order and returns their results.
// Iteration counts follow the testing package's benchtime settings
// (cmd/cvbench forwards its -benchtime flag via testing.Init +
// flag.Set before calling this).
func Run(ctx context.Context) ([]Result, error) {
	scenarios := Scenarios(ctx)
	out := make([]Result, 0, len(scenarios))
	for _, sc := range scenarios {
		r := testing.Benchmark(sc.Run)
		if r.N == 0 {
			return nil, fmt.Errorf("benchserve: scenario %s did not run (benchmark failed)", sc.Name)
		}
		out = append(out, Result{
			Name:        sc.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out, nil
}
