package benchserve

import (
	"context"
	"flag"
	"testing"
)

// The scenario list is the bench contract: cvbench's BENCH_serve.json
// schema and CI's smoke step both key on these names.
func TestScenarioNamesStable(t *testing.T) {
	scs := Scenarios(context.Background())
	want := []string{"build", "query_sample", "query_exact", "append",
		"exec_interpreted", "exec_planned", "exec_plan_cold",
		"qos_baseline", "qos_coalesced", "qos_shed", "metrics_render"}
	if len(scs) != len(want) {
		t.Fatalf("got %d scenarios, want %d", len(scs), len(want))
	}
	for i, sc := range scs {
		if sc.Name != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, sc.Name, want[i])
		}
		if sc.Run == nil {
			t.Errorf("scenario %q has no Run func", sc.Name)
		}
	}
}

// Run at a single iteration per scenario: every Result must carry a
// plausible measurement. This is the same path cvbench drives.
func TestRunSingleIteration(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping bench execution in -short mode")
	}
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	results, err := Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 11 {
		t.Fatalf("got %d results, want 11", len(results))
	}
	for _, r := range results {
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("result %q implausible: %+v", r.Name, r)
		}
		if r.AllocsPerOp < 0 || r.BytesPerOp < 0 {
			t.Errorf("result %q negative allocations: %+v", r.Name, r)
		}
	}
}
