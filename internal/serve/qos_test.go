package serve_test

// End-to-end tests of the QoS front end: admission 429s with
// Retry-After, per-tenant token buckets, load shedding onto resident
// samples, and the coalescing differential — a herd of identical
// queries through the coalescer must produce byte-identical responses
// to uncoalesced per-request execution.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/serve"
)

// startQoSServer spins up a server over a fresh sales registry with the
// given QoS front end.
func startQoSServer(t *testing.T, cfg qos.Config, opts ...serve.ServerOption) (*httptest.Server, *serve.Registry, *qos.FrontEnd) {
	t.Helper()
	fe, err := qos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := newSalesRegistry(t)
	ts := httptest.NewServer(serve.NewServer(reg, append(opts, serve.WithQoS(fe))...))
	t.Cleanup(ts.Close)
	return ts, reg, fe
}

// postRaw sends a JSON body and returns the raw response.
func postRaw(t *testing.T, url, body string, header map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

const salesQuery = `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`

func TestQueryOverloaded429(t *testing.T) {
	ts, _, fe := startQoSServer(t, qos.Config{MaxInflight: 1, MaxQueue: -1})

	// Saturate the single slot; the next query must fail fast with the
	// full overloaded contract: 429, code "overloaded", Retry-After >= 1.
	release, ok := fe.Admission.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on idle controller")
	}
	defer release()

	code, hdr, body := postRaw(t, ts.URL+"/v1/query", salesQuery, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("query under saturation: %d, body %s", code, body)
	}
	if !bytes.Contains(body, []byte(`"code":"overloaded"`)) {
		t.Fatalf("body missing overloaded code: %s", body)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", hdr.Get("Retry-After"))
	}

	// Builds ride the same admission gate.
	code, hdr, body = postRaw(t, ts.URL+"/v1/samples", buildBody, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("build under saturation: %d, body %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("build 429 missing Retry-After; body %s", body)
	}
}

func TestQueryQueuedThenServed(t *testing.T) {
	ts, _, fe := startQoSServer(t, qos.Config{MaxInflight: 1, MaxQueue: 4})

	// With a queue, a request outlives a brief saturation instead of
	// 429ing: hold the slot, fire a query, release shortly after.
	release, ok := fe.Admission.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		code, _, body := postRaw(t, ts.URL+"/v1/query", salesQuery, nil)
		if code != http.StatusOK {
			t.Errorf("queued query: %d, body %s", code, body)
		}
	}()
	// Wait until the request is parked in the queue, then free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for fe.Admission.Queued() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	release()
	<-done
}

func TestCoalescedQueriesBitIdentical(t *testing.T) {
	// Differential setup: a plain server and a coalescing server over
	// identically seeded registries. Every coalesced response must be
	// byte-identical to uncoalesced per-request execution.
	regA := newSalesRegistry(t)
	tsA := httptest.NewServer(serve.NewServer(regA))
	t.Cleanup(tsA.Close)
	tsB, regB, fe := startQoSServer(t, qos.Config{MaxInflight: 8, CoalesceWindow: 100 * time.Millisecond})

	// The same deterministic sample on both sides (seed 7).
	if _, _, err := regA.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := regB.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}

	codeA, _, want := postRaw(t, tsA.URL+"/v1/query", salesQuery, nil)
	if codeA != http.StatusOK {
		t.Fatalf("baseline query: %d, body %s", codeA, want)
	}

	const herd = 64
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			code, _, body := postRaw(t, tsB.URL+"/v1/query", salesQuery, nil)
			if code != http.StatusOK {
				t.Errorf("herd query: %d, body %s", code, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if len(bodies) != herd {
		t.Fatalf("only %d/%d herd queries succeeded", len(bodies), herd)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("coalesced response %d differs from per-request execution:\n got %s\nwant %s", i, b, want)
		}
	}
	// The herd must actually have coalesced: far fewer executor passes
	// than callers, and followers served from shared passes.
	if got := fe.Coalescer.Passes(); got >= herd/2 {
		t.Fatalf("executor passes = %d for %d identical queries; coalescing is not happening", got, herd)
	}
	if fe.Coalescer.Coalesced() == 0 || fe.Coalescer.Batches() == 0 {
		t.Fatalf("coalesced=%d batches=%d, want both > 0",
			fe.Coalescer.Coalesced(), fe.Coalescer.Batches())
	}
}

func TestShedDegradesToResidentSample(t *testing.T) {
	ts, reg, fe := startQoSServer(t, qos.Config{MaxInflight: 1, MaxQueue: -1})

	// A resident 300-row sample is the shed target.
	if _, _, err := reg.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	release, ok := fe.Admission.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire")
	}
	defer release()

	const cvQuery = `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": 0.05}`
	var resp struct {
		Degraded   bool     `json:"degraded"`
		TargetCV   float64  `json:"target_cv"`
		TargetMet  *bool    `json:"target_met"`
		AchievedCV *float64 `json:"achieved_cv"`
		SampleKey  string   `json:"sample_key"`
		SampleRows int      `json:"sample_rows"`
	}
	code, _, body := postRaw(t, ts.URL+"/v1/query", cvQuery, nil)
	if code != http.StatusOK {
		t.Fatalf("shed query: %d, body %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.TargetCV != 0.05 || resp.SampleRows != 300 {
		t.Fatalf("shed response: %+v (body %s)", resp, body)
	}
	// The answering sample has no autoscale guarantee: target_met must
	// be an honest false, achieved_cv absent.
	if resp.TargetMet == nil || *resp.TargetMet || resp.AchievedCV != nil {
		t.Fatalf("shed guarantee reporting: %+v (body %s)", resp, body)
	}
	if fe.Admission.ShedCount() != 1 {
		t.Fatalf("ShedCount = %d, want 1", fe.Admission.ShedCount())
	}

	// Contract stability under pressure: shapes the full path rejects,
	// the shed path rejects identically (422, not a degraded answer).
	const filtered = `{"sql": "SELECT region, AVG(amount) FROM sales WHERE amount > 50 GROUP BY region", "target_cv": 0.05}`
	code, _, body = postRaw(t, ts.URL+"/v1/query", filtered, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("shed WHERE query: %d, want 422 (body %s)", code, body)
	}
}

func TestShedWithoutResidentSampleIs429(t *testing.T) {
	ts, _, fe := startQoSServer(t, qos.Config{MaxInflight: 1, MaxQueue: -1})
	release, ok := fe.Admission.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire")
	}
	defer release()

	const cvQuery = `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": 0.05}`
	code, hdr, body := postRaw(t, ts.URL+"/v1/query", cvQuery, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("shed with nothing resident: %d, want 429 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

func TestTenantTokenBuckets(t *testing.T) {
	ts, _, _ := startQoSServer(t, qos.Config{MaxInflight: 8, TenantLimits: "alice=1:1"})

	alice := map[string]string{"X-API-Token": "alice"}
	code, _, body := postRaw(t, ts.URL+"/v1/query", salesQuery, alice)
	if code != http.StatusOK {
		t.Fatalf("alice's first query: %d, body %s", code, body)
	}
	code, hdr, body := postRaw(t, ts.URL+"/v1/query", salesQuery, alice)
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice's second query: %d, want 429 (body %s)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("tenant 429 missing Retry-After")
	}

	// No "*" default: unlisted tenants (and tokenless requests) are only
	// subject to the global admission limits.
	for i := 0; i < 5; i++ {
		if code, _, body := postRaw(t, ts.URL+"/v1/query", salesQuery, nil); code != http.StatusOK {
			t.Fatalf("tokenless query %d: %d, body %s", i, code, body)
		}
	}
}

func TestHealthzQoSAndIngestHorizon(t *testing.T) {
	ts, reg, _ := startQoSServer(t, qos.Config{MaxInflight: 4},
		serve.WithIngestHorizonRows(100))

	// Stream the sales table: 3740 resident rows, far past the 100-row
	// horizon, so /healthz must warn.
	if err := reg.StreamTable("sales", streamCfg(300)); err != nil {
		t.Fatal(err)
	}
	// One query so the QoS counters move.
	if code, _, body := postRaw(t, ts.URL+"/v1/query", salesQuery, nil); code != http.StatusOK {
		t.Fatalf("query: %d, body %s", code, body)
	}

	var health struct {
		Warnings     []string `json:"warnings"`
		StreamTables map[string]struct {
			ResidentRows int `json:"resident_rows"`
		} `json:"stream_tables"`
		QoS *struct {
			MaxInflight int   `json:"max_inflight"`
			MaxQueue    int   `json:"max_queue"`
			Admitted    int64 `json:"admitted"`
		} `json:"qos"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.QoS == nil || health.QoS.MaxInflight != 4 || health.QoS.MaxQueue != 8 {
		t.Fatalf("healthz qos block: %+v", health.QoS)
	}
	if health.QoS.Admitted < 1 {
		t.Fatalf("healthz qos admitted = %d, want >= 1", health.QoS.Admitted)
	}
	if got := health.StreamTables["sales"].ResidentRows; got != 3740 {
		t.Fatalf("resident_rows = %d, want 3740", got)
	}
	if len(health.Warnings) != 1 || !strings.Contains(health.Warnings[0], "horizon") {
		t.Fatalf("warnings = %v, want one row-horizon warning", health.Warnings)
	}

	// The repro_qos_* series render on /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	expo, _ := io.ReadAll(resp.Body)
	for _, name := range []string{
		"repro_qos_admitted_total", "repro_qos_rejected_total",
		"repro_qos_inflight", "repro_qos_queued", "repro_qos_shed_total",
		"repro_ingest_resident_rows",
	} {
		if !bytes.Contains(expo, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}
