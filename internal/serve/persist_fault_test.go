package serve_test

// Persistence fault paths: disabled persistence as a no-op, attach
// failures rolling the registration back, corrupt checkpoints surfacing
// as fatal recovery errors, leftover junk (checkpoint-less table dirs,
// unreadable spill files) being cleaned up rather than trusted, and
// recovery of a stream that ran with the derived default seed from a
// mid-life checkpoint.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
	"repro/internal/wal"
)

func TestPersistenceDisabledWithoutDir(t *testing.T) {
	reg := serve.NewRegistry(serve.WithPersistence(serve.PersistOptions{}))
	t.Cleanup(reg.Close)
	if _, ok := reg.PersistenceStatus(); ok {
		t.Fatal("an empty Dir must leave persistence off")
	}
	rep, err := reg.Recover(context.Background())
	if err != nil || rep.Tables != 0 {
		t.Fatalf("Recover without persistence = %+v, %v; want a zero report", rep, err)
	}
}

func TestPersistenceAttachFailureRollsBack(t *testing.T) {
	// a regular file where the tables/ directory belongs makes
	// checkpoint-0 unwritable, so the registration must fail whole
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tables"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(reg.Close)
	if err := reg.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err == nil {
		t.Fatal("registering a streaming table with an unwritable data dir must fail")
	}
	if _, ok := reg.StreamStatus("sales"); ok {
		t.Fatal("the failed registration left a live stream behind")
	}
}

func TestRecoverFailsOnCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close) // abandoned, not closed: crash simulation
	cp := filepath.Join(dir, "tables", "sales", "checkpoint")
	if err := os.WriteFile(cp, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if _, err := regB.Recover(context.Background()); err == nil {
		t.Fatal("a corrupt checkpoint is not a torn tail; Recover must fail loudly")
	}
}

func TestRecoverCleansUpJunk(t *testing.T) {
	// a table dir without a checkpoint (a registration that died before
	// checkpoint-0 landed) and an unreadable spill file both disappear
	dir := t.TempDir()
	ghost := filepath.Join(dir, "tables", "ghost")
	if err := os.MkdirAll(ghost, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "samples", "deadbeefdeadbeef.smp")
	if err := os.MkdirAll(filepath.Dir(bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(reg.Close)
	rep, err := reg.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 0 || rep.SpilledSamples != 0 {
		t.Fatalf("recovery report %+v, want nothing recovered", rep)
	}
	if _, err := os.Stat(ghost); !os.IsNotExist(err) {
		t.Fatal("the checkpoint-less table dir survived recovery")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("the unreadable spill file survived recovery")
	}
	ps, ok := reg.PersistenceStatus()
	if !ok || ps.Errors == 0 {
		t.Fatalf("status %+v, want the bad spill counted as an error", ps)
	}
}

func TestRecoverConflictsWithLiveStream(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close)

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(filepath.Join(dir)))) // same data dir
	t.Cleanup(regB.Close)
	// the operator registered a live stream for the same table before
	// calling Recover: recovery cannot silently replace it
	if err := regB.RegisterStreamingTable(salesTable(t), streamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Recover(context.Background()); err == nil {
		t.Fatal("recovering over an already-streaming table must fail")
	}
}

// TestRecoverDefaultSeedMidlifeCheckpoint drives a default-seed stream
// (Seed 0, derived from the table name) past the checkpoint threshold,
// crashes it, and recovers from the mid-life checkpoint: the generation
// and exact row counts must carry over even though the sampler restarts
// on a remixed seed.
func TestRecoverDefaultSeedMidlifeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.CheckpointBytes = 16 << 10
	cfg := persistStreamCfg(300)
	cfg.Seed = 0

	regA := serve.NewRegistry(serve.WithPersistence(opts))
	if err := regA.RegisterStreamingTable(salesTable(t), cfg); err != nil {
		t.Fatal(err)
	}
	rows := 3740
	for i := 0; i < 20; i++ {
		if _, err := regA.Append("sales", streamRows(rows, 200)); err != nil {
			t.Fatal(err)
		}
		rows += 200
		if _, err := regA.Refresh("sales"); err != nil {
			t.Fatal(err)
		}
	}
	ps, _ := regA.PersistenceStatus()
	if ps.Checkpoints == 0 {
		t.Fatalf("status %+v, want a mid-life checkpoint to recover from", ps)
	}
	stA, _ := regA.StreamStatus("sales")
	t.Cleanup(regA.Close) // crash: abandoned without Close

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	rep, err := regB.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 1 {
		t.Fatalf("recovery report %+v, want the table back", rep)
	}
	stB, ok := regB.StreamStatus("sales")
	if !ok || stB.Generation != stA.Generation || stB.Rows != stA.Rows {
		t.Fatalf("recovered status %+v, want generation %d rows %d", stB, stA.Generation, stA.Rows)
	}
	if got := exactCount(t, regB); got != float64(rows) {
		t.Fatalf("exact COUNT(*) after recovery = %g, want %d", got, rows)
	}
	// the recovered stream keeps working: another append + refresh
	if _, err := regB.Append("sales", streamRows(rows, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := regB.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	if st, _ := regB.StreamStatus("sales"); st.Generation != stB.Generation+1 {
		t.Fatalf("post-recovery refresh generation %d, want %d", st.Generation, stB.Generation+1)
	}
}

// TestRecoverFailsOnUnknownWalRecord: a record type the replayer does
// not know means the log was written by a newer (or corrupted) daemon;
// replay must stop with an error instead of skipping records.
func TestRecoverFailsOnUnknownWalRecord(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close)
	log, err := wal.Open(filepath.Join(dir, "tables", "sales", "wal"), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(77, []byte("future")); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if _, err := regB.Recover(context.Background()); err == nil {
		t.Fatal("an unknown WAL record type must fail recovery")
	}
}

// TestRecoverFailsOnGenerationMismatch: a logged publication whose
// generation the replay cannot reproduce means replay diverged from the
// original run — silent acceptance would serve a different sample than
// the one the crashed daemon acknowledged.
func TestRecoverFailsOnGenerationMismatch(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close)
	log, err := wal.Open(filepath.Join(dir, "tables", "sales", "wal"), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(wal.TypeRefresh, wal.EncodeRefresh(999)); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if _, err := regB.Recover(context.Background()); err == nil {
		t.Fatal("a generation the replay cannot reproduce must fail recovery")
	}
}

// TestSpillSaveFailureIsNonFatal: a spill failure costs a rebuild after
// restart, never the build itself.
func TestSpillSaveFailureIsNonFatal(t *testing.T) {
	dir := t.TempDir()
	// a regular file where samples/ belongs makes every spill write fail
	if err := os.WriteFile(filepath.Join(dir, "samples"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(reg.Close)
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := reg.Build(context.Background(), buildReq(200)); err != nil || cached {
		t.Fatalf("build must survive a failed spill: cached=%v err=%v", cached, err)
	}
	ps, _ := reg.PersistenceStatus()
	if ps.SpillSaves != 0 || ps.Errors == 0 {
		t.Fatalf("status %+v, want no spill saves and the failure counted", ps)
	}
}

// TestVanishedSpillFallsBackToRebuild: a spill indexed at boot but gone
// by the time Build wants it (operator cleanup, disk eviction) must
// rebuild instead of failing.
func TestVanishedSpillFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := regA.Build(context.Background(), buildReq(200)); err != nil {
		t.Fatal(err)
	}
	regA.Close()

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if err := regB.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := regB.Recover(context.Background())
	if err != nil || rep.SpilledSamples != 1 {
		t.Fatalf("recovery %+v err=%v, want the spill indexed", rep, err)
	}
	smps, _ := filepath.Glob(filepath.Join(dir, "samples", "*.smp"))
	for _, s := range smps {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, cached, err := regB.Build(context.Background(), buildReq(200)); err != nil || cached {
		t.Fatalf("a vanished spill must rebuild: cached=%v err=%v", cached, err)
	}
}

// TestCheckpointWaitsForPublication: WAL growth alone does not cut a
// checkpoint — only a publication names a consistent prefix to cover,
// so append-only load (no refresh) must leave the checkpoint count at
// zero no matter how large the log grows.
func TestCheckpointWaitsForPublication(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.CheckpointBytes = 4 << 10
	reg := serve.NewRegistry(serve.WithPersistence(opts))
	t.Cleanup(reg.Close)
	if err := reg.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	rows := 3740
	for i := 0; i < 10; i++ {
		if _, err := reg.Append("sales", streamRows(rows, 200)); err != nil {
			t.Fatal(err)
		}
		rows += 200
	}
	ps, _ := reg.PersistenceStatus()
	if ps.WalBytes <= opts.CheckpointBytes {
		t.Fatalf("wal bytes %d did not outgrow the %d threshold; the test is too small", ps.WalBytes, opts.CheckpointBytes)
	}
	if ps.Checkpoints != 0 {
		t.Fatalf("%d checkpoints cut without a new publication, want 0", ps.Checkpoints)
	}
}

// TestPersistOptionsSegmentClamp pins the segment sizing defaults: a
// huge checkpoint threshold still rotates segments at 1 MiB so
// truncation has segments to drop.
func TestPersistOptionsSegmentClamp(t *testing.T) {
	dir := t.TempDir()
	opts := persistOpts(dir)
	opts.CheckpointBytes = 64 << 20
	reg := serve.NewRegistry(serve.WithPersistence(opts))
	t.Cleanup(reg.Close)
	if err := reg.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	ps, ok := reg.PersistenceStatus()
	if !ok || ps.Fsync != wal.SyncAlways.String() {
		t.Fatalf("status %+v ok=%v, want persistence on with fsync=always", ps, ok)
	}
}
