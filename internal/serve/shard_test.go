// White-box shard tests: these reach into the registry's shards to
// prove the property the refactor exists for — work on one table's
// shard is invisible to tables on other shards.
package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

// shardTestTable builds a tiny region/amount table.
func shardTestTable(t *testing.T, name string) *table.Table {
	t.Helper()
	tbl := table.New(name, table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	regions := []string{"NA", "EU", "APAC"}
	for i := 0; i < 240; i++ {
		if err := tbl.AppendRow(regions[i%3], float64(i%11)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func shardBuild(name string, budget int, seed int64) BuildRequest {
	return BuildRequest{
		Table: name,
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		Budget: budget,
		Seed:   seed,
	}
}

// twoShardNames returns two registered-and-sampled table names that
// hash to different shards of reg.
func twoShardNames(t *testing.T, reg *Registry) (a, b string) {
	t.Helper()
	first := ""
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("t%d", i)
		if first == "" {
			first = name
			continue
		}
		if reg.shardFor(name) != reg.shardFor(first) {
			return first, name
		}
	}
	t.Fatal("could not find two table names on different shards")
	return "", ""
}

// TestShardLookupIsCaseFolded pins the sharding invariant every
// case-insensitive lookup depends on: case variants of a name must land
// on one shard.
func TestShardLookupIsCaseFolded(t *testing.T) {
	reg := NewRegistry()
	cases := [][2]string{{"sales", "SALES"}, {"sales", "sAlEs"}, {"orders_2024", "ORDERS_2024"}}
	for _, c := range cases {
		if reg.shardFor(c[0]) != reg.shardFor(c[1]) {
			t.Fatalf("%q and %q hash to different shards", c[0], c[1])
		}
	}
}

// TestConcurrentRegistrationsAcrossShards would deadlock if
// registration held its own shard's write lock while scanning the
// others for duplicate names (two registrations on different shards
// each waiting for the other's lock); registration must instead
// serialize on the registry's regMu and take shard locks one at a
// time.
func TestConcurrentRegistrationsAcrossShards(t *testing.T) {
	for round := 0; round < 50; round++ {
		reg := NewRegistry(WithShards(2))
		a, b := twoShardNames(t, reg)
		done := make(chan error, 2)
		for _, name := range []string{a, b} {
			go func(name string) {
				done <- reg.RegisterTable(shardTestTable(t, name))
			}(name)
		}
		for i := 0; i < 2; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("concurrent registrations on different shards deadlocked")
			}
		}
		reg.Close()
	}
}

// TestCrossShardNoBlocking is the direct statement of the tentpole:
// with one table's shard held under its *write* lock (the worst case —
// an install or publication landing), queries against a table on
// another shard complete immediately, while queries on the locked shard
// provably wait.
func TestCrossShardNoBlocking(t *testing.T) {
	reg := NewRegistry(WithShards(4))
	defer reg.Close()
	a, b := twoShardNames(t, reg)
	for _, name := range []string{a, b} {
		if err := reg.RegisterTable(shardTestTable(t, name)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := reg.Build(context.Background(), shardBuild(name, 60, 1)); err != nil {
			t.Fatal(err)
		}
	}

	sh := reg.shardFor(a)
	sh.mu.Lock() // a writer owns a's shard for the whole check
	unblocked := make(chan error, 1)
	go func() {
		_, err := reg.Query(context.Background(), fmt.Sprintf("SELECT region, AVG(amount) FROM %s GROUP BY region", b),
			QueryOptions{Mode: ModeSample})
		unblocked <- err
	}()
	select {
	case err := <-unblocked:
		if err != nil {
			t.Errorf("query on %s failed: %v", b, err)
		}
	case <-time.After(5 * time.Second):
		t.Errorf("query on %s blocked behind a writer on %s's shard", b, a)
	}

	blocked := make(chan struct{})
	go func() {
		reg.Find(a, []string{"region"})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Errorf("Find on %s completed although its shard is write-locked", a)
	case <-time.After(50 * time.Millisecond):
		// still blocked: the lock really does cover a's shard
	}
	sh.mu.Unlock()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Find on a never completed after unlock")
	}
}

// TestTwoShardHammer runs the regression guard under -race: continuous
// fresh builds (write-lock traffic) on one shard while another shard's
// table is hammered with reads; every read must succeed and keep
// answering from its own table's sample.
func TestTwoShardHammer(t *testing.T) {
	reg := NewRegistry(WithShards(8))
	defer reg.Close()
	a, b := twoShardNames(t, reg)
	for _, name := range []string{a, b} {
		if err := reg.RegisterTable(shardTestTable(t, name)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := reg.Build(context.Background(), shardBuild(name, 60, 1)); err != nil {
			t.Fatal(err)
		}
	}
	sql := fmt.Sprintf("SELECT region, AVG(amount) FROM %s GROUP BY region", b)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) { // builders: distinct seeds force real installs on a's shard
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := reg.Build(context.Background(), shardBuild(a, 40+i%20, int64(100*w+i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func() { // readers on b's shard
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ans, err := reg.Query(context.Background(), sql, QueryOptions{Mode: ModeSample})
				if err != nil {
					t.Error(err)
					return
				}
				if ans.Entry == nil || ans.Entry.Table != b {
					t.Errorf("answer came from %v, want table %s", ans.Entry, b)
					return
				}
			}
		}()
	}
	wg.Wait()
}
