package serve

// The plan cache. Compiled physical plans (internal/plan) live beside
// the samples they serve: per shard, keyed by normalized SQL
// (sqlparse.Query.String() after canonicalizing FROM), compiled
// exactly once per key no matter how many queries race (the same
// singleflight discipline as sample builds), and evicted LRU beyond a
// per-shard cap. Plans are immutable, so eviction can never tear an
// in-flight execution — an executing goroutine keeps its own
// reference; the cache only forgets the key.
//
// Queries the planner rejects are cached too (a nil plan): the
// rejection is as stable as the plan would be, and caching it keeps
// the interpreter fallback from re-running Compile per request.

import (
	"math"
	"sync/atomic"

	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// DefaultMaxPlans is the registry-wide compiled-plan cap unless
// WithMaxPlans overrides it. Plans are small (closures and slot
// indexes, no row data), so the default is generous; the cap exists to
// bound adversarial workloads that never repeat a query.
const DefaultMaxPlans = 4096

// WithMaxPlans bounds the number of resident compiled plans across the
// registry (minimum 1 per shard); least-recently-used plans are
// evicted first. n <= 0 keeps DefaultMaxPlans.
func WithMaxPlans(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.maxPlans = n
		}
	}
}

// planEntry is one cached compilation outcome: a plan, or nil when the
// planner rejected the query (interpreter fallback, cached so the
// rejection is not re-derived per request).
type planEntry struct {
	plan     *plan.Plan
	lastUsed atomic.Int64
}

// planCall is one in-flight singleflight compilation. Waiters block on
// done and then read entry, which the compiler sets before closing.
type planCall struct {
	done  chan struct{}
	entry *planEntry
}

// planShardCap is the per-shard resident-plan cap derived from the
// registry-wide bound.
func (r *Registry) planShardCap() int {
	cap := r.maxPlans / len(r.shards)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// planFor returns the compiled plan for q against tbl, or nil when the
// query is served by the interpreter. q.From must already be
// canonicalized to tbl.Name (Query does this), so the normalized SQL
// is casing-stable and lands on the table's own shard.
func (r *Registry) planFor(tbl *table.Table, q *sqlparse.Query) *plan.Plan {
	key := q.String()
	sh := r.shardFor(tbl.Name)

	sh.mu.RLock()
	pe, ok := sh.plans[key]
	sh.mu.RUnlock()
	if ok {
		r.touchPlan(pe)
		r.metrics.planCacheHits.Inc()
		return pe.plan
	}

	sh.mu.Lock()
	if pe, ok := sh.plans[key]; ok {
		sh.mu.Unlock()
		r.touchPlan(pe)
		r.metrics.planCacheHits.Inc()
		return pe.plan
	}
	if c, ok := sh.planFlight[key]; ok {
		sh.mu.Unlock()
		<-c.done
		r.touchPlan(c.entry)
		r.metrics.planCacheHits.Inc()
		return c.entry.plan
	}
	c := &planCall{done: make(chan struct{})}
	sh.planFlight[key] = c
	sh.mu.Unlock()
	r.metrics.planCacheMisses.Inc()

	// Compile outside the lock; a panicking compile degrades to the
	// interpreter (cached as a rejection) instead of wedging the key.
	pe = &planEntry{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				pe.plan = nil
			}
		}()
		if compiled, err := plan.Compile(tbl, q); err == nil {
			pe.plan = compiled
		}
	}()
	r.planCompiles.Add(1)
	pe.lastUsed.Store(r.useClock.Add(1))

	var evicted int64
	sh.mu.Lock()
	delete(sh.planFlight, key)
	sh.plans[key] = pe
	for limit := r.planShardCap(); len(sh.plans) > limit; {
		victim := ""
		oldest := int64(math.MaxInt64)
		for k, e := range sh.plans {
			if k == key {
				continue // never evict the entry just installed
			}
			if lu := e.lastUsed.Load(); lu < oldest || (lu == oldest && (victim == "" || k < victim)) {
				oldest, victim = lu, k
			}
		}
		if victim == "" {
			break
		}
		delete(sh.plans, victim)
		evicted++
	}
	sh.mu.Unlock()
	c.entry = pe
	close(c.done)
	if evicted > 0 {
		r.planEvictions.Add(evicted)
		r.metrics.planEvictions.Add(evicted)
	}
	return pe.plan
}

// touchPlan stamps the plan's LRU clock.
func (r *Registry) touchPlan(pe *planEntry) {
	pe.lastUsed.Store(r.useClock.Add(1))
}

// PlanCompiles returns how many plan compilations have actually run —
// cache hits and singleflight waiters do not count. Ops surface and
// the dedup tests' observable.
func (r *Registry) PlanCompiles() int64 { return r.planCompiles.Load() }

// PlanEvictions returns how many cached plans have been evicted.
func (r *Registry) PlanEvictions() int64 { return r.planEvictions.Load() }

// PlanCount returns the number of resident cached plans (rejections
// included), the repro_plans gauge.
func (r *Registry) PlanCount() int {
	var n int
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.plans)
		sh.mu.RUnlock()
	}
	return n
}
