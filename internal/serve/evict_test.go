package serve_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/table"
)

// evictTable builds a small named table with a deterministic region/
// amount shape (every region present enough for any budget).
func evictTable(t *testing.T, name string, rows int) *table.Table {
	t.Helper()
	tbl := table.New(name, table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	regions := []string{"NA", "EU", "APAC"}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(regions[i%len(regions)], float64(i%13)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func evictBuild(name string, budget int) serve.BuildRequest {
	return serve.BuildRequest{
		Table: name,
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		Budget: budget,
		Seed:   3,
	}
}

// entryTables reports which tables currently have a resident sample.
func entryTables(reg *serve.Registry) map[string]bool {
	out := make(map[string]bool)
	for _, e := range reg.Entries() {
		out[e.Table] = true
	}
	return out
}

// Eviction order: never-hit entries go first (oldest install first
// among them); entries Find has selected are protected until no
// never-hit entry is left.
func TestEvictionOrderHitsInformedLRU(t *testing.T) {
	// budget sized below four samples so the fourth install must evict;
	// one shard makes the walk order irrelevant to the assertion
	reg := serve.NewRegistry(serve.WithShards(1), serve.WithMaxSampleBytes(1))
	defer reg.Close()
	names := []string{"ta", "tb", "tc", "td"}
	for _, n := range names {
		if err := reg.RegisterTable(evictTable(t, n, 300)); err != nil {
			t.Fatal(err)
		}
	}
	// learn one sample's charged size with an unreachable budget in
	// place (max=1 evicts this probe immediately after install)
	probe, _, err := reg.Build(context.Background(), evictBuild("ta", 60))
	if err != nil {
		t.Fatal(err)
	}
	if probe.SizeBytes() <= 0 {
		t.Fatalf("entry size %d, want > 0", probe.SizeBytes())
	}
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("probe build should have been evicted (budget 1 byte), got %d evictions", got)
	}
	if got := reg.ResidentSampleBytes(); got != 0 {
		t.Fatalf("resident bytes %d after probe eviction, want 0", got)
	}

	// real run: room for three samples, not four
	reg = serve.NewRegistry(serve.WithShards(1), serve.WithMaxSampleBytes(3*probe.SizeBytes()))
	defer reg.Close()
	for _, n := range names {
		if err := reg.RegisterTable(evictTable(t, n, 300)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range names[:3] { // install ta, tb, tc (in that order)
		if _, _, err := reg.Build(context.Background(), evictBuild(n, 60)); err != nil {
			t.Fatal(err)
		}
	}
	// touch ta and tc; tb stays never-hit
	for _, n := range []string{"ta", "tc"} {
		if _, ok := reg.Find(n, []string{"region"}); !ok {
			t.Fatalf("no sample found for %s", n)
		}
	}
	if _, _, err := reg.Build(context.Background(), evictBuild("td", 60)); err != nil { // forces one eviction
		t.Fatal(err)
	}
	have := entryTables(reg)
	if have["tb"] {
		t.Fatalf("tb (never hit, oldest) should have been evicted; resident: %v", have)
	}
	for _, n := range []string{"ta", "tc", "td"} {
		if !have[n] {
			t.Fatalf("%s should have survived; resident: %v", n, have)
		}
	}
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("got %d evictions, want 1", got)
	}

	// once every survivor is proven hot, a new never-hit build is
	// itself the least valuable entry and gives way immediately
	if _, ok := reg.Find("td", []string{"region"}); !ok {
		t.Fatal("no sample found for td")
	}
	if _, _, err := reg.Build(context.Background(), evictBuild("tb", 60)); err != nil {
		t.Fatal(err)
	}
	have = entryTables(reg)
	if have["tb"] {
		t.Fatalf("fresh never-hit tb should lose to the hot residents; resident: %v", have)
	}
	for _, n := range []string{"ta", "tc", "td"} {
		if !have[n] {
			t.Fatalf("hot entry %s must not be evicted for a cold newcomer; resident: %v", n, have)
		}
	}

	// an evicted key is a cache miss, not an error: the same request
	// rebuilds (and Builds counts the real sampler runs)
	builds := reg.Builds()
	if _, cached, err := reg.Build(context.Background(), evictBuild("tb", 60)); err != nil || cached {
		t.Fatalf("evicted key should rebuild fresh (cached=%v err=%v)", cached, err)
	}
	if got := reg.Builds(); got != builds+1 {
		t.Fatalf("rebuild after eviction should run the sampler (builds %d -> %d)", builds, got)
	}
}

// A sample kept warm through the Build cache path alone (re-registered
// each time, queried out-of-band) must count as reused — otherwise the
// byte budget would evict the hottest build-path entry first and turn
// every re-register into a full rebuild.
func TestCachedBuildsCountAsReuse(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1))
	defer reg.Close()
	for _, n := range []string{"ta", "tb"} {
		if err := reg.RegisterTable(evictTable(t, n, 300)); err != nil {
			t.Fatal(err)
		}
	}
	warm, _, err := reg.Build(context.Background(), evictBuild("ta", 60))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // keep ta warm via Build alone
		if _, cached, err := reg.Build(context.Background(), evictBuild("ta", 60)); err != nil || !cached {
			t.Fatalf("re-register should hit the cache (cached=%v err=%v)", cached, err)
		}
	}
	if got := warm.Hits.Load(); got != 3 {
		t.Fatalf("cached builds recorded %d hits, want 3", got)
	}

	// now bound the registry and re-create the scenario: warm-via-Build
	// ta, never-touched tb, pressure from tc — tb must go first
	probeSize := warm.SizeBytes()
	reg = serve.NewRegistry(serve.WithShards(1), serve.WithMaxSampleBytes(2*probeSize))
	defer reg.Close()
	for _, n := range []string{"ta", "tb", "tc"} {
		if err := reg.RegisterTable(evictTable(t, n, 300)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"ta", "tb"} {
		if _, _, err := reg.Build(context.Background(), evictBuild(n, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if _, cached, err := reg.Build(context.Background(), evictBuild("ta", 60)); err != nil || !cached {
		t.Fatalf("warming build should be cached (cached=%v err=%v)", cached, err)
	}
	if _, _, err := reg.Build(context.Background(), evictBuild("tc", 60)); err != nil { // forces one eviction
		t.Fatal(err)
	}
	have := entryTables(reg)
	if have["tb"] || !have["ta"] {
		t.Fatalf("never-reused tb should be evicted before Build-warmed ta; resident: %v", have)
	}
}

// The acceptance-criterion test: across a build-heavy workload the
// resident byte estimate never exceeds the configured budget, the
// per-entry sizes always sum to the reported total, and evictions are
// actually happening.
func TestByteBudgetHeldUnderBuildHeavyWorkload(t *testing.T) {
	const names = 6
	probeReg := serve.NewRegistry()
	defer probeReg.Close()
	if err := probeReg.RegisterTable(evictTable(t, "t0", 400)); err != nil {
		t.Fatal(err)
	}
	probe, _, err := probeReg.Build(context.Background(), evictBuild("t0", 80))
	if err != nil {
		t.Fatal(err)
	}
	budget := 4 * probe.SizeBytes() // room for ~4 of the largest samples

	reg := serve.NewRegistry(serve.WithMaxSampleBytes(budget))
	defer reg.Close()
	for i := 0; i < names; i++ {
		if err := reg.RegisterTable(evictTable(t, fmt.Sprintf("t%d", i), 400)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 8; round++ {
		for i := 0; i < names; i++ {
			req := evictBuild(fmt.Sprintf("t%d", i), 40+10*(round%5))
			req.Seed = int64(1 + round) // distinct keys: every build is fresh
			if _, _, err := reg.Build(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			if got := reg.ResidentSampleBytes(); got > budget {
				t.Fatalf("resident %d bytes exceeds budget %d after round %d", got, budget, round)
			}
			var sum int64
			for _, e := range reg.Entries() {
				sum += e.SizeBytes()
			}
			if got := reg.ResidentSampleBytes(); sum != got {
				t.Fatalf("entry sizes sum to %d but registry reports %d resident", sum, got)
			}
		}
	}
	if reg.Evictions() == 0 {
		t.Fatal("build-heavy workload over budget should have evicted something")
	}
	if reg.EvictedBytes() <= 0 {
		t.Fatal("evicted bytes should be positive")
	}
}

// Live streaming generations are pinned: static samples around them
// evict, the streaming entry survives any pressure — even a budget it
// alone exceeds.
func TestStreamingEntriesPinnedAgainstEviction(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1), serve.WithMaxSampleBytes(1))
	defer reg.Close()
	if err := reg.RegisterStreamingTable(salesTable(t), streamCfg(120)); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterTable(evictTable(t, "static", 300)); err != nil {
		t.Fatal(err)
	}
	// the streaming generation alone dwarfs the 1-byte budget, yet must
	// stay resident
	if _, _, err := reg.Build(context.Background(), evictBuild("static", 50)); err != nil {
		t.Fatal(err)
	}
	entries := reg.Entries()
	if len(entries) != 1 || entries[0].Generation == 0 {
		t.Fatalf("only the pinned streaming generation should survive, got %d entries", len(entries))
	}
	if e, ok := reg.Find("sales", []string{"region"}); !ok || e.Generation == 0 {
		t.Fatal("pinned streaming sample must stay findable")
	}
	if reg.Evictions() == 0 {
		t.Fatal("the static sample should have been evicted")
	}
	// refreshes keep the pin on the new generation
	if _, err := reg.Append("sales", streamRows(0, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	if e, ok := reg.Find("sales", []string{"region"}); !ok || e.Generation < 2 {
		t.Fatal("refreshed streaming generation must stay resident and findable")
	}
}
