// Package serve turns the batch CVOPT pipeline into a resident,
// concurrent sample-serving subsystem: the build-once/query-many shape
// the paper's offline/online split (Section 4) implies. A Registry owns
// read-only tables and immutable built samples keyed by (table,
// workload, budget); building is deduplicated singleflight-style (one
// goroutine builds, concurrent requesters wait for the same result) and
// the query path takes only a read lock, so any number of queries
// answer in parallel off the same shared sample.
//
// The registry is *sharded* by table name (shard.go): each shard owns
// the tables, built samples, in-flight builds and streaming state of
// the tables that hash to it, behind its own RWMutex. A heavy build or
// stream refresh on one table therefore never contends with queries on
// a table in another shard. Resident sample memory is bounded by an
// optional byte budget with hits-informed LRU eviction (evict.go).
//
// The HTTP front end lives in server.go; cmd/cvserve is the binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// BuildRequest identifies one sample to build: the workload it must
// serve and the row budget it may spend. Equal requests (same table,
// canonically-equal workload, same budget and options) share one built
// sample.
type BuildRequest struct {
	// Table is the name of a table previously registered with
	// RegisterTable.
	Table string
	// Queries is the workload the sample must serve (Section 4.3).
	Queries []core.QuerySpec
	// Budget is the row budget M. Exactly one of Budget and TargetCV
	// must be set.
	Budget int
	// TargetCV, when positive, autoscales the budget instead: the
	// registry searches for the smallest budget whose predicted worst
	// per-group CV meets the target (core.Plan.Autoscale) and builds at
	// that budget. Mutually exclusive with Budget.
	TargetCV float64
	// MaxBudget caps an autoscaled search (0 = the table's row count).
	// When the cap cannot meet the target the entry is built best-effort
	// at the cap, with Entry.TargetMet false and Entry.AchievedCV
	// reporting the guarantee actually obtained. Only meaningful with
	// TargetCV.
	MaxBudget int
	// Opts selects the norm and allocation repair (zero value = ℓ2).
	Opts core.Options
	// Seed seeds the sampling RNG; 0 derives a deterministic seed from
	// the request key so identical requests build identical samples.
	Seed int64
}

// canonQueries canonicalizes a workload for key purposes. Query order
// is normalized away; names are %q-quoted throughout so a column
// containing a delimiter (",", "|", ...) cannot collide two workloads
// onto one key. Shared by static build keys and streaming table keys.
func canonQueries(queries []core.QuerySpec) string {
	specs := make([]string, len(queries))
	for i, q := range queries {
		aggs := make([]string, len(q.Aggs))
		for j, a := range q.Aggs {
			var gw []string
			for k, v := range a.GroupWeights {
				gw = append(gw, fmt.Sprintf("%q=%g", k, v))
			}
			sort.Strings(gw)
			// render the effective weight (zero means 1, per
			// AggColumn.weightFor) so omitted and explicit defaults
			// share one sample
			w := a.Weight
			if w == 0 {
				w = 1
			}
			aggs[j] = fmt.Sprintf("%q*%g{%s}", a.Column, w, strings.Join(gw, ","))
		}
		sort.Strings(aggs)
		// group-by is a set for stratification purposes: ["a","b"] and
		// ["b","a"] must share one sample
		gb := make([]string, len(q.GroupBy))
		for j, a := range q.GroupBy {
			gb[j] = fmt.Sprintf("%q", a)
		}
		sort.Strings(gb)
		specs[i] = strings.Join(gb, ",") + "|" + strings.Join(aggs, ";")
	}
	sort.Strings(specs)
	return strings.Join(specs, "&")
}

// key canonicalizes the request into the registry cache key. The norm
// options and seed are folded in because they change the allocation or
// the drawn rows — two requests differing only in explicit seed must
// build two samples.
func (b BuildRequest) key() string {
	// normalize option defaults the same way the sampler reads them
	// (core.Options.minPerStratum: 0 means 1, negative disables; P is
	// ignored outside Lp) so equivalent requests share one key
	min := b.Opts.MinPerStratum
	switch {
	case min < 0:
		min = 0
	case min == 0:
		min = 1
	}
	p := 0.0
	if b.Opts.Norm == core.Lp {
		p = b.Opts.P
	}
	// autoscaled requests key on the *target* (and its cap), not the
	// budget the search will choose: the chosen budget is an output, and
	// two callers asking for the same accuracy must share one sample —
	// including while the first build is still in flight (singleflight
	// dedups on this key)
	sizing := fmt.Sprintf("m=%d", b.Budget)
	if b.TargetCV > 0 {
		sizing = fmt.Sprintf("tcv=%g,maxm=%d", b.TargetCV, b.MaxBudget)
	}
	return fmt.Sprintf("%q/%s/norm=%d,p=%g,min=%d,seed=%d/%s",
		b.Table, sizing, b.Opts.Norm, p, min,
		b.Seed, canonQueries(b.Queries))
}

// Entry is one immutable built sample held by a Registry. All fields
// except the Hits and lastUsed counters are read-only after
// publication; the sample's Rows/Weights slices must not be mutated.
// Streaming tables replace their entry wholesale on refresh (never
// mutate it), so a query that picked up an entry keeps a complete,
// self-consistent generation no matter how many refreshes land while it
// runs.
type Entry struct {
	// Key is the canonical registry key (table, workload, budget, norm).
	Key string
	// Table is the source table name.
	Table string
	// Budget is the row budget M the sample was built at — the caller's
	// for explicit builds, the autoscaler's choice for TargetCV builds.
	Budget int
	// TargetCV is the per-group CV goal of an autoscaled build (0 for
	// explicit-budget builds).
	TargetCV float64
	// AchievedCV is the predicted worst per-group CV at Budget
	// (autoscaled builds only; +Inf when even MaxBudget leaves a needed
	// stratum unsampled).
	AchievedCV float64
	// TargetMet reports whether AchievedCV met TargetCV; false means
	// MaxBudget bound the search and the entry is best-effort.
	TargetMet bool
	// Queries is the workload the sample was optimized for.
	Queries []core.QuerySpec
	// Opts are the build options.
	Opts core.Options
	// Sample is the built weighted row sample.
	Sample *samplers.RowSample
	// BuiltAt and BuildDuration record when and how long the build ran.
	BuiltAt       time.Time
	BuildDuration time.Duration
	// Generation is the streaming publication number that produced this
	// entry (1, 2, 3, ... per streaming table; 0 for static builds).
	Generation uint64
	// Hits counts the entry's reuses: every time Find selects it to
	// answer a query and every time Build returns it from the cache —
	// the reuse signal eviction orders by. Carried across streaming
	// refreshes of the same key.
	Hits atomic.Int64

	// lastUsed is the registry's logical LRU clock value at the last
	// Find selection (stamped once at install, so never-hit entries
	// order by install time among themselves).
	lastUsed atomic.Int64
	// size is the entry's resident-byte estimate (see entrySizeBytes),
	// fixed at install.
	size int64

	attrs map[string]bool // union of group-by attributes, for coverage
	// snapshot is the immutable table cut the sample's row ids index
	// (streaming entries only; nil means "use the registered table").
	snapshot *table.Table
	// popRows is the population row count the sample — and any autoscale
	// guarantee — was computed over, fixed at build.
	popRows int
	// cvStale flips once appended data outgrew popRows: the autoscale
	// guarantee no longer describes the table being answered from, so
	// target_met renders false. Atomic because stream publications flip
	// it while queries read.
	cvStale atomic.Bool
}

// GuaranteeStale reports whether appended data has outgrown the
// population this entry's autoscale guarantee was computed over.
// Always false for non-autoscaled entries and for streaming entries
// (each publication re-derives its guarantee).
func (e *Entry) GuaranteeStale() bool { return e.cvStale.Load() }

// SizeBytes is the entry's resident-memory estimate charged against the
// registry's sample byte budget: sample rows × row width (see
// entrySizeBytes in evict.go).
func (e *Entry) SizeBytes() int64 { return e.size }

// execTable returns the table the entry's sample must be evaluated
// against: its own snapshot for streaming entries (the sample's row ids
// index that exact cut), the registered table otherwise.
func (e *Entry) execTable(registered *table.Table) *table.Table {
	if e.snapshot != nil {
		return e.snapshot
	}
	return registered
}

// Covers reports whether the sample's stratification covers a query
// grouping by the given attributes (every queried attribute is one of
// the sample's stratification attributes, so every group of the query
// is a union of strata and the weighted estimate is well-formed).
func (e *Entry) Covers(groupBy []string) bool {
	for _, a := range groupBy {
		if !e.attrs[a] {
			return false
		}
	}
	return true
}

// GroupAttrs returns the sorted union of the entry's stratification
// attributes.
func (e *Entry) GroupAttrs() []string {
	out := make([]string, 0, len(e.attrs))
	for a := range e.attrs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// buildCall is one in-flight singleflight build. Waiters block on done
// and then read entry/err, which the builder sets before closing done.
type buildCall struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// Option configures a Registry at construction.
type Option func(*Registry)

// DefaultShards is the shard count NewRegistry uses unless WithShards
// overrides it. Sixteen keeps per-shard maps tiny while spreading
// unrelated tables across enough locks that builds and queries on
// different tables effectively never share one.
const DefaultShards = 16

// WithShards sets the shard count (minimum 1). More shards mean less
// cross-table lock sharing; tables land on shards by name hash, so the
// count is fixed for the registry's lifetime.
func WithShards(n int) Option {
	return func(r *Registry) {
		if n > 0 {
			r.shards = make([]*shard, n)
		}
	}
}

// WithMaxSampleBytes bounds the registry's resident sample memory:
// whenever the total estimated size of built samples (Entry.SizeBytes)
// exceeds max, least-valuable entries are evicted — never-hit entries
// first, then least-recently-used — until the total is back under
// budget. Entries pinned by a live streaming table are never evicted.
// max <= 0 (the default) disables eviction.
func WithMaxSampleBytes(max int64) Option {
	return func(r *Registry) { r.maxSampleBytes = max }
}

// Registry is the concurrent sample store: read-only tables plus
// immutable built samples, sharded by table name. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use;
// reads (Table/Find/Entries/Query) share their shard's RLock while
// builds are deduplicated so each distinct key is built exactly once no
// matter how many requesters race.
type Registry struct {
	shards []*shard

	// maxSampleBytes is the resident sample budget (0 = unbounded);
	// fixed at construction. residentBytes tracks the current total
	// across shards; useClock is the logical LRU clock Find advances.
	maxSampleBytes int64
	residentBytes  atomic.Int64
	useClock       atomic.Int64
	evictMu        sync.Mutex // one evictor at a time
	evictions      atomic.Int64
	evictedBytes   atomic.Int64

	// regMu serializes table registrations (static and streaming).
	// Registration must check the name against *every* shard and then
	// install into one; doing that with only shard locks would either
	// race the check against a concurrent registration or acquire shard
	// locks in name-hash order and deadlock. Under regMu the scan takes
	// one shard read lock at a time with nothing else held. Ordering:
	// regMu is always taken before any shard lock, never the reverse.
	regMu sync.Mutex

	defMu          sync.Mutex
	streamDefaults ingest.Policy

	builds    atomic.Int64
	refreshes atomic.Int64
	closed    atomic.Bool

	// maxPlans bounds the resident compiled-plan cache (plancache.go);
	// planCompiles and planEvictions are its activity counters.
	maxPlans      int
	planCompiles  atomic.Int64
	planEvictions atomic.Int64

	// obs is the registry's metrics registry (exposed at GET /metrics);
	// metrics holds the resolved handles the hot paths increment. Both
	// are created unconditionally — observing an unscrapped registry
	// costs one atomic add per event.
	obs     *obs.Registry
	metrics *srvMetrics

	// persist is the optional durability layer (persist.go): WAL-backed
	// streaming tables plus spilled static samples. nil without
	// WithPersistence.
	persist *persister
}

// NewRegistry returns an empty registry with DefaultShards shards and
// no sample byte budget; see WithShards and WithMaxSampleBytes.
func NewRegistry(opts ...Option) *Registry {
	r := &Registry{shards: make([]*shard, DefaultShards), maxPlans: DefaultMaxPlans}
	for _, o := range opts {
		o(r)
	}
	for i := range r.shards {
		r.shards[i] = newShard()
	}
	r.obs = obs.NewRegistry()
	r.metrics = newSrvMetrics(r.obs, r)
	return r
}

// Shards returns the registry's shard count (ops surface).
func (r *Registry) Shards() int { return len(r.shards) }

// Obs returns the registry's metrics registry — the store behind
// GET /metrics. The server and the debug listener mount its handler;
// callers embedding a Registry directly can scrape or render it
// themselves.
func (r *Registry) Obs() *obs.Registry { return r.obs }

// RegisterTable adds a table to the registry. The registry and its
// queries treat the table as immutable from this point on; registering
// a second table under the same name is an error (samples already built
// against it would silently go stale).
func (r *Registry) RegisterTable(tbl *table.Table) error {
	if tbl == nil || tbl.Name == "" {
		return fmt.Errorf("serve: table must be non-nil and named")
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	if err := r.checkNameFree(tbl.Name); err != nil {
		return err
	}
	sh := r.shardFor(tbl.Name)
	sh.mu.Lock()
	sh.tables[tbl.Name] = tbl
	sh.mu.Unlock()
	return nil
}

// checkNameFree rejects a table name already taken by a registered
// table or an in-flight streaming registration, in any shard. The check
// is case-insensitive to match resolution: "Sales" and "sales" would
// otherwise register side by side and resolve nondeterministically.
// Caller holds r.regMu (which makes the scan-then-install sequence
// atomic against other registrations) and NO shard lock; the scan takes
// one shard read lock at a time.
func (r *Registry) checkNameFree(name string) error {
	for _, sh := range r.shards {
		sh.mu.RLock()
		err := sh.checkNameFreeLocked(name)
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Table returns the registered table with the given name. The match is
// case-insensitive, like the executor's FROM check. For a streaming
// table this is the latest published snapshot — queries see the data as
// of the last refresh, never a half-appended buffer.
func (r *Registry) Table(name string) (*table.Table, bool) {
	sh := r.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, _ := sh.tableLocked(name)
	return t, t != nil
}

// TableNames returns the sorted names of all registered tables.
func (r *Registry) TableNames() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for n := range sh.tables {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Build returns the sample for req, building it if no equal request has
// been built before. The cached result reports whether the sample came
// from the cache (including waiting on another goroutine's in-flight
// build of the same key). Concurrent Builds of the same key run the
// expensive CVOPT pass exactly once. The build runs synchronously on
// the caller's goroutine — the registry spawns nothing, so Close has no
// static builds to cancel (see Close). ctx carries the request's trace
// (obs.TraceFromContext), whose phases time the singleflight wait, the
// autoscale search and the draw; the build itself is not cancelable —
// a built sample is installed for the next caller even when the
// requester has gone away.
func (r *Registry) Build(ctx context.Context, req BuildRequest) (entry *Entry, cached bool, err error) {
	switch {
	case req.TargetCV > 0 && req.Budget != 0:
		return nil, false, fmt.Errorf("serve: target CV and budget are mutually exclusive (got target %g and budget %d)",
			req.TargetCV, req.Budget)
	case req.TargetCV < 0 || math.IsNaN(req.TargetCV) || math.IsInf(req.TargetCV, 1):
		return nil, false, fmt.Errorf("serve: target CV must be positive and finite, got %v", req.TargetCV)
	case req.TargetCV == 0 && req.Budget <= 0:
		return nil, false, fmt.Errorf("serve: budget must be positive, got %d", req.Budget)
	case req.MaxBudget < 0 || (req.MaxBudget > 0 && req.TargetCV == 0):
		return nil, false, fmt.Errorf("serve: max budget is the autoscale cap; it requires a target CV")
	}
	if len(req.Queries) == 0 {
		return nil, false, fmt.Errorf("serve: build request has no queries")
	}
	// resolve the table first (case-insensitively, like every other
	// entry point) and canonicalize its name so the cache key cannot
	// fork on casing — and so the key lands on the table's own shard
	tbl, ok := r.Table(req.Table)
	if !ok {
		return nil, false, fmt.Errorf("serve: unknown table %q", req.Table)
	}
	req.Table = tbl.Name
	key := req.key()
	sh := r.shardFor(tbl.Name)

	// cache-hit fast path under the read lock: idempotent re-registers
	// (the steady state of build-once/query-many) must not serialize
	// against concurrent queries. Cached returns count as reuse — an
	// entry kept warm through Build alone must not look idle to the
	// evictor.
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if ok {
		r.touch(e)
		r.metrics.buildCacheHits.Inc()
		return e, true, nil
	}

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		r.touch(e)
		r.metrics.buildCacheHits.Inc()
		return e, true, nil
	}
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		r.metrics.inflightWaits.Inc()
		// the open phase is closed by whatever the caller does next
		// (exec, encode), which is exactly the wait's extent
		obs.TraceFromContext(ctx).Phase("build_wait")
		<-c.done
		if c.err == nil {
			r.touch(c.entry)
		}
		return c.entry, true, c.err
	}
	c := &buildCall{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()
	r.metrics.buildCacheMisses.Inc()

	// Cleanup runs deferred so a panicking build still releases its
	// waiters and un-wedges the key (the panic is converted to the
	// call's error rather than left to kill a waiter-visible state).
	defer func() {
		if p := recover(); p != nil {
			c.entry, c.err = nil, fmt.Errorf("serve: building %s: panic: %v", key, p)
			entry, err = nil, c.err
		}
		sh.mu.Lock()
		delete(sh.inflight, key)
		if c.err == nil {
			sh.entries[key] = c.entry
			r.residentBytes.Add(c.entry.size)
		}
		sh.mu.Unlock()
		close(c.done)
		if c.err == nil {
			r.maybeEvict()
		}
	}()

	// The expensive part runs outside the lock: the shard stays
	// readable (and other keys buildable) while CVOPT allocates and
	// draws. A spilled sample from a previous process warms the key
	// without rebuilding; fresh builds spill for the next restart.
	if e, ok := r.loadSpilled(key, tbl); ok {
		c.entry = e
		return c.entry, true, nil
	}
	c.entry, c.err = r.buildEntry(ctx, key, tbl, req)
	if c.err == nil {
		r.saveSpilled(c.entry, tbl)
	}
	return c.entry, false, c.err
}

// buildEntry runs the actual sampler — for autoscaled requests, after
// the budget search has chosen the smallest sufficient budget. Failed
// builds are not cached, so a later corrected request retries.
func (r *Registry) buildEntry(ctx context.Context, key string, tbl *table.Table, req BuildRequest) (*Entry, error) {
	seed := req.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(key))
		seed = int64(h.Sum64() >> 1)
	}
	r.builds.Add(1)
	r.metrics.builds.Inc()
	tr := obs.TraceFromContext(ctx)
	start := time.Now()
	var (
		rs  *samplers.RowSample
		e   = &Entry{Key: key, Table: tbl.Name, Budget: req.Budget, Queries: req.Queries, Opts: req.Opts, popRows: tbl.NumRows()}
		err error
	)
	if req.TargetCV > 0 {
		// one plan serves both the budget search and the draw: the
		// statistics pass runs once, the search is pure evaluation
		tr.Phase("autoscale")
		plan, perr := core.NewPlan(tbl, req.Queries)
		if perr != nil {
			return nil, fmt.Errorf("serve: building %s: %w", key, perr)
		}
		res, aerr := plan.Autoscale(core.AutoscaleParams{
			TargetCV:  req.TargetCV,
			MaxBudget: req.MaxBudget,
			Opts:      req.Opts,
		})
		if aerr != nil {
			return nil, fmt.Errorf("serve: building %s: %w", key, aerr)
		}
		r.metrics.autoscaleProbes.Add(int64(res.Evaluations))
		tr.Phase("draw")
		ss, _, serr := plan.Sample(res.Budget, req.Opts, rand.New(rand.NewSource(seed)))
		if serr != nil {
			return nil, fmt.Errorf("serve: building %s: %w", key, serr)
		}
		rows, weights := core.RowWeights(ss)
		rs = &samplers.RowSample{Rows: rows, Weights: weights}
		e.Budget = res.Budget
		e.TargetCV, e.AchievedCV, e.TargetMet = req.TargetCV, res.AchievedCV, res.Met
	} else {
		tr.Phase("draw")
		s := &samplers.CVOPT{Opts: req.Opts}
		rs, err = s.Build(tbl, req.Queries, req.Budget, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, fmt.Errorf("serve: building %s: %w", key, err)
		}
	}
	attrs := make(map[string]bool)
	for _, q := range req.Queries {
		for _, a := range q.GroupBy {
			attrs[a] = true
		}
	}
	e.Sample = rs
	e.BuiltAt = start
	e.BuildDuration = time.Since(start)
	r.metrics.buildDuration.Observe(e.BuildDuration)
	e.attrs = attrs
	e.size = entrySizeBytes(rs, tbl.Schema())
	e.lastUsed.Store(r.useClock.Add(1))
	return e, nil
}

// Builds returns how many sampler builds have actually executed —
// deduplicated or cached requests do not count. Exposed for ops
// (/healthz) and for the dedup tests.
func (r *Registry) Builds() int64 { return r.builds.Load() }

// Refreshes returns how many streaming publications (initial
// registrations included) have been installed.
func (r *Registry) Refreshes() int64 { return r.refreshes.Load() }

// TotalHits sums the hit counters of all resident entries — the
// aggregate sample-reuse signal /healthz reports.
func (r *Registry) TotalHits() int64 {
	var total int64
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			total += e.Hits.Load()
		}
		sh.mu.RUnlock()
	}
	return total
}

// Counts returns the number of registered tables and built samples
// without materializing snapshots (the /healthz hot path).
func (r *Registry) Counts() (tables, samples int) {
	for _, sh := range r.shards {
		sh.mu.RLock()
		tables += len(sh.tables)
		samples += len(sh.entries)
		sh.mu.RUnlock()
	}
	return tables, samples
}

// Entries returns a sorted snapshot of all built samples.
func (r *Registry) Entries() []*Entry {
	var out []*Entry
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, e := range sh.entries {
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Find selects the best built sample of the named table covering a
// query over the given group-by attributes: among covering entries it
// prefers the tightest stratification (fewest attributes beyond the
// query's), then *live* entries over static ones (a streaming entry
// refreshes with the table, while a static sample of a now-streaming
// table is frozen at its build-time snapshot and would silently hide
// appended rows forever), then the largest budget (most rows, lowest
// error), then key order for determinism. A hit is recorded on the
// selected entry — the reuse count /v1/samples and /healthz surface and
// eviction orders by — and its LRU clock is stamped. Only the table's
// own shard is touched, so Finds on different tables never contend.
func (r *Registry) Find(tableName string, groupBy []string) (*Entry, bool) {
	sh := r.shardFor(tableName)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	better := func(a, b *Entry) bool { // is a a better answer source than b
		ea, eb := len(a.attrs)-len(groupBy), len(b.attrs)-len(groupBy)
		if ea != eb {
			return ea < eb
		}
		if live, bLive := a.Generation > 0, b.Generation > 0; live != bLive {
			return live
		}
		if a.Budget != b.Budget {
			return a.Budget > b.Budget
		}
		return a.Key < b.Key
	}
	var best *Entry
	for _, e := range sh.entries {
		if !strings.EqualFold(e.Table, tableName) || !e.Covers(groupBy) {
			continue
		}
		if best == nil || better(e, best) {
			best = e
		}
	}
	if best != nil {
		r.touch(best)
		r.metrics.findHits.Inc()
	} else {
		r.metrics.findMisses.Inc()
	}
	return best, best != nil
}

// touch records one reuse of e — a Find selection or a cached Build
// return — for the eviction signals: the hit counter and the LRU
// clock.
func (r *Registry) touch(e *Entry) {
	e.Hits.Add(1)
	e.lastUsed.Store(r.useClock.Add(1))
}

// QueryMode selects how Query answers.
type QueryMode int

// Query modes: auto prefers a covering sample and falls back to exact
// execution; the other two force one path.
const (
	ModeAuto QueryMode = iota
	ModeSample
	ModeExact
)

// ExecutorChoice selects the execution engine for one Query call.
type ExecutorChoice int

// Executor choices: auto runs the compiled columnar plan when the
// query is plannable (falling back to the interpreter otherwise);
// ExecInterpreted forces the row interpreter — the reference oracle —
// which the differential tests and benchmarks pin against.
const (
	ExecAuto ExecutorChoice = iota
	ExecInterpreted
)

// QueryOptions tunes one Query call.
type QueryOptions struct {
	Mode QueryMode
	// Executor selects the execution engine (default ExecAuto: the
	// compiled columnar plan when available).
	Executor ExecutorChoice
	// Compare additionally runs the exact query so the caller can report
	// true per-group errors next to the estimates. Ignored when the
	// answer is already exact.
	Compare bool
	// TargetCV, when positive, answers from an *autoscaled* sample: the
	// query's own group-by and aggregated columns become the workload of
	// a TargetCV build (cached and singleflighted like any build, so
	// concurrent queries for the same table, workload and target share
	// one search), and the answer carries that entry's AchievedCV and
	// chosen Budget. Incompatible with ModeExact.
	TargetCV float64
	// MaxBudget caps the autoscale search (0 = table rows); only
	// meaningful with TargetCV.
	MaxBudget int
	// Degrade, with TargetCV, answers from the cheapest already-resident
	// covering sample instead of running the autoscale search — the
	// load-shedding path, the autoscaler run in reverse. The answer
	// reports QueryAnswer.Degraded = true and the answering entry's own
	// guarantee (if any); with no resident covering sample the query
	// fails with ErrNoResidentSample, which the HTTP layer maps to 429.
	Degrade bool
}

// ErrNoResidentSample reports a degraded (load-shed) query with no
// already-resident covering sample to fall back on — nothing cheap
// exists, so the request cannot be served under pressure at all.
var ErrNoResidentSample = errors.New("no resident sample to degrade to")

// QueryAnswer is the outcome of one Query.
type QueryAnswer struct {
	// Table is the resolved table name.
	Table string
	// Result is the answer (approximate when Entry != nil).
	Result *exec.Result
	// Entry is the sample that answered, nil for exact answers.
	Entry *Entry
	// ExactResult is the ground truth, present only when
	// QueryOptions.Compare was set and the answer is approximate.
	ExactResult *exec.Result
	// Plan is the compiled physical plan that computed Result; nil when
	// the row interpreter answered (forced, or the query is outside the
	// planner's subset).
	Plan *plan.Plan
	// Degraded reports a load-shed answer: the query asked for a target
	// CV but was answered from the cheapest resident sample instead
	// (QueryOptions.Degrade). Entry is that sample.
	Degraded bool
}

// Query parses sql, resolves its FROM table against the registry and
// answers it — from the best covering sample (amortizing the build over
// arbitrarily many queries, the paper's build-once/query-many regime)
// or exactly, per opt.Mode. The read path takes only its table's shard
// read lock, so concurrent Queries proceed in parallel — across tables,
// without even a cache line in common. ctx carries the request's trace
// (obs.TraceFromContext); the find, build and exec phases are timed on
// it.
func (r *Registry) Query(ctx context.Context, sql string, opt QueryOptions) (*QueryAnswer, error) {
	tr := obs.TraceFromContext(ctx)
	tr.Phase("parse")
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if q.From == "" {
		return nil, fmt.Errorf("serve: query must name its table in FROM")
	}
	tbl, ok := r.Table(q.From)
	if !ok {
		// wraps the sentinel so the HTTP layer can map this to
		// table_not_found like every other route's unknown-table case
		return nil, fmt.Errorf("serve: %w: %q", ErrUnknownTable, q.From)
	}
	// canonicalize FROM so the plan-cache key (the normalized SQL) is
	// casing-stable across clients
	q.From = tbl.Name
	ans := &QueryAnswer{Table: tbl.Name}

	// MIN/MAX/VAR/STDDEV have no unbiased weighted estimator: a sample
	// strictly underestimates MAX whenever the extreme row wasn't
	// drawn, and no standard error is reportable. Auto mode therefore
	// answers them exactly; ModeSample still forces the sample (the
	// caller asked, and the null SEs signal the caveat).
	sampleable := true
	exprs := make([]sqlparse.Expr, 0, len(q.Select)+1)
	for _, item := range q.Select {
		exprs = append(exprs, item.Expr)
	}
	if q.Having != nil {
		// HAVING is the only other site the executor accepts new
		// aggregate calls; a sampled MAX there silently drops groups
		exprs = append(exprs, q.Having)
	}
	for _, e := range exprs {
		for _, name := range sqlparse.AggCalls(e) {
			switch name {
			case "MIN", "MAX", "VAR", "STDDEV":
				sampleable = false
			}
		}
	}

	if opt.TargetCV > 0 {
		if opt.Mode == ModeExact {
			return nil, fmt.Errorf("serve: a target CV asks for an autoscaled sample; it cannot be combined with exact mode")
		}
		if !sampleable {
			return nil, fmt.Errorf("serve: no CV guarantee exists for MIN/MAX/VAR/STDDEV; drop target_cv to answer exactly")
		}
		if err := validateTargetCVQuery(q); err != nil {
			return nil, err
		}
		if opt.Degrade {
			// load shedding: the same request the autoscale path would
			// serve, answered from whatever covering sample is cheapest
			// right now. Validation above is identical to the full path,
			// so a query's contract does not loosen under pressure.
			tr.Phase("degrade")
			e, ok := r.findCheapest(tbl.Name, q.GroupBy)
			if !ok {
				return nil, fmt.Errorf("serve: %w: no resident sample of %q covers GROUP BY %s",
					ErrNoResidentSample, tbl.Name, strings.Join(q.GroupBy, ", "))
			}
			ans.Degraded = true
			return r.answerFromEntry(ctx, ans, tbl, e, q, opt)
		}
		e, err := r.buildForQuery(ctx, tbl.Name, q, opt)
		if err != nil {
			return nil, err
		}
		return r.answerFromEntry(ctx, ans, tbl, e, q, opt)
	}

	if opt.Mode == ModeSample || (opt.Mode == ModeAuto && sampleable) {
		tr.Phase("find")
		if e, ok := r.Find(tbl.Name, q.GroupBy); ok {
			return r.answerFromEntry(ctx, ans, tbl, e, q, opt)
		}
		if opt.Mode == ModeSample {
			return nil, fmt.Errorf("serve: no built sample of %q covers GROUP BY %s (register one via Build)",
				tbl.Name, strings.Join(q.GroupBy, ", "))
		}
	}
	tr.Phase("exec")
	res, err := r.runQuery(tbl, q, nil, nil, opt, ans)
	if err != nil {
		return nil, err
	}
	ans.Result = res
	return ans, nil
}

// runQuery executes q over tbl (exact when rows is nil, weighted
// otherwise) through the compiled columnar plan when one is available,
// falling back to the row interpreter — for queries outside the
// planner's subset, when the caller forces ExecInterpreted, or when a
// cached plan no longer binds (stale schema). The chosen plan is
// recorded on ans for EXPLAIN.
func (r *Registry) runQuery(tbl *table.Table, q *sqlparse.Query, rows []int32, weights []float64, opt QueryOptions, ans *QueryAnswer) (*exec.Result, error) {
	if opt.Executor != ExecInterpreted {
		if p := r.planFor(tbl, q); p != nil {
			res, err := p.Execute(tbl, rows, weights)
			if err == nil {
				ans.Plan = p
				return res, nil
			}
			// bind failure: fall through to the interpreter
		}
		r.metrics.planFallbacks.Inc()
	}
	if rows == nil {
		return exec.Run(tbl, q)
	}
	return exec.RunWeighted(tbl, q, rows, weights)
}

// answerFromEntry evaluates q over one built sample. Streaming entries
// carry the immutable snapshot their row ids index; evaluating against
// it keeps the answer self-consistent even while newer generations
// publish.
func (r *Registry) answerFromEntry(ctx context.Context, ans *QueryAnswer, tbl *table.Table, e *Entry, q *sqlparse.Query, opt QueryOptions) (*QueryAnswer, error) {
	obs.TraceFromContext(ctx).Phase("exec")
	execTbl := e.execTable(tbl)
	res, err := r.runQuery(execTbl, q, e.Sample.Rows, e.Sample.Weights, opt, ans)
	if err != nil {
		return nil, err
	}
	ans.Result, ans.Entry = res, e
	if opt.Compare {
		// the comparison baseline stays on the interpreter: it is the
		// reference oracle the estimate is being judged against
		exact, err := exec.Run(execTbl, q)
		if err != nil {
			return nil, err
		}
		ans.ExactResult = exact
	}
	return ans, nil
}

// validateTargetCVQuery rejects query shapes no CV guarantee can be
// made for — shared by the full autoscale path and the degraded
// (load-shed) path, so the contract is identical under pressure.
func validateTargetCVQuery(q *sqlparse.Query) error {
	if len(q.GroupBy) == 0 {
		return fmt.Errorf("serve: a target CV needs a GROUP BY to stratify on")
	}
	// A WHERE filter shrinks each group's effective sample by the
	// predicate's selectivity, but the CV prediction sizes strata for
	// the unfiltered table — the reported guarantee would not hold.
	// Honest refusal, like the MIN/MAX rejection above. (HAVING is fine:
	// it filters whole groups after estimation, leaving each reported
	// estimate's CV intact.)
	if q.Where != nil {
		return fmt.Errorf("serve: a target CV cannot be guaranteed under a WHERE filter (the sample is sized for the unfiltered table); drop target_cv or the filter")
	}
	if len(sqlparse.QueryAggColumns(q)) == 0 {
		return fmt.Errorf("serve: a target CV needs at least one aggregated column (COUNT(*) alone carries no measure to bound)")
	}
	return nil
}

// findCheapest selects the *smallest* resident covering sample of the
// named table — the load-shedding answer source: under pressure the
// question is not "which sample answers best" (Find's ordering) but
// "which resident sample answers cheapest", and execution cost scales
// with sample rows. Ties break by key for determinism. Like Find, a
// hit is recorded on the selected entry.
func (r *Registry) findCheapest(tableName string, groupBy []string) (*Entry, bool) {
	sh := r.shardFor(tableName)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var best *Entry
	for _, e := range sh.entries {
		if !strings.EqualFold(e.Table, tableName) || !e.Covers(groupBy) {
			continue
		}
		if best == nil || e.Sample.Len() < best.Sample.Len() ||
			(e.Sample.Len() == best.Sample.Len() && e.Key < best.Key) {
			best = e
		}
	}
	if best != nil {
		r.touch(best)
		r.metrics.findHits.Inc()
	} else {
		r.metrics.findMisses.Inc()
	}
	return best, best != nil
}

// SampleGeneration returns the latest published generation of a
// streaming table (0 for static tables and unknown names) — the
// freshness component of the HTTP layer's query-coalescing key, so a
// refresh between coalescing windows can never serve a stale shared
// answer.
func (r *Registry) SampleGeneration(name string) uint64 {
	st, err := r.streamFor(name)
	if err != nil {
		return 0
	}
	return st.stream.Generation()
}

// buildForQuery turns a submitted query into the workload of an
// autoscaled build — its GROUP BY becomes the stratification, the
// columns inside its aggregate calls become the aggregation columns —
// and returns the (cached, singleflighted) entry built for
// opt.TargetCV. Repeat queries for the same (table, workload, target)
// hit the cache; concurrent first queries share one search and build.
// The caller has already run validateTargetCVQuery.
func (r *Registry) buildForQuery(ctx context.Context, tableName string, q *sqlparse.Query, opt QueryOptions) (*Entry, error) {
	cols := sqlparse.QueryAggColumns(q)
	spec := core.QuerySpec{GroupBy: q.GroupBy}
	for _, c := range cols {
		spec.Aggs = append(spec.Aggs, core.AggColumn{Column: c})
	}
	e, _, err := r.Build(ctx, BuildRequest{
		Table:     tableName,
		Queries:   []core.QuerySpec{spec},
		TargetCV:  opt.TargetCV,
		MaxBudget: opt.MaxBudget,
	})
	return e, err
}
