package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"time"

	apiv1 "repro/internal/api/v1"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/qos"
	"repro/internal/sqlparse"
)

// Version identifies the daemon build in /healthz; override it at link
// time ("dev" otherwise):
//
//	go build -ldflags "-X repro/internal/serve.Version=v1.2.3" ./cmd/cvserve
var Version = "dev"

// Server is the HTTP/JSON front end of a Registry. Every request,
// response and error body on the wire is a type from the versioned
// contract package internal/api/v1 — this file maps HTTP onto the
// registry and declares no wire structs of its own. The routes
// (apiv1.Routes):
//
//	GET  /healthz                   — liveness, build identity, counters, per-route latency
//	GET  /metrics                   — Prometheus text exposition of every repro_* series
//	GET  /debug/requests            — recent per-route request traces, newest first
//	GET  /v1/tables                 — registered tables (live ones carry stream state)
//	GET  /v1/samples                — built samples with per-entry hit counts
//	POST /v1/samples                — register (build or fetch cached) a sample
//	POST /v1/query                  — answer a SQL group-by query
//	POST /v1/tables/{name}/stream   — make a registered table live (streaming)
//	POST /v1/tables/{name}/rows     — batch-append rows to a live table
//	POST /v1/tables/{name}/refresh  — publish a fresh sample generation now
//
// Every route runs inside the instrument wrapper: the request gets a
// trace ID (the client's X-Request-ID, or a fresh one) echoed on the
// response, a phase trace recorded in the per-route ring
// (GET /debug/requests), a latency observation, per-route request
// counters, and one structured log line.
//
// A Server is safe for concurrent use; beyond the registry it holds
// only monotone latency counters and bounded trace rings.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	// latency feeds the per-route p50/p95/p99 digests /healthz reports;
	// every route is timed by the instrument wrapper.
	latency *metrics.LatencySet
	// tracer keeps the most recent request traces per route for
	// GET /debug/requests.
	tracer *obs.Tracer
	// logger receives one structured line per served request. The
	// default discards; cvserve wires a text or JSON handler here.
	logger *slog.Logger
	// defaultTargetCV, when positive, autoscales POST /v1/samples
	// requests that specify none of budget/rate/target_cv (the daemon
	// operator's accuracy default, cvserve -default-target-cv).
	defaultTargetCV float64
	// qos, when non-nil, is the heavy-traffic front end gating the build
	// and query routes: admission control (429 + Retry-After past the
	// inflight and queue bounds), per-tenant token buckets keyed by
	// X-API-Token, window-batched query coalescing, and load shedding of
	// target_cv queries onto resident samples. nil = no gating (the
	// default; cvserve wires it from -max-inflight).
	qos *qos.FrontEnd
	// ingestHorizonRows, when positive, is the per-stream resident row
	// count above which /healthz carries a warning (cvserve
	// -ingest-horizon-rows).
	ingestHorizonRows int
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithDefaultTargetCV sets the per-group CV goal applied when a POST
// /v1/samples request names no budget, rate or target_cv of its own:
// instead of a 400, the sample is autoscaled to this target. cv <= 0
// (the default) keeps sizing mandatory.
func WithDefaultTargetCV(cv float64) ServerOption {
	return func(s *Server) { s.defaultTargetCV = cv }
}

// WithLogger sets the structured logger that receives one line per
// served request (route, request_id, code, duration). A nil logger
// keeps the default, which discards.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithQoS installs a QoS front end on the build and query routes and
// registers its repro_qos_* metric series on the registry's exposition.
// nil disables gating (the default).
func WithQoS(fe *qos.FrontEnd) ServerOption {
	return func(s *Server) { s.qos = fe }
}

// WithIngestHorizonRows sets the per-stream resident row count above
// which /healthz reports a warning for that stream — the "this buffer
// will not fit forever" tripwire. n <= 0 (the default) disables the
// warning.
func WithIngestHorizonRows(n int) ServerOption {
	return func(s *Server) { s.ingestHorizonRows = n }
}

// NewServer wraps a registry in its HTTP API.
func NewServer(reg *Registry, opts ...ServerOption) *Server {
	s := &Server{
		reg:     reg,
		mux:     http.NewServeMux(),
		latency: metrics.NewLatencySet(),
		tracer:  obs.NewTracer(obs.DefaultRingSize),
		logger:  slog.New(slog.DiscardHandler),
	}
	for _, o := range opts {
		o(s)
	}
	if s.qos != nil {
		registerQoSMetrics(reg.Obs(), s.qos)
	}
	s.route(apiv1.RouteHealthz, s.handleHealthz)
	s.route(apiv1.RouteMetrics, s.reg.Obs().ServeHTTP)
	s.route(apiv1.RouteDebugReqs, s.handleDebugRequests)
	s.route(apiv1.RouteTables, s.handleTables)
	s.route(apiv1.RouteListSamples, s.handleListSamples)
	s.route(apiv1.RouteBuildSample, s.handleBuildSample)
	s.route(apiv1.RouteQuery, s.handleQuery)
	s.route(apiv1.RouteStreamTable, s.handleStreamTable)
	s.route(apiv1.RouteAppendRows, s.handleAppendRows)
	s.route(apiv1.RouteRefreshTable, s.handleRefreshTable)
	return s
}

// route registers a handler under its contract pattern, wrapped in the
// request instrument, keyed by the pattern (not the concrete URL, so
// /v1/tables/{name}/rows is one series no matter how many tables
// exist).
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.instrument(pattern, w, r, h)
	})
}

// statusRecorder captures the response status code for the instrument
// wrapper. Unwrap exposes the underlying writer so
// http.NewResponseController — the write-deadline resets on the build,
// stream and query routes — still reaches the real connection.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument runs one request end to end: it adopts the client's
// X-Request-ID (minting one when absent) as the trace ID and echoes it
// on the response, threads a phase trace through the request context,
// and — after the handler returns — records the trace, the latency
// digest, the per-route/per-code counters and one structured log line.
func (s *Server) instrument(pattern string, w http.ResponseWriter, r *http.Request, h http.HandlerFunc) {
	start := time.Now()
	id := r.Header.Get(apiv1.HeaderRequestID)
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set(apiv1.HeaderRequestID, id)
	tr := obs.NewTrace(id, pattern)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	h(rec, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
	d := time.Since(start)
	tr.End(rec.status)
	s.tracer.Record(tr)
	s.latency.Observe(pattern, d)
	s.reg.metrics.httpRequests.With(pattern, strconv.Itoa(rec.status)).Inc()
	s.reg.metrics.httpDuration.With(pattern).Observe(d)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("route", pattern),
		slog.String("request_id", id),
		slog.Int("code", rec.status),
		slog.Duration("duration", d))
}

// latencyGateLabel is the synthetic latency-series key for requests
// the Content-Type gate rejects before routing: a fleet of
// misconfigured clients flooding 415s must show up in /healthz, not
// vanish because no route ever ran.
const latencyGateLabel = "POST (unsupported_media_type)"

// ServeHTTP implements http.Handler. The POST Content-Type gate lives
// here — one check shared by every POST handler: a body declared as
// anything other than JSON is a 415 before any handler runs (counted
// under latencyGateLabel in the /healthz latency map). A missing
// Content-Type is accepted and treated as JSON (bare scripted clients;
// the strict decoder still 400s non-JSON payloads), so only an
// affirmatively wrong declaration is rejected.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if ct := r.Header.Get("Content-Type"); ct != "" {
			if mt, _, err := mime.ParseMediaType(ct); err != nil || mt != "application/json" {
				start := time.Now()
				writeError(w, apiv1.CodeUnsupportedMedia,
					"unsupported Content-Type %q: request bodies must be application/json", ct)
				d := time.Since(start)
				s.latency.Observe(latencyGateLabel, d)
				s.reg.metrics.httpRequests.With(latencyGateLabel,
					strconv.Itoa(http.StatusUnsupportedMediaType)).Inc()
				s.reg.metrics.httpDuration.With(latencyGateLabel).Observe(d)
				return
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends the apiv1.Error envelope; the HTTP status is
// derived from the code (apiv1.StatusOf), so status and code cannot
// disagree on the wire.
func writeError(w http.ResponseWriter, code string, format string, args ...any) {
	writeJSON(w, apiv1.StatusOf(code), apiv1.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

// writeOverloaded sends the 429 overloaded envelope with its
// Retry-After hint — whole seconds, floor 1, per the wire contract
// (the client uses the hint as a backoff floor).
func writeOverloaded(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set(apiv1.HeaderRetryAfter, strconv.Itoa(secs))
	writeError(w, apiv1.CodeOverloaded, format, args...)
}

// admitTenant charges the request to its tenant's token bucket (the
// X-API-Token header; absent means the unauthenticated tenant). It
// writes the 429 itself and returns false when the bucket is empty.
// No-op without a QoS front end or tenant limits.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	if s.qos == nil || s.qos.Tenants == nil {
		return true
	}
	token := r.Header.Get(apiv1.HeaderAPIToken)
	ok, retry := s.qos.Tenants.Allow(token)
	if !ok {
		writeOverloaded(w, retry, "tenant rate limit exceeded; retry in %s", retry)
	}
	return ok
}

// maxBodyBytes caps request bodies: the largest legitimate request is
// a workload spec, far under 1 MiB, and the daemon must not buffer an
// unbounded body from one client.
const maxBodyBytes = 1 << 20

// decodeJSON decodes a request body strictly (unknown fields are
// errors, catching typos like "buget" before they silently build the
// wrong sample) and bounded by maxBodyBytes. On failure it writes the
// error response (body_too_large for oversized bodies, invalid_body
// otherwise) and returns false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, apiv1.CodeBodyTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, apiv1.CodeInvalidBody, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// toWireSample renders one registry entry as its contract type.
func toWireSample(e *Entry, cached bool) apiv1.Sample {
	out := apiv1.Sample{
		Key:        e.Key,
		Table:      e.Table,
		Budget:     e.Budget,
		Rows:       e.Sample.Len(),
		GroupBy:    e.GroupAttrs(),
		BuiltAt:    e.BuiltAt,
		BuildMS:    float64(e.BuildDuration.Microseconds()) / 1000,
		Hits:       e.Hits.Load(),
		SizeBytes:  e.SizeBytes(),
		Generation: e.Generation,
		Cached:     cached,
	}
	if e.TargetCV > 0 {
		met := e.TargetMet && !e.GuaranteeStale()
		out.TargetCV = e.TargetCV
		out.ChosenBudget = e.Budget
		out.AchievedCV = apiv1.Float64(e.AchievedCV)
		out.TargetMet = &met
	}
	return out
}

// traceToWire renders one recorded trace as its contract type
// (durations in milliseconds, like every duration on the wire).
func traceToWire(td obs.TraceData) apiv1.RequestTrace {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	out := apiv1.RequestTrace{
		RequestID:  td.ID,
		Route:      td.Route,
		Status:     td.Status,
		Start:      td.Start,
		DurationMS: ms(td.Duration),
		Spans:      make([]apiv1.TraceSpan, len(td.Spans)),
	}
	for i, sp := range td.Spans {
		out.Spans[i] = apiv1.TraceSpan{Name: sp.Name, StartMS: ms(sp.Start), DurationMS: ms(sp.Duration)}
	}
	return out
}

// handleDebugRequests lists the most recent traces per route, newest
// first, bounded by each route's ring capacity.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	out := apiv1.DebugRequests{Routes: map[string][]apiv1.RequestTrace{}}
	for _, route := range s.tracer.Routes() {
		traces := s.tracer.Recent(route)
		wire := make([]apiv1.RequestTrace, len(traces))
		for i, td := range traces {
			wire[i] = traceToWire(td)
		}
		out.Routes[route] = wire
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tables, samples := s.reg.Counts()
	h := apiv1.Health{
		Status:              "ok",
		Version:             Version,
		Go:                  runtime.Version(),
		Tables:              tables,
		Samples:             samples,
		Builds:              s.reg.Builds(),
		Streams:             s.reg.StreamCount(),
		Refreshes:           s.reg.Refreshes(),
		SampleHits:          s.reg.TotalHits(),
		Shards:              s.reg.Shards(),
		ResidentSampleBytes: s.reg.ResidentSampleBytes(),
		MaxSampleBytes:      s.reg.MaxSampleBytes(),
		Evictions:           s.reg.Evictions(),
	}
	if snap := s.latency.Snapshot(); len(snap) > 0 {
		h.Latency = make(map[string]apiv1.LatencySummary, len(snap))
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		for route, sum := range snap {
			h.Latency[route] = apiv1.LatencySummary{
				Count: sum.Count,
				P50MS: ms(sum.P50),
				P95MS: ms(sum.P95),
				P99MS: ms(sum.P99),
			}
		}
	}
	if sts := s.reg.StreamStatuses(); len(sts) > 0 {
		h.StreamTables = make(map[string]apiv1.StreamHealth, len(sts))
		for _, st := range sts {
			h.StreamTables[st.Table] = apiv1.StreamHealth{
				Generation:    st.Generation,
				LastRefreshMS: float64(st.LastRefresh.Microseconds()) / 1000,
				Pending:       st.Pending,
				RefreshErrors: st.RefreshErrors,
				ResidentRows:  st.Rows,
			}
			if s.ingestHorizonRows > 0 && st.Rows > s.ingestHorizonRows {
				h.Warnings = append(h.Warnings, fmt.Sprintf(
					"stream %q holds %d resident rows, past the %d-row horizon",
					st.Table, st.Rows, s.ingestHorizonRows))
			}
		}
	}
	if s.qos != nil {
		st := s.qos.Stats()
		h.QoS = &apiv1.QoSHealth{
			MaxInflight:    st.MaxInflight,
			MaxQueue:       st.MaxQueue,
			Inflight:       st.Inflight,
			Queued:         st.Queued,
			Admitted:       st.Admitted,
			Rejected:       st.Rejected,
			Shed:           st.Shed,
			Coalesced:      st.Coalesced,
			Batches:        st.Batches,
			TenantRejected: st.TenantRejected,
		}
	}
	if ps, ok := s.reg.PersistenceStatus(); ok {
		h.Persistence = &apiv1.PersistenceHealth{
			Dir:               ps.Dir,
			Fsync:             ps.Fsync,
			WalSegments:       ps.WalSegments,
			WalBytes:          ps.WalBytes,
			WalLagRecords:     ps.WalLagRecords,
			Checkpoints:       ps.Checkpoints,
			TruncatedSegments: ps.TruncatedSegments,
			SpilledSamples:    ps.SpilledSamples,
			RecoveredTables:   ps.RecoveredTables,
			ReplayedRecords:   ps.ReplayedRecords,
			TornTails:         ps.TornTails,
			ReplayMS:          float64(ps.ReplayDuration.Microseconds()) / 1000,
			Errors:            ps.Errors,
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	out := apiv1.TablesList{Tables: []apiv1.Table{}}
	for _, name := range s.reg.TableNames() {
		tbl, _ := s.reg.Table(name)
		tj := apiv1.Table{Name: name, Rows: tbl.NumRows(), Cols: tbl.NumCols()}
		if st, ok := s.reg.StreamStatus(name); ok {
			tj.Streaming = true
			tj.Generation = st.Generation
			tj.Pending = st.Pending
			tj.Rows = st.Rows
		}
		out.Tables = append(out.Tables, tj)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleListSamples(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := apiv1.SamplesList{
		Samples:       make([]apiv1.Sample, len(entries)),
		ResidentBytes: s.reg.ResidentSampleBytes(),
		MaxBytes:      s.reg.MaxSampleBytes(),
		Evictions:     s.reg.Evictions(),
	}
	for i, e := range entries {
		out.Samples[i] = toWireSample(e, false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleBuildSample(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFromContext(r.Context())
	tr.Phase("decode")
	var req apiv1.BuildRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !s.admitTenant(w, r) {
		return
	}
	// a CVOPT build on a production-sized table can outlast any
	// server-wide WriteTimeout; clear this route's write deadline so a
	// slow build still delivers its response (best-effort: not every
	// ResponseWriter supports it)
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if req.Table == "" {
		writeError(w, apiv1.CodeInvalidRequest, "table is required")
		return
	}
	tbl, ok := s.reg.Table(req.Table)
	if !ok {
		writeError(w, apiv1.CodeTableNotFound, "unknown table %q", req.Table)
		return
	}
	budget, targetCV := req.Budget, req.TargetCV
	switch {
	case budget < 0:
		writeError(w, apiv1.CodeInvalidRequest, "budget must be positive, got %d", budget)
		return
	case targetCV < 0:
		writeError(w, apiv1.CodeInvalidRequest, "target_cv must be positive, got %g", targetCV)
		return
	case req.MaxBudget < 0:
		writeError(w, apiv1.CodeInvalidRequest, "max_budget must be non-negative, got %d", req.MaxBudget)
		return
	case targetCV != 0 && (budget != 0 || req.Rate != 0):
		writeError(w, apiv1.CodeBudgetConflict, "target_cv is mutually exclusive with budget and rate: the server chooses the budget")
		return
	case req.MaxBudget != 0 && targetCV == 0:
		writeError(w, apiv1.CodeBudgetConflict, "max_budget caps an autoscaled build; it requires target_cv")
		return
	case budget != 0 && req.Rate != 0:
		writeError(w, apiv1.CodeBudgetConflict, "set budget or rate, not both")
		return
	case budget == 0 && req.Rate == 0 && targetCV == 0:
		if s.defaultTargetCV > 0 {
			// the operator configured an accuracy default: size-free
			// requests autoscale to it
			targetCV = s.defaultTargetCV
			break
		}
		writeError(w, apiv1.CodeBudgetConflict, "one of budget, rate or target_cv is required")
		return
	case req.Rate != 0:
		if req.Rate < 0 || req.Rate > 1 {
			writeError(w, apiv1.CodeInvalidRequest, "rate must be in (0, 1], got %g", req.Rate)
			return
		}
		budget = int(float64(tbl.NumRows()) * req.Rate)
		if budget < 1 {
			budget = 1
		}
	}
	opts, err := parseNorm(req.Norm, req.P)
	if err != nil {
		writeError(w, apiv1.CodeInvalidRequest, "%v", err)
		return
	}
	specs, err := parseSpecs(req.Queries)
	if err != nil {
		writeError(w, apiv1.CodeInvalidRequest, "%v", err)
		return
	}
	if s.qos != nil {
		// builds queue like any other admitted work: a full queue is an
		// immediate 429, not an unbounded pileup of CVOPT passes
		release, aerr := s.qos.Admission.Acquire(r.Context())
		if aerr != nil {
			if errors.Is(aerr, qos.ErrOverloaded) {
				writeOverloaded(w, s.retryAfter(), "serve: %v", aerr)
				return
			}
			writeError(w, apiv1.CodeBuildFailed, "%v", aerr)
			return
		}
		defer release()
	}
	entry, cached, err := s.reg.Build(r.Context(), BuildRequest{
		Table:     tbl.Name,
		Queries:   specs,
		Budget:    budget,
		TargetCV:  targetCV,
		MaxBudget: req.MaxBudget,
		Opts:      opts,
		Seed:      req.Seed,
	})
	if err != nil {
		writeError(w, apiv1.CodeBuildFailed, "%v", err)
		return
	}
	code := http.StatusCreated
	if cached {
		code = http.StatusOK
	}
	out := toWireSample(entry, cached)
	tr.Phase("encode")
	if req.Debug {
		wt := traceToWire(tr.Snapshot())
		out.Trace = &wt
	}
	writeJSON(w, code, out)
}

// parseNorm maps the wire norm (l2 default, linf, lp + p) onto
// core.Options.
func parseNorm(norm string, p float64) (core.Options, error) {
	var opts core.Options
	switch norm {
	case "", apiv1.NormL2:
	case apiv1.NormLInf:
		opts.Norm = core.LInf
	case apiv1.NormLp:
		if p < 1 {
			return opts, fmt.Errorf("norm lp requires p >= 1, got %g", p)
		}
		opts.Norm, opts.P = core.Lp, p
	default:
		return opts, fmt.Errorf("unknown norm %q (want l2, linf or lp)", norm)
	}
	return opts, nil
}

// parseSpecs converts and validates wire query specs.
func parseSpecs(queries []apiv1.QuerySpec) ([]core.QuerySpec, error) {
	specs := make([]core.QuerySpec, len(queries))
	for i, q := range queries {
		specs[i] = core.QuerySpec{GroupBy: q.GroupBy}
		for _, a := range q.Aggs {
			specs[i].Aggs = append(specs[i].Aggs, core.AggColumn{Column: a.Column, Weight: a.Weight})
		}
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("query %d: %v", i, err)
		}
	}
	return specs, nil
}

func (s *Server) streamStateToWire(name string) apiv1.StreamState {
	out := apiv1.StreamState{Table: name}
	if st, ok := s.reg.StreamStatus(name); ok {
		out.Table = st.Table
		out.Streaming = true
		out.Generation = st.Generation
		out.Rows = st.Rows
		out.Pending = st.Pending
	}
	return out
}

// handleStreamTable converts a registered table into a streaming one.
func (s *Server) handleStreamTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req apiv1.StreamRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// the initial publication samples the whole seed table; exempt it
	// from the daemon's write deadline like any other build
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if _, ok := s.reg.Table(name); !ok {
		writeError(w, apiv1.CodeTableNotFound, "unknown table %q", name)
		return
	}
	opts, err := parseNorm(req.Norm, req.P)
	if err != nil {
		writeError(w, apiv1.CodeInvalidRequest, "%v", err)
		return
	}
	specs, err := parseSpecs(req.Queries)
	if err != nil {
		writeError(w, apiv1.CodeInvalidRequest, "%v", err)
		return
	}
	var interval time.Duration
	if req.RefreshInterval != "" {
		interval, err = time.ParseDuration(req.RefreshInterval)
		if err != nil {
			writeError(w, apiv1.CodeInvalidRequest, "bad refresh_interval: %v", err)
			return
		}
	}
	cfg := ingest.Config{
		Queries:   specs,
		Budget:    req.Budget,
		Rate:      req.Rate,
		TargetCV:  req.TargetCV,
		MaxBudget: req.MaxBudget,
		Capacity:  req.Capacity,
		Opts:      opts,
		Seed:      req.Seed,
		Policy:    ingest.Policy{MaxPending: req.RefreshRows, Interval: interval},
	}
	if err := s.reg.StreamTable(name, cfg); err != nil {
		writeError(w, streamErrorCode(err, apiv1.CodeBuildFailed), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.streamStateToWire(name))
}

// handleAppendRows batch-appends rows to a streaming table.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req apiv1.AppendRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, apiv1.CodeInvalidRequest, "rows is required")
		return
	}
	st, err := s.reg.Append(name, req.Rows)
	if err != nil {
		writeError(w, streamErrorCode(err, apiv1.CodeAppendFailed), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, apiv1.AppendResponse{
		Table:      name,
		Appended:   st.Appended,
		Pending:    st.Pending,
		Rows:       st.Rows,
		Generation: st.Generation,
	})
}

// handleRefreshTable forces a streaming table to publish a fresh
// sample generation.
func (s *Server) handleRefreshTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// a refresh finalizes over everything ingested so far; exempt it
	// from the write deadline like a build
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	e, err := s.reg.Refresh(name)
	if err != nil {
		writeError(w, streamErrorCode(err, apiv1.CodeBuildFailed), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, toWireSample(e, false))
}

// streamErrorCode maps streaming registry errors to contract error
// codes: unknown table, streaming-state conflicts, else the caller's
// fallback (the route-appropriate 422 code).
func streamErrorCode(err error, fallback string) string {
	switch {
	case errors.Is(err, ErrNotStreaming):
		return apiv1.CodeNotStreaming
	case errors.Is(err, ErrAlreadyStreaming):
		return apiv1.CodeAlreadyStreaming
	case errors.Is(err, ErrUnknownTable):
		return apiv1.CodeTableNotFound
	}
	return fallback
}

// retryAfter returns the admission controller's current backoff
// estimate (1s without a QoS front end — the floor the contract
// guarantees anyway).
func (s *Server) retryAfter() time.Duration {
	if s.qos == nil {
		return time.Second
	}
	return s.qos.Admission.RetryAfter()
}

// gatedQuery runs one query through the QoS front end: identical
// in-window requests coalesce onto one executor pass, and the pass is
// admitted against the inflight bounds — so a herd of 64 identical
// queries consumes one admission slot, not 64. target_cv queries never
// queue: when the full lane is busy they degrade to a resident sample
// through the shed lane (QueryOptions.Degrade) or fail overloaded.
// Without a front end this is exactly s.reg.Query.
func (s *Server) gatedQuery(r *http.Request, req apiv1.QueryRequest, opt QueryOptions) (*QueryAnswer, error) {
	if s.qos == nil {
		return s.reg.Query(r.Context(), req.SQL, opt)
	}
	run := func(ctx context.Context) (*QueryAnswer, error) {
		if opt.TargetCV > 0 {
			if release, ok := s.qos.Admission.TryAcquire(); ok {
				defer release()
				return s.reg.Query(ctx, req.SQL, opt)
			}
			// degrade instead of queueing: under pressure the cheapest
			// resident sample answers now, honestly flagged, rather than
			// a full autoscale search answering late
			release, ok := s.qos.Admission.TryShed()
			if !ok {
				return nil, fmt.Errorf("serve: %w", qos.ErrOverloaded)
			}
			defer release()
			shed := opt
			shed.Degrade = true
			return s.reg.Query(ctx, req.SQL, shed)
		}
		release, err := s.qos.Admission.Acquire(ctx)
		if err != nil {
			if errors.Is(err, qos.ErrOverloaded) {
				return nil, fmt.Errorf("serve: %w", qos.ErrOverloaded)
			}
			return nil, err
		}
		defer release()
		return s.reg.Query(ctx, req.SQL, opt)
	}
	key, ok := s.coalesceKey(req, opt)
	if s.qos.Coalescer == nil || !ok {
		return run(r.Context())
	}
	// the leader's pass must survive its own caller's disconnect —
	// followers depend on the result — so it runs over a detached
	// (cancellation-free, value-preserving) context
	detached := context.WithoutCancel(r.Context())
	v, _, err := s.qos.Coalescer.Do(r.Context(), key, func() (any, error) {
		return run(detached)
	})
	if err != nil {
		return nil, err
	}
	return v.(*QueryAnswer), nil
}

// coalesceKey derives the coalescing identity of a query request: the
// normalized SQL (the same canonicalization the plan cache keys by:
// parse + case-stable FROM + canonical rendering), every query option
// that changes the answer, and the table's published sample generation —
// so a streaming refresh between windows can never fan a stale answer
// out. Compare-mode queries are never coalesced (their exact-result
// comparison is materialized per response), and unparseable or
// unknown-table requests fall through uncoalesced so the registry
// produces its usual error.
func (s *Server) coalesceKey(req apiv1.QueryRequest, opt QueryOptions) (string, bool) {
	if opt.Compare {
		return "", false
	}
	q, err := sqlparse.Parse(req.SQL)
	if err != nil || q.From == "" {
		return "", false
	}
	tbl, ok := s.reg.Table(q.From)
	if !ok {
		return "", false
	}
	q.From = tbl.Name
	return fmt.Sprintf("%s\x00mode=%d\x00tcv=%g\x00maxm=%d\x00gen=%d",
		q.String(), opt.Mode, opt.TargetCV, opt.MaxBudget,
		s.reg.SampleGeneration(tbl.Name)), true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	tr := obs.TraceFromContext(r.Context())
	tr.Phase("decode")
	var req apiv1.QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// exact and compare answers scan the full table, which can outlast
	// a server-wide WriteTimeout just like a sample build; best-effort
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if req.SQL == "" {
		writeError(w, apiv1.CodeInvalidRequest, "sql is required")
		return
	}
	var opt QueryOptions
	switch req.Mode {
	case "", apiv1.ModeAuto:
		opt.Mode = ModeAuto
	case apiv1.ModeSample:
		opt.Mode = ModeSample
	case apiv1.ModeExact:
		opt.Mode = ModeExact
	default:
		writeError(w, apiv1.CodeInvalidRequest, "unknown mode %q (want auto, sample or exact)", req.Mode)
		return
	}
	switch {
	case req.TargetCV < 0:
		writeError(w, apiv1.CodeInvalidRequest, "target_cv must be positive, got %g", req.TargetCV)
		return
	case req.MaxBudget < 0:
		writeError(w, apiv1.CodeInvalidRequest, "max_budget must be non-negative, got %d", req.MaxBudget)
		return
	case req.MaxBudget != 0 && req.TargetCV == 0:
		writeError(w, apiv1.CodeBudgetConflict, "max_budget caps an autoscaled query; it requires target_cv")
		return
	case req.TargetCV > 0 && opt.Mode == ModeExact:
		writeError(w, apiv1.CodeBudgetConflict, "target_cv asks for an autoscaled sample; it cannot be combined with mode \"exact\"")
		return
	}
	opt.Compare = req.Compare
	opt.TargetCV, opt.MaxBudget = req.TargetCV, req.MaxBudget
	if !s.admitTenant(w, r) {
		return
	}
	ans, err := s.gatedQuery(r, req, opt)
	if err != nil {
		// an unknown FROM table is table_not_found/404, consistent with
		// every other route; an admission refusal (or a shed query with
		// nothing resident to degrade to) is overloaded/429 with a
		// Retry-After hint; anything else the query could not serve is
		// query_failed/422
		if errors.Is(err, qos.ErrOverloaded) || errors.Is(err, ErrNoResidentSample) {
			writeOverloaded(w, s.retryAfter(), "%v", err)
			return
		}
		writeError(w, streamErrorCode(err, apiv1.CodeQueryFailed), "%v", err)
		return
	}
	tr.Phase("encode")
	resp := apiv1.QueryResponse{
		Table:     ans.Table,
		Exact:     ans.Entry == nil,
		Sets:      ans.Result.Sets,
		AggLabels: ans.Result.AggLabels,
		Groups:    make([]apiv1.Group, len(ans.Result.Rows)),
	}
	if ans.Entry != nil {
		resp.SampleKey = ans.Entry.Key
		resp.SampleRows = ans.Entry.Sample.Len()
		resp.Generation = ans.Entry.Generation
		if ans.Entry.TargetCV > 0 {
			met := ans.Entry.TargetMet && !ans.Entry.GuaranteeStale()
			resp.TargetCV = ans.Entry.TargetCV
			resp.ChosenBudget = ans.Entry.Budget
			resp.AchievedCV = apiv1.Float64(ans.Entry.AchievedCV)
			resp.TargetMet = &met
		}
		if ans.Degraded {
			// load-shed answer: report the *caller's* target next to the
			// answering sample's actual guarantee (achieved_cv is present
			// only when that sample was itself autoscaled), and an honest
			// target_met judged against the caller's target
			resp.Degraded = true
			resp.TargetCV = req.TargetCV
			resp.ChosenBudget = ans.Entry.Budget
			met := ans.Entry.TargetCV > 0 && ans.Entry.AchievedCV <= req.TargetCV &&
				!ans.Entry.GuaranteeStale()
			resp.TargetMet = &met
		}
	}
	resp.Executor = apiv1.ExecutorInterpreted
	if ans.Plan != nil {
		resp.Executor = apiv1.ExecutorColumnar
		if req.Explain {
			in := plan.ExplainInput{Source: "table"}
			if ans.Entry != nil {
				in.Source = "sample"
				in.Rows = ans.Entry.Sample.Len()
				in.SampleKey = ans.Entry.Key
				in.TargetCV = ans.Entry.TargetCV
			} else if tbl, ok := s.reg.Table(ans.Table); ok {
				in.Rows = tbl.NumRows()
			}
			resp.Plan = ans.Plan.Explain(in)
		}
	}
	// compare mode: index the exact answer once (O(G)), then O(1) per
	// served group — never the per-group Lookup scan.
	var exactIdx map[string][]float64
	if ans.ExactResult != nil {
		exactIdx = ans.ExactResult.Index()
	}
	for i, row := range ans.Result.Rows {
		g := apiv1.Group{Set: row.Set, Key: row.Key, Aggs: apiv1.Float64s(row.Aggs)}
		if row.SE != nil {
			g.SE = apiv1.Float64s(row.SE)
		}
		if exactIdx != nil {
			want, ok := exactIdx[exec.KeyOf(row.Set, row.Key)]
			rel := make([]*float64, len(row.Aggs))
			for j, got := range row.Aggs {
				if ok && j < len(want) {
					rel[j] = apiv1.Float64(metrics.RelativeError(want[j], got))
				}
			}
			g.RelErr = rel
		}
		resp.Groups[i] = g
	}
	if req.Debug {
		wt := traceToWire(tr.Snapshot())
		resp.Trace = &wt
	}
	writeJSON(w, http.StatusOK, resp)
}
