package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/metrics"
)

// Server is the HTTP/JSON front end of a Registry:
//
//	GET  /healthz                   — liveness plus table/sample/build/stream counters
//	GET  /v1/tables                 — registered tables (live ones carry stream state)
//	GET  /v1/samples                — built samples with per-entry hit counts
//	POST /v1/samples                — register (build or fetch cached) a sample
//	POST /v1/query                  — answer a SQL group-by query
//	POST /v1/tables/{name}/stream   — make a registered table live (streaming)
//	POST /v1/tables/{name}/rows     — batch-append rows to a live table
//	POST /v1/tables/{name}/refresh  — publish a fresh sample generation now
//
// A Server is safe for concurrent use; it holds no mutable state of its
// own beyond the registry.
type Server struct {
	reg *Registry
	mux *http.ServeMux
	// defaultTargetCV, when positive, autoscales POST /v1/samples
	// requests that specify none of budget/rate/target_cv (the daemon
	// operator's accuracy default, cvserve -default-target-cv).
	defaultTargetCV float64
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithDefaultTargetCV sets the per-group CV goal applied when a POST
// /v1/samples request names no budget, rate or target_cv of its own:
// instead of a 400, the sample is autoscaled to this target. cv <= 0
// (the default) keeps sizing mandatory.
func WithDefaultTargetCV(cv float64) ServerOption {
	return func(s *Server) { s.defaultTargetCV = cv }
}

// NewServer wraps a registry in its HTTP API.
func NewServer(reg *Registry, opts ...ServerOption) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/tables", s.handleTables)
	s.mux.HandleFunc("GET /v1/samples", s.handleListSamples)
	s.mux.HandleFunc("POST /v1/samples", s.handleBuildSample)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tables/{name}/stream", s.handleStreamTable)
	s.mux.HandleFunc("POST /v1/tables/{name}/rows", s.handleAppendRows)
	s.mux.HandleFunc("POST /v1/tables/{name}/refresh", s.handleRefreshTable)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorJSON is every non-2xx body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes caps request bodies: the largest legitimate request is
// a workload spec, far under 1 MiB, and the daemon must not buffer an
// unbounded body from one client.
const maxBodyBytes = 1 << 20

// decodeJSON decodes a request body strictly (unknown fields are
// errors, catching typos like "buget" before they silently build the
// wrong sample) and bounded by maxBodyBytes. On failure it writes the
// error response (413 for oversized bodies, 400 otherwise) and returns
// false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// jsonFloat renders a float for JSON: NaN and ±Inf (legal aggregates,
// illegal JSON) become null.
func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func jsonFloats(vs []float64) []*float64 {
	if vs == nil {
		return nil
	}
	out := make([]*float64, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// aggJSON is one aggregation column of a build request.
type aggJSON struct {
	Column string  `json:"column"`
	Weight float64 `json:"weight,omitempty"`
}

// querySpecJSON is one workload query of a build request.
type querySpecJSON struct {
	GroupBy []string  `json:"group_by"`
	Aggs    []aggJSON `json:"aggs"`
}

// buildJSON is the POST /v1/samples request body.
type buildJSON struct {
	Table   string          `json:"table"`
	Queries []querySpecJSON `json:"queries"`
	// Budget is the absolute row budget; Rate (in (0, 1]) is the
	// fractional alternative; TargetCV asks the server to *autoscale*
	// the budget instead — find the smallest one whose predicted worst
	// per-group CV meets the target. Exactly one of the three must be
	// set (or none, when the daemon has a -default-target-cv).
	Budget   int     `json:"budget,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	TargetCV float64 `json:"target_cv,omitempty"`
	// MaxBudget caps an autoscaled search (0 = table rows); requires
	// target_cv. When the cap cannot meet the target the response is
	// best-effort: target_met false, achieved_cv reporting the
	// guarantee actually obtained.
	MaxBudget int     `json:"max_budget,omitempty"`
	Norm      string  `json:"norm,omitempty"` // "l2" (default), "linf", "lp"
	P         float64 `json:"p,omitempty"`    // exponent for norm "lp"
	Seed      int64   `json:"seed,omitempty"`
}

// sampleJSON describes one built sample in responses.
type sampleJSON struct {
	Key     string    `json:"key"`
	Table   string    `json:"table"`
	Budget  int       `json:"budget"`
	Rows    int       `json:"rows"`
	GroupBy []string  `json:"group_by"`
	BuiltAt time.Time `json:"built_at"`
	BuildMS float64   `json:"build_ms"`
	// Hits is how many times this sample (this key, across streaming
	// generations) was reused: queries answered plus cached build
	// fetches.
	Hits int64 `json:"hits"`
	// SizeBytes is the sample's resident-memory estimate charged
	// against the daemon's -max-sample-bytes budget.
	SizeBytes int64 `json:"size_bytes"`
	// Generation is the streaming publication number (absent for
	// static builds).
	Generation uint64 `json:"generation,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	// Autoscaled builds only: the requested CV goal, the budget the
	// search chose (== budget, surfaced under the name callers look
	// for), the predicted worst per-group CV at that budget (absent when
	// it is infinite — an unsampleable stratum), and whether the target
	// was met (false = max_budget bound the search, best-effort sample).
	TargetCV     float64  `json:"target_cv,omitempty"`
	ChosenBudget int      `json:"chosen_budget,omitempty"`
	AchievedCV   *float64 `json:"achieved_cv,omitempty"`
	TargetMet    *bool    `json:"target_met,omitempty"`
}

func sampleToJSON(e *Entry, cached bool) sampleJSON {
	out := sampleJSON{
		Key:        e.Key,
		Table:      e.Table,
		Budget:     e.Budget,
		Rows:       e.Sample.Len(),
		GroupBy:    e.GroupAttrs(),
		BuiltAt:    e.BuiltAt,
		BuildMS:    float64(e.BuildDuration.Microseconds()) / 1000,
		Hits:       e.Hits.Load(),
		SizeBytes:  e.SizeBytes(),
		Generation: e.Generation,
		Cached:     cached,
	}
	if e.TargetCV > 0 {
		met := e.TargetMet
		out.TargetCV = e.TargetCV
		out.ChosenBudget = e.Budget
		out.AchievedCV = jsonFloat(e.AchievedCV)
		out.TargetMet = &met
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tables, samples := s.reg.Counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":                "ok",
		"tables":                tables,
		"samples":               samples,
		"builds":                s.reg.Builds(),
		"streams":               s.reg.StreamCount(),
		"refreshes":             s.reg.Refreshes(),
		"sample_hits":           s.reg.TotalHits(),
		"shards":                s.reg.Shards(),
		"resident_sample_bytes": s.reg.ResidentSampleBytes(),
		"max_sample_bytes":      s.reg.MaxSampleBytes(),
		"evictions":             s.reg.Evictions(),
	})
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	type tableJSON struct {
		Name string `json:"name"`
		Rows int    `json:"rows"`
		Cols int    `json:"cols"`
		// streaming tables additionally report their live state
		Streaming  bool   `json:"streaming,omitempty"`
		Generation uint64 `json:"generation,omitempty"`
		Pending    int    `json:"pending,omitempty"`
	}
	out := []tableJSON{}
	for _, name := range s.reg.TableNames() {
		tbl, _ := s.reg.Table(name)
		tj := tableJSON{Name: name, Rows: tbl.NumRows(), Cols: tbl.NumCols()}
		if st, ok := s.reg.StreamStatus(name); ok {
			tj.Streaming = true
			tj.Generation = st.Generation
			tj.Pending = st.Pending
			tj.Rows = st.Rows
		}
		out = append(out, tj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

func (s *Server) handleListSamples(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := make([]sampleJSON, len(entries))
	for i, e := range entries {
		out[i] = sampleToJSON(e, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"samples":        out,
		"resident_bytes": s.reg.ResidentSampleBytes(),
		"max_bytes":      s.reg.MaxSampleBytes(),
		"evictions":      s.reg.Evictions(),
	})
}

func (s *Server) handleBuildSample(w http.ResponseWriter, r *http.Request) {
	var req buildJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	// a CVOPT build on a production-sized table can outlast any
	// server-wide WriteTimeout; clear this route's write deadline so a
	// slow build still delivers its response (best-effort: not every
	// ResponseWriter supports it)
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if req.Table == "" {
		writeError(w, http.StatusBadRequest, "table is required")
		return
	}
	tbl, ok := s.reg.Table(req.Table)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", req.Table)
		return
	}
	budget, targetCV := req.Budget, req.TargetCV
	switch {
	case budget < 0:
		writeError(w, http.StatusBadRequest, "budget must be positive, got %d", budget)
		return
	case targetCV < 0:
		writeError(w, http.StatusBadRequest, "target_cv must be positive, got %g", targetCV)
		return
	case req.MaxBudget < 0:
		writeError(w, http.StatusBadRequest, "max_budget must be non-negative, got %d", req.MaxBudget)
		return
	case targetCV != 0 && (budget != 0 || req.Rate != 0):
		writeError(w, http.StatusBadRequest, "target_cv is mutually exclusive with budget and rate: the server chooses the budget")
		return
	case req.MaxBudget != 0 && targetCV == 0:
		writeError(w, http.StatusBadRequest, "max_budget caps an autoscaled build; it requires target_cv")
		return
	case budget != 0 && req.Rate != 0:
		writeError(w, http.StatusBadRequest, "set budget or rate, not both")
		return
	case budget == 0 && req.Rate == 0 && targetCV == 0:
		if s.defaultTargetCV > 0 {
			// the operator configured an accuracy default: size-free
			// requests autoscale to it
			targetCV = s.defaultTargetCV
			break
		}
		writeError(w, http.StatusBadRequest, "one of budget, rate or target_cv is required")
		return
	case req.Rate != 0:
		if req.Rate < 0 || req.Rate > 1 {
			writeError(w, http.StatusBadRequest, "rate must be in (0, 1], got %g", req.Rate)
			return
		}
		budget = int(float64(tbl.NumRows()) * req.Rate)
		if budget < 1 {
			budget = 1
		}
	}
	opts, err := parseNorm(req.Norm, req.P)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	specs, err := parseSpecs(req.Queries)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, cached, err := s.reg.Build(BuildRequest{
		Table:     tbl.Name,
		Queries:   specs,
		Budget:    budget,
		TargetCV:  targetCV,
		MaxBudget: req.MaxBudget,
		Opts:      opts,
		Seed:      req.Seed,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	code := http.StatusCreated
	if cached {
		code = http.StatusOK
	}
	writeJSON(w, code, sampleToJSON(entry, cached))
}

// parseNorm maps the wire norm ("l2" default, "linf", "lp" + p) onto
// core.Options.
func parseNorm(norm string, p float64) (core.Options, error) {
	var opts core.Options
	switch norm {
	case "", "l2":
	case "linf":
		opts.Norm = core.LInf
	case "lp":
		if p < 1 {
			return opts, fmt.Errorf("norm lp requires p >= 1, got %g", p)
		}
		opts.Norm, opts.P = core.Lp, p
	default:
		return opts, fmt.Errorf("unknown norm %q (want l2, linf or lp)", norm)
	}
	return opts, nil
}

// parseSpecs converts and validates wire query specs.
func parseSpecs(queries []querySpecJSON) ([]core.QuerySpec, error) {
	specs := make([]core.QuerySpec, len(queries))
	for i, q := range queries {
		specs[i] = core.QuerySpec{GroupBy: q.GroupBy}
		for _, a := range q.Aggs {
			specs[i].Aggs = append(specs[i].Aggs, core.AggColumn{Column: a.Column, Weight: a.Weight})
		}
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("query %d: %v", i, err)
		}
	}
	return specs, nil
}

// streamRequestJSON is the POST /v1/tables/{name}/stream request body:
// the workload and budget the live sample must serve plus the refresh
// policy. Omitted policy fields fall back to the daemon's
// -refresh-rows / -refresh-interval defaults.
type streamRequestJSON struct {
	Queries []querySpecJSON `json:"queries"`
	// Budget is the absolute per-generation row budget; Rate (in
	// (0, 1]) spends a fraction of the current rows instead, so the
	// sample grows with the stream. Exactly one must be set.
	Budget int     `json:"budget,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Norm   string  `json:"norm,omitempty"`
	P      float64 `json:"p,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	// Capacity is the per-stratum reservoir capacity (the streaming
	// memory/accuracy knob; 0 = server default).
	Capacity int `json:"capacity,omitempty"`
	// RefreshRows republishes after this many appended rows. 0 (or
	// omitted) inherits the daemon's -refresh-rows default; a negative
	// value explicitly disables the threshold even when a default is
	// set.
	RefreshRows int `json:"refresh_rows,omitempty"`
	// RefreshInterval republishes periodically, as a Go duration
	// string like "30s". "" inherits the daemon's -refresh-interval
	// default; a negative duration like "-1s" explicitly disables the
	// ticker.
	RefreshInterval string `json:"refresh_interval,omitempty"`
}

// streamStateJSON describes a live table in responses.
type streamStateJSON struct {
	Table      string `json:"table"`
	Streaming  bool   `json:"streaming"`
	Generation uint64 `json:"generation"`
	Rows       int    `json:"rows"`
	Pending    int    `json:"pending"`
}

func (s *Server) streamStateToJSON(name string) streamStateJSON {
	out := streamStateJSON{Table: name}
	if st, ok := s.reg.StreamStatus(name); ok {
		out.Table = st.Table
		out.Streaming = true
		out.Generation = st.Generation
		out.Rows = st.Rows
		out.Pending = st.Pending
	}
	return out
}

// handleStreamTable converts a registered table into a streaming one.
func (s *Server) handleStreamTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req streamRequestJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	// the initial publication samples the whole seed table; exempt it
	// from the daemon's write deadline like any other build
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if _, ok := s.reg.Table(name); !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", name)
		return
	}
	opts, err := parseNorm(req.Norm, req.P)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	specs, err := parseSpecs(req.Queries)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var interval time.Duration
	if req.RefreshInterval != "" {
		interval, err = time.ParseDuration(req.RefreshInterval)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad refresh_interval: %v", err)
			return
		}
	}
	cfg := ingest.Config{
		Queries:  specs,
		Budget:   req.Budget,
		Rate:     req.Rate,
		Capacity: req.Capacity,
		Opts:     opts,
		Seed:     req.Seed,
		Policy:   ingest.Policy{MaxPending: req.RefreshRows, Interval: interval},
	}
	if err := s.reg.StreamTable(name, cfg); err != nil {
		writeError(w, streamErrorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.streamStateToJSON(name))
}

// appendRowsJSON is the POST /v1/tables/{name}/rows request body: a
// batch of rows in schema order, loosely typed (JSON numbers for both
// float and int columns, strings for dictionary columns).
type appendRowsJSON struct {
	Rows [][]any `json:"rows"`
}

// handleAppendRows batch-appends rows to a streaming table.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req appendRowsJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, "rows is required")
		return
	}
	st, err := s.reg.Append(name, req.Rows)
	if err != nil {
		writeError(w, streamErrorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":      name,
		"appended":   st.Appended,
		"pending":    st.Pending,
		"rows":       st.Rows,
		"generation": st.Generation,
	})
}

// handleRefreshTable forces a streaming table to publish a fresh
// sample generation.
func (s *Server) handleRefreshTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// a refresh finalizes over everything ingested so far; exempt it
	// from the write deadline like a build
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	e, err := s.reg.Refresh(name)
	if err != nil {
		writeError(w, streamErrorCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sampleToJSON(e, false))
}

// streamErrorCode maps streaming registry errors to HTTP statuses:
// unknown table 404, streaming-state conflicts 409, anything else 422.
func streamErrorCode(err error) int {
	switch {
	case errors.Is(err, ErrNotStreaming), errors.Is(err, ErrAlreadyStreaming):
		return http.StatusConflict
	case errors.Is(err, ErrUnknownTable):
		return http.StatusNotFound
	}
	return http.StatusUnprocessableEntity
}

// queryJSON is the POST /v1/query request body.
type queryJSON struct {
	SQL string `json:"sql"`
	// Mode: "auto" (default — covering sample if built, exact
	// otherwise), "sample" (fail without one), "exact".
	Mode string `json:"mode,omitempty"`
	// Compare also runs the exact query and reports each group's true
	// relative error next to its estimate (ops/debugging aid).
	Compare bool `json:"compare,omitempty"`
	// TargetCV answers from an autoscaled sample built for this query's
	// own workload: the smallest budget whose predicted worst per-group
	// CV meets the target. Cached per (table, workload, target), so
	// repeat and concurrent queries share one build. Incompatible with
	// mode "exact". MaxBudget caps the search (0 = table rows).
	TargetCV  float64 `json:"target_cv,omitempty"`
	MaxBudget int     `json:"max_budget,omitempty"`
}

// groupJSON is one output group of a query response.
type groupJSON struct {
	Set  int        `json:"set"`
	Key  []string   `json:"key"`
	Aggs []*float64 `json:"aggs"`
	// SE are the per-aggregate standard errors (approximate answers
	// only; null where no estimator applies).
	SE []*float64 `json:"se,omitempty"`
	// RelErr are the true per-aggregate relative errors (compare mode
	// only).
	RelErr []*float64 `json:"rel_err,omitempty"`
}

// queryResponseJSON is the POST /v1/query response body.
type queryResponseJSON struct {
	Table      string `json:"table"`
	Exact      bool   `json:"exact"`
	SampleKey  string `json:"sample_key,omitempty"`
	SampleRows int    `json:"sample_rows,omitempty"`
	// Generation is the streaming publication the answer came from
	// (absent for static samples and exact answers).
	Generation uint64 `json:"generation,omitempty"`
	// Autoscaled answers only: the CV goal of the sample that answered,
	// the budget the search chose, the predicted worst per-group CV at
	// that budget (absent when infinite) and whether the goal was met.
	TargetCV     float64     `json:"target_cv,omitempty"`
	ChosenBudget int         `json:"chosen_budget,omitempty"`
	AchievedCV   *float64    `json:"achieved_cv,omitempty"`
	TargetMet    *bool       `json:"target_met,omitempty"`
	Sets         [][]string  `json:"sets"`
	AggLabels    []string    `json:"agg_labels"`
	Groups       []groupJSON `json:"groups"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryJSON
	if !decodeJSON(w, r, &req) {
		return
	}
	// exact and compare answers scan the full table, which can outlast
	// a server-wide WriteTimeout just like a sample build; best-effort
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "sql is required")
		return
	}
	var opt QueryOptions
	switch req.Mode {
	case "", "auto":
		opt.Mode = ModeAuto
	case "sample":
		opt.Mode = ModeSample
	case "exact":
		opt.Mode = ModeExact
	default:
		writeError(w, http.StatusBadRequest, "unknown mode %q (want auto, sample or exact)", req.Mode)
		return
	}
	switch {
	case req.TargetCV < 0:
		writeError(w, http.StatusBadRequest, "target_cv must be positive, got %g", req.TargetCV)
		return
	case req.MaxBudget < 0:
		writeError(w, http.StatusBadRequest, "max_budget must be non-negative, got %d", req.MaxBudget)
		return
	case req.MaxBudget != 0 && req.TargetCV == 0:
		writeError(w, http.StatusBadRequest, "max_budget caps an autoscaled query; it requires target_cv")
		return
	case req.TargetCV > 0 && opt.Mode == ModeExact:
		writeError(w, http.StatusBadRequest, "target_cv asks for an autoscaled sample; it cannot be combined with mode \"exact\"")
		return
	}
	opt.Compare = req.Compare
	opt.TargetCV, opt.MaxBudget = req.TargetCV, req.MaxBudget
	ans, err := s.reg.Query(req.SQL, opt)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := queryResponseJSON{
		Table:     ans.Table,
		Exact:     ans.Entry == nil,
		Sets:      ans.Result.Sets,
		AggLabels: ans.Result.AggLabels,
		Groups:    make([]groupJSON, len(ans.Result.Rows)),
	}
	if ans.Entry != nil {
		resp.SampleKey = ans.Entry.Key
		resp.SampleRows = ans.Entry.Sample.Len()
		resp.Generation = ans.Entry.Generation
		if ans.Entry.TargetCV > 0 {
			met := ans.Entry.TargetMet
			resp.TargetCV = ans.Entry.TargetCV
			resp.ChosenBudget = ans.Entry.Budget
			resp.AchievedCV = jsonFloat(ans.Entry.AchievedCV)
			resp.TargetMet = &met
		}
	}
	// compare mode: index the exact answer once (O(G)), then O(1) per
	// served group — never the per-group Lookup scan.
	var exactIdx map[string][]float64
	if ans.ExactResult != nil {
		exactIdx = ans.ExactResult.Index()
	}
	for i, row := range ans.Result.Rows {
		g := groupJSON{Set: row.Set, Key: row.Key, Aggs: jsonFloats(row.Aggs)}
		if row.SE != nil {
			g.SE = jsonFloats(row.SE)
		}
		if exactIdx != nil {
			want, ok := exactIdx[exec.KeyOf(row.Set, row.Key)]
			rel := make([]*float64, len(row.Aggs))
			for j, got := range row.Aggs {
				if ok && j < len(want) {
					rel[j] = jsonFloat(metrics.RelativeError(want[j], got))
				}
			}
			g.RelErr = rel
		}
		resp.Groups[i] = g
	}
	writeJSON(w, http.StatusOK, resp)
}
