package serve

// The serving layer's metric surface: every Prometheus series the
// daemon exposes is registered here, in one place, under one name
// constant — scripts/check_docs.sh greps this file and fails when a
// name is missing from docs/OBSERVABILITY.md, so the exposition and its
// reference cannot drift. Handles are resolved once at registry
// construction; the hot paths (Build, Find, Query, eviction, streaming
// installs, the HTTP middleware) touch only atomic counters.

import (
	"time"

	"repro/internal/obs"
	"repro/internal/qos"
)

// Metric names. All follow the Prometheus conventions: a repro_ prefix,
// _total on counters, base units (seconds, bytes) in the name.
const (
	// MetricBuildCacheHits counts Build requests answered from the
	// entry cache (fast path and double-checked slow path alike).
	MetricBuildCacheHits = "repro_build_cache_hits_total"
	// MetricBuildCacheMisses counts Build requests that became the
	// building goroutine for their key.
	MetricBuildCacheMisses = "repro_build_cache_misses_total"
	// MetricBuildInflightWaits counts Build requests deduplicated onto
	// another goroutine's in-flight build of the same key.
	MetricBuildInflightWaits = "repro_build_inflight_waits_total"
	// MetricBuilds counts sampler builds actually executed.
	MetricBuilds = "repro_builds_total"
	// MetricBuildDuration is the histogram of sampler build durations.
	MetricBuildDuration = "repro_build_duration_seconds"
	// MetricAutoscaleProbes counts budgets evaluated by autoscale
	// searches (core.AutoscaleResult.Evaluations, summed).
	MetricAutoscaleProbes = "repro_autoscale_probes_total"
	// MetricFindHits / MetricFindMisses count Find calls that did / did
	// not locate a covering sample.
	MetricFindHits   = "repro_find_hits_total"
	MetricFindMisses = "repro_find_misses_total"
	// MetricEvictions counts entries evicted by the sample byte budget;
	// MetricEvictedBytes sums their estimated sizes.
	MetricEvictions    = "repro_evictions_total"
	MetricEvictedBytes = "repro_evicted_bytes_total"
	// MetricResidentBytes is the current estimated resident size of all
	// built samples.
	MetricResidentBytes = "repro_resident_sample_bytes"
	// MetricSamples / MetricTables / MetricStreams gauge the registry's
	// built samples, registered tables and live streaming tables.
	MetricSamples = "repro_samples"
	MetricTables  = "repro_tables"
	MetricStreams = "repro_streams"
	// MetricIngestRows counts rows appended per streaming table.
	MetricIngestRows = "repro_ingest_rows_appended_total"
	// MetricStreamRefreshes counts publications per streaming table
	// (the initial registration included).
	MetricStreamRefreshes = "repro_stream_refreshes_total"
	// MetricStreamRefreshDuration is the per-table histogram of refresh
	// build durations.
	MetricStreamRefreshDuration = "repro_stream_refresh_duration_seconds"
	// MetricStreamGeneration gauges each streaming table's latest
	// published generation.
	MetricStreamGeneration = "repro_stream_generation"
	// MetricHTTPRequests counts served requests per route pattern and
	// status code; MetricHTTPDuration is the per-route latency
	// histogram.
	MetricHTTPRequests = "repro_http_requests_total"
	MetricHTTPDuration = "repro_http_request_duration_seconds"
	// MetricPlanCacheHits / MetricPlanCacheMisses count query
	// executions answered by a cached compiled plan vs. ones that had
	// to compile (singleflight waiters count as hits).
	MetricPlanCacheHits   = "repro_plan_cache_hits_total"
	MetricPlanCacheMisses = "repro_plan_cache_misses_total"
	// MetricPlanFallbacks counts query executions served by the row
	// interpreter because the query is outside the planner's subset (or
	// a cached plan stopped binding).
	MetricPlanFallbacks = "repro_plan_fallbacks_total"
	// MetricPlanEvictions counts compiled plans evicted by the
	// plan-cache cap (WithMaxPlans).
	MetricPlanEvictions = "repro_plan_evictions_total"
	// MetricPlans gauges the resident compiled-plan cache (cached
	// interpreter-fallback decisions included).
	MetricPlans = "repro_plans"
	// MetricWalSegments / MetricWalBytes gauge the live WAL segment
	// files and their total size across all streaming tables.
	MetricWalSegments = "repro_wal_segments"
	MetricWalBytes    = "repro_wal_bytes"
	// MetricWalLagRecords gauges the records appended past the last
	// checkpoint — the replay debt a crash right now would pay.
	MetricWalLagRecords = "repro_wal_lag_records"
	// MetricWalCheckpoints counts checkpoint cuts;
	// MetricWalTruncatedSegments the WAL segments they deleted.
	MetricWalCheckpoints       = "repro_wal_checkpoints_total"
	MetricWalTruncatedSegments = "repro_wal_truncated_segments_total"
	// MetricWalReplayedRecords counts WAL records re-applied during boot
	// recovery; MetricWalReplayDuration is the per-boot histogram of
	// recovery wall time.
	MetricWalReplayedRecords = "repro_wal_replayed_records_total"
	MetricWalReplayDuration  = "repro_wal_replay_duration_seconds"
	// MetricWalTornTails counts torn segment tails truncated at boot
	// (the expected crash signature).
	MetricWalTornTails = "repro_wal_torn_tails_total"
	// MetricWalSpilledSamples gauges the spilled static samples on disk;
	// MetricWalSpillSaves / MetricWalSpillLoads count samples written to
	// and warmed from disk.
	MetricWalSpilledSamples = "repro_wal_spilled_samples"
	MetricWalSpillSaves     = "repro_wal_spill_saves_total"
	MetricWalSpillLoads     = "repro_wal_spill_loads_total"
	// MetricWalErrors counts persistence faults (failed fsyncs,
	// unreadable spills); the daemon keeps serving from memory.
	MetricWalErrors = "repro_wal_errors_total"
	// MetricIngestResidentRows gauges each streaming table's resident
	// buffer rows — the ops signal behind the /healthz row-horizon
	// warning.
	MetricIngestResidentRows = "repro_ingest_resident_rows"
	// MetricQoSInflight / MetricQoSQueued gauge the admission
	// controller's currently executing and queued requests.
	MetricQoSInflight = "repro_qos_inflight"
	MetricQoSQueued   = "repro_qos_queued"
	// MetricQoSAdmitted / MetricQoSRejected count requests admitted to a
	// full-service slot and requests refused with 429 overloaded.
	MetricQoSAdmitted = "repro_qos_admitted_total"
	MetricQoSRejected = "repro_qos_rejected_total"
	// MetricQoSShed counts target_cv queries degraded to an
	// already-resident sample instead of running the full autoscale.
	MetricQoSShed = "repro_qos_shed_total"
	// MetricQoSCoalesced counts query requests served from another
	// request's executor pass; MetricQoSBatches counts passes that served
	// more than one request.
	MetricQoSCoalesced = "repro_qos_coalesced_total"
	MetricQoSBatches   = "repro_qos_batches_total"
	// MetricQoSTenantRejected counts requests refused by a tenant's
	// token bucket.
	MetricQoSTenantRejected = "repro_qos_tenant_rejected_total"
)

// srvMetrics holds the resolved metric handles the serving hot paths
// increment.
type srvMetrics struct {
	buildCacheHits   *obs.Counter
	buildCacheMisses *obs.Counter
	inflightWaits    *obs.Counter
	builds           *obs.Counter
	buildDuration    *obs.Histogram
	autoscaleProbes  *obs.Counter
	findHits         *obs.Counter
	findMisses       *obs.Counter
	evictions        *obs.Counter
	evictedBytes     *obs.Counter
	planCacheHits    *obs.Counter
	planCacheMisses  *obs.Counter
	planFallbacks    *obs.Counter
	planEvictions    *obs.Counter

	walCheckpoints     *obs.Counter
	walTruncatedSegs   *obs.Counter
	walReplayedRecords *obs.Counter
	walReplayDuration  *obs.Histogram
	walTornTails       *obs.Counter
	walSpillSaves      *obs.Counter
	walSpillLoads      *obs.Counter
	walErrors          *obs.Counter

	ingestRows      *obs.CounterVec
	refreshes       *obs.CounterVec
	refreshDuration *obs.HistogramVec
	generation      *obs.GaugeVec
	residentRows    *obs.GaugeVec

	httpRequests *obs.CounterVec
	httpDuration *obs.HistogramVec
}

// newSrvMetrics registers the serving metric families on reg and
// resolves their handles. The registry-state gauges are GaugeFuncs
// reading r's own counters at scrape time, so the exposition can never
// drift from the source of truth.
func newSrvMetrics(reg *obs.Registry, r *Registry) *srvMetrics {
	m := &srvMetrics{
		buildCacheHits:     reg.Counter(MetricBuildCacheHits, "Build requests answered from the sample cache."),
		buildCacheMisses:   reg.Counter(MetricBuildCacheMisses, "Build requests that ran the sampler."),
		inflightWaits:      reg.Counter(MetricBuildInflightWaits, "Build requests deduplicated onto an in-flight build of the same key."),
		builds:             reg.Counter(MetricBuilds, "Sampler builds executed (cache hits and dedups excluded)."),
		buildDuration:      reg.Histogram(MetricBuildDuration, "Sampler build duration."),
		autoscaleProbes:    reg.Counter(MetricAutoscaleProbes, "Budgets evaluated by autoscale searches."),
		findHits:           reg.Counter(MetricFindHits, "Find calls that located a covering sample."),
		findMisses:         reg.Counter(MetricFindMisses, "Find calls with no covering sample."),
		evictions:          reg.Counter(MetricEvictions, "Entries evicted by the sample byte budget."),
		evictedBytes:       reg.Counter(MetricEvictedBytes, "Estimated bytes freed by eviction."),
		planCacheHits:      reg.Counter(MetricPlanCacheHits, "Query executions answered by a cached compiled plan."),
		planCacheMisses:    reg.Counter(MetricPlanCacheMisses, "Query executions that compiled a plan."),
		planFallbacks:      reg.Counter(MetricPlanFallbacks, "Query executions served by the row interpreter."),
		planEvictions:      reg.Counter(MetricPlanEvictions, "Compiled plans evicted by the plan-cache cap."),
		walCheckpoints:     reg.Counter(MetricWalCheckpoints, "Checkpoint cuts written by the persistence layer."),
		walTruncatedSegs:   reg.Counter(MetricWalTruncatedSegments, "WAL segments deleted by checkpoint truncation."),
		walReplayedRecords: reg.Counter(MetricWalReplayedRecords, "WAL records re-applied during boot recovery."),
		walReplayDuration:  reg.Histogram(MetricWalReplayDuration, "Boot recovery wall time."),
		walTornTails:       reg.Counter(MetricWalTornTails, "Torn WAL segment tails truncated at boot."),
		walSpillSaves:      reg.Counter(MetricWalSpillSaves, "Static samples spilled to disk."),
		walSpillLoads:      reg.Counter(MetricWalSpillLoads, "Static samples warmed from a disk spill."),
		walErrors:          reg.Counter(MetricWalErrors, "Persistence faults (failed fsyncs, unreadable spills)."),
		ingestRows:         reg.CounterVec(MetricIngestRows, "Rows appended to a streaming table.", "table"),
		refreshes:          reg.CounterVec(MetricStreamRefreshes, "Sample generations published by a streaming table.", "table"),
		refreshDuration:    reg.HistogramVec(MetricStreamRefreshDuration, "Streaming refresh build duration.", "table"),
		generation:         reg.GaugeVec(MetricStreamGeneration, "Latest published generation of a streaming table.", "table"),
		residentRows:       reg.GaugeVec(MetricIngestResidentRows, "Resident buffer rows of a streaming table.", "table"),
		httpRequests:       reg.CounterVec(MetricHTTPRequests, "HTTP requests served, by route pattern and status code.", "route", "code"),
		httpDuration:       reg.HistogramVec(MetricHTTPDuration, "HTTP request duration, by route pattern.", "route"),
	}
	reg.GaugeFunc(MetricResidentBytes, "Estimated resident bytes of all built samples.",
		r.ResidentSampleBytes)
	reg.GaugeFunc(MetricSamples, "Built samples currently resident.", func() int64 {
		_, samples := r.Counts()
		return int64(samples)
	})
	reg.GaugeFunc(MetricTables, "Registered tables.", func() int64 {
		tables, _ := r.Counts()
		return int64(tables)
	})
	reg.GaugeFunc(MetricStreams, "Live (streaming) tables.", func() int64 {
		return int64(r.StreamCount())
	})
	reg.GaugeFunc(MetricPlans, "Resident cached compiled plans.", func() int64 {
		return int64(r.PlanCount())
	})
	reg.GaugeFunc(MetricWalSegments, "Live WAL segment files across all streaming tables.", func() int64 {
		s, _ := r.PersistenceStatus()
		return int64(s.WalSegments)
	})
	reg.GaugeFunc(MetricWalBytes, "Total bytes across live WAL segments.", func() int64 {
		s, _ := r.PersistenceStatus()
		return s.WalBytes
	})
	reg.GaugeFunc(MetricWalLagRecords, "WAL records appended past the last checkpoint.", func() int64 {
		s, _ := r.PersistenceStatus()
		return int64(s.WalLagRecords)
	})
	reg.GaugeFunc(MetricWalSpilledSamples, "Spilled static samples on disk.", func() int64 {
		s, _ := r.PersistenceStatus()
		return int64(s.SpilledSamples)
	})
	return m
}

// observeStreamPublication records one installed streaming publication.
func (m *srvMetrics) observeStreamPublication(table string, generation uint64, rows int, buildDuration time.Duration) {
	m.refreshes.With(table).Inc()
	m.generation.With(table).Set(int64(generation))
	m.residentRows.With(table).Set(int64(rows))
	if buildDuration > 0 {
		m.refreshDuration.With(table).Observe(buildDuration)
	}
}

// registerQoSMetrics exposes a QoS front end's counters as repro_qos_*
// series, reading the front end's own atomics at scrape time so the
// exposition cannot drift from /healthz.
func registerQoSMetrics(reg *obs.Registry, fe *qos.FrontEnd) {
	ctrl := fe.Admission
	reg.GaugeFunc(MetricQoSInflight, "Requests currently holding an admission slot.", func() int64 {
		return int64(ctrl.Inflight())
	})
	reg.GaugeFunc(MetricQoSQueued, "Requests parked in the admission queue.", func() int64 {
		return int64(ctrl.Queued())
	})
	reg.CounterFunc(MetricQoSAdmitted, "Requests admitted to a full-service slot.", ctrl.Admitted)
	reg.CounterFunc(MetricQoSRejected, "Requests refused with 429 overloaded.", ctrl.Rejected)
	reg.CounterFunc(MetricQoSShed, "target_cv queries degraded to a resident sample.", ctrl.ShedCount)
	if co := fe.Coalescer; co != nil {
		reg.CounterFunc(MetricQoSCoalesced, "Query requests served from another request's executor pass.", co.Coalesced)
		reg.CounterFunc(MetricQoSBatches, "Coalesced executor passes that served more than one request.", co.Batches)
	}
	if tl := fe.Tenants; tl != nil {
		reg.CounterFunc(MetricQoSTenantRejected, "Requests refused by a tenant token bucket.", tl.Rejected)
	}
}
