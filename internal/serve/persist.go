package serve

// The persistence layer: WAL-backed durability for streaming tables and
// disk spill for built static samples, both rooted at one data
// directory (cvserve -data-dir).
//
// Layout:
//
//	<dir>/tables/<escaped name>/checkpoint   latest durable cut (wal.Checkpoint)
//	<dir>/tables/<escaped name>/wal/         segmented append log (wal.Log)
//	<dir>/samples/<key hash>.smp             spilled static samples (wal.SampleEntry)
//
// A streaming table's registration writes checkpoint-0 (the seed
// snapshot, generation 1, covering WAL sequence 0) before its log
// attaches, so recovery always starts from a checkpoint: rebuild the
// stream from the snapshot with the persisted config, replay the log's
// surviving suffix — appends and publication points in their original
// interleaving, which reproduces the sampler's RNG consumption exactly
// — then resume the refresh loop. Once the log outgrows
// PersistOptions.CheckpointBytes, a new checkpoint is cut from the
// latest publication and every fully-covered segment is deleted, which
// is what bounds WAL disk usage under continuous append.
//
// Lock discipline: nothing here fsyncs while holding a shard, stream or
// registry lock. WAL appends under the stream mutex are buffered
// writes; the fsync (wal.Log.Commit) runs from Registry.Append/Refresh
// after the stream call returns, and checkpoint writes run under a
// per-table busy flag, not a lock. reprolint's lockdiscipline analyzer
// enforces this (os.File.Sync and wal.Log.Sync/Commit are blocking
// calls in its table).

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/samplers"
	"repro/internal/table"
	"repro/internal/wal"
)

// PersistOptions configures the registry's persistence layer.
type PersistOptions struct {
	// Dir is the data directory. Empty disables persistence.
	Dir string
	// Fsync selects the WAL durability policy (cvserve -fsync).
	Fsync wal.SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// CheckpointBytes cuts a new checkpoint (and truncates covered WAL
	// segments) once a table's log exceeds this size. Default 4 MiB.
	CheckpointBytes int64
	// SegmentBytes is the WAL segment rotation size. Default
	// CheckpointBytes/4 clamped to [4 KiB, 1 MiB] — several segments per
	// checkpoint interval, so truncation actually has segments to drop.
	SegmentBytes int64
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 4 << 20
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = o.CheckpointBytes / 4
		if o.SegmentBytes < 4<<10 {
			o.SegmentBytes = 4 << 10
		}
		if o.SegmentBytes > 1<<20 {
			o.SegmentBytes = 1 << 20
		}
	}
	return o
}

// WithPersistence enables WAL-backed persistence and sample spill under
// o.Dir. Call Registry.Recover after registering static tables to
// reload persisted state.
func WithPersistence(o PersistOptions) Option {
	return func(r *Registry) {
		if o.Dir == "" {
			return
		}
		r.persist = &persister{
			opts:   o.withDefaults(),
			tables: make(map[string]*tableStore),
			spills: make(map[string]string),
		}
	}
}

// tableStore is the persistence handle of one streaming table.
type tableStore struct {
	name string
	log  *wal.Log
	// ckptBusy admits one checkpoint writer at a time without a lock
	// (checkpointing fsyncs, so it must never run under a mutex).
	ckptBusy atomic.Bool
	ckptSeq  atomic.Uint64 // WAL seq the latest checkpoint covers
	ckptGen  atomic.Uint64 // generation of the latest checkpoint
}

// persister is the registry's persistence state. Counters are atomics
// read by /healthz and the repro_wal_* gauges.
type persister struct {
	opts PersistOptions

	mu     sync.Mutex
	tables map[string]*tableStore
	spills map[string]string // registry key -> spill file path

	checkpoints   atomic.Int64
	truncatedSegs atomic.Int64
	tornTails     atomic.Int64
	errors        atomic.Int64
	spillSaves    atomic.Int64
	spillLoads    atomic.Int64
	recovered     atomic.Int64
	replayed      atomic.Int64
	replayNanos   atomic.Int64

	closeOnce sync.Once
}

func (p *persister) tableDir(name string) string {
	return filepath.Join(p.opts.Dir, "tables", url.PathEscape(name))
}

func (p *persister) samplePath(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(p.opts.Dir, "samples", fmt.Sprintf("%016x.smp", h.Sum64()))
}

func (p *persister) walOptions() wal.Options {
	return wal.Options{
		SegmentBytes: p.opts.SegmentBytes,
		Policy:       p.opts.Fsync,
		SyncEvery:    p.opts.SyncEvery,
	}
}

func (p *persister) store(name string) *tableStore {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tables[name]
}

// toWalConfig mirrors an ingest config into its persisted form. The
// policy is stored resolved (registry defaults already applied), so a
// restart reproduces the policy the stream actually ran with regardless
// of the new process's flags.
func toWalConfig(cfg ingest.Config) wal.StreamConfig {
	return wal.StreamConfig{
		Queries:    cfg.Queries,
		Budget:     cfg.Budget,
		Rate:       cfg.Rate,
		TargetCV:   cfg.TargetCV,
		MaxBudget:  cfg.MaxBudget,
		Capacity:   cfg.Capacity,
		Opts:       cfg.Opts,
		Seed:       cfg.Seed,
		MaxPending: cfg.Policy.MaxPending,
		Interval:   cfg.Policy.Interval,
	}
}

func fromWalConfig(c wal.StreamConfig) ingest.Config {
	return ingest.Config{
		Queries:   c.Queries,
		Budget:    c.Budget,
		Rate:      c.Rate,
		TargetCV:  c.TargetCV,
		MaxBudget: c.MaxBudget,
		Capacity:  c.Capacity,
		Opts:      c.Opts,
		Seed:      c.Seed,
		Policy:    ingest.Policy{MaxPending: c.MaxPending, Interval: c.Interval},
	}
}

// resolveStreamSeed mirrors ingest.New's derivation of an unset seed.
func resolveStreamSeed(seed int64, name string) int64 {
	if seed != 0 {
		return seed
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() >> 1)
}

// remixSeed derives the sampler seed for a recovery from a mid-life
// checkpoint. The original RNG state cannot be serialized, so the
// recovered sampler draws from a fresh, deterministic stream — reusing
// the original seed on the re-fed snapshot would correlate its draws
// with the pre-crash run's.
func remixSeed(seed int64, seq uint64) int64 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(seed))
	binary.LittleEndian.PutUint64(b[8:], seq)
	h := fnv.New64a()
	h.Write(b[:])
	v := int64(h.Sum64() >> 1)
	if v == 0 {
		v = 1 // 0 would re-derive from the table name
	}
	return v
}

// attachPersistence makes a freshly-registered streaming table durable:
// it wipes any stale state under the table's directory, writes
// checkpoint-0 from the stream's initial publication, opens the WAL and
// attaches it. Runs before the stream becomes reachable, so no append
// can slip in unlogged. No locks held.
func (r *Registry) attachPersistence(st *ingest.Stream, name string, cfg ingest.Config) error {
	p := r.persist
	td := p.tableDir(name)
	if err := os.RemoveAll(td); err != nil {
		return fmt.Errorf("serve: persisting %q: %w", name, err)
	}
	if err := os.MkdirAll(td, 0o755); err != nil {
		return fmt.Errorf("serve: persisting %q: %w", name, err)
	}
	pub := st.Last()
	cp := &wal.Checkpoint{
		Table:      name,
		Seq:        0,
		Generation: pub.Generation,
		Config:     toWalConfig(cfg),
		Snapshot:   pub.Snapshot,
	}
	if err := wal.WriteCheckpoint(filepath.Join(td, "checkpoint"), cp, p.opts.Fsync != wal.SyncNever); err != nil {
		return fmt.Errorf("serve: persisting %q: %w", name, err)
	}
	log, err := wal.Open(filepath.Join(td, "wal"), p.walOptions())
	if err != nil {
		return fmt.Errorf("serve: persisting %q: %w", name, err)
	}
	st.SetWAL(log)
	ts := &tableStore{name: name, log: log}
	ts.ckptGen.Store(pub.Generation)
	p.mu.Lock()
	p.tables[name] = ts
	p.mu.Unlock()
	return nil
}

// detachPersistence rolls back attachPersistence when the registration
// ultimately fails (Close won the race): the log is closed and the
// table directory removed, so the next boot does not resurrect a table
// that was never registered.
func (r *Registry) detachPersistence(name string) {
	p := r.persist
	p.mu.Lock()
	ts := p.tables[name]
	delete(p.tables, name)
	p.mu.Unlock()
	if ts != nil {
		ts.log.Close()
	}
	os.RemoveAll(p.tableDir(name))
}

// persistCommit makes a streaming table's acknowledged WAL records
// durable per the fsync policy, then considers a checkpoint. Called
// from Registry.Append and Registry.Refresh after the stream call
// returns — outside every lock.
func (r *Registry) persistCommit(name string) error {
	p := r.persist
	if p == nil {
		return nil
	}
	ts := p.store(name)
	if ts == nil {
		return nil
	}
	if err := ts.log.Commit(); err != nil {
		p.errors.Add(1)
		r.metrics.walErrors.Inc()
		return fmt.Errorf("serve: wal commit for %q: %w", name, err)
	}
	r.maybeCheckpoint(ts)
	return nil
}

// maybeCheckpoint cuts a new checkpoint once the table's WAL outgrows
// the configured threshold and the latest publication covers records
// past the previous checkpoint, then truncates covered segments. The
// publication's snapshot is immutable and its WalSeq names the exact
// prefix it covers, so no stream or shard lock is needed; the busy flag
// keeps concurrent committers from double-writing.
func (r *Registry) maybeCheckpoint(ts *tableStore) {
	p := r.persist
	if ts.log.SizeBytes() < p.opts.CheckpointBytes {
		return
	}
	st, err := r.streamFor(ts.name)
	if err != nil {
		return
	}
	pub := st.stream.Last()
	if pub == nil || pub.WalSeq == 0 || pub.WalSeq <= ts.ckptSeq.Load() {
		return // nothing new is covered; wait for the next publication
	}
	if !ts.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	defer ts.ckptBusy.Store(false)
	cp := &wal.Checkpoint{
		Table:      ts.name,
		Seq:        pub.WalSeq,
		Generation: pub.Generation,
		Config:     toWalConfig(st.cfg),
		Snapshot:   pub.Snapshot,
	}
	if err := wal.WriteCheckpoint(filepath.Join(p.tableDir(ts.name), "checkpoint"), cp, p.opts.Fsync != wal.SyncNever); err != nil {
		p.errors.Add(1)
		r.metrics.walErrors.Inc()
		return
	}
	ts.ckptSeq.Store(pub.WalSeq)
	ts.ckptGen.Store(pub.Generation)
	p.checkpoints.Add(1)
	r.metrics.walCheckpoints.Inc()
	n, err := ts.log.TruncateThrough(pub.WalSeq)
	if err != nil {
		p.errors.Add(1)
		r.metrics.walErrors.Inc()
	}
	if n > 0 {
		p.truncatedSegs.Add(int64(n))
		r.metrics.walTruncatedSegs.Add(int64(n))
	}
}

// RecoveryReport summarizes one Registry.Recover run.
type RecoveryReport struct {
	// Tables is how many streaming tables were rebuilt from disk.
	Tables int
	// ReplayedRecords counts WAL records re-applied across all tables.
	ReplayedRecords int
	// TornTails counts torn WAL segment tails truncated away (the
	// expected crash signature; each is one partially-written record).
	TornTails int
	// SpilledSamples is how many spilled static samples were indexed
	// (loaded lazily on the first Build of their key).
	SpilledSamples int
	// Duration is the wall time of the whole recovery.
	Duration time.Duration
}

// Recover reloads persisted state from the data directory: it indexes
// spilled static samples (loaded lazily on first use) and rebuilds
// every checkpointed streaming table, replaying each table's WAL suffix
// before resuming its refresh loop. Call it once at boot, after static
// table registrations — a recovered streaming table replaces a static
// registration of the same name, since the checkpoint's snapshot is the
// authoritative newer state. Returns an error on corruption that cannot
// be attributed to a torn crash tail; the registry is unusable for the
// affected table in that case and the caller should treat it as fatal.
func (r *Registry) Recover(ctx context.Context) (RecoveryReport, error) {
	p := r.persist
	var rep RecoveryReport
	if p == nil {
		return rep, nil
	}
	start := time.Now()

	// index spilled samples by key; unreadable files are deleted (a
	// crash mid-spill leaves only temp files, so this is defensive)
	sdir := filepath.Join(p.opts.Dir, "samples")
	if ents, err := os.ReadDir(sdir); err == nil {
		for _, de := range ents {
			if de.IsDir() || !strings.HasSuffix(de.Name(), ".smp") {
				continue
			}
			path := filepath.Join(sdir, de.Name())
			hdr, err := wal.ReadSampleHeader(path)
			if err != nil {
				p.errors.Add(1)
				r.metrics.walErrors.Inc()
				os.Remove(path)
				continue
			}
			p.mu.Lock()
			p.spills[hdr.Key] = path
			p.mu.Unlock()
			rep.SpilledSamples++
		}
	}

	// rebuild checkpointed streaming tables
	tdir := filepath.Join(p.opts.Dir, "tables")
	ents, err := os.ReadDir(tdir)
	if err != nil && !os.IsNotExist(err) {
		return rep, err
	}
	for _, de := range ents {
		if !de.IsDir() {
			continue
		}
		td := filepath.Join(tdir, de.Name())
		cp, err := wal.ReadCheckpoint(filepath.Join(td, "checkpoint"))
		if os.IsNotExist(err) {
			// a registration that died before checkpoint-0 landed; the
			// table was never durably registered
			os.RemoveAll(td)
			continue
		}
		if err != nil {
			return rep, fmt.Errorf("serve: recovering %s: %w", td, err)
		}
		replayed, torn, err := r.recoverTable(ctx, td, cp)
		rep.ReplayedRecords += replayed
		rep.TornTails += torn
		if err != nil {
			return rep, err
		}
		rep.Tables++
	}

	rep.Duration = time.Since(start)
	p.recovered.Add(int64(rep.Tables))
	p.replayed.Add(int64(rep.ReplayedRecords))
	p.tornTails.Add(int64(rep.TornTails))
	p.replayNanos.Add(int64(rep.Duration))
	r.metrics.walReplayedRecords.Add(int64(rep.ReplayedRecords))
	r.metrics.walTornTails.Add(int64(rep.TornTails))
	if rep.Tables > 0 {
		r.metrics.walReplayDuration.Observe(rep.Duration)
	}
	return rep, nil
}

// recoverTable rebuilds one streaming table from its checkpoint and WAL
// suffix. The stream is created paused (no refresh loop) so replay —
// which re-drives Append and Refresh in logged order — is the only
// thing consuming sampler RNG draws; the loop resumes once the log is
// attached.
func (r *Registry) recoverTable(ctx context.Context, td string, cp *wal.Checkpoint) (replayed, torn int, err error) {
	p := r.persist
	name := cp.Table
	cfg := fromWalConfig(cp.Config)
	cfg.Paused = true
	cfg.FirstGeneration = cp.Generation
	if cp.Seq > 0 {
		// mid-life checkpoint: the original RNG state is gone, so the
		// recovered sampler draws from a deterministic fresh stream
		cfg.Seed = remixSeed(resolveStreamSeed(cfg.Seed, name), cp.Seq)
	}

	// reserve the name; a static registration of the same table (e.g. a
	// -load CSV) yields to the recovered stream, whose snapshot is the
	// newer authoritative state
	sh := r.shardFor(name)
	r.regMu.Lock()
	sh.mu.Lock()
	for existing := range sh.streams {
		if strings.EqualFold(existing, name) {
			sh.mu.Unlock()
			r.regMu.Unlock()
			return 0, 0, fmt.Errorf("serve: recovering %q: %w", name, ErrAlreadyStreaming)
		}
	}
	if _, canon := sh.tableLocked(name); canon != "" && canon != name {
		delete(sh.tables, canon)
	}
	sh.streams[name] = nil
	sh.mu.Unlock()
	r.regMu.Unlock()

	rollback := func() {
		sh.mu.Lock()
		delete(sh.streams, name)
		sh.mu.Unlock()
	}

	key := streamKey(name, cfg.Queries)
	st, err := ingest.New(cp.Snapshot, cfg, func(pub *ingest.Publication) {
		r.installPublication(sh, name, key, cfg, pub)
	})
	if err != nil {
		rollback()
		return 0, 0, fmt.Errorf("serve: recovering %q: %w", name, err)
	}

	log, err := wal.Open(filepath.Join(td, "wal"), p.walOptions())
	if err != nil {
		rollback()
		st.Close()
		return 0, 0, fmt.Errorf("serve: recovering %q: %w", name, err)
	}
	torn = log.TornTails()

	err = log.Replay(ctx, cp.Seq, func(rec wal.Record) error {
		switch rec.Type {
		case wal.TypeRows:
			rows, derr := wal.DecodeRows(rec.Payload)
			if derr != nil {
				return derr
			}
			// every logged batch was coerced and accepted live (the log
			// write happens after coercion, before apply), so a replay
			// rejection means real divergence, not a bad client batch
			if _, aerr := st.Append(rows); aerr != nil {
				return fmt.Errorf("seq %d: %w", rec.Seq, aerr)
			}
		case wal.TypeRefresh:
			gen, derr := wal.DecodeRefresh(rec.Payload)
			if derr != nil {
				return derr
			}
			pub, rerr := st.Refresh()
			if rerr != nil {
				return fmt.Errorf("seq %d: %w", rec.Seq, rerr)
			}
			if pub.Generation != gen {
				return fmt.Errorf("seq %d: replayed generation %d, logged %d", rec.Seq, pub.Generation, gen)
			}
		default:
			return fmt.Errorf("seq %d: unknown record type %d", rec.Seq, rec.Type)
		}
		replayed++
		return nil
	})
	if err != nil {
		rollback()
		st.Close()
		log.Close()
		return replayed, torn, fmt.Errorf("serve: recovering %q: %w", name, err)
	}

	st.SetWAL(log)
	ts := &tableStore{name: name, log: log}
	ts.ckptSeq.Store(cp.Seq)
	ts.ckptGen.Store(cp.Generation)
	p.mu.Lock()
	p.tables[name] = ts
	p.mu.Unlock()

	sh.mu.Lock()
	if r.closed.Load() {
		delete(sh.streams, name)
		sh.mu.Unlock()
		st.Close()
		log.Close()
		return replayed, torn, fmt.Errorf("serve: recovering %q: %w", name, ErrClosed)
	}
	sh.streams[name] = &streamState{stream: st, key: key, cfg: cfg}
	sh.mu.Unlock()
	st.Resume()
	return replayed, torn, nil
}

// loadSpilled answers a Build miss from a spilled sample, if one exists
// for the key and still matches the registered table (row count and
// schema signature — a changed source table invalidates the spill
// rather than serving row ids into the wrong rows). Stale or corrupt
// spills are deleted so the build path rebuilds fresh.
func (r *Registry) loadSpilled(key string, tbl *table.Table) (*Entry, bool) {
	p := r.persist
	if p == nil {
		return nil, false
	}
	p.mu.Lock()
	path, ok := p.spills[key]
	p.mu.Unlock()
	if !ok {
		return nil, false
	}
	se, err := wal.ReadSample(path)
	if err != nil || se.Key != key || se.TableRows != tbl.NumRows() ||
		se.SchemaSig != wal.SchemaSignature(tbl.Schema()) {
		if err != nil {
			p.errors.Add(1)
			r.metrics.walErrors.Inc()
		}
		r.dropSpilled(key)
		return nil, false
	}
	attrs := make(map[string]bool)
	for _, q := range se.Queries {
		for _, a := range q.GroupBy {
			attrs[a] = true
		}
	}
	e := &Entry{
		Key:           key,
		Table:         tbl.Name,
		Budget:        se.Budget,
		TargetCV:      se.TargetCV,
		AchievedCV:    se.AchievedCV,
		TargetMet:     se.TargetMet,
		Queries:       se.Queries,
		Opts:          se.Opts,
		Sample:        &samplers.RowSample{Rows: se.Rows, Weights: se.Weights},
		BuiltAt:       se.BuiltAt,
		BuildDuration: se.BuildDuration,
		attrs:         attrs,
		popRows:       tbl.NumRows(),
	}
	e.size = entrySizeBytes(e.Sample, tbl.Schema())
	e.lastUsed.Store(r.useClock.Add(1))
	p.spillLoads.Add(1)
	r.metrics.walSpillLoads.Inc()
	return e, true
}

// saveSpilled persists a freshly-built static sample, best-effort: a
// spill failure costs a rebuild after restart, never correctness.
func (r *Registry) saveSpilled(e *Entry, tbl *table.Table) {
	p := r.persist
	if p == nil {
		return
	}
	se := &wal.SampleEntry{
		Key:           e.Key,
		Table:         e.Table,
		Budget:        e.Budget,
		TargetCV:      e.TargetCV,
		AchievedCV:    e.AchievedCV,
		TargetMet:     e.TargetMet,
		Queries:       e.Queries,
		Opts:          e.Opts,
		BuiltAt:       e.BuiltAt,
		BuildDuration: e.BuildDuration,
		TableRows:     tbl.NumRows(),
		SchemaSig:     wal.SchemaSignature(tbl.Schema()),
		Rows:          e.Sample.Rows,
		Weights:       e.Sample.Weights,
	}
	path := p.samplePath(e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		p.errors.Add(1)
		r.metrics.walErrors.Inc()
		return
	}
	if err := wal.WriteSample(path, se, p.opts.Fsync != wal.SyncNever); err != nil {
		p.errors.Add(1)
		r.metrics.walErrors.Inc()
		os.Remove(path)
		return
	}
	p.mu.Lock()
	p.spills[e.Key] = path
	p.mu.Unlock()
	p.spillSaves.Add(1)
	r.metrics.walSpillSaves.Inc()
}

// dropSpilled unlinks a spilled sample. Eviction calls this (outside
// the shard lock) so an evicted entry cannot resurrect from disk on the
// next build of its key.
func (r *Registry) dropSpilled(key string) {
	p := r.persist
	if p == nil {
		return
	}
	p.mu.Lock()
	path, ok := p.spills[key]
	delete(p.spills, key)
	p.mu.Unlock()
	if ok {
		os.Remove(path)
	}
}

// closePersist flushes and closes the persistence layer: a final
// checkpoint per table whose generations advanced past the last one
// (Registry.Close just flushed pending rows into a publication), then
// the final WAL sync. Idempotent.
func (r *Registry) closePersist() {
	p := r.persist
	if p == nil {
		return
	}
	p.closeOnce.Do(func() {
		p.mu.Lock()
		stores := make([]*tableStore, 0, len(p.tables))
		for _, ts := range p.tables {
			stores = append(stores, ts)
		}
		p.mu.Unlock()
		for _, ts := range stores {
			if st, err := r.streamFor(ts.name); err == nil {
				pub := st.stream.Last()
				if pub != nil && pub.WalSeq > ts.ckptSeq.Load() && pub.Generation > ts.ckptGen.Load() {
					cp := &wal.Checkpoint{
						Table:      ts.name,
						Seq:        pub.WalSeq,
						Generation: pub.Generation,
						Config:     toWalConfig(st.cfg),
						Snapshot:   pub.Snapshot,
					}
					if err := wal.WriteCheckpoint(filepath.Join(p.tableDir(ts.name), "checkpoint"), cp, p.opts.Fsync != wal.SyncNever); err != nil {
						p.errors.Add(1)
					} else {
						ts.ckptSeq.Store(pub.WalSeq)
						ts.ckptGen.Store(pub.Generation)
						p.checkpoints.Add(1)
						if n, err := ts.log.TruncateThrough(pub.WalSeq); err == nil && n > 0 {
							p.truncatedSegs.Add(int64(n))
						}
					}
				}
			}
			if err := ts.log.Close(); err != nil {
				p.errors.Add(1)
			}
		}
	})
}

// PersistenceStatus is the ops view of the persistence layer, surfaced
// on /healthz and behind the repro_wal_* gauges.
type PersistenceStatus struct {
	// Dir is the data directory; Fsync the WAL durability policy.
	Dir   string
	Fsync string
	// WalSegments / WalBytes total the live WAL segments across tables.
	WalSegments int
	WalBytes    int64
	// WalLagRecords sums, per table, the records appended past the last
	// checkpoint — the replay debt a crash right now would pay.
	WalLagRecords uint64
	// Checkpoints / TruncatedSegments count checkpoint cuts and the WAL
	// segments they deleted.
	Checkpoints       int64
	TruncatedSegments int64
	// SpilledSamples is the number of spilled static samples on disk.
	SpilledSamples int
	// SpillSaves / SpillLoads count samples written to and warmed from
	// disk.
	SpillSaves int64
	SpillLoads int64
	// RecoveredTables / ReplayedRecords / TornTails / ReplayDuration
	// summarize boot recovery.
	RecoveredTables int64
	ReplayedRecords int64
	TornTails       int64
	ReplayDuration  time.Duration
	// Errors counts persistence faults (failed fsyncs, unreadable
	// spills); the daemon keeps serving from memory when one occurs.
	Errors int64
}

// PersistenceStatus reports the persistence layer's state; ok is false
// when the registry runs without one (no -data-dir).
func (r *Registry) PersistenceStatus() (PersistenceStatus, bool) {
	p := r.persist
	if p == nil {
		return PersistenceStatus{}, false
	}
	s := PersistenceStatus{
		Dir:               p.opts.Dir,
		Fsync:             p.opts.Fsync.String(),
		Checkpoints:       p.checkpoints.Load(),
		TruncatedSegments: p.truncatedSegs.Load(),
		SpillSaves:        p.spillSaves.Load(),
		SpillLoads:        p.spillLoads.Load(),
		RecoveredTables:   p.recovered.Load(),
		ReplayedRecords:   p.replayed.Load(),
		TornTails:         p.tornTails.Load(),
		ReplayDuration:    time.Duration(p.replayNanos.Load()),
		Errors:            p.errors.Load(),
	}
	p.mu.Lock()
	s.SpilledSamples = len(p.spills)
	stores := make([]*tableStore, 0, len(p.tables))
	for _, ts := range p.tables {
		stores = append(stores, ts)
	}
	p.mu.Unlock()
	for _, ts := range stores {
		s.WalSegments += ts.log.Segments()
		s.WalBytes += ts.log.SizeBytes()
		if last, ckpt := ts.log.LastSeq(), ts.ckptSeq.Load(); last > ckpt {
			s.WalLagRecords += last - ckpt
		}
	}
	return s, true
}
