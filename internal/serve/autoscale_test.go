package serve_test

// Budget autoscaling through the serving layer: registry-level build
// and query behavior, the singleflight guarantee for concurrent
// target_cv queries, and the HTTP contract of the new fields.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

func targetReq(target float64, maxBudget int) serve.BuildRequest {
	return serve.BuildRequest{
		Table: "sales",
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		TargetCV:  target,
		MaxBudget: maxBudget,
	}
}

func TestBuildTargetCV(t *testing.T) {
	reg := newSalesRegistry(t)
	e, cached, err := reg.Build(context.Background(), targetReq(0.05, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first build cannot be cached")
	}
	if e.TargetCV != 0.05 || !e.TargetMet {
		t.Fatalf("autoscale metadata wrong: %+v", e)
	}
	if e.AchievedCV > 0.05 || e.AchievedCV < 0 {
		t.Fatalf("achieved CV %v outside (0, target]", e.AchievedCV)
	}
	if e.Budget <= 0 || e.Budget > salesTable(t).NumRows() {
		t.Fatalf("chosen budget %d out of range", e.Budget)
	}
	if e.Sample.Len() == 0 {
		t.Fatal("autoscaled entry has no sample rows")
	}
	if !strings.Contains(e.Key, "tcv=0.05") {
		t.Fatalf("canonical key must record the target, got %q", e.Key)
	}
	if strings.Contains(e.Key, "m="+fmt.Sprint(e.Budget)) {
		t.Fatalf("canonical key must not depend on the chosen budget (an output): %q", e.Key)
	}

	// an equal request — same accuracy ask — shares the entry
	e2, cached, err := reg.Build(context.Background(), targetReq(0.05, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !cached || e2 != e {
		t.Fatal("equal target_cv requests must share one cached entry")
	}
	if got := reg.Builds(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}

	// a different target is a different sample
	e3, _, err := reg.Build(context.Background(), targetReq(0.01, 0))
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e || e3.Budget < e.Budget {
		t.Fatalf("tighter target must build its own, larger entry (%d vs %d)", e3.Budget, e.Budget)
	}
}

func TestBuildTargetCVValidation(t *testing.T) {
	reg := newSalesRegistry(t)
	bad := []serve.BuildRequest{
		func() serve.BuildRequest { r := targetReq(0.05, 0); r.Budget = 100; return r }(), // both
		targetReq(-0.05, 0),       // negative target
		targetReq(math.NaN(), 0),  // NaN target
		targetReq(math.Inf(1), 0), // infinite target
		targetReq(0.05, -1),       // negative cap
		func() serve.BuildRequest { r := buildReq(100); r.MaxBudget = 50; return r }(), // cap without target
	}
	for i, req := range bad {
		if _, _, err := reg.Build(context.Background(), req); err == nil {
			t.Fatalf("bad request %d should fail: %+v", i, req)
		}
	}
	if got := reg.Builds(); got != 0 {
		t.Fatalf("validation failures must not build, got %d builds", got)
	}
}

// A cap below the stratum count cannot sample every group: the entry is
// built best-effort at the cap and says so.
func TestBuildTargetCVCapBestEffort(t *testing.T) {
	reg := newSalesRegistry(t)
	e, _, err := reg.Build(context.Background(), targetReq(0.05, 2)) // 3 region strata, cap 2
	if err != nil {
		t.Fatal(err)
	}
	if e.TargetMet {
		t.Fatalf("2 rows cannot cover 3 strata, yet TargetMet: %+v", e)
	}
	if e.Budget != 2 {
		t.Fatalf("best effort should sit at the cap, got %d", e.Budget)
	}
	if !math.IsInf(e.AchievedCV, 1) {
		t.Fatalf("achieved CV should be infinite with an unsampled stratum, got %v", e.AchievedCV)
	}
}

func TestQueryTargetCV(t *testing.T) {
	reg := newSalesRegistry(t)
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{TargetCV: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry == nil || ans.Entry.TargetCV != 0.05 || !ans.Entry.TargetMet {
		t.Fatalf("answer should come from an autoscaled entry: %+v", ans.Entry)
	}
	if len(ans.Result.Rows) != 3 {
		t.Fatalf("want 3 region groups, got %d", len(ans.Result.Rows))
	}
	// the second identical query reuses the cached entry
	ans2, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{TargetCV: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Entry != ans.Entry || reg.Builds() != 1 {
		t.Fatalf("repeat query must hit the cache (builds = %d)", reg.Builds())
	}
}

func TestQueryTargetCVRejections(t *testing.T) {
	reg := newSalesRegistry(t)
	cases := []struct {
		sql  string
		opt  serve.QueryOptions
		want string
	}{
		{"SELECT region, AVG(amount) FROM sales GROUP BY region",
			serve.QueryOptions{TargetCV: 0.05, Mode: serve.ModeExact}, "exact"},
		{"SELECT region, COUNT(*) FROM sales GROUP BY region",
			serve.QueryOptions{TargetCV: 0.05}, "aggregated column"},
		{"SELECT AVG(amount) FROM sales",
			serve.QueryOptions{TargetCV: 0.05}, "GROUP BY"},
		{"SELECT region, MAX(amount) FROM sales GROUP BY region",
			serve.QueryOptions{TargetCV: 0.05}, "no CV guarantee"},
		// a WHERE filter shrinks the effective per-group sample by its
		// selectivity; the predicted CV would overpromise
		{"SELECT region, AVG(amount) FROM sales WHERE product = 'widget' GROUP BY region",
			serve.QueryOptions{TargetCV: 0.05}, "WHERE"},
	}
	for _, c := range cases {
		_, err := reg.Query(context.Background(), c.sql, c.opt)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s with %+v: error %v should mention %q", c.sql, c.opt, err, c.want)
		}
	}
	if got := reg.Builds(); got != 0 {
		t.Fatalf("rejected queries must not build, got %d", got)
	}
}

// Satellite guarantee: concurrent target_cv queries for one (table,
// workload, target) singleflight into ONE autoscale search + build and
// share the cached entry. Run under -race.
func TestQueryTargetCVSingleflight(t *testing.T) {
	reg := newSalesRegistry(t)
	const goroutines = 24
	var wg sync.WaitGroup
	entries := make([]*serve.Entry, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
				serve.QueryOptions{TargetCV: 0.08})
			if err != nil {
				errs[i] = err
				return
			}
			entries[i] = ans.Entry
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutines %d and 0 got different entries", i)
		}
	}
	if got := reg.Builds(); got != 1 {
		t.Fatalf("%d concurrent identical target_cv queries ran %d builds, want 1", goroutines, got)
	}
}

// sampleWire mirrors the autoscale fields of sample responses.
type sampleWire struct {
	Budget       int      `json:"budget"`
	Rows         int      `json:"rows"`
	Cached       bool     `json:"cached"`
	TargetCV     float64  `json:"target_cv"`
	ChosenBudget int      `json:"chosen_budget"`
	AchievedCV   *float64 `json:"achieved_cv"`
	TargetMet    *bool    `json:"target_met"`
}

// HTTP contract of the new fields on POST /v1/samples.
func TestHTTPSamplesTargetCV(t *testing.T) {
	ts, _ := startServer(t)

	// target_cv plus any explicit sizing is a 400
	for _, body := range []string{
		`{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "target_cv": 0.05, "budget": 100}`,
		`{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "target_cv": 0.05, "rate": 0.1}`,
		`{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "target_cv": -1}`,
		`{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "max_budget": 100, "budget": 10}`,
	} {
		if code := post(t, ts.URL+"/v1/samples", body, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", body, code)
		}
	}

	// target_cv alone autoscales: 201 with achieved_cv/chosen_budget
	var s sampleWire
	body := `{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "target_cv": 0.05}`
	if code := post(t, ts.URL+"/v1/samples", body, &s); code != http.StatusCreated {
		t.Fatalf("autoscaled build: code %d", code)
	}
	if s.TargetCV != 0.05 || s.ChosenBudget <= 0 || s.ChosenBudget != s.Budget {
		t.Fatalf("autoscale fields wrong: %+v", s)
	}
	if s.AchievedCV == nil || *s.AchievedCV > 0.05 {
		t.Fatalf("achieved_cv must be reported and meet the target: %+v", s)
	}
	if s.TargetMet == nil || !*s.TargetMet {
		t.Fatalf("target_met must be true: %+v", s)
	}

	// the same ask again is a cache hit (200, cached)
	var s2 sampleWire
	if code := post(t, ts.URL+"/v1/samples", body, &s2); code != http.StatusOK || !s2.Cached {
		t.Fatalf("repeat autoscaled build should be cached: %+v", s2)
	}

	// cap-bound request: best-effort payload — target_met false,
	// achieved_cv absent (the predicted CV is infinite: a stratum is
	// unsampleable under the cap)
	var be sampleWire
	capBody := `{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "target_cv": 0.05, "max_budget": 2}`
	if code := post(t, ts.URL+"/v1/samples", capBody, &be); code != http.StatusCreated {
		t.Fatalf("cap-bound build: code %d", code)
	}
	if be.TargetMet == nil || *be.TargetMet {
		t.Fatalf("cap-bound build must report target_met false: %+v", be)
	}
	if be.ChosenBudget != 2 || be.AchievedCV != nil {
		t.Fatalf("cap-bound payload wrong (want chosen_budget 2, absent achieved_cv): %+v", be)
	}

	// autoscaled entries appear in GET /v1/samples with their fields
	var list struct {
		Samples []sampleWire `json:"samples"`
	}
	if code := get(t, ts.URL+"/v1/samples", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	autoscaled := 0
	for _, e := range list.Samples {
		if e.TargetCV > 0 {
			autoscaled++
		}
	}
	if autoscaled != 2 {
		t.Fatalf("want 2 autoscaled entries listed, got %d", autoscaled)
	}
}

// HTTP contract of target_cv on POST /v1/query.
func TestHTTPQueryTargetCV(t *testing.T) {
	ts, reg := startServer(t)

	for _, body := range []string{
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": 0.05, "mode": "exact"}`,
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": -0.05}`,
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "max_budget": 50}`,
	} {
		if code := post(t, ts.URL+"/v1/query", body, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", body, code)
		}
	}

	var resp struct {
		queryResponse
		TargetCV     float64  `json:"target_cv"`
		ChosenBudget int      `json:"chosen_budget"`
		AchievedCV   *float64 `json:"achieved_cv"`
		TargetMet    *bool    `json:"target_met"`
	}
	body := `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": 0.05}`
	if code := post(t, ts.URL+"/v1/query", body, &resp); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if resp.Exact || len(resp.Groups) != 3 {
		t.Fatalf("want 3 sampled groups: %+v", resp)
	}
	if resp.TargetCV != 0.05 || resp.ChosenBudget <= 0 {
		t.Fatalf("autoscale fields missing from query response: %+v", resp)
	}
	if resp.AchievedCV == nil || *resp.AchievedCV > 0.05 {
		t.Fatalf("achieved_cv must meet the target: %+v", resp)
	}
	if resp.TargetMet == nil || !*resp.TargetMet {
		t.Fatalf("target_met must be true: %+v", resp)
	}
	if reg.Builds() != 1 {
		t.Fatalf("query-driven autoscale should have built once, got %d", reg.Builds())
	}
}

// The operator's -default-target-cv: a sizing-free build request
// autoscales to the configured goal instead of failing.
func TestHTTPDefaultTargetCV(t *testing.T) {
	reg := newSalesRegistry(t)
	ts := httptest.NewServer(serve.NewServer(reg, serve.WithDefaultTargetCV(0.1)))
	t.Cleanup(ts.Close)

	var s sampleWire
	body := `{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`
	if code := post(t, ts.URL+"/v1/samples", body, &s); code != http.StatusCreated {
		t.Fatalf("sizing-free build with default target: code %d", code)
	}
	if s.TargetCV != 0.1 || s.AchievedCV == nil || *s.AchievedCV > 0.1 {
		t.Fatalf("default target not applied: %+v", s)
	}

	// without the option the same request stays a 400 (covered here to
	// pin the pair of behaviors side by side)
	ts2, _ := startServer(t)
	if code := post(t, ts2.URL+"/v1/samples", body, nil); code != http.StatusBadRequest {
		t.Fatalf("sizing-free build without default must 400")
	}
}
