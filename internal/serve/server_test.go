package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	apiv1 "repro/internal/api/v1"
	"repro/internal/serve"
)

// startServer spins up an httptest server over a fresh sales registry.
func startServer(t *testing.T) (*httptest.Server, *serve.Registry) {
	t.Helper()
	reg := newSalesRegistry(t)
	ts := httptest.NewServer(serve.NewServer(reg))
	t.Cleanup(ts.Close)
	return ts, reg
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

const buildBody = `{
	"table": "sales",
	"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
	"budget": 300,
	"seed": 7
}`

// queryResponse mirrors the wire format of POST /v1/query.
type queryResponse struct {
	Table      string   `json:"table"`
	Exact      bool     `json:"exact"`
	SampleKey  string   `json:"sample_key"`
	SampleRows int      `json:"sample_rows"`
	AggLabels  []string `json:"agg_labels"`
	Groups     []struct {
		Set    int        `json:"set"`
		Key    []string   `json:"key"`
		Aggs   []*float64 `json:"aggs"`
		SE     []*float64 `json:"se"`
		RelErr []*float64 `json:"rel_err"`
	} `json:"groups"`
}

func TestServerEndToEnd(t *testing.T) {
	ts, _ := startServer(t)

	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Go      string `json:"go"`
		Tables  int    `json:"tables"`
		Samples int    `json:"samples"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Status != "ok" || health.Tables != 1 || health.Samples != 0 {
		t.Fatalf("healthz: %+v", health)
	}
	// build identity: the ldflags version stamp ("dev" unstamped) and
	// the Go runtime, so fleet operators can tell daemons apart
	if health.Version != "dev" || !strings.HasPrefix(health.Go, "go") {
		t.Fatalf("healthz build identity: %+v", health)
	}

	var tables struct {
		Tables []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		} `json:"tables"`
	}
	if code := get(t, ts.URL+"/v1/tables", &tables); code != http.StatusOK {
		t.Fatalf("tables: %d", code)
	}
	if len(tables.Tables) != 1 || tables.Tables[0].Name != "sales" || tables.Tables[0].Rows != 3740 {
		t.Fatalf("tables: %+v", tables)
	}

	// register a sample: first build is 201, the repeat is a cached 200
	var built struct {
		Key    string `json:"key"`
		Rows   int    `json:"rows"`
		Cached bool   `json:"cached"`
	}
	if code := post(t, ts.URL+"/v1/samples", buildBody, &built); code != http.StatusCreated {
		t.Fatalf("build: %d", code)
	}
	if built.Key == "" || built.Rows == 0 || built.Cached {
		t.Fatalf("build: %+v", built)
	}
	if code := post(t, ts.URL+"/v1/samples", buildBody, &built); code != http.StatusOK || !built.Cached {
		t.Fatalf("rebuild should be cached: %+v", built)
	}

	var list struct {
		Samples []struct {
			Key     string   `json:"key"`
			GroupBy []string `json:"group_by"`
		} `json:"samples"`
	}
	if code := get(t, ts.URL+"/v1/samples", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(list.Samples) != 1 || list.Samples[0].Key != built.Key {
		t.Fatalf("list: %+v", list)
	}

	// the acceptance query: per-group estimates with standard errors
	var qr queryResponse
	code := post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`, &qr)
	if code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if qr.Exact || qr.SampleKey != built.Key || qr.SampleRows != built.Rows {
		t.Fatalf("query should answer from the built sample: %+v", qr)
	}
	if len(qr.Groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(qr.Groups))
	}
	for _, g := range qr.Groups {
		if len(g.Aggs) != 1 || g.Aggs[0] == nil {
			t.Fatalf("group %v missing estimate", g.Key)
		}
		if len(g.SE) != 1 || g.SE[0] == nil || *g.SE[0] <= 0 {
			t.Fatalf("group %v missing standard error", g.Key)
		}
	}

	// compare mode reports true relative errors
	qr = queryResponse{}
	code = post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "compare": true}`, &qr)
	if code != http.StatusOK {
		t.Fatalf("compare query: %d", code)
	}
	for _, g := range qr.Groups {
		if len(g.RelErr) != 1 || g.RelErr[0] == nil || *g.RelErr[0] > 0.25 {
			t.Fatalf("group %v rel_err missing or implausible: %+v", g.Key, g.RelErr)
		}
	}

	// exact mode bypasses the sample
	qr = queryResponse{}
	code = post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "mode": "exact"}`, &qr)
	if code != http.StatusOK || !qr.Exact || qr.SampleKey != "" {
		t.Fatalf("exact query: code=%d %+v", code, qr)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := startServer(t)
	// every non-2xx body is the apiv1.Error envelope: the status is
	// derived from the machine-readable code, so both are asserted
	cases := []struct {
		name, path, body string
		wantCode         int
		wantAPICode      string
	}{
		{"bad json", "/v1/samples", `{`, http.StatusBadRequest, apiv1.CodeInvalidBody},
		{"unknown field", "/v1/samples", `{"buget": 3}`, http.StatusBadRequest, apiv1.CodeInvalidBody},
		{"missing table", "/v1/samples", `{"queries": [], "budget": 10}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"unknown table", "/v1/samples", `{"table": "nope", "queries": [{"group_by": ["x"], "aggs": [{"column": "y"}]}], "budget": 10}`, http.StatusNotFound, apiv1.CodeTableNotFound},
		{"no budget", "/v1/samples", `{"table": "sales", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeBudgetConflict},
		{"both budgets", "/v1/samples", `{"table": "sales", "budget": 10, "rate": 0.1, "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeBudgetConflict},
		{"negative budget", "/v1/samples", `{"table": "sales", "budget": -5, "rate": 0.1, "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"bad rate", "/v1/samples", `{"table": "sales", "rate": 1.5, "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"bad norm", "/v1/samples", `{"table": "sales", "budget": 10, "norm": "l7", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"lp without p", "/v1/samples", `{"table": "sales", "budget": 10, "norm": "lp", "queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"invalid spec", "/v1/samples", `{"table": "sales", "budget": 10, "queries": [{"group_by": [], "aggs": [{"column": "amount"}]}]}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"bad agg column", "/v1/samples", `{"table": "sales", "budget": 10, "queries": [{"group_by": ["region"], "aggs": [{"column": "nope"}]}]}`, http.StatusUnprocessableEntity, apiv1.CodeBuildFailed},
		{"query bad json", "/v1/query", `{`, http.StatusBadRequest, apiv1.CodeInvalidBody},
		{"query no sql", "/v1/query", `{}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"query bad mode", "/v1/query", `{"sql": "SELECT COUNT(*) FROM sales", "mode": "psychic"}`, http.StatusBadRequest, apiv1.CodeInvalidRequest},
		{"query max_budget alone", "/v1/query", `{"sql": "SELECT COUNT(*) FROM sales", "max_budget": 50}`, http.StatusBadRequest, apiv1.CodeBudgetConflict},
		{"query bad sql", "/v1/query", `{"sql": "not sql"}`, http.StatusUnprocessableEntity, apiv1.CodeQueryFailed},
		{"query unknown table", "/v1/query", `{"sql": "SELECT region, AVG(amount) FROM nope GROUP BY region"}`, http.StatusNotFound, apiv1.CodeTableNotFound},
		{"query no covering sample", "/v1/query", `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "mode": "sample"}`, http.StatusUnprocessableEntity, apiv1.CodeQueryFailed},
		{"stream unknown table", "/v1/tables/nope/stream", `{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "rate": 0.1}`, http.StatusNotFound, apiv1.CodeTableNotFound},
		{"rows not streaming", "/v1/tables/sales/rows", `{"rows": [["NA", "widget", 1.5]]}`, http.StatusConflict, apiv1.CodeNotStreaming},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if code := post(t, ts.URL+c.path, c.body, &e); code != c.wantCode {
			t.Errorf("%s: got %d, want %d", c.name, code, c.wantCode)
		} else if e.Error == "" {
			t.Errorf("%s: error body missing", c.name)
		} else if e.Code != c.wantAPICode {
			t.Errorf("%s: code %q, want %q", c.name, e.Code, c.wantAPICode)
		} else if apiv1.StatusOf(e.Code) != code {
			t.Errorf("%s: status %d disagrees with code %q", c.name, code, e.Code)
		}
	}
	// wrong method → 405 from the method-scoped mux patterns
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: got %d, want 405", resp.StatusCode)
	}
}

// The POST Content-Type gate: a body affirmatively declared as
// something other than JSON is a 415 before any handler runs; a
// missing Content-Type is accepted (bare scripted clients) and decoded
// as JSON.
func TestServerContentTypeGate(t *testing.T) {
	ts, _ := startServer(t)
	for _, ct := range []string{"text/plain", "application/x-www-form-urlencoded", "application/xml; charset=utf-8"} {
		resp, err := http.Post(ts.URL+"/v1/query", ct, strings.NewReader(`{"sql": "SELECT COUNT(*) FROM sales"}`))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType || e.Code != apiv1.CodeUnsupportedMedia {
			t.Fatalf("%s: got %d code %q, want 415 %q", ct, resp.StatusCode, e.Code, apiv1.CodeUnsupportedMedia)
		}
	}
	// gate rejections are visible in /healthz under the synthetic
	// latency label (they never reach a routed handler)
	var health struct {
		Latency map[string]struct {
			Count int64 `json:"count"`
		} `json:"latency"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if g, ok := health.Latency["POST (unsupported_media_type)"]; !ok || g.Count != 3 {
		t.Fatalf("415s missing from latency digests: %+v", health.Latency)
	}
	// no Content-Type at all: accepted and treated as JSON
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(`{"sql": "SELECT COUNT(*) FROM sales"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare POST: got %d, want 200", resp.StatusCode)
	}
	// GETs are exempt: the gate is for request bodies
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: %d", resp.StatusCode)
	}
}

// Per-route latency digests: after traffic on distinct routes,
// /healthz reports one plausible p50/p95/p99 series per route pattern.
func TestServerLatencyDigests(t *testing.T) {
	ts, _ := startServer(t)
	if code := post(t, ts.URL+"/v1/samples", buildBody, nil); code != http.StatusCreated {
		t.Fatalf("build: %d", code)
	}
	for i := 0; i < 5; i++ {
		if code := post(t, ts.URL+"/v1/query",
			`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`, nil); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}
	var health struct {
		Latency map[string]struct {
			Count int64   `json:"count"`
			P50   float64 `json:"p50_ms"`
			P95   float64 `json:"p95_ms"`
			P99   float64 `json:"p99_ms"`
		} `json:"latency"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	q, ok := health.Latency[apiv1.RouteQuery]
	if !ok {
		t.Fatalf("no latency series for %s: %+v", apiv1.RouteQuery, health.Latency)
	}
	if q.Count != 5 || q.P50 <= 0 || q.P95 < q.P50 || q.P99 < q.P95 {
		t.Fatalf("query latency implausible: %+v", q)
	}
	if b, ok := health.Latency[apiv1.RouteBuildSample]; !ok || b.Count != 1 {
		t.Fatalf("build latency: %+v", health.Latency)
	}
	// failed requests are timed too (the digest is per served request,
	// not per success), and the latency keys are route *patterns*, so
	// per-table URLs do not fan out into per-table series
	post(t, ts.URL+"/v1/tables/nope/rows", `{"rows": [["x"]]}`, nil)
	post(t, ts.URL+"/v1/tables/also-nope/rows", `{"rows": [["x"]]}`, nil)
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if r, ok := health.Latency[apiv1.RouteAppendRows]; !ok || r.Count != 2 {
		t.Fatalf("append latency should aggregate by pattern: %+v", health.Latency)
	}
}

// Parallel clients over a real HTTP stack: all answers must be
// identical (same shared sample, deterministic executor). Run with
// -race, this is the serving guarantee end-to-end minus the binary.
func TestServerConcurrentClients(t *testing.T) {
	ts, _ := startServer(t)
	if code := post(t, ts.URL+"/v1/samples", buildBody, nil); code != http.StatusCreated {
		t.Fatalf("build: %d", code)
	}
	var want bytes.Buffer
	{
		resp, err := http.Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"sql": "SELECT region, AVG(amount), COUNT(*) FROM sales GROUP BY region"}`))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(&want, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	const clients = 12
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(`{"sql": "SELECT region, AVG(amount), COUNT(*) FROM sales GROUP BY region"}`))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(want.Bytes(), body) {
					t.Errorf("client %d: response diverged:\nwant %s\ngot  %s", c, want.Bytes(), body)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	// concurrent sample registrations of one key over HTTP dedupe too
	var regWG sync.WaitGroup
	codes := make([]int, 8)
	body := fmt.Sprintf(`{
		"table": "sales",
		"queries": [{"group_by": ["region", "product"], "aggs": [{"column": "amount"}]}],
		"budget": 250
	}`)
	regWG.Add(len(codes))
	for i := range codes {
		go func(i int) {
			defer regWG.Done()
			codes[i] = post(t, ts.URL+"/v1/samples", body, nil)
		}(i)
	}
	regWG.Wait()
	fresh := 0
	for _, code := range codes {
		if code == http.StatusCreated {
			fresh++
		} else if code != http.StatusOK {
			t.Fatalf("concurrent registration: unexpected status %d", code)
		}
	}
	if fresh != 1 {
		t.Fatalf("%d registrations reported a fresh build, want exactly 1", fresh)
	}
}
