package serve_test

// Plan-cache behavior under concurrency: one compilation per key no
// matter how many queries race (singleflight), LRU eviction bounded by
// WithMaxPlans, eviction never corrupting an in-flight execution
// (plans are immutable; the churn test verifies results while evicting
// under -race), cached interpreter fallbacks, the forced-interpreter
// escape hatch, and the explain:true wire surface.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	apiv1 "repro/internal/api/v1"
	"repro/internal/exec"
	"repro/internal/serve"
	"repro/internal/sqlparse"
)

const planSQL = "SELECT region, AVG(amount), COUNT(*) FROM sales WHERE amount > 50 GROUP BY region"

func TestPlanCacheSingleflight(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1))
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	const workers = 32
	var wg sync.WaitGroup
	answers := make([]*serve.QueryAnswer, workers)
	errs := make([]error, workers)
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			answers[i], errs[i] = reg.Query(context.Background(), planSQL, serve.QueryOptions{Mode: serve.ModeExact})
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if answers[i].Plan == nil {
			t.Fatalf("worker %d: expected a compiled plan, got interpreter fallback", i)
		}
	}
	if got := reg.PlanCompiles(); got != 1 {
		t.Fatalf("%d racing queries compiled %d plans, want exactly 1 (singleflight)", workers, got)
	}
	if got := reg.PlanCount(); got != 1 {
		t.Fatalf("PlanCount() = %d, want 1", got)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1), serve.WithMaxPlans(1))
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	sqlA := "SELECT region, AVG(amount) FROM sales GROUP BY region"
	sqlB := "SELECT region, SUM(amount) FROM sales GROUP BY region"
	for _, sql := range []string{sqlA, sqlB, sqlA} {
		if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
			t.Fatal(err)
		}
	}
	// cap 1: A compiles, B compiles and evicts A, A compiles again and
	// evicts B
	if got := reg.PlanCompiles(); got != 3 {
		t.Fatalf("PlanCompiles() = %d, want 3 (cap-1 cache thrashing)", got)
	}
	if got := reg.PlanEvictions(); got != 2 {
		t.Fatalf("PlanEvictions() = %d, want 2", got)
	}
	if got := reg.PlanCount(); got != 1 {
		t.Fatalf("PlanCount() = %d, want 1 (cap)", got)
	}
}

// TestPlanCacheEvictionNeverTears churns a cap-2 cache with eight
// distinct queries from many goroutines, checking every answer against
// the interpreter's. Plans are immutable — eviction drops the cache's
// reference, never the executing goroutine's — so results must stay
// exact while the cache thrashes. Run under -race in CI.
func TestPlanCacheEvictionNeverTears(t *testing.T) {
	tbl := salesTable(t)
	reg := serve.NewRegistry(serve.WithShards(1), serve.WithMaxPlans(2))
	if err := reg.RegisterTable(tbl); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	queries := make([]string, 8)
	wants := make([]*exec.Result, 8)
	for i := range queries {
		queries[i] = fmt.Sprintf(
			"SELECT region, SUM(amount), COUNT(*) FROM sales WHERE amount > %d GROUP BY region", i*10)
		q, err := sqlparse.Parse(queries[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.Run(tbl, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	const workers = 8
	const iters = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (w + i) % len(queries)
				ans, err := reg.Query(context.Background(), queries[qi], serve.QueryOptions{Mode: serve.ModeExact})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				want := wants[qi]
				if len(ans.Result.Rows) != len(want.Rows) {
					t.Errorf("worker %d: %d rows, want %d", w, len(ans.Result.Rows), len(want.Rows))
					return
				}
				for r := range want.Rows {
					for a := range want.Rows[r].Aggs {
						if math.Float64bits(ans.Result.Rows[r].Aggs[a]) != math.Float64bits(want.Rows[r].Aggs[a]) {
							t.Errorf("worker %d: row %d agg %d = %v, want %v",
								w, r, a, ans.Result.Rows[r].Aggs[a], want.Rows[r].Aggs[a])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := reg.PlanCount(); got > 2 {
		t.Fatalf("PlanCount() = %d, want <= 2 (cap)", got)
	}
	if reg.PlanEvictions() == 0 {
		t.Fatal("churning 8 queries through a cap-2 cache should evict")
	}
}

// TestPlanCacheFallback: a query outside the plannable subset (IF with
// mixed-kind branches) is served by the interpreter, yields correct
// results, and its rejection is cached — one Compile, ever.
func TestPlanCacheFallback(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1))
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	sql := "SELECT COUNT_IF(IF(amount > 50, amount, region) > 0) FROM sales"
	ans, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Plan != nil {
		t.Fatal("mixed-kind IF should be unplannable")
	}
	if len(ans.Result.Rows) != 1 {
		t.Fatalf("fallback result has %d rows, want 1", len(ans.Result.Rows))
	}
	if got := reg.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles() = %d, want 1", got)
	}
	if got := reg.PlanCount(); got != 1 {
		t.Fatalf("PlanCount() = %d, want 1 (rejection cached)", got)
	}
	if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeExact}); err != nil {
		t.Fatal(err)
	}
	if got := reg.PlanCompiles(); got != 1 {
		t.Fatalf("repeat query recompiled: PlanCompiles() = %d, want 1 (cached rejection)", got)
	}
}

// TestPlanCacheForcedInterpreter: ExecInterpreted bypasses the planner
// entirely and answers match the planned path bit-for-bit.
func TestPlanCacheForcedInterpreter(t *testing.T) {
	reg := serve.NewRegistry()
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	forced, err := reg.Query(context.Background(), planSQL, serve.QueryOptions{
		Mode: serve.ModeExact, Executor: serve.ExecInterpreted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Plan != nil {
		t.Fatal("ExecInterpreted must not plan")
	}
	if got := reg.PlanCompiles(); got != 0 {
		t.Fatalf("ExecInterpreted compiled %d plans, want 0", got)
	}

	planned, err := reg.Query(context.Background(), planSQL, serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if planned.Plan == nil {
		t.Fatal("auto executor should plan this query")
	}
	if len(forced.Result.Rows) != len(planned.Result.Rows) {
		t.Fatalf("executor row counts diverge: %d vs %d", len(forced.Result.Rows), len(planned.Result.Rows))
	}
	for r := range forced.Result.Rows {
		for a := range forced.Result.Rows[r].Aggs {
			if math.Float64bits(forced.Result.Rows[r].Aggs[a]) != math.Float64bits(planned.Result.Rows[r].Aggs[a]) {
				t.Fatalf("row %d agg %d: interpreter %v vs columnar %v",
					r, a, forced.Result.Rows[r].Aggs[a], planned.Result.Rows[r].Aggs[a])
			}
		}
	}
}

// TestPlanCacheSurvivesSampleEviction is the evict→rebuild regression
// test: a sample budget too small for any sample means every build is
// evicted right after it answers, so the second identical query rebuilds
// the sample while hitting the cached plan. The cached plan must bind to
// the *rebuilt* entry, not anything from the evicted one — verified by
// bit-comparing against the interpreter oracle over the same rebuild.
func TestPlanCacheSurvivesSampleEviction(t *testing.T) {
	reg := serve.NewRegistry(serve.WithShards(1), serve.WithMaxSampleBytes(100))
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	// TargetCV makes the query build its own sample (Find misses every
	// time here, since the budget evicts each build immediately)
	sql := "SELECT region, AVG(amount) FROM sales GROUP BY region"
	opt := serve.QueryOptions{Mode: serve.ModeSample, TargetCV: 0.2}
	first, err := reg.Query(context.Background(), sql, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plan == nil || first.Entry == nil {
		t.Fatalf("want a planned sample answer, got plan=%v entry=%v", first.Plan, first.Entry)
	}
	if reg.Evictions() == 0 {
		t.Fatal("a 100-byte budget should evict every sample immediately")
	}
	builds := reg.Builds()

	second, err := reg.Query(context.Background(), sql, opt)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Builds() != builds+1 {
		t.Fatalf("second query should rebuild the evicted sample (builds %d -> %d)", builds, reg.Builds())
	}
	if got := reg.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles() = %d, want 1 (rebuild must reuse the cached plan)", got)
	}
	// the oracle: the interpreter over the same deterministic rebuild
	oracle, err := reg.Query(context.Background(), sql, serve.QueryOptions{
		Mode: serve.ModeSample, TargetCV: 0.2, Executor: serve.ExecInterpreted,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ans := range []*serve.QueryAnswer{first, second} {
		if len(ans.Result.Rows) != len(oracle.Result.Rows) {
			t.Fatalf("row counts diverge from oracle: %d vs %d", len(ans.Result.Rows), len(oracle.Result.Rows))
		}
		for r := range oracle.Result.Rows {
			for a := range oracle.Result.Rows[r].Aggs {
				if math.Float64bits(ans.Result.Rows[r].Aggs[a]) != math.Float64bits(oracle.Result.Rows[r].Aggs[a]) {
					t.Fatalf("row %d agg %d: planned %v vs oracle %v",
						r, a, ans.Result.Rows[r].Aggs[a], oracle.Result.Rows[r].Aggs[a])
				}
			}
		}
	}
}

// TestPlanCacheRebindsAcrossStreamSnapshots compiles a plan whose WHERE
// names a string value absent from the snapshot it compiled against,
// then refreshes the stream with rows carrying that value. The cached
// plan must rebind its dictionary predicate to the new snapshot — a
// binding frozen at compile time would keep filtering everything out.
func TestPlanCacheRebindsAcrossStreamSnapshots(t *testing.T) {
	reg := newStreamingRegistry(t, streamCfg(300))
	sql := "SELECT region, COUNT(*) FROM sales WHERE region = 'LATAM' GROUP BY region"
	opt := serve.QueryOptions{Mode: serve.ModeExact}
	before, err := reg.Query(context.Background(), sql, opt)
	if err != nil {
		t.Fatal(err)
	}
	if before.Plan == nil {
		t.Fatal("string-equality WHERE should be plannable")
	}
	if len(before.Result.Rows) != 0 {
		t.Fatalf("LATAM groups before append = %d, want 0", len(before.Result.Rows))
	}

	rows := make([][]any, 7)
	for i := range rows {
		rows[i] = []any{"LATAM", "widget", 150.0 + float64(i)}
	}
	if _, err := reg.Append("sales", rows); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}

	after, err := reg.Query(context.Background(), sql, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.PlanCompiles(); got != 1 {
		t.Fatalf("PlanCompiles() = %d, want 1 (the refresh must not force a recompile)", got)
	}
	if len(after.Result.Rows) != 1 || after.Result.Rows[0].Aggs[0] != 7 {
		t.Fatalf("LATAM groups after refresh = %+v, want one group counting 7 (stale dictionary binding?)",
			after.Result.Rows)
	}
}

// TestQueryExplainHTTP covers the wire surface: explain:true returns
// the operator tree and the executor tag; without it, no plan is
// attached but the executor is still reported.
func TestQueryExplainHTTP(t *testing.T) {
	ts, _ := startServer(t)

	var resp apiv1.QueryResponse
	body := fmt.Sprintf(`{"sql": %q, "mode": "exact", "explain": true}`, planSQL)
	if code := post(t, ts.URL+apiv1.Path(apiv1.RouteQuery), body, &resp); code != 200 {
		t.Fatalf("query returned %d", code)
	}
	if resp.Executor != apiv1.ExecutorColumnar {
		t.Fatalf("executor = %q, want %q", resp.Executor, apiv1.ExecutorColumnar)
	}
	if resp.Plan == nil || resp.Plan.Op != "output" {
		t.Fatalf("explain:true should attach an output-rooted plan, got %+v", resp.Plan)
	}
	node, ops := resp.Plan, []string{}
	for node != nil {
		ops = append(ops, node.Op)
		if len(node.Children) == 0 {
			break
		}
		node = node.Children[0]
	}
	if ops[len(ops)-1] != "scan" {
		t.Fatalf("plan chain %v should bottom out at scan", ops)
	}
	if src := node.Detail["source"]; src != "table" {
		t.Fatalf("exact-mode scan source = %v, want table", src)
	}

	var plain apiv1.QueryResponse
	body = fmt.Sprintf(`{"sql": %q, "mode": "exact"}`, planSQL)
	if code := post(t, ts.URL+apiv1.Path(apiv1.RouteQuery), body, &plain); code != 200 {
		t.Fatalf("query returned %d", code)
	}
	if plain.Plan != nil {
		t.Fatal("without explain:true no plan should be attached")
	}
	if plain.Executor != apiv1.ExecutorColumnar {
		t.Fatalf("executor = %q, want %q", plain.Executor, apiv1.ExecutorColumnar)
	}
}
