package serve

// Memory-bounded serving: the registry charges every built sample an
// estimated resident byte size and, when a configured budget
// (WithMaxSampleBytes / cvserve -max-sample-bytes) is exceeded, evicts
// entries until the total fits again. Eviction is *hits-informed LRU*:
// entries Find has never selected go first (a built-but-unused sample
// is pure cost), then the least-recently-used, with larger entries
// preferred on ties so each eviction frees as much as possible. Entries
// belonging to a live streaming table are pinned — evicting the current
// generation would silently degrade a table that explicitly asked to
// stay live — so a budget smaller than the pinned total is enforced
// only for the evictable remainder. An evicted key is rebuilt on the
// next Build of the same request (a deliberate cache miss, never an
// error).

import (
	"strings"

	"repro/internal/samplers"
	"repro/internal/table"
)

// sampleRowWidth estimates the resident bytes one sampled row costs:
// its id (int32) and weight (float64) plus the width of one table row
// it keeps meaningful — 4 bytes per dictionary-coded string column, 8
// per numeric column. A deliberate estimate, not an accounting of the
// allocator: it is stable, cheap, and proportional to what actually
// grows when samples pile up.
func sampleRowWidth(sch table.Schema) int64 {
	w := int64(4 + 8) // row id + weight
	for _, c := range sch {
		if c.Kind == table.String {
			w += 4
		} else {
			w += 8
		}
	}
	return w
}

// entrySizeBytes is the byte size charged against the registry budget
// for one built sample: weighted-sample rows × row width.
func entrySizeBytes(s *samplers.RowSample, sch table.Schema) int64 {
	return int64(s.Len()) * sampleRowWidth(sch)
}

// ResidentSampleBytes returns the current estimated resident size of
// all built samples (the number eviction keeps under MaxSampleBytes).
func (r *Registry) ResidentSampleBytes() int64 { return r.residentBytes.Load() }

// MaxSampleBytes returns the configured resident sample budget (0 =
// unbounded).
func (r *Registry) MaxSampleBytes() int64 { return r.maxSampleBytes }

// Evictions returns how many entries the byte budget has evicted.
func (r *Registry) Evictions() int64 { return r.evictions.Load() }

// EvictedBytes returns the total estimated bytes eviction has freed.
func (r *Registry) EvictedBytes() int64 { return r.evictedBytes.Load() }

// victim identifies one eviction candidate and the signals it is
// ranked by.
type victim struct {
	sh   *shard
	key  string
	hits int64
	used int64
	size int64
}

// worse reports whether a should be evicted before b: never-hit entries
// first, then least-recently-used, then largest (free the most per
// eviction), then key order for determinism.
func (a victim) worse(b victim) bool {
	if az, bz := a.hits == 0, b.hits == 0; az != bz {
		return az
	}
	if a.used != b.used {
		return a.used < b.used
	}
	if a.size != b.size {
		return a.size > b.size
	}
	return a.key < b.key
}

// maybeEvict brings resident sample bytes back under the budget, if one
// is set. Runs after every entry install, outside all shard locks; a
// single evictor runs at a time (concurrent installers queue briefly on
// evictMu, which is only ever held for map-sized work, never builds).
func (r *Registry) maybeEvict() {
	if r.maxSampleBytes <= 0 {
		return
	}
	r.evictMu.Lock()
	defer r.evictMu.Unlock()
	for r.residentBytes.Load() > r.maxSampleBytes {
		v, ok := r.pickVictim()
		if !ok {
			return // everything left is pinned; budget is best-effort
		}
		v.sh.mu.Lock()
		// re-verify under the write lock: the entry may have been
		// replaced (streaming refresh) or evicted since the scan
		evicted := false
		if e, present := v.sh.entries[v.key]; present && !v.sh.pinnedLocked(e) {
			delete(v.sh.entries, v.key)
			r.residentBytes.Add(-e.size)
			r.evictions.Add(1)
			r.evictedBytes.Add(e.size)
			r.metrics.evictions.Inc()
			r.metrics.evictedBytes.Add(e.size)
			evicted = true
		}
		v.sh.mu.Unlock()
		// the spill file goes with the entry (outside the shard lock):
		// an evicted sample must not resurrect from disk on its next
		// build
		if evicted {
			r.dropSpilled(v.key)
		}
	}
}

// pickVictim scans each shard (under its read lock) for its worst
// unpinned entry and returns the globally worst one.
func (r *Registry) pickVictim() (victim, bool) {
	var best victim
	found := false
	for _, sh := range r.shards {
		sh.mu.RLock()
		for key, e := range sh.entries {
			if sh.pinnedLocked(e) {
				continue
			}
			v := victim{sh: sh, key: key, hits: e.Hits.Load(), used: e.lastUsed.Load(), size: e.size}
			if !found || v.worse(best) {
				best, found = v, true
			}
		}
		sh.mu.RUnlock()
	}
	return best, found
}

// pinnedLocked reports whether e is the current generation of a live
// streaming table in this shard and therefore exempt from eviction. The
// match is by table name, not stream key, so a generation published
// while its registration is still holding the nil reservation
// placeholder (ingest.New publishes generation 1 before startStream
// installs the streamState) is already pinned. Caller holds s.mu
// (either mode).
func (s *shard) pinnedLocked(e *Entry) bool {
	if e.snapshot == nil {
		return false // static entries are never pinned
	}
	for n := range s.streams {
		if strings.EqualFold(n, e.Table) {
			return true
		}
	}
	return false
}
