package serve_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/table"
)

// benchTable builds a small named table: lock overhead, not scan time,
// should dominate the benchmarked hot path.
func benchTable(name string, rows int) *table.Table {
	tbl := table.New(name, table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	regions := []string{"NA", "EU", "APAC", "LATAM"}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(regions[i%len(regions)], float64(i%97)); err != nil {
			panic(err)
		}
	}
	return tbl
}

// benchRegistry registers n small tables t0..t{n-1}, each with one built
// region sample.
func benchRegistry(b *testing.B, n int) *serve.Registry {
	b.Helper()
	reg := serve.NewRegistry()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := reg.RegisterTable(benchTable(name, 512)); err != nil {
			b.Fatal(err)
		}
		_, _, err := reg.Build(context.Background(), serve.BuildRequest{
			Table: name,
			Queries: []core.QuerySpec{{
				GroupBy: []string{"region"},
				Aggs:    []core.AggColumn{{Column: "amount"}},
			}},
			Budget: 64,
			Seed:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return reg
}

// BenchmarkFindParallelMixedTables is the pure registry-contention
// measure: every goroutine resolves samples of its own table, so with a
// sharded registry the goroutines should never touch the same lock.
func BenchmarkFindParallelMixedTables(b *testing.B) {
	const tables = 8
	reg := benchRegistry(b, tables)
	defer reg.Close()
	names := make([]string, tables)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	groupBy := []string{"region"}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := names[int(next.Add(1))%tables]
		for pb.Next() {
			if _, ok := reg.Find(name, groupBy); !ok {
				b.Fail()
			}
		}
	})
}

// BenchmarkQueryParallelMixedTables is the end-to-end read path (parse +
// resolve + weighted exec) under mixed-table load.
func BenchmarkQueryParallelMixedTables(b *testing.B) {
	const tables = 8
	reg := benchRegistry(b, tables)
	defer reg.Close()
	sqls := make([]string, tables)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("SELECT region, AVG(amount) FROM t%d GROUP BY region", i)
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sql := sqls[int(next.Add(1))%tables]
		for pb.Next() {
			if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkQueryDuringBuilds hammers queries on one table while fresh
// sample builds (distinct keys, so no dedup) continuously land on
// *other* tables. With one registry-wide lock every install stalls the
// readers; sharded, the builds are invisible to them.
func BenchmarkQueryDuringBuilds(b *testing.B) {
	const tables = 8
	reg := benchRegistry(b, tables)
	defer reg.Close()
	stop := make(chan struct{})
	defer close(stop)
	for t := 1; t < tables; t++ {
		go func(t int) {
			name := fmt.Sprintf("t%d", t)
			for budget := 1; ; budget++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _, err := reg.Build(context.Background(), serve.BuildRequest{
					Table: name,
					Queries: []core.QuerySpec{{
						GroupBy: []string{"region"},
						Aggs:    []core.AggColumn{{Column: "amount"}},
					}},
					Budget: 16 + budget%64,
					Seed:   int64(budget), // distinct seeds force real builds
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(t)
	}
	const sql = "SELECT region, AVG(amount) FROM t0 GROUP BY region"
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
