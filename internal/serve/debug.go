package serve

// The debug listener surface: everything an operator wants on a
// separate, non-public port. cvserve -debug-addr serves this handler so
// pprof and the observability endpoints never share a listener with the
// query API (profiling a production daemon must not require exposing
// /debug/pprof to query clients).

import (
	"net/http"
	"net/http/pprof"

	apiv1 "repro/internal/api/v1"
)

// DebugHandler returns the debug-listener mux: net/http/pprof under
// /debug/pprof/, plus the same /metrics exposition and /debug/requests
// trace dump the main listener serves. Requests here are not
// instrumented — the debug port must stay readable even while the
// serving path is the thing being debugged.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc(apiv1.RouteMetrics, s.reg.Obs().ServeHTTP)
	mux.HandleFunc(apiv1.RouteDebugReqs, s.handleDebugRequests)
	return mux
}
