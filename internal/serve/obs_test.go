package serve_test

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	apiv1 "repro/internal/api/v1"
	"repro/internal/serve"
)

// getBody fetches a URL and returns status and raw body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b.String()
}

// metricValue extracts the value of an exact series line ("name 3" or
// `name{label="x"} 3`) from a Prometheus exposition body; -1 if absent.
func metricValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
		}
	}
	return -1
}

// Every request carries X-Request-ID: a client-supplied ID is adopted
// and echoed; absent one, the server mints an ID. Error responses
// carry the header too — that is what lets a client stamp APIErrors.
func TestServerRequestIDRoundTrip(t *testing.T) {
	ts, _ := startServer(t)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(apiv1.HeaderRequestID, "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(apiv1.HeaderRequestID); got != "client-chose-this" {
		t.Fatalf("echoed id = %q, want the client's", got)
	}

	// no ID sent: the server mints one (16 hex chars)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	minted := resp.Header.Get(apiv1.HeaderRequestID)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(minted) {
		t.Fatalf("minted id = %q, want 16 hex chars", minted)
	}

	// error responses are identified too
	resp, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || resp.Header.Get(apiv1.HeaderRequestID) == "" {
		t.Fatalf("error response: status=%d id=%q", resp.StatusCode, resp.Header.Get(apiv1.HeaderRequestID))
	}
}

// GET /metrics speaks the Prometheus text exposition and its series
// advance under a real workload: builds, cache hits, queries, and the
// per-route request counters all move.
func TestServerMetricsEndpoint(t *testing.T) {
	ts, _ := startServer(t)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	resp.Body.Close()
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}

	// workload: one real build, one cached rebuild, three queries
	if code := post(t, ts.URL+"/v1/samples", buildBody, nil); code != http.StatusCreated {
		t.Fatalf("build: %d", code)
	}
	if code := post(t, ts.URL+"/v1/samples", buildBody, nil); code != http.StatusOK {
		t.Fatalf("rebuild: %d", code)
	}
	for i := 0; i < 3; i++ {
		if code := post(t, ts.URL+"/v1/query",
			`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`, nil); code != http.StatusOK {
			t.Fatalf("query: %d", code)
		}
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	checks := []struct {
		series string
		want   float64
	}{
		{"repro_builds_total", 1},
		{"repro_build_cache_misses_total", 1},
		{"repro_build_cache_hits_total", 1},
		{"repro_build_duration_seconds_count", 1},
		{"repro_find_hits_total", 3},
		{"repro_samples", 1},
		{"repro_tables", 1},
		{`repro_http_requests_total{route="POST /v1/query",code="200"}`, 3},
		{`repro_http_requests_total{route="POST /v1/samples",code="201"}`, 1},
		{`repro_http_request_duration_seconds_count{route="POST /v1/query"}`, 3},
	}
	for _, c := range checks {
		if got := metricValue(body, c.series); got != c.want {
			t.Errorf("%s = %g, want %g", c.series, got, c.want)
		}
	}
	// every metric family is typed: no series without # TYPE
	if !strings.Contains(body, "# TYPE repro_build_duration_seconds histogram") {
		t.Errorf("build duration histogram untyped:\n%s", body)
	}
	// /metrics instruments itself: the second scrape sees the first
	if got := metricValue(body, `repro_http_requests_total{route="`+apiv1.RouteMetrics+`",code="200"}`); got < 1 {
		t.Errorf("metrics route not self-counted: %g", got)
	}
}

// debug=true returns an inline per-phase trace whose spans fit inside
// the measured duration; /debug/requests then lists the same request
// newest-first under its route pattern.
func TestServerInlineTraceAndDebugRequests(t *testing.T) {
	ts, _ := startServer(t)

	var built struct {
		Trace *apiv1.RequestTrace `json:"trace"`
	}
	if code := post(t, ts.URL+"/v1/samples",
		strings.Replace(buildBody, `"seed": 7`, `"seed": 7, "debug": true`, 1), &built); code != http.StatusCreated {
		t.Fatalf("build: %d", code)
	}
	if built.Trace == nil {
		t.Fatal("debug build response missing trace")
	}
	if built.Trace.Route != apiv1.RouteBuildSample || built.Trace.RequestID == "" {
		t.Fatalf("trace header: %+v", built.Trace)
	}
	phases := map[string]bool{}
	var spanSum float64
	for _, sp := range built.Trace.Spans {
		phases[sp.Name] = true
		spanSum += sp.DurationMS
	}
	// a fixed-budget build on a cold cache: decode, the sample draw,
	// encode (build_wait and autoscale only appear when a request
	// waits on an in-flight build or runs the budget probe)
	for _, want := range []string{"decode", "draw", "encode"} {
		if !phases[want] {
			t.Errorf("build trace missing phase %q: %+v", want, built.Trace.Spans)
		}
	}
	// the inline trace is snapshotted mid-flight (before the response
	// is written), so spans sum to at most the final duration — and
	// they must account for real time, not zeros
	if spanSum <= 0 {
		t.Fatalf("trace spans sum to %g ms", spanSum)
	}

	var qr struct {
		Trace *apiv1.RequestTrace `json:"trace"`
	}
	if code := post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "debug": true}`, &qr); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if qr.Trace == nil {
		t.Fatal("debug query response missing trace")
	}
	qphases := map[string]bool{}
	for _, sp := range qr.Trace.Spans {
		qphases[sp.Name] = true
	}
	for _, want := range []string{"decode", "parse", "find", "exec", "encode"} {
		if !qphases[want] {
			t.Errorf("query trace missing phase %q: %+v", want, qr.Trace.Spans)
		}
	}
	// non-debug requests carry no trace
	var plain struct {
		Trace *apiv1.RequestTrace `json:"trace"`
	}
	if code := post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`, &plain); code != http.StatusOK || plain.Trace != nil {
		t.Fatalf("plain query: code=%d trace=%+v", code, plain.Trace)
	}

	var dbg apiv1.DebugRequests
	if code := get(t, ts.URL+"/debug/requests", &dbg); code != http.StatusOK {
		t.Fatalf("debug/requests: %d", code)
	}
	recent, ok := dbg.Routes[apiv1.RouteQuery]
	if !ok || len(recent) != 2 {
		t.Fatalf("debug/requests for %s: %+v", apiv1.RouteQuery, dbg.Routes)
	}
	// newest-first: the plain query is listed before the debug one,
	// and completed traces carry their status
	if recent[0].Status != http.StatusOK || len(recent[0].Spans) == 0 {
		t.Fatalf("recorded trace: %+v", recent[0])
	}
	if recent[1].RequestID != qr.Trace.RequestID {
		t.Fatalf("ordering: second entry id %q, want the earlier debug query %q",
			recent[1].RequestID, qr.Trace.RequestID)
	}
	if _, ok := dbg.Routes[apiv1.RouteBuildSample]; !ok {
		t.Fatalf("build route missing from debug/requests: %+v", dbg.Routes)
	}
}

// The debug listener handler mounts pprof, /metrics and
// /debug/requests on a separate mux for the -debug-addr listener.
func TestServerDebugHandler(t *testing.T) {
	reg := newSalesRegistry(t)
	app := serve.NewServer(reg)
	ts := httptest.NewServer(app.DebugHandler())
	t.Cleanup(ts.Close)

	for _, path := range []string{"/debug/pprof/", "/metrics", "/debug/requests"} {
		code, body := getBody(t, ts.URL+path)
		if code != http.StatusOK || body == "" {
			t.Errorf("%s: status=%d len=%d", path, code, len(body))
		}
	}
	// the main API is deliberately NOT on the debug listener
	if code, _ := getBody(t, ts.URL+"/v1/tables"); code != http.StatusNotFound {
		t.Errorf("debug listener serves the API: /v1/tables = %d", code)
	}
}

// Satellite: /healthz stream_tables reports per-stream generation and
// refresh duration, and both advance across an append+refresh cycle.
// The same advancement is visible as repro_stream_* series.
func TestHealthzStreamTablesAdvance(t *testing.T) {
	ts, reg := startServer(t)
	t.Cleanup(reg.Close)

	if code := post(t, ts.URL+"/v1/tables/sales/stream", `{
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"budget": 300, "seed": 9, "refresh_rows": 100000
	}`, nil); code != http.StatusCreated {
		t.Fatalf("stream: %d", code)
	}

	var health struct {
		StreamTables map[string]apiv1.StreamHealth `json:"stream_tables"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	before, ok := health.StreamTables["sales"]
	if !ok || before.Generation != 1 || before.RefreshErrors != 0 {
		t.Fatalf("pre-refresh stream health: %+v", health.StreamTables)
	}

	if code := post(t, ts.URL+"/v1/tables/sales/rows",
		`{"rows": [["NA", "widget", 101.5], ["EU", "gadget", 88]]}`, nil); code != http.StatusOK {
		t.Fatalf("rows: %d", code)
	}
	if code := post(t, ts.URL+"/v1/tables/sales/refresh", "", nil); code != http.StatusOK {
		t.Fatalf("refresh: %d", code)
	}

	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	after := health.StreamTables["sales"]
	if after.Generation != before.Generation+1 {
		t.Fatalf("generation %d → %d, want advancement by one", before.Generation, after.Generation)
	}
	if after.LastRefreshMS <= 0 {
		t.Fatalf("last_refresh_ms = %g after a refresh, want > 0", after.LastRefreshMS)
	}
	if after.Pending != 0 {
		t.Fatalf("pending = %d after refresh", after.Pending)
	}

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	// publications count the initial build too, so two refreshes at
	// generation two
	for series, want := range map[string]float64{
		`repro_stream_generation{table="sales"}`:                     2,
		`repro_stream_refreshes_total{table="sales"}`:                2,
		`repro_stream_refresh_duration_seconds_count{table="sales"}`: 2,
		`repro_ingest_rows_appended_total{table="sales"}`:            2,
		`repro_streams`: 1,
	} {
		if got := metricValue(body, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
}

// WithLogger routes the per-request structured log through the
// caller's slog handler, one line per request with route, request id,
// status code and duration.
func TestServerStructuredRequestLog(t *testing.T) {
	reg := newSalesRegistry(t)
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(serve.NewServer(reg, serve.WithLogger(logger)))
	t.Cleanup(ts.Close)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(apiv1.HeaderRequestID, "logline-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{
		`"msg":"request"`,
		`"route":"GET /healthz"`,
		`"request_id":"logline-id"`,
		`"code":200`,
		`"duration"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %s:\n%s", want, line)
		}
	}
	// WithLogger(nil) keeps the discard default rather than panicking
	srv := serve.NewServer(reg, serve.WithLogger(nil))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil-logger server: %d", rec.Code)
	}
}
