package serve_test

// Persistence-layer tests: WAL recovery determinism, the Close flush
// regression (rows appended after the last refresh must survive a clean
// shutdown), sample spill round-trips, eviction unlinking spills, and
// checkpoint truncation bounding WAL disk usage. Crash tests simulate a
// kill by simply abandoning a registry without Close — its WAL stays
// durable because these tests run with SyncAlways.

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/serve"
	"repro/internal/wal"
)

// persistOpts returns a SyncAlways persistence config rooted at dir.
func persistOpts(dir string) serve.PersistOptions {
	return serve.PersistOptions{Dir: dir, Fsync: wal.SyncAlways}
}

// persistStreamCfg is streamCfg with automatic refreshes disabled (huge
// policy thresholds) so tests control exactly when publications happen.
func persistStreamCfg(budget int) ingest.Config {
	cfg := streamCfg(budget)
	cfg.Policy = ingest.Policy{MaxPending: 1 << 30, Interval: time.Hour}
	return cfg
}

// resultsBitEqual compares two results field by field, aggregate values
// and standard errors by their float bits (NaN-safe).
func resultsBitEqual(t *testing.T, a, b *exec.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("result row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Set != rb.Set || len(ra.Key) != len(rb.Key) || len(ra.Aggs) != len(rb.Aggs) {
			t.Fatalf("row %d shape differs: %+v vs %+v", i, ra, rb)
		}
		for j := range ra.Key {
			if ra.Key[j] != rb.Key[j] {
				t.Fatalf("row %d key differs: %v vs %v", i, ra.Key, rb.Key)
			}
		}
		for j := range ra.Aggs {
			if math.Float64bits(ra.Aggs[j]) != math.Float64bits(rb.Aggs[j]) {
				t.Fatalf("row %d agg %d differs: %v vs %v", i, j, ra.Aggs[j], rb.Aggs[j])
			}
		}
		for j := range ra.SE {
			if math.Float64bits(ra.SE[j]) != math.Float64bits(rb.SE[j]) {
				t.Fatalf("row %d SE %d differs: %v vs %v", i, j, ra.SE[j], rb.SE[j])
			}
		}
	}
}

func exactCount(t *testing.T, reg *serve.Registry) float64 {
	t.Helper()
	ans, err := reg.Query(context.Background(), "SELECT COUNT(*) FROM sales",
		serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	return ans.Result.Rows[0].Aggs[0]
}

// TestCloseFlushesPendingRows is the regression test for the shutdown
// data-loss bug: rows appended after the last refresh used to vanish on
// Registry.Close because no final publication covered them. Close now
// flushes a final generation, and the final checkpoint persists it.
func TestCloseFlushesPendingRows(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := reg.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Append("sales", streamRows(3740, 500)); err != nil {
		t.Fatal(err)
	}
	// no explicit Refresh: these 500 rows are pending at shutdown
	reg.Close()

	reg2 := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(reg2.Close)
	rep, err := reg2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 1 {
		t.Fatalf("recovered %d tables, want 1", rep.Tables)
	}
	st, ok := reg2.StreamStatus("sales")
	if !ok || st.Rows != 4240 || st.Pending != 0 {
		t.Fatalf("recovered stream status: %+v ok=%v, want 4240 rows and 0 pending", st, ok)
	}
	if st.Generation != 2 {
		t.Fatalf("recovered generation %d, want 2 (the flush publication)", st.Generation)
	}
	if got := exactCount(t, reg2); got != 4240 {
		t.Fatalf("exact COUNT(*) after recovery = %g, want 4240 (pending rows were dropped)", got)
	}
}

// TestRecoverReplaysWalDeterministically kills a registry without Close
// (the WAL is the only survivor) and asserts the recovered sample is
// bit-identical: replay re-drives appends and publication points in
// their logged interleaving, reproducing the sampler's RNG consumption
// exactly from checkpoint-0.
func TestRecoverReplaysWalDeterministically(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{500, 300} {
		if _, err := regA.Append("sales", streamRows(3740, n)); err != nil {
			t.Fatal(err)
		}
		if _, err := regA.Refresh("sales"); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT region, AVG(amount) FROM sales GROUP BY region"
	ansA, err := regA.Query(context.Background(), q, serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	// crash: regA is abandoned, never Closed (cleanup at the very end
	// only reclaims its goroutines; recovery below must not depend on it)
	t.Cleanup(regA.Close)

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	rep, err := regB.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 1 || rep.ReplayedRecords != 4 {
		t.Fatalf("recovery report %+v, want 1 table and 4 replayed records (2 batches + 2 refreshes)", rep)
	}
	stA, _ := regA.StreamStatus("sales")
	stB, ok := regB.StreamStatus("sales")
	if !ok || stB.Generation != stA.Generation || stB.Rows != stA.Rows {
		t.Fatalf("recovered status %+v, want generation %d rows %d", stB, stA.Generation, stA.Rows)
	}
	ansB, err := regB.Query(context.Background(), q, serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if ansB.Entry.Generation != ansA.Entry.Generation {
		t.Fatalf("answer generations differ: %d vs %d", ansA.Entry.Generation, ansB.Entry.Generation)
	}
	resultsBitEqual(t, ansA.Result, ansB.Result)
	// the replayed sample itself is bit-identical, not just the answer
	sa, sb := ansA.Entry.Sample, ansB.Entry.Sample
	if len(sa.Rows) != len(sb.Rows) {
		t.Fatalf("sample sizes differ: %d vs %d", len(sa.Rows), len(sb.Rows))
	}
	for i := range sa.Rows {
		if sa.Rows[i] != sb.Rows[i] || math.Float64bits(sa.Weights[i]) != math.Float64bits(sb.Weights[i]) {
			t.Fatalf("sample diverges at %d: (%d,%v) vs (%d,%v)",
				i, sa.Rows[i], sa.Weights[i], sb.Rows[i], sb.Weights[i])
		}
	}
}

// TestRecoverTruncatesTornTail garbles the tail of the active WAL
// segment — the signature of a crash mid-append — and asserts recovery
// drops exactly the torn suffix and replays the rest.
func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Append("sales", streamRows(3740, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close) // crash-sim: reclaim goroutines only at test end

	// a partial record at the tail of the active segment
	segs, err := filepath.Glob(filepath.Join(dir, "tables", "sales", "wal", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments found: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	rep, err := regB.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornTails != 1 {
		t.Fatalf("recovery saw %d torn tails, want 1", rep.TornTails)
	}
	if rep.ReplayedRecords != 2 {
		t.Fatalf("replayed %d records, want 2 (the batch and its refresh)", rep.ReplayedRecords)
	}
	if got := exactCount(t, regB); got != 4140 {
		t.Fatalf("exact COUNT(*) after torn-tail recovery = %g, want 4140", got)
	}
}

// TestSpillRoundTripAndInvalidation spills a built sample, reloads it
// bit-identically in a fresh registry, and confirms a changed source
// table invalidates the spill instead of serving row ids into the wrong
// rows.
func TestSpillRoundTripAndInvalidation(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	e1, cached, err := regA.Build(context.Background(), buildReq(200))
	if err != nil || cached {
		t.Fatalf("first build: cached=%v err=%v", cached, err)
	}
	if ps, ok := regA.PersistenceStatus(); !ok || ps.SpillSaves != 1 || ps.SpilledSamples != 1 {
		t.Fatalf("after build: %+v ok=%v, want 1 spill save", ps, ok)
	}
	regA.Close()

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if err := regB.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	rep, err := regB.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpilledSamples != 1 {
		t.Fatalf("recovery indexed %d spills, want 1", rep.SpilledSamples)
	}
	e2, cached, err := regB.Build(context.Background(), buildReq(200))
	if err != nil || !cached {
		t.Fatalf("post-recovery build should hit the spill: cached=%v err=%v", cached, err)
	}
	if len(e2.Sample.Rows) != len(e1.Sample.Rows) {
		t.Fatalf("spilled sample size %d, want %d", len(e2.Sample.Rows), len(e1.Sample.Rows))
	}
	for i := range e1.Sample.Rows {
		if e1.Sample.Rows[i] != e2.Sample.Rows[i] ||
			math.Float64bits(e1.Sample.Weights[i]) != math.Float64bits(e2.Sample.Weights[i]) {
			t.Fatalf("spilled sample diverges at %d", i)
		}
	}
	if ps, _ := regB.PersistenceStatus(); ps.SpillLoads != 1 {
		t.Fatalf("spill loads = %d, want 1", ps.SpillLoads)
	}
	// the loaded entry answers queries like the original
	ans, err := regB.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil || ans.Entry == nil {
		t.Fatalf("query off spilled sample: entry=%v err=%v", ans.Entry, err)
	}
	regB.Close()

	// same data dir, different table contents: the spill is stale now
	regC := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regC.Close)
	grown := salesTable(t)
	if err := grown.AppendRow("NA", "widget", 99.0); err != nil {
		t.Fatal(err)
	}
	if err := regC.RegisterTable(grown); err != nil {
		t.Fatal(err)
	}
	if _, err := regC.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := regC.Build(context.Background(), buildReq(200)); err != nil || cached {
		t.Fatalf("stale spill must rebuild, not load: cached=%v err=%v", cached, err)
	}
}

// TestEvictionUnlinksSpill evicts a sample past the byte budget and
// asserts its spill file goes with it — an evicted key must rebuild on
// the next boot, not resurrect from disk.
func TestEvictionUnlinksSpill(t *testing.T) {
	dir := t.TempDir()
	reg := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)),
		serve.WithMaxSampleBytes(8000)) // one ~5600-byte sample fits, two do not
	t.Cleanup(reg.Close)
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	req1 := buildReq(200)
	req2 := buildReq(200)
	req2.Seed = 8 // distinct key, same size
	if _, _, err := reg.Build(context.Background(), req1); err != nil {
		t.Fatal(err)
	}
	if ps, _ := reg.PersistenceStatus(); ps.SpilledSamples != 1 {
		t.Fatalf("spilled samples = %d, want 1", ps.SpilledSamples)
	}
	if _, _, err := reg.Build(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	if reg.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", reg.Evictions())
	}
	if ps, _ := reg.PersistenceStatus(); ps.SpilledSamples != 1 {
		t.Fatalf("spilled samples after eviction = %d, want 1 (victim's spill unlinked)", ps.SpilledSamples)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "samples"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("spill files on disk = %d (%v), want 1", len(ents), err)
	}
}

// TestCheckpointTruncatesWal drives enough appends through a small
// checkpoint threshold to force checkpoint cuts and segment truncation,
// then recovers from the resulting mid-life checkpoint.
func TestCheckpointTruncatesWal(t *testing.T) {
	dir := t.TempDir()
	po := serve.PersistOptions{
		Dir:             dir,
		Fsync:           wal.SyncAlways,
		CheckpointBytes: 16 << 10,
		SegmentBytes:    4 << 10,
	}
	regA := serve.NewRegistry(serve.WithPersistence(po))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	const rounds, batch = 20, 200
	rows := 3740
	for i := 0; i < rounds; i++ {
		if _, err := regA.Append("sales", streamRows(rows, batch)); err != nil {
			t.Fatal(err)
		}
		rows += batch
		if _, err := regA.Refresh("sales"); err != nil {
			t.Fatal(err)
		}
	}
	ps, ok := regA.PersistenceStatus()
	if !ok {
		t.Fatal("no persistence status")
	}
	if ps.Checkpoints == 0 || ps.TruncatedSegments == 0 {
		t.Fatalf("checkpoints=%d truncated=%d, want both > 0", ps.Checkpoints, ps.TruncatedSegments)
	}
	// truncation bounds WAL disk: far less than the ~20 batches appended
	if ps.WalBytes > 3*po.CheckpointBytes {
		t.Fatalf("wal bytes = %d, want bounded near %d", ps.WalBytes, po.CheckpointBytes)
	}
	t.Cleanup(regA.Close) // crash-sim: reclaim goroutines only at test end

	regB := serve.NewRegistry(serve.WithPersistence(po))
	t.Cleanup(regB.Close)
	rep, err := regB.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tables != 1 {
		t.Fatalf("recovered %d tables, want 1", rep.Tables)
	}
	stA, _ := regA.StreamStatus("sales")
	stB, _ := regB.StreamStatus("sales")
	if stB.Generation != stA.Generation || stB.Rows != stA.Rows {
		t.Fatalf("recovered status %+v, want generation %d rows %d", stB, stA.Generation, stA.Rows)
	}
	if got := exactCount(t, regB); got != float64(rows) {
		t.Fatalf("exact COUNT(*) after mid-life recovery = %g, want %d", got, rows)
	}
}

// TestRecoverReplacesStaticRegistration boots with a static table of
// the same name already registered (a -load CSV) and asserts the
// recovered stream takes over — its checkpointed snapshot is the newer
// authoritative state.
func TestRecoverReplacesStaticRegistration(t *testing.T) {
	dir := t.TempDir()
	regA := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	if err := regA.RegisterStreamingTable(salesTable(t), persistStreamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Append("sales", streamRows(3740, 260)); err != nil {
		t.Fatal(err)
	}
	regA.Close()

	regB := serve.NewRegistry(serve.WithPersistence(persistOpts(dir)))
	t.Cleanup(regB.Close)
	if err := regB.RegisterTable(salesTable(t)); err != nil { // the boot-time CSV load
		t.Fatal(err)
	}
	if _, err := regB.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, ok := regB.StreamStatus("sales")
	if !ok || st.Rows != 4000 {
		t.Fatalf("stream status %+v ok=%v, want the recovered stream with 4000 rows", st, ok)
	}
	if got := exactCount(t, regB); got != 4000 {
		t.Fatalf("exact COUNT(*) = %g, want 4000 (recovered snapshot, not the static table)", got)
	}
	// the stream stays live: appends keep working
	if _, err := regB.Append("sales", streamRows(4000, 10)); err != nil {
		t.Fatal(err)
	}
}
