package serve

// Streaming tables: the registry-side half of the ingest subsystem. A
// streaming table is owned by an ingest.Stream (private buffer +
// resident one-pass CVOPT sampler); every publication the stream emits
// is installed here under the table's *shard* write lock — the
// registered table pointer and the sample entry swap together, so the
// read path (Table/Find/Query) always observes a complete (snapshot,
// sample) pair of the same generation, and refreshes on one table never
// stall queries on tables in other shards. Queries that already picked
// up an older entry keep answering from that entry's own snapshot;
// nothing is ever mutated in place.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/table"
)

// Sentinel errors for the streaming entry points, matched with
// errors.Is by the HTTP layer to pick status codes. Wrapped errors
// carry the table name.
var (
	// ErrNotStreaming reports an append/refresh against a table that
	// was never registered as streaming.
	ErrNotStreaming = errors.New("table is not streaming")
	// ErrAlreadyStreaming reports a second streaming registration of
	// one table.
	ErrAlreadyStreaming = errors.New("table is already streaming")
	// ErrUnknownTable reports a streaming operation against a name no
	// table is registered under.
	ErrUnknownTable = errors.New("unknown table")
	// ErrClosed reports a streaming registration against a registry
	// whose Close has already run.
	ErrClosed = errors.New("registry is closed")
)

// streamState is the registry's handle on one streaming table.
type streamState struct {
	stream *ingest.Stream
	key    string        // the entry key publications swap
	cfg    ingest.Config // resolved config, persisted with checkpoints
}

// streamKey is the registry key every generation of a streaming table's
// sample publishes under — stable across refreshes (budget changes with
// a rate policy), so each publication replaces its predecessor.
func streamKey(name string, queries []core.QuerySpec) string {
	return fmt.Sprintf("stream:%q/%s", name, canonQueries(queries))
}

// SetStreamDefaults sets the refresh policy applied when a streaming
// registration does not choose its own (cmd/cvserve wires its
// -refresh-rows / -refresh-interval flags here).
func (r *Registry) SetStreamDefaults(p ingest.Policy) {
	r.defMu.Lock()
	defer r.defMu.Unlock()
	r.streamDefaults = p
}

// RegisterStreamingTable registers seed as a *streaming* table: its
// rows are copied into a private ingest buffer (seed stays untouched),
// generation 1 publishes immediately (snapshot + sample when seed has
// rows), and from then on Append/Refresh and the configured policy keep
// the published sample current. cfg.Policy zero-value falls back to the
// registry's stream defaults.
func (r *Registry) RegisterStreamingTable(seed *table.Table, cfg ingest.Config) error {
	if seed == nil || seed.Name == "" {
		return fmt.Errorf("serve: streaming table must be non-nil and named")
	}
	if r.closed.Load() {
		return fmt.Errorf("serve: %w", ErrClosed)
	}
	sh := r.shardFor(seed.Name)
	r.regMu.Lock()
	if err := r.checkNameFree(seed.Name); err != nil {
		r.regMu.Unlock()
		return err
	}
	// reserve the name (nil placeholder) so a racing registration
	// cannot claim it while the stream spins up outside the lock
	sh.mu.Lock()
	sh.streams[seed.Name] = nil
	sh.mu.Unlock()
	r.regMu.Unlock()
	cfg.Policy = r.applyPolicyDefaults(cfg.Policy)
	return r.startStream(sh, seed.Name, seed, cfg)
}

// StreamTable converts an already-registered static table into a
// streaming one in place: the registered rows seed the stream, and the
// first publication atomically replaces the registered table with the
// stream's snapshot. Existing static samples of the table stay valid
// (their row ids index a prefix of every later snapshot).
func (r *Registry) StreamTable(name string, cfg ingest.Config) error {
	if r.closed.Load() {
		return fmt.Errorf("serve: %w", ErrClosed)
	}
	// regMu keeps the streaming-state check and the reservation atomic
	// against concurrent registrations of the same name (same ordering
	// rule as every registration path: regMu first, then shard locks)
	r.regMu.Lock()
	sh := r.shardFor(name)
	sh.mu.Lock()
	seed, canonical := sh.tableLocked(name)
	if seed == nil {
		sh.mu.Unlock()
		r.regMu.Unlock()
		return fmt.Errorf("serve: %w: %q", ErrUnknownTable, name)
	}
	for existing := range sh.streams {
		if strings.EqualFold(existing, canonical) {
			sh.mu.Unlock()
			r.regMu.Unlock()
			return fmt.Errorf("serve: %w: %q", ErrAlreadyStreaming, canonical)
		}
	}
	sh.streams[canonical] = nil
	sh.mu.Unlock()
	r.regMu.Unlock()
	cfg.Policy = r.applyPolicyDefaults(cfg.Policy)
	return r.startStream(sh, canonical, seed, cfg)
}

// applyPolicyDefaults substitutes the registry defaults into unset
// (zero) policy fields, per the Policy convention: 0 inherits the
// default, negative explicitly disables the trigger even when a default
// exists.
func (r *Registry) applyPolicyDefaults(p ingest.Policy) ingest.Policy {
	r.defMu.Lock()
	defer r.defMu.Unlock()
	if p.MaxPending == 0 {
		p.MaxPending = r.streamDefaults.MaxPending
	}
	if p.Interval == 0 {
		p.Interval = r.streamDefaults.Interval
	}
	return p
}

// startStream spins up the ingest.Stream for a reserved name and
// finalizes (or rolls back) the reservation. If Close won the race
// while the stream was spinning up, the fresh stream — refresh loop
// included — is shut down before the error returns, so Close never
// leaks a late-starting goroutine.
func (r *Registry) startStream(sh *shard, name string, seed *table.Table, cfg ingest.Config) error {
	key := streamKey(name, cfg.Queries)
	st, err := ingest.New(seed, cfg, func(pub *ingest.Publication) {
		r.installPublication(sh, name, key, cfg, pub)
	})
	if err != nil {
		sh.mu.Lock()
		delete(sh.streams, name)
		sh.mu.Unlock()
		return err
	}
	// make the table durable before it becomes reachable: checkpoint-0
	// plus an attached WAL, so no append can slip in unlogged
	if r.persist != nil {
		if err := r.attachPersistence(st, name, cfg); err != nil {
			sh.mu.Lock()
			delete(sh.streams, name)
			sh.mu.Unlock()
			st.Close()
			return err
		}
	}
	sh.mu.Lock()
	if r.closed.Load() {
		delete(sh.streams, name)
		sh.mu.Unlock()
		st.Close()
		if r.persist != nil {
			r.detachPersistence(name)
		}
		return fmt.Errorf("serve: %w", ErrClosed)
	}
	sh.streams[name] = &streamState{stream: st, key: key, cfg: cfg}
	sh.mu.Unlock()
	return nil
}

// installPublication is the stream's publish callback: one shard write
// lock swaps the registered table to the new snapshot and the sample
// entry to the new generation together. The ingest side calls it under
// the stream's own mutex, so generations arrive strictly in order.
func (r *Registry) installPublication(sh *shard, name, key string, cfg ingest.Config, pub *ingest.Publication) {
	sh.mu.Lock()
	sh.tables[name] = pub.Snapshot
	// static autoscaled entries of this table keep answering from the
	// new snapshot (their row ids index a prefix of it), but their CV
	// guarantee was computed over the rows that existed at build time —
	// once appended data outgrows that population, their target_met
	// flips to an honest false
	for k, e := range sh.entries {
		if k != key && e.snapshot == nil && e.TargetCV > 0 &&
			strings.EqualFold(e.Table, name) && pub.Rows > e.popRows {
			e.cvStale.Store(true)
		}
	}
	if pub.Sample != nil {
		attrs := make(map[string]bool)
		for _, q := range cfg.Queries {
			for _, a := range q.GroupBy {
				attrs[a] = true
			}
		}
		e := &Entry{
			Key:           key,
			Table:         name,
			Budget:        pub.Budget,
			TargetCV:      pub.TargetCV,
			AchievedCV:    pub.AchievedCV,
			TargetMet:     pub.TargetMet,
			Queries:       cfg.Queries,
			Opts:          cfg.Opts,
			Sample:        pub.Sample,
			BuiltAt:       pub.BuiltAt,
			BuildDuration: pub.BuildDuration,
			Generation:    pub.Generation,
			attrs:         attrs,
			snapshot:      pub.Snapshot,
			popRows:       pub.Rows,
			size:          entrySizeBytes(pub.Sample, pub.Snapshot.Schema()),
		}
		e.lastUsed.Store(r.useClock.Add(1))
		// the hit counter is per key, not per generation: eviction
		// wants to know how hot the streaming sample is overall
		if old, ok := sh.entries[key]; ok {
			e.Hits.Store(old.Hits.Load())
			r.residentBytes.Add(-old.size)
		}
		sh.entries[key] = e
		r.residentBytes.Add(e.size)
	}
	sh.mu.Unlock()
	r.refreshes.Add(1)
	r.metrics.observeStreamPublication(name, pub.Generation, pub.Rows, pub.BuildDuration)
	if pub.Sample != nil {
		r.maybeEvict()
	}
}

// streamFor resolves a streaming table case-insensitively within its
// shard.
func (r *Registry) streamFor(name string) (*streamState, error) {
	sh := r.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if st, ok := sh.streams[name]; ok && st != nil {
		return st, nil
	}
	for n, st := range sh.streams {
		if st != nil && strings.EqualFold(n, name) {
			return st, nil
		}
	}
	if t, _ := sh.tableLocked(name); t != nil {
		return nil, fmt.Errorf("serve: %w: %q", ErrNotStreaming, name)
	}
	return nil, fmt.Errorf("serve: %w: %q", ErrUnknownTable, name)
}

// Append ingests a batch of rows into a streaming table. Rows are
// loosely typed ([]any per row, in schema order; JSON numbers welcome)
// and the batch is rejected atomically on the first malformed row.
// Crossing the stream's refresh threshold wakes its ingest loop; the
// published sample is otherwise unchanged until the next refresh.
func (r *Registry) Append(name string, rows [][]any) (ingest.AppendStatus, error) {
	st, err := r.streamFor(name)
	if err != nil {
		return ingest.AppendStatus{}, err
	}
	status, err := st.stream.Append(rows)
	if err == nil && status.Appended > 0 {
		r.metrics.ingestRows.With(st.stream.Name()).Add(int64(status.Appended))
		r.metrics.residentRows.With(st.stream.Name()).Set(int64(status.Rows))
		// durability point: the batch's WAL record is fsynced (per
		// policy) before the append is acknowledged; runs outside every
		// lock
		if cerr := r.persistCommit(st.stream.Name()); cerr != nil {
			return status, cerr
		}
	}
	return status, err
}

// Refresh finalizes and publishes a new sample generation for a
// streaming table now (a no-op returning the current entry when
// nothing is pending) and returns the freshly installed entry.
func (r *Registry) Refresh(name string) (*Entry, error) {
	st, err := r.streamFor(name)
	if err != nil {
		return nil, err
	}
	if _, err := st.stream.Refresh(); err != nil {
		return nil, fmt.Errorf("serve: refreshing %q: %w", name, err)
	}
	if err := r.persistCommit(st.stream.Name()); err != nil {
		return nil, err
	}
	sh := r.shardFor(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.entries[st.key]
	if !ok {
		return nil, fmt.Errorf("serve: refreshing %q: publication vanished", name)
	}
	return e, nil
}

// StreamStatus is the ops view of one streaming table.
type StreamStatus struct {
	// Table is the canonical table name.
	Table string
	// Generation is the latest published generation.
	Generation uint64
	// Pending is how many appended rows the published sample does not
	// cover yet.
	Pending int
	// Rows is the total ingested row count.
	Rows int
	// RefreshErrors counts failed automatic refreshes.
	RefreshErrors int64
	// LastRefresh is the build duration of the most recent publication
	// (0 until one completes).
	LastRefresh time.Duration
}

// StreamCount returns the number of streaming tables without touching
// any per-stream lock (the /healthz hot path).
func (r *Registry) StreamCount() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, st := range sh.streams {
			if st != nil {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// StreamStatuses returns the ops view of every streaming table, sorted
// by name.
func (r *Registry) StreamStatuses() []StreamStatus {
	states := make(map[string]*streamState)
	for _, sh := range r.shards {
		sh.mu.RLock()
		for n, st := range sh.streams {
			if st != nil {
				states[n] = st
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]StreamStatus, 0, len(states))
	for n, st := range states {
		out = append(out, StreamStatus{
			Table:         n,
			Generation:    st.stream.Generation(),
			Pending:       st.stream.Pending(),
			Rows:          st.stream.Rows(),
			RefreshErrors: st.stream.RefreshErrors(),
			LastRefresh:   st.stream.LastRefreshDuration(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// StreamStatus returns the ops view of one streaming table.
func (r *Registry) StreamStatus(name string) (StreamStatus, bool) {
	st, err := r.streamFor(name)
	if err != nil {
		return StreamStatus{}, false
	}
	return StreamStatus{
		Table:         st.stream.Name(),
		Generation:    st.stream.Generation(),
		Pending:       st.stream.Pending(),
		Rows:          st.stream.Rows(),
		RefreshErrors: st.stream.RefreshErrors(),
		LastRefresh:   st.stream.LastRefreshDuration(),
	}, true
}

// Close stops every streaming table's ingest loop and waits for each to
// exit; streaming registrations racing with Close are shut down by
// whichever side loses the race, so no refresh goroutine outlives this
// call. Published generations stay queryable; nothing refreshes
// automatically anymore, and new streaming registrations fail with
// ErrClosed.
//
// Static sample builds are *not* cancelled: Build runs synchronously on
// its caller's goroutine (the registry spawns no goroutine for it), so
// an in-flight build simply completes, installs its entry, and returns
// to its caller — there is nothing to leak. Safe to call more than
// once.
func (r *Registry) Close() {
	r.closed.Store(true)
	var states []*streamState
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, st := range sh.streams {
			if st != nil {
				states = append(states, st)
			}
		}
		sh.mu.Unlock()
	}
	for _, st := range states {
		st.stream.Close()
		// flush: rows appended (and acknowledged) since the last refresh
		// must reach a publication, not die with the process — the loop
		// is stopped, so this races nothing
		if st.stream.Pending() > 0 {
			// best-effort: Refresh only errors on an empty stream, which
			// has nothing to flush
			_, _ = st.stream.Refresh()
		}
	}
	// the final publications above are checkpointed and the WAL synced
	// before file handles close
	r.closePersist()
}
