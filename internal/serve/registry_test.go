package serve_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/serve"
	"repro/internal/table"
)

// salesTable builds the canonical skewed test table: one dominant
// group, one medium, one tiny high-variance group.
func salesTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "product", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	add := func(region, product string, n int, base float64) {
		for i := 0; i < n; i++ {
			// deterministic, mildly varying amounts
			v := base + float64(i%17) - 8
			if err := tbl.AppendRow(region, product, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("NA", "widget", 2000, 100)
	add("NA", "gadget", 900, 70)
	add("EU", "widget", 500, 80)
	add("EU", "gadget", 300, 120)
	add("APAC", "widget", 40, 300)
	return tbl
}

func buildReq(budget int) serve.BuildRequest {
	return serve.BuildRequest{
		Table: "sales",
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		Budget: budget,
		Seed:   7,
	}
}

func newSalesRegistry(t *testing.T) *serve.Registry {
	t.Helper()
	reg := serve.NewRegistry()
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegisterTableRejectsDuplicatesAndNil(t *testing.T) {
	reg := newSalesRegistry(t)
	if err := reg.RegisterTable(salesTable(t)); err == nil {
		t.Fatal("duplicate table registration should fail")
	}
	caseVariant := salesTable(t)
	caseVariant.Name = "SALES"
	if err := reg.RegisterTable(caseVariant); err == nil {
		t.Fatal("case-colliding table registration should fail (resolution is case-insensitive)")
	}
	if err := reg.RegisterTable(nil); err == nil {
		t.Fatal("nil table registration should fail")
	}
	if _, ok := reg.Table("SALES"); !ok {
		t.Fatal("table lookup should be case-insensitive")
	}
}

func TestBuildValidation(t *testing.T) {
	reg := newSalesRegistry(t)
	if _, _, err := reg.Build(context.Background(), buildReq(0)); err == nil {
		t.Fatal("zero budget should fail")
	}
	req := buildReq(100)
	req.Table = "nope"
	if _, _, err := reg.Build(context.Background(), req); err == nil {
		t.Fatal("unknown table should fail")
	}
	req = buildReq(100)
	req.Queries = nil
	if _, _, err := reg.Build(context.Background(), req); err == nil {
		t.Fatal("empty workload should fail")
	}
}

// Concurrent Builds of one key must run the sampler exactly once: every
// caller gets the same immutable entry, and exactly one of them
// observes cached == false.
func TestBuildDeduplicatesConcurrentRequests(t *testing.T) {
	reg := newSalesRegistry(t)
	const n = 32
	var (
		start   = make(chan struct{})
		wg      sync.WaitGroup
		mu      sync.Mutex
		entries = make(map[*serve.Entry]int)
		fresh   int
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			<-start
			e, cached, err := reg.Build(context.Background(), buildReq(200))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			entries[e]++
			if !cached {
				fresh++
			}
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if got := reg.Builds(); got != 1 {
		t.Fatalf("sampler ran %d times for one key, want exactly 1", got)
	}
	if len(entries) != 1 {
		t.Fatalf("callers saw %d distinct entries, want 1 shared entry", len(entries))
	}
	if fresh != 1 {
		t.Fatalf("%d callers observed a fresh build, want exactly 1", fresh)
	}
}

func TestBuildDistinctKeysBuildSeparately(t *testing.T) {
	reg := newSalesRegistry(t)
	if _, _, err := reg.Build(context.Background(), buildReq(100)); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := reg.Build(context.Background(), buildReq(100)); err != nil || !cached {
		t.Fatalf("identical request should be cached (cached=%v err=%v)", cached, err)
	}
	if _, cached, err := reg.Build(context.Background(), buildReq(200)); err != nil || cached {
		t.Fatalf("different budget should rebuild (cached=%v err=%v)", cached, err)
	}
	linf := buildReq(100)
	linf.Opts = core.Options{Norm: core.LInf}
	if _, cached, err := reg.Build(context.Background(), linf); err != nil || cached {
		t.Fatalf("different norm should rebuild (cached=%v err=%v)", cached, err)
	}
	reseeded := buildReq(100)
	reseeded.Seed = 99
	if _, cached, err := reg.Build(context.Background(), reseeded); err != nil || cached {
		t.Fatalf("different seed should rebuild (cached=%v err=%v)", cached, err)
	}
	// case-insensitive table resolution canonicalizes the cache key
	upper := buildReq(100)
	upper.Table = "SALES"
	if _, cached, err := reg.Build(context.Background(), upper); err != nil || !cached {
		t.Fatalf("case-variant table name should hit the cache (cached=%v err=%v)", cached, err)
	}
	// group-by order is a set for stratification: permutations share a key
	pair := func(gb ...string) serve.BuildRequest {
		return serve.BuildRequest{
			Table:   "sales",
			Queries: []core.QuerySpec{{GroupBy: gb, Aggs: []core.AggColumn{{Column: "amount"}}}},
			Budget:  150,
		}
	}
	if _, cached, err := reg.Build(context.Background(), pair("region", "product")); err != nil || cached {
		t.Fatalf("first two-attribute build should be fresh (cached=%v err=%v)", cached, err)
	}
	if _, cached, err := reg.Build(context.Background(), pair("product", "region")); err != nil || !cached {
		t.Fatalf("permuted group-by should hit the cache (cached=%v err=%v)", cached, err)
	}
	// omitted weight (0) and the explicit default (1) are the same spec
	weighted := pair("region", "product")
	weighted.Queries[0].Aggs[0].Weight = 1
	if _, cached, err := reg.Build(context.Background(), weighted); err != nil || !cached {
		t.Fatalf("explicit default weight should hit the cache (cached=%v err=%v)", cached, err)
	}
	if got := reg.Builds(); got != 5 {
		t.Fatalf("got %d builds, want 5", got)
	}
	if got := len(reg.Entries()); got != 5 {
		t.Fatalf("got %d entries, want 5", got)
	}
}

func TestFindPrefersTightestCoverThenBudget(t *testing.T) {
	reg := newSalesRegistry(t)
	region := buildReq(100)
	regionBig := buildReq(400)
	both := serve.BuildRequest{
		Table: "sales",
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region", "product"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		Budget: 300,
	}
	for _, req := range []serve.BuildRequest{region, regionBig, both} {
		if _, _, err := reg.Build(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	e, ok := reg.Find("sales", []string{"region"})
	if !ok {
		t.Fatal("no entry found for region")
	}
	if len(e.GroupAttrs()) != 1 || e.Budget != 400 {
		t.Fatalf("want the budget-400 region-only sample, got attrs=%v budget=%d", e.GroupAttrs(), e.Budget)
	}
	e, ok = reg.Find("sales", []string{"product"})
	if !ok || !e.Covers([]string{"product"}) {
		t.Fatalf("product query should be covered by the (region, product) sample, got %+v ok=%v", e, ok)
	}
	if _, ok := reg.Find("sales", []string{"amount"}); ok {
		t.Fatal("no sample stratifies on amount; Find should report none")
	}
	if _, ok := reg.Find("other", []string{"region"}); ok {
		t.Fatal("unknown table should find nothing")
	}
}

func TestQueryModes(t *testing.T) {
	reg := newSalesRegistry(t)
	sql := "SELECT region, AVG(amount) FROM sales GROUP BY region"

	// no sample yet: auto falls back to exact, sample mode fails
	ans, err := reg.Query(context.Background(), sql, serve.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry != nil {
		t.Fatal("auto mode with no samples should answer exactly")
	}
	if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample}); err == nil {
		t.Fatal("sample mode with no covering sample should fail")
	}

	if _, _, err := reg.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	ans, err = reg.Query(context.Background(), sql, serve.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry == nil {
		t.Fatal("auto mode should now answer from the sample")
	}
	if len(ans.Result.Rows) != 3 {
		t.Fatalf("got %d groups, want 3 (sample has a floor per stratum)", len(ans.Result.Rows))
	}
	for _, row := range ans.Result.Rows {
		if row.SE == nil || math.IsNaN(row.SE[0]) {
			t.Fatalf("approximate row %v should carry a standard error", row.Key)
		}
	}

	exact, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Entry != nil {
		t.Fatal("exact mode must not use a sample")
	}
	// sanity: estimates near truth on this low-variance table
	exactIdx := exact.Result.Index()
	for _, row := range ans.Result.Rows {
		want, ok := exactIdx[exec.KeyOf(row.Set, row.Key)]
		if !ok {
			t.Fatalf("approximate group %v missing from exact answer", row.Key)
		}
		if rel := math.Abs(row.Aggs[0]-want[0]) / want[0]; rel > 0.25 {
			t.Fatalf("group %v estimate %.3f vs exact %.3f (rel %.2f) implausibly far", row.Key, row.Aggs[0], want[0], rel)
		}
	}

	// MIN/MAX/VAR/STDDEV have no weighted estimator: auto mode answers
	// them exactly even with a covering sample; explicit sample mode
	// still forces the sample
	extremes, err := reg.Query(context.Background(), "SELECT region, MAX(amount) FROM sales GROUP BY region", serve.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if extremes.Entry != nil {
		t.Fatal("auto mode must answer MAX exactly (no unbiased sample estimator)")
	}
	extremes, err = reg.Query(context.Background(), "SELECT region, MAX(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if extremes.Entry == nil {
		t.Fatal("explicit sample mode must still force the sample for MAX")
	}

	// errors: bad SQL, missing FROM table
	if _, err := reg.Query(context.Background(), "not sql", serve.QueryOptions{}); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if _, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM nope GROUP BY region", serve.QueryOptions{}); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestQueryCompareReportsExact(t *testing.T) {
	reg := newSalesRegistry(t)
	if _, _, err := reg.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Compare: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry == nil || ans.ExactResult == nil {
		t.Fatalf("compare mode should return both sample answer and ground truth")
	}
	if len(ans.ExactResult.Rows) != 3 {
		t.Fatalf("exact result has %d groups, want 3", len(ans.ExactResult.Rows))
	}
}

// sameResult compares two results bit-exactly (NaN-tolerant, which
// reflect.DeepEqual is not).
func sameResult(a, b *exec.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if ra.Set != rb.Set || len(ra.Key) != len(rb.Key) || len(ra.Aggs) != len(rb.Aggs) || len(ra.SE) != len(rb.SE) {
			return false
		}
		for j := range ra.Key {
			if ra.Key[j] != rb.Key[j] {
				return false
			}
		}
		for j := range ra.Aggs {
			if math.Float64bits(ra.Aggs[j]) != math.Float64bits(rb.Aggs[j]) {
				return false
			}
		}
		for j := range ra.SE {
			if math.Float64bits(ra.SE[j]) != math.Float64bits(rb.SE[j]) {
				return false
			}
		}
	}
	return true
}

// The load-shaped test behind the subsystem's reason to exist: many
// clients hammer one registry concurrently (run under -race) and every
// answer matches the sequential ground run off the same shared sample.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	reg := newSalesRegistry(t)
	if _, _, err := reg.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT region, AVG(amount) FROM sales GROUP BY region",
		"SELECT region, SUM(amount), COUNT(*) FROM sales GROUP BY region",
		"SELECT region, AVG(amount) FROM sales GROUP BY region ORDER BY AVG(amount) DESC",
		"SELECT region, MAX(amount) FROM sales GROUP BY region",
	}
	want := make([]*exec.Result, len(queries))
	for i, q := range queries {
		ans, err := reg.Query(context.Background(), q, serve.QueryOptions{Mode: serve.ModeSample})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans.Result
	}

	const clients = 16
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				i := (c + rep) % len(queries)
				ans, err := reg.Query(context.Background(), queries[i], serve.QueryOptions{Mode: serve.ModeSample})
				if err != nil {
					t.Error(err)
					return
				}
				if !sameResult(want[i], ans.Result) {
					t.Errorf("client %d: concurrent answer to %q diverged from sequential run", c, queries[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// Mixed load: queries answering off existing samples while new samples
// for other keys build concurrently. Exercises the RWMutex read path
// against the build write path under -race.
func TestQueriesProceedDuringBuilds(t *testing.T) {
	reg := newSalesRegistry(t)
	if _, _, err := reg.Build(context.Background(), buildReq(300)); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT region, AVG(amount) FROM sales GROUP BY region"
	base, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, _, err := reg.Build(context.Background(), buildReq(100+i)); err != nil {
				t.Error(err)
			}
		}(i)
		go func() {
			defer wg.Done()
			ans, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample})
			if err != nil {
				t.Error(err)
				return
			}
			// Find prefers the largest budget (300), so answers stay
			// pinned to the base sample while smaller ones build
			if !sameResult(base.Result, ans.Result) {
				t.Error("answer diverged from the base sample mid-build")
			}
		}()
	}
	wg.Wait()
}
