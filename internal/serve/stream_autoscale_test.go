package serve_test

// Streaming autoscale over the wire: a table streamed with target_cv
// re-derives its budget each refresh, and static autoscaled samples
// report target_met false once appended data outgrows the population
// their guarantee was computed over.

import (
	"net/http"
	"testing"
)

func TestHTTPStreamTargetCV(t *testing.T) {
	ts, _ := startServer(t)

	code := post(t, ts.URL+"/v1/tables/sales/stream", `{
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"target_cv": 0.05, "seed": 7
	}`, nil)
	if code != http.StatusCreated {
		t.Fatalf("stream registration with target_cv: %d", code)
	}

	var ref wireSample
	if code := post(t, ts.URL+"/v1/tables/sales/refresh", "", &ref); code != http.StatusOK {
		t.Fatalf("refresh: %d", code)
	}
	if ref.TargetCV != 0.05 || ref.TargetMet == nil || !*ref.TargetMet {
		t.Fatalf("generation-1 guarantee: %+v", ref)
	}
	if ref.AchievedCV == nil || *ref.AchievedCV > 0.05 || ref.ChosenBudget != ref.Budget {
		t.Fatalf("generation-1 achieved CV: %+v", ref)
	}

	// Appended rows + refresh: the search re-runs over the grown table,
	// so the new generation carries a fresh, still-met guarantee.
	rows := `{"rows": [`
	for i := 0; i < 400; i++ {
		if i > 0 {
			rows += ","
		}
		rows += `["NA", "widget", 100]`
	}
	rows += `]}`
	if code := post(t, ts.URL+"/v1/tables/sales/rows", rows, nil); code != http.StatusOK {
		t.Fatalf("append: %d", code)
	}
	var ref2 wireSample
	if code := post(t, ts.URL+"/v1/tables/sales/refresh", "", &ref2); code != http.StatusOK {
		t.Fatalf("second refresh: %d", code)
	}
	if ref2.Generation != 2 || ref2.TargetCV != 0.05 || ref2.TargetMet == nil || !*ref2.TargetMet {
		t.Fatalf("generation-2 guarantee: %+v", ref2)
	}

	// Both sizing fields on a stream registration must conflict.
	if code := post(t, ts.URL+"/v1/tables/sales/stream",
		`{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "budget": 10, "target_cv": 0.1}`,
		nil); code == http.StatusCreated {
		t.Fatal("budget + target_cv stream registration should be rejected")
	}
}

// wireSample mirrors the autoscale-relevant slice of apiv1.Sample.
type wireSample struct {
	Key          string   `json:"key"`
	Budget       int      `json:"budget"`
	Generation   uint64   `json:"generation"`
	TargetCV     float64  `json:"target_cv"`
	ChosenBudget int      `json:"chosen_budget"`
	AchievedCV   *float64 `json:"achieved_cv"`
	TargetMet    *bool    `json:"target_met"`
}

func TestStaticAutoscaledSampleGoesStaleOnAppend(t *testing.T) {
	ts, reg := startServer(t)

	// A static autoscaled sample over the 3740 seed rows.
	var built wireSample
	code := post(t, ts.URL+"/v1/samples", `{
		"table": "sales",
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"target_cv": 0.05, "seed": 7
	}`, &built)
	if code != http.StatusCreated {
		t.Fatalf("autoscaled build: %d", code)
	}
	if built.TargetMet == nil || !*built.TargetMet {
		t.Fatalf("fresh static guarantee: %+v", built)
	}

	// Converting the table to streaming republishes the same rows:
	// nothing appended yet, the guarantee stands.
	if err := reg.StreamTable("sales", streamCfg(300)); err != nil {
		t.Fatal(err)
	}
	listMet := func() *bool {
		t.Helper()
		var list struct {
			Samples []wireSample `json:"samples"`
		}
		if code := get(t, ts.URL+"/v1/samples", &list); code != http.StatusOK {
			t.Fatalf("samples list: %d", code)
		}
		for _, s := range list.Samples {
			if s.Key == built.Key {
				return s.TargetMet
			}
		}
		t.Fatalf("static sample %q vanished from the listing", built.Key)
		return nil
	}
	if met := listMet(); met == nil || !*met {
		t.Fatal("guarantee must survive a same-rows streaming conversion")
	}

	// Appended rows outgrow the guarantee's population: once the next
	// generation publishes, the static sample's target_met flips false.
	if _, err := reg.Append("sales", [][]any{{"NA", "widget", 100.0}, {"EU", "gadget", 90.0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	if met := listMet(); met == nil || *met {
		t.Fatal("appended data must flip the static autoscale guarantee to target_met false")
	}

	// The query path reports the same staleness.
	var q struct {
		TargetMet *bool `json:"target_met"`
	}
	if code := post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "target_cv": 0.05}`,
		&q); code != http.StatusOK {
		t.Fatalf("target_cv query: %d", code)
	}
	if q.TargetMet == nil {
		t.Fatal("target_cv query response missing target_met")
	}
}
