package serve

// Registry sharding. Each shard owns a disjoint set of tables — chosen
// by a case-folded FNV hash of the table name — together with
// *everything keyed by those tables*: the table pointers themselves,
// their built sample entries, their in-flight singleflight builds and
// their streaming state. Every per-table operation (register, build,
// find, query, append, refresh, publication install) locks exactly one
// shard, so work on one table never contends with work on a table in
// another shard; only rare whole-registry operations (TableNames,
// Entries, Counts, Close, registration's duplicate-name check) walk all
// shards, taking each lock briefly in turn.

import (
	"fmt"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/table"
)

// shard is one lock domain of the registry.
type shard struct {
	mu       sync.RWMutex
	tables   map[string]*table.Table
	entries  map[string]*Entry
	inflight map[string]*buildCall
	// streams holds the live ingest state of streaming tables, keyed by
	// canonical table name (nil value = registration in progress, which
	// reserves the name). See stream.go.
	streams map[string]*streamState
	// plans caches compiled physical plans keyed by normalized SQL, and
	// planFlight dedups concurrent compilations of the same key,
	// mirroring entries/inflight for sample builds. See plancache.go.
	plans      map[string]*planEntry
	planFlight map[string]*planCall
}

func newShard() *shard {
	return &shard{
		tables:     make(map[string]*table.Table),
		entries:    make(map[string]*Entry),
		inflight:   make(map[string]*buildCall),
		streams:    make(map[string]*streamState),
		plans:      make(map[string]*planEntry),
		planFlight: make(map[string]*planCall),
	}
}

// shardFor maps a table name to its shard. The hash runs over the
// case-folded name so the case-insensitive lookups ("Sales", "sales")
// land on one shard. ASCII names — the practical universe — fold
// exactly as strings.EqualFold does; exotic Unicode one-way folds (ſ/s)
// may hash apart, which registration's global duplicate check keeps
// harmless (at most one spelling is ever registered).
func (r *Registry) shardFor(name string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= utf8.RuneSelf {
			// non-ASCII: fold the whole name the slow, allocating way
			folded := strings.ToLower(strings.ToUpper(name))
			h = offset32
			for j := 0; j < len(folded); j++ {
				h = (h ^ uint32(folded[j])) * prime32
			}
			return r.shards[h%uint32(len(r.shards))]
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		h = (h ^ uint32(c)) * prime32
	}
	return r.shards[h%uint32(len(r.shards))]
}

// checkNameFreeLocked rejects a table name already taken in this shard
// by a registered table or an in-flight streaming registration. Caller
// holds s.mu (either mode).
func (s *shard) checkNameFreeLocked(name string) error {
	for existing := range s.tables {
		if strings.EqualFold(existing, name) {
			return fmt.Errorf("serve: table %q already registered (as %q)", name, existing)
		}
	}
	for existing := range s.streams {
		if strings.EqualFold(existing, name) {
			return fmt.Errorf("serve: table %q already registered (as streaming %q)", name, existing)
		}
	}
	return nil
}

// tableLocked resolves a table name case-insensitively within the
// shard. Caller holds s.mu (either mode).
func (s *shard) tableLocked(name string) (*table.Table, string) {
	if t, ok := s.tables[name]; ok {
		return t, name
	}
	for n, t := range s.tables {
		if strings.EqualFold(n, name) {
			return t, n
		}
	}
	return nil, ""
}
