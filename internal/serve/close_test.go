package serve_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/serve"
)

// waitForGoroutines polls until the process goroutine count drops back
// to at most want, failing after two seconds. Polling (rather than a
// single check) absorbs goroutines that are mid-exit when Close
// returns.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines never drained: %d running, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The leak audit behind Registry.Close's contract: every goroutine the
// registry ever started (stream refresh loops) is gone after Close,
// including streams registered with aggressive tick policies, and Close
// is idempotent.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := serve.NewRegistry(serve.WithMaxSampleBytes(1 << 20))
	for i := 0; i < 4; i++ {
		tbl := salesTable(t)
		tbl.Name = fmt.Sprintf("live%d", i)
		cfg := streamCfg(100)
		cfg.Policy = ingest.Policy{MaxPending: 10, Interval: time.Millisecond}
		if err := reg.RegisterStreamingTable(tbl, cfg); err != nil {
			t.Fatal(err)
		}
	}
	// drive the refresh loops so they are demonstrably alive pre-Close
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("live%d", i)
		if _, err := reg.Append(name, streamRows(0, 25)); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Refresh(name); err != nil {
			t.Fatal(err)
		}
	}
	// a static build in flight during Close runs on our goroutine and
	// simply completes; nothing for Close to reap
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Build(context.Background(), buildReq(150)); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	waitForGoroutines(t, before)

	// the closed registry still answers queries off published state
	if _, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM live0 GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample}); err != nil {
		t.Fatalf("published generations must stay queryable after Close: %v", err)
	}
	// but refuses new streaming registrations
	extra := salesTable(t)
	extra.Name = "late"
	if err := reg.RegisterStreamingTable(extra, streamCfg(100)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("streaming registration after Close: err = %v, want ErrClosed", err)
	}
	if err := reg.StreamTable("sales", streamCfg(100)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("StreamTable after Close: err = %v, want ErrClosed", err)
	}
}

// Close racing concurrent streaming registrations must strand no
// refresh loop: whichever side loses the race shuts the stream down.
func TestCloseRacesStreamingRegistration(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		reg := serve.NewRegistry()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tbl := salesTable(t)
				tbl.Name = fmt.Sprintf("race%d", i)
				// either outcome is fine; what matters is the goroutine
				// accounting afterwards
				_ = reg.RegisterStreamingTable(tbl, streamCfg(80))
			}(i)
		}
		reg.Close()
		wg.Wait()
		reg.Close()
	}
	waitForGoroutines(t, before)
}
