package serve_test

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/serve"
	"repro/internal/sqlparse"
)

// streamRows generates deterministic skewed rows [start, start+n) for
// the sales schema of salesTable.
func streamRows(start, n int) [][]any {
	rows := make([][]any, 0, n)
	for i := start; i < start+n; i++ {
		var region, product string
		var base float64
		switch {
		case i%25 == 0:
			region, product, base = "APAC", "widget", 300
		case i%25 < 6:
			region, product, base = "EU", "gadget", 120
		case i%25 < 12:
			region, product, base = "EU", "widget", 80
		default:
			region, product, base = "NA", "widget", 100
		}
		rows = append(rows, []any{region, product, base + float64(i%17) - 8})
	}
	return rows
}

func streamCfg(budget int) ingest.Config {
	return ingest.Config{
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs:    []core.AggColumn{{Column: "amount"}},
		}},
		Budget: budget,
		Seed:   13,
	}
}

func newStreamingRegistry(t *testing.T, cfg ingest.Config) *serve.Registry {
	t.Helper()
	reg := serve.NewRegistry()
	t.Cleanup(reg.Close)
	if err := reg.RegisterStreamingTable(salesTable(t), cfg); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegisterStreamingTablePublishesImmediately(t *testing.T) {
	reg := newStreamingRegistry(t, streamCfg(300))
	// generation 1 is queryable right away, off the sample
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry == nil || ans.Entry.Generation != 1 {
		t.Fatalf("want a generation-1 streaming answer, got %+v", ans.Entry)
	}
	if st, ok := reg.StreamStatus("sales"); !ok || st.Generation != 1 || st.Pending != 0 || st.Rows != 3740 {
		t.Fatalf("stream status: %+v ok=%v", st, ok)
	}
	// the name is taken in both namespaces
	if err := reg.RegisterTable(salesTable(t)); err == nil {
		t.Fatal("static registration over a streaming name should fail")
	}
	if err := reg.RegisterStreamingTable(salesTable(t), streamCfg(100)); err == nil {
		t.Fatal("duplicate streaming registration should fail")
	}
}

func TestAppendThenRefreshAdvancesGeneration(t *testing.T) {
	reg := newStreamingRegistry(t, streamCfg(300))
	st, err := reg.Append("sales", streamRows(3740, 500))
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != 500 || st.Pending != 500 || st.Rows != 4240 || st.Generation != 1 {
		t.Fatalf("append status: %+v", st)
	}
	// queries still answer from generation 1 until the refresh
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry.Generation != 1 {
		t.Fatalf("pre-refresh answer came from generation %d", ans.Entry.Generation)
	}
	e, err := reg.Refresh("sales")
	if err != nil {
		t.Fatal(err)
	}
	if e.Generation != 2 {
		t.Fatalf("refresh produced generation %d, want 2", e.Generation)
	}
	// the exact path now sees the appended rows too
	exact, err := reg.Query(context.Background(), "SELECT COUNT(*) FROM sales", serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Result.Rows[0].Aggs[0]; got != 4240 {
		t.Fatalf("exact COUNT(*) = %g after refresh, want 4240", got)
	}
	// case-insensitive resolution, like every other entry point
	if _, err := reg.Append("SALES", streamRows(4240, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestStreamTableConvertsStaticTable(t *testing.T) {
	reg := newSalesRegistry(t)
	t.Cleanup(reg.Close)
	// a static sample built before the conversion
	if _, _, err := reg.Build(context.Background(), buildReq(200)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Append("sales", streamRows(0, 10)); err == nil {
		t.Fatal("append to a static table should fail")
	}
	if err := reg.StreamTable("sales", streamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if err := reg.StreamTable("sales", streamCfg(300)); err == nil {
		t.Fatal("double conversion should fail")
	}
	if _, err := reg.Append("sales", streamRows(3740, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	// both the static and the streaming entry cover region queries; the
	// streaming one has the bigger budget and wins
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry.Generation == 0 {
		t.Fatal("query should answer from the streaming entry")
	}
	// the old static entry's row ids index a prefix of the new
	// snapshot, so forcing it is still well-formed
	if es := reg.Entries(); len(es) != 2 {
		t.Fatalf("want 2 entries (static + streaming), got %d", len(es))
	}
}

// Freshness beats budget: a static sample built before (or after) the
// conversion must not shadow the live entry, no matter how large its
// budget — it is frozen at its build-time snapshot and would hide
// appended rows forever.
func TestFindPrefersLiveEntryOverBiggerStaticSample(t *testing.T) {
	reg := newSalesRegistry(t)
	t.Cleanup(reg.Close)
	// static sample with a budget far above the streaming one
	if _, _, err := reg.Build(context.Background(), buildReq(2000)); err != nil {
		t.Fatal(err)
	}
	if err := reg.StreamTable("sales", streamCfg(300)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Append("sales", streamRows(3740, 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	ans, err := reg.Query(context.Background(), "SELECT region, AVG(amount) FROM sales GROUP BY region",
		serve.QueryOptions{Mode: serve.ModeSample})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Entry.Generation == 0 {
		t.Fatalf("query answered from the frozen static sample (budget %d) instead of the live entry", ans.Entry.Budget)
	}
	// tightest stratification still wins over liveness: a static
	// (region, product) sample is not dragged in for a region query —
	// ordering is extra-attrs first, then liveness, then budget
	if e, ok := reg.Find("sales", []string{"region"}); !ok || len(e.GroupAttrs()) != 1 {
		t.Fatalf("Find widened the stratification: %v", e.GroupAttrs())
	}
}

// Policy fields distinguish "unset" (0: inherit the registry default)
// from "explicitly off" (negative: never auto-refresh even when a
// default exists).
func TestStreamPolicyDefaultsAndOptOut(t *testing.T) {
	reg := serve.NewRegistry()
	t.Cleanup(reg.Close)
	reg.SetStreamDefaults(ingest.Policy{MaxPending: 50})

	inherit := salesTable(t)
	if err := reg.RegisterStreamingTable(inherit, streamCfg(200)); err != nil {
		t.Fatal(err)
	}
	optOut := salesTable(t)
	optOut.Name = "sales_manual"
	cfg := streamCfg(200)
	cfg.Policy = ingest.Policy{MaxPending: -1}
	if err := reg.RegisterStreamingTable(optOut, cfg); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"sales", "sales_manual"} {
		if _, err := reg.Append(name, streamRows(3740, 80)); err != nil {
			t.Fatal(err)
		}
	}
	// the inheriting table crossed the default threshold and refreshes
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := reg.StreamStatus("sales")
		if st.Generation >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("default-policy stream never auto-refreshed")
		}
		time.Sleep(time.Millisecond)
	}
	// the opted-out table must still be on generation 1 with its rows
	// pending, despite having crossed the same threshold
	st, _ := reg.StreamStatus("sales_manual")
	if st.Generation != 1 || st.Pending != 80 {
		t.Fatalf("opted-out stream auto-refreshed: %+v", st)
	}
}

func TestStreamingErrors(t *testing.T) {
	reg := newStreamingRegistry(t, streamCfg(300))
	if _, err := reg.Append("nope", streamRows(0, 1)); err == nil {
		t.Fatal("append to unknown table should fail")
	}
	if _, err := reg.Refresh("nope"); err == nil {
		t.Fatal("refresh of unknown table should fail")
	}
	// a malformed batch is rejected atomically
	before, _ := reg.StreamStatus("sales")
	if _, err := reg.Append("sales", [][]any{{"NA", "widget", 1.0}, {"NA", "widget"}}); err == nil {
		t.Fatal("bad batch should fail")
	}
	after, _ := reg.StreamStatus("sales")
	if after.Rows != before.Rows {
		t.Fatalf("failed batch leaked rows: %d -> %d", before.Rows, after.Rows)
	}
	// a config the sampler rejects never registers
	bad := streamCfg(0)
	tbl := salesTable(t)
	tbl.Name = "other"
	if err := reg.RegisterStreamingTable(tbl, bad); err == nil {
		t.Fatal("budgetless config should fail")
	}
	// and the reservation rolled back: the name is free again
	if err := reg.RegisterStreamingTable(tbl, streamCfg(100)); err != nil {
		t.Fatalf("name not released after failed registration: %v", err)
	}
}

func TestHitCountersSurviveRefresh(t *testing.T) {
	reg := newStreamingRegistry(t, streamCfg(300))
	sql := "SELECT region, AVG(amount) FROM sales GROUP BY region"
	for i := 0; i < 5; i++ {
		if _, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample}); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := reg.Find("sales", []string{"region"}) // +1 hit
	if got := e.Hits.Load(); got != 6 {
		t.Fatalf("hits = %d, want 6", got)
	}
	if got := reg.TotalHits(); got != 6 {
		t.Fatalf("total hits = %d, want 6", got)
	}
	// hits carry across a generation swap: the counter is per key
	if _, err := reg.Append("sales", streamRows(3740, 50)); err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Refresh("sales")
	if err != nil {
		t.Fatal(err)
	}
	if e2 == e {
		t.Fatal("refresh should publish a new entry")
	}
	if got := e2.Hits.Load(); got != 6 {
		t.Fatalf("hits after refresh = %d, want carried-over 6", got)
	}
}

// The acceptance criterion: after appending rows, a refreshed sample's
// per-group accuracy matches a fresh two-pass CVOPT build over the same
// published snapshot, within reservoir-subsampling tolerance.
func TestRefreshedSampleMatchesTwoPassBuild(t *testing.T) {
	const budget = 400
	cfg := streamCfg(budget)
	cfg.Capacity = 2 * budget // nothing clipped: one-pass ≡ two-pass in distribution
	reg := newStreamingRegistry(t, cfg)
	if _, err := reg.Append("sales", streamRows(3740, 4000)); err != nil {
		t.Fatal(err)
	}
	e, err := reg.Refresh("sales")
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := reg.Table("sales")
	if !ok || snap.NumRows() != 7740 {
		t.Fatalf("published snapshot has %d rows, want 7740", snap.NumRows())
	}

	cv := &samplers.CVOPT{}
	twoPass, err := cv.Build(snap, cfg.Queries, budget, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sqlparse.Parse("SELECT region, AVG(amount) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	meanErr := func(s *samplers.RowSample) float64 {
		approx, err := exec.RunWeighted(snap, q, s.Rows, s.Weights)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx.Rows) != len(exact.Rows) {
			t.Fatalf("sample answer has %d groups, exact %d", len(approx.Rows), len(exact.Rows))
		}
		return metrics.Summarize(metrics.GroupErrors(exact, approx)).Mean
	}
	streamErr := meanErr(e.Sample)
	twoPassErr := meanErr(twoPass)
	if streamErr > 0.05 {
		t.Fatalf("refreshed sample mean error %.4f implausibly high", streamErr)
	}
	if twoPassErr > 0 && streamErr > 5*twoPassErr+0.01 {
		t.Fatalf("refreshed sample error %.4f far above two-pass %.4f", streamErr, twoPassErr)
	}
}

// The acceptance race: N goroutines appending and M goroutines querying
// one streaming table while refreshes fire (threshold policy + explicit
// flushes). Run under -race. Every answer must be a complete sample of
// one generation and the generations each querier observes must be
// monotonically non-decreasing.
func TestStreamingAppendQueryRefreshRace(t *testing.T) {
	cfg := streamCfg(200)
	cfg.Policy = ingest.Policy{MaxPending: 300}
	reg := newStreamingRegistry(t, cfg)

	const (
		appenders = 4
		queriers  = 4
		batches   = 25
		batchLen  = 20
		queryReps = 40
	)
	sql := "SELECT region, AVG(amount), COUNT(*) FROM sales GROUP BY region"
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				start := 10000 + a*batches*batchLen + b*batchLen
				if _, err := reg.Append("sales", streamRows(start, batchLen)); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Add(1)
	go func() { // explicit flusher racing the threshold loop
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if _, err := reg.Refresh("sales"); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for c := 0; c < queriers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			for rep := 0; rep < queryReps; rep++ {
				ans, err := reg.Query(context.Background(), sql, serve.QueryOptions{Mode: serve.ModeSample})
				if err != nil {
					t.Error(err)
					return
				}
				gen := ans.Entry.Generation
				if gen < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, gen)
					return
				}
				lastGen = gen
				// a torn read would show as missing groups, NaN
				// estimates or a COUNT that covers no rows
				if len(ans.Result.Rows) == 0 {
					t.Error("answer has no groups")
					return
				}
				var totalCount float64
				for _, row := range ans.Result.Rows {
					if len(row.Aggs) != 2 || math.IsNaN(row.Aggs[0]) || math.IsNaN(row.Aggs[1]) {
						t.Errorf("torn answer: group %v aggs %v", row.Key, row.Aggs)
						return
					}
					totalCount += row.Aggs[1]
				}
				// the weighted COUNT estimates the generation's row
				// count exactly up to float accumulation (weights sum
				// to the population per stratum)
				if totalCount < 3739 {
					t.Errorf("estimated population %g below the seed row count", totalCount)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, err := reg.Refresh("sales"); err != nil {
		t.Fatal(err)
	}
	st, _ := reg.StreamStatus("sales")
	wantRows := 3740 + appenders*batches*batchLen
	if st.Rows != wantRows {
		t.Fatalf("ingested %d rows, want %d", st.Rows, wantRows)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d after final refresh", st.Pending)
	}
	if st.RefreshErrors != 0 {
		t.Fatalf("automatic refreshes failed %d times", st.RefreshErrors)
	}
	// the final generation's COUNT covers every ingested row
	ans, err := reg.Query(context.Background(), "SELECT COUNT(*) FROM sales", serve.QueryOptions{Mode: serve.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Result.Rows[0].Aggs[0]; got != float64(wantRows) {
		t.Fatalf("exact COUNT(*) = %g, want %d", got, wantRows)
	}
}

// HTTP round trip of the streaming endpoints: stream, append, refresh,
// query; plus the ops surfaces carrying hits and stream state.
func TestServerStreamingEndpoints(t *testing.T) {
	ts, reg := startServer(t)
	t.Cleanup(reg.Close)

	var st streamStateResp
	code := post(t, ts.URL+"/v1/tables/sales/stream", `{
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"budget": 300, "seed": 9, "refresh_rows": 100000
	}`, &st)
	if code != http.StatusCreated {
		t.Fatalf("stream: %d", code)
	}
	if !st.Streaming || st.Generation != 1 || st.Rows != 3740 {
		t.Fatalf("stream state: %+v", st)
	}

	rows := `{"rows": [["NA", "widget", 101.5], ["EU", "gadget", 88], ["APAC", "widget", 310]]}`
	var ap struct {
		Appended   int    `json:"appended"`
		Pending    int    `json:"pending"`
		Rows       int    `json:"rows"`
		Generation uint64 `json:"generation"`
	}
	if code := post(t, ts.URL+"/v1/tables/sales/rows", rows, &ap); code != http.StatusOK {
		t.Fatalf("rows: %d", code)
	}
	if ap.Appended != 3 || ap.Pending != 3 || ap.Rows != 3743 || ap.Generation != 1 {
		t.Fatalf("append response: %+v", ap)
	}

	var ref struct {
		Generation uint64 `json:"generation"`
		Rows       int    `json:"rows"`
	}
	if code := post(t, ts.URL+"/v1/tables/sales/refresh", "", &ref); code != http.StatusOK {
		t.Fatalf("refresh: %d", code)
	}
	if ref.Generation != 2 {
		t.Fatalf("refresh generation = %d, want 2", ref.Generation)
	}

	var qr struct {
		queryResponse
		Generation uint64 `json:"generation"`
	}
	code = post(t, ts.URL+"/v1/query",
		`{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region", "mode": "sample"}`, &qr)
	if code != http.StatusOK || qr.Generation != 2 {
		t.Fatalf("query: code=%d generation=%d", code, qr.Generation)
	}

	// ops surfaces: tables report stream state, samples report hits,
	// healthz aggregates
	var tables struct {
		Tables []struct {
			Name       string `json:"name"`
			Rows       int    `json:"rows"`
			Streaming  bool   `json:"streaming"`
			Generation uint64 `json:"generation"`
		} `json:"tables"`
	}
	if code := get(t, ts.URL+"/v1/tables", &tables); code != http.StatusOK {
		t.Fatalf("tables: %d", code)
	}
	if len(tables.Tables) != 1 || !tables.Tables[0].Streaming || tables.Tables[0].Generation != 2 || tables.Tables[0].Rows != 3743 {
		t.Fatalf("tables: %+v", tables.Tables)
	}
	var samples struct {
		Samples []struct {
			Generation uint64 `json:"generation"`
			Hits       int64  `json:"hits"`
		} `json:"samples"`
	}
	if code := get(t, ts.URL+"/v1/samples", &samples); code != http.StatusOK {
		t.Fatalf("samples: %d", code)
	}
	if len(samples.Samples) != 1 || samples.Samples[0].Generation != 2 || samples.Samples[0].Hits != 1 {
		t.Fatalf("samples: %+v", samples.Samples)
	}
	var health struct {
		Streams    int   `json:"streams"`
		Refreshes  int64 `json:"refreshes"`
		SampleHits int64 `json:"sample_hits"`
	}
	if code := get(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health.Streams != 1 || health.Refreshes != 2 || health.SampleHits != 1 {
		t.Fatalf("healthz: %+v", health)
	}
}

type streamStateResp struct {
	Table      string `json:"table"`
	Streaming  bool   `json:"streaming"`
	Generation uint64 `json:"generation"`
	Rows       int    `json:"rows"`
	Pending    int    `json:"pending"`
}

func TestServerStreamingErrors(t *testing.T) {
	ts, reg := startServer(t)
	t.Cleanup(reg.Close)
	goodStream := `{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "budget": 100}`
	cases := []struct {
		name, path, body string
		wantCode         int
	}{
		{"stream unknown table", "/v1/tables/nope/stream", goodStream, http.StatusNotFound},
		{"stream no budget", "/v1/tables/sales/stream", `{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}]}`, http.StatusUnprocessableEntity},
		{"stream bad norm", "/v1/tables/sales/stream", `{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "budget": 10, "norm": "l7"}`, http.StatusBadRequest},
		{"stream bad interval", "/v1/tables/sales/stream", `{"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}], "budget": 10, "refresh_interval": "soon"}`, http.StatusBadRequest},
		{"stream bad spec", "/v1/tables/sales/stream", `{"queries": [{"group_by": [], "aggs": [{"column": "amount"}]}], "budget": 10}`, http.StatusBadRequest},
		{"rows before streaming", "/v1/tables/sales/rows", `{"rows": [["NA", "widget", 1]]}`, http.StatusConflict},
		{"refresh before streaming", "/v1/tables/sales/refresh", ``, http.StatusConflict},
		{"rows unknown table", "/v1/tables/nope/rows", `{"rows": [["NA", "widget", 1]]}`, http.StatusNotFound},
		{"refresh unknown table", "/v1/tables/nope/refresh", ``, http.StatusNotFound},
	}
	for _, c := range cases {
		var e struct {
			Error string `json:"error"`
		}
		if code := post(t, ts.URL+c.path, c.body, &e); code != c.wantCode {
			t.Errorf("%s: got %d, want %d (%s)", c.name, code, c.wantCode, e.Error)
		} else if e.Error == "" {
			t.Errorf("%s: error body missing", c.name)
		}
	}
	// now stream it and exercise post-registration errors
	if code := post(t, ts.URL+"/v1/tables/sales/stream", goodStream, nil); code != http.StatusCreated {
		t.Fatalf("stream: %d", code)
	}
	post2 := func(path, body string, want int, name string) {
		t.Helper()
		var e struct {
			Error string `json:"error"`
		}
		if code := post(t, ts.URL+path, body, &e); code != want {
			t.Errorf("%s: got %d, want %d (%s)", name, code, want, e.Error)
		}
	}
	post2("/v1/tables/sales/stream", goodStream, http.StatusConflict, "double stream")
	post2("/v1/tables/sales/rows", `{"rows": []}`, http.StatusBadRequest, "empty rows")
	post2("/v1/tables/sales/rows", `{"rows": [["NA", "widget"]]}`, http.StatusUnprocessableEntity, "short row")
	post2("/v1/tables/sales/rows", `{"rows": [[3, "widget", 1.0]]}`, http.StatusUnprocessableEntity, "bad type")
}

// The refresh key is stable across generations even under a rate
// budget: each publication replaces its predecessor instead of piling
// up entries.
func TestStreamRefreshReplacesEntry(t *testing.T) {
	cfg := ingest.Config{
		Queries: streamCfg(0).Queries,
		Rate:    0.1,
		Seed:    3,
	}
	reg := newStreamingRegistry(t, cfg)
	for i := 0; i < 3; i++ {
		if _, err := reg.Append("sales", streamRows(5000+100*i, 100)); err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Refresh("sales"); err != nil {
			t.Fatal(err)
		}
	}
	entries := reg.Entries()
	if len(entries) != 1 {
		t.Fatalf("refreshes piled up %d entries, want 1", len(entries))
	}
	if entries[0].Generation != 4 {
		t.Fatalf("generation = %d, want 4 (seed + 3 refreshes)", entries[0].Generation)
	}
	// rate budget grew with the table
	if entries[0].Budget != (3740+300)/10 {
		t.Fatalf("budget = %d, want %d", entries[0].Budget, (3740+300)/10)
	}
}
