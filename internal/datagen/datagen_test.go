package datagen

import (
	"math"
	"sort"
	"testing"

	"repro/internal/table"
)

func TestOpenAQDeterministic(t *testing.T) {
	cfg := OpenAQConfig{Rows: 5000, Seed: 7}
	a, err := OpenAQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenAQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ")
	}
	for r := 0; r < 100; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d differs: %v vs %v", r, ra, rb)
			}
		}
	}
	c, err := OpenAQ(OpenAQConfig{Rows: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for r := 0; r < 100 && same; r++ {
		ra, rc := a.Row(r), c.Row(r)
		for i := range ra {
			if ra[i] != rc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical prefixes")
	}
}

func TestOpenAQShape(t *testing.T) {
	tbl, err := OpenAQ(OpenAQConfig{Rows: 50000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 50000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Name != "OpenAQ" {
		t.Fatalf("name = %q", tbl.Name)
	}
	country := tbl.Column("country")
	if country.Dict.Len() != 38 {
		t.Fatalf("countries = %d want 38", country.Dict.Len())
	}
	if _, ok := country.Dict.Lookup("VN"); !ok {
		t.Fatalf("VN must exist for query AQ6")
	}
	param := tbl.Column("parameter")
	if param.Dict.Len() != 7 {
		t.Fatalf("parameters = %d want 7", param.Dict.Len())
	}
	// all values positive, years in range
	vals := tbl.Column("value")
	years := tbl.Column("year")
	for r := 0; r < tbl.NumRows(); r++ {
		if vals.Float[r] <= 0 {
			t.Fatalf("non-positive measurement at %d", r)
		}
		if y := years.Int[r]; y < 2015 || y > 2018 {
			t.Fatalf("year out of range: %d", y)
		}
	}
}

func TestOpenAQSkewAndHeterogeneity(t *testing.T) {
	tbl, err := OpenAQ(OpenAQConfig{Rows: 100000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := table.BuildGroupIndex(tbl, []string{"country"})
	if err != nil {
		t.Fatal(err)
	}
	sizes := gi.StratumSizes()
	var s []float64
	for _, n := range sizes {
		s = append(s, float64(n))
	}
	sort.Float64s(s)
	// skew: biggest country at least 20x the smallest
	if s[len(s)-1]/s[0] < 20 {
		t.Fatalf("country skew too flat: min=%v max=%v", s[0], s[len(s)-1])
	}
	// small groups exist (uniform sampling will miss them at low rates)
	if s[0] > float64(tbl.NumRows())/500 {
		t.Fatalf("no small groups: min=%v", s[0])
	}
	// CV heterogeneity across (country,parameter) strata
	gi2, err := table.BuildGroupIndex(tbl, []string{"country", "parameter"})
	if err != nil {
		t.Fatal(err)
	}
	rowsBy := gi2.RowsByStratum()
	vals := tbl.Column("value")
	var cvs []float64
	for _, rows := range rowsBy {
		if len(rows) < 30 {
			continue
		}
		var sum, sum2 float64
		for _, r := range rows {
			v := vals.Float[r]
			sum += v
			sum2 += v * v
		}
		n := float64(len(rows))
		mean := sum / n
		va := sum2/n - mean*mean
		if mean > 0 && va > 0 {
			cvs = append(cvs, math.Sqrt(va)/mean)
		}
	}
	sort.Float64s(cvs)
	if len(cvs) < 50 {
		t.Fatalf("too few strata with data: %d", len(cvs))
	}
	if cvs[len(cvs)-1]/cvs[0] < 3 {
		t.Fatalf("CV heterogeneity too flat: %v .. %v", cvs[0], cvs[len(cvs)-1])
	}
}

func TestOpenAQErrors(t *testing.T) {
	if _, err := OpenAQ(OpenAQConfig{Rows: 5, Countries: 38, Seed: 1}); err == nil {
		t.Fatalf("want too-few-rows error")
	}
	// countries clamped to available codes
	tbl, err := OpenAQ(OpenAQConfig{Rows: 2000, Countries: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Column("country").Dict.Len() > len(countryCodes) {
		t.Fatalf("country count not clamped")
	}
}

func TestBikesShape(t *testing.T) {
	tbl, err := Bikes(BikesConfig{Rows: 80000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 80000 || tbl.Name != "Bikes" {
		t.Fatalf("shape wrong")
	}
	stations := map[int64]bool{}
	stationCol := tbl.Column("from_station_id")
	years := tbl.Column("year")
	ages := tbl.Column("age")
	durs := tbl.Column("trip_duration")
	zeroAges := 0
	for r := 0; r < tbl.NumRows(); r++ {
		stations[stationCol.Int[r]] = true
		if y := years.Int[r]; y < 2016 || y > 2018 {
			t.Fatalf("year out of range: %d", y)
		}
		if durs.Float[r] <= 0 {
			t.Fatalf("non-positive duration")
		}
		if ages.Float[r] == 0 {
			zeroAges++
		} else if ages.Float[r] < 16 || ages.Float[r] > 80 {
			t.Fatalf("age out of range: %v", ages.Float[r])
		}
	}
	// most stations appear; zero-age records exist (for WHERE age > 0)
	if len(stations) < 500 {
		t.Fatalf("only %d stations appear", len(stations))
	}
	if zeroAges == 0 || zeroAges > tbl.NumRows()/5 {
		t.Fatalf("zero-age fraction implausible: %d", zeroAges)
	}
}

func TestBikesDeterministic(t *testing.T) {
	a, err := Bikes(BikesConfig{Rows: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bikes(BikesConfig{Rows: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 50; r++ {
		ra, rb := a.Row(r), b.Row(r)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d differs", r)
			}
		}
	}
}

func TestBikesErrors(t *testing.T) {
	if _, err := Bikes(BikesConfig{Rows: 10, Stations: 619, Seed: 1}); err == nil {
		t.Fatalf("want too-few-rows error")
	}
}

func TestScale(t *testing.T) {
	tbl, err := Bikes(BikesConfig{Rows: 1000, Stations: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Scale(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.NumRows() != 3000 {
		t.Fatalf("scaled rows = %d", big.NumRows())
	}
	// copies are identical
	for r := 0; r < 100; r++ {
		a, b := big.Row(r), big.Row(r+1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("duplicate block differs at row %d", r)
			}
		}
	}
	if _, err := Scale(tbl, 0); err == nil {
		t.Fatalf("want scale error")
	}
}

func TestZipfHelpers(t *testing.T) {
	w := zipfWeights(5, 1)
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Fatalf("zipf weights not decreasing: %v", w)
		}
	}
	cum := cumulative(w)
	if math.Abs(cum[len(cum)-1]-1) > 1e-12 {
		t.Fatalf("cumulative should end at 1: %v", cum)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone")
		}
	}
	if searchCum(cum, 0) != 0 {
		t.Fatalf("searchCum(0) should be first bucket")
	}
	if searchCum(cum, 0.999999) != len(cum)-1 {
		t.Fatalf("searchCum(~1) should be last bucket")
	}
	// mid lookups respect boundaries
	for i, c := range cum[:len(cum)-1] {
		if got := searchCum(cum, c); got != i+1 {
			t.Fatalf("searchCum(cum[%d]) = %d want %d", i, got, i+1)
		}
	}
}

func BenchmarkOpenAQGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OpenAQ(OpenAQConfig{Rows: 100000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
