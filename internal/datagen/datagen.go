// Package datagen synthesizes the two evaluation datasets of the paper.
//
// The real OpenAQ (200M air-quality measurements) and Divvy Bikes (11.5M
// trips) datasets are not redistributable here, so the generators build
// statistical stand-ins that preserve exactly the properties the
// sampling algorithms are sensitive to (see DESIGN.md §4):
//
//   - heavily skewed group frequencies (Zipf over countries/stations),
//     including tiny groups that uniform sampling misses;
//   - per-group means spanning orders of magnitude (different pollutant
//     parameters / station activity levels);
//   - per-group coefficients of variation spanning a wide range, so
//     CV-aware allocation (CVOPT, RL) separates from frequency-only
//     allocation (CS) and from uniform;
//   - the attributes every paper query touches (country, parameter,
//     unit, value, latitude, year, month, hour; station, year,
//     trip_duration, age, gender).
//
// Generation is deterministic given the config seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/table"
)

// OpenAQConfig controls the synthetic OpenAQ table.
type OpenAQConfig struct {
	Rows      int   // total measurements
	Countries int   // default 38 (paper §6.4)
	Seed      int64 // RNG seed
}

func (c *OpenAQConfig) setDefaults() {
	if c.Rows == 0 {
		c.Rows = 200000
	}
	if c.Countries == 0 {
		c.Countries = 38
	}
	if c.Countries > len(countryCodes) {
		c.Countries = len(countryCodes)
	}
}

// countryCodes supplies realistic country labels; "VN" is guaranteed to
// be included because query AQ6 filters on it.
var countryCodes = []string{
	"US", "IN", "CN", "VN", "FR", "DE", "GB", "ES", "AU", "CL",
	"MX", "TH", "TR", "PL", "NL", "CA", "BR", "RU", "IT", "NO",
	"PE", "CO", "ZA", "ID", "PH", "KR", "JP", "TW", "AT", "BE",
	"CH", "CZ", "DK", "FI", "GR", "HU", "IE", "IL", "PT", "SE",
	"SK", "AR", "BA", "NG", "KE", "ET", "GH", "LK", "NP", "MN",
	"KZ", "UA", "RO", "BG", "HR", "RS", "LT", "LV", "EE", "IS",
	"LU", "MT", "CY", "SG", "MY", "AE", "QA",
}

// aqParam describes one measured substance: its unit and the base scale
// of its measurements (means differ by orders of magnitude across
// parameters, e.g. bc ~0.03 vs pm10 ~40).
type aqParam struct {
	name  string
	unit  string
	scale float64 // median measurement value
}

var aqParams = []aqParam{
	{"bc", "ug/m3", 0.035},
	{"co", "ppm", 0.6},
	{"no2", "ppm", 0.02},
	{"o3", "ppm", 0.03},
	{"pm10", "ug/m3", 40},
	{"pm25", "ug/m3", 22},
	{"so2", "ppm", 0.004},
}

// OpenAQSchema returns the schema of the synthetic OpenAQ table.
func OpenAQSchema() table.Schema {
	return table.Schema{
		{Name: "country", Kind: table.String},
		{Name: "parameter", Kind: table.String},
		{Name: "unit", Kind: table.String},
		{Name: "value", Kind: table.Float},
		{Name: "latitude", Kind: table.Float},
		{Name: "year", Kind: table.Int},
		{Name: "month", Kind: table.Int},
		{Name: "hour", Kind: table.Int},
	}
}

// OpenAQ generates the synthetic OpenAQ table.
func OpenAQ(cfg OpenAQConfig) (*table.Table, error) {
	cfg.setDefaults()
	if cfg.Rows < cfg.Countries {
		return nil, fmt.Errorf("datagen: %d rows cannot cover %d countries", cfg.Rows, cfg.Countries)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New("OpenAQ", OpenAQSchema())
	tbl.Grow(cfg.Rows)

	// Zipf-skewed country popularity, with the bottom quarter of
	// countries made genuinely rare (the real feed has countries with a
	// handful of stations — exactly the small groups uniform sampling
	// misses and RL over-allocates, Section 6.1). Shuffled so
	// alphabetical order does not correlate with size.
	countries := append([]string(nil), countryCodes[:cfg.Countries]...)
	weights := zipfWeights(cfg.Countries, 1.1)
	for i := cfg.Countries * 3 / 4; i < cfg.Countries; i++ {
		weights[i] *= 0.04
	}
	rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	countryCum := cumulative(weights)

	// Per-country latitude (fixed per country, both hemispheres) and a
	// country-level pollution multiplier with heavy spread.
	lat := make([]float64, cfg.Countries)
	mult := make([]float64, cfg.Countries)
	for i := range lat {
		lat[i] = rng.Float64()*140 - 55 // [-55, 85)
		mult[i] = math.Exp(rng.NormFloat64() * 0.7)
	}

	// Parameter popularity: pm25/pm10/o3 dominate, bc is rare — matching
	// the real feed where black carbon exists only at few stations.
	paramWeights := []float64{0.06, 0.12, 0.16, 0.19, 0.21, 0.23, 0.03}
	paramCum := cumulative(paramWeights)

	// Per (country, parameter) dispersion: lognormal sigma drawn once per
	// cell, from 0.15 (tight) to 1.0 (heavy-tailed), so CVs vary by
	// nearly an order of magnitude across groups — enough to separate
	// CV-aware allocation from frequency-only allocation while keeping
	// worst-group estimates convergent at laptop-scale sample budgets.
	sigma := make([][]float64, cfg.Countries)
	for i := range sigma {
		sigma[i] = make([]float64, len(aqParams))
		for j := range sigma[i] {
			sigma[i][j] = 0.15 + rng.Float64()*0.85
		}
	}

	for r := 0; r < cfg.Rows; r++ {
		ci := searchCum(countryCum, rng.Float64())
		pi := searchCum(paramCum, rng.Float64())
		p := aqParams[pi]
		s := sigma[ci][pi]
		val := p.scale * mult[ci] * math.Exp(rng.NormFloat64()*s-s*s/2)
		year := 2015 + rng.Intn(4)
		// Pollution trends upward year over year so that AQ1's 2018-vs-
		// 2017 per-country differences are non-degenerate (the real feed
		// likewise drifts; a zero difference would make relative error
		// meaningless for every method).
		val *= 1 + 0.25*float64(year-2015)
		month := 1 + rng.Intn(12)
		hour := rng.Intn(24)
		latJit := lat[ci] + rng.NormFloat64()*2
		if err := tbl.AppendRow(countries[ci], p.name, p.unit, val, latJit, year, month, hour); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// BikesConfig controls the synthetic Bikes table.
type BikesConfig struct {
	Rows     int
	Stations int // default 619 (paper §6.4)
	Seed     int64
}

func (c *BikesConfig) setDefaults() {
	if c.Rows == 0 {
		c.Rows = 100000
	}
	if c.Stations == 0 {
		c.Stations = 619
	}
}

// BikesSchema returns the schema of the synthetic Bikes table.
func BikesSchema() table.Schema {
	return table.Schema{
		{Name: "from_station_id", Kind: table.Int},
		{Name: "year", Kind: table.Int},
		{Name: "trip_duration", Kind: table.Float},
		{Name: "age", Kind: table.Float},
		{Name: "gender", Kind: table.String},
	}
}

// Bikes generates the synthetic Divvy-like trips table.
func Bikes(cfg BikesConfig) (*table.Table, error) {
	cfg.setDefaults()
	if cfg.Rows < cfg.Stations {
		return nil, fmt.Errorf("datagen: %d rows cannot cover %d stations", cfg.Rows, cfg.Stations)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New("Bikes", BikesSchema())
	tbl.Grow(cfg.Rows)

	weights := zipfWeights(cfg.Stations, 0.8)
	rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	stationCum := cumulative(weights)

	// Per-station trip scale (downtown stations host longer commutes),
	// trip dispersion, and rider-age profile. Ages are heterogeneous per
	// station (campus stations skew young and tight, tourist stations old
	// and wide) so AVG(age) has per-group CVs comparable to AVG(trip_
	// duration) — the regime where B1's weighted-aggregate tradeoff
	// (Figure 2) is visible.
	scale := make([]float64, cfg.Stations)
	disp := make([]float64, cfg.Stations)
	ageMean := make([]float64, cfg.Stations)
	ageSD := make([]float64, cfg.Stations)
	for i := range scale {
		scale[i] = 400 * math.Exp(rng.NormFloat64()*0.6) // median seconds
		disp[i] = 0.3 + rng.Float64()*0.7
		ageMean[i] = 24 + rng.Float64()*20
		ageSD[i] = 2 + rng.Float64()*12
	}

	genders := []string{"Male", "Female"}
	for r := 0; r < cfg.Rows; r++ {
		si := searchCum(stationCum, rng.Float64())
		s := disp[si]
		dur := scale[si] * math.Exp(rng.NormFloat64()*s-s*s/2)
		year := 2016 + rng.Intn(3)
		// ~6% of subscriber records lack a birthday -> age 0 (the paper's
		// queries filter WHERE age > 0)
		age := 0.0
		if rng.Float64() > 0.06 {
			age = ageMean[si] + rng.NormFloat64()*ageSD[si]
			if age < 16 {
				age = 16
			}
			if age > 80 {
				age = 80
			}
		}
		g := genders[rng.Intn(2)]
		if err := tbl.AppendRow(int64(si+1), year, dur, age, g); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// Scale duplicates tbl k times into a new table with the same name — the
// construction the paper uses to build OpenAQ-25x (1 TB) from OpenAQ for
// the Table 6 timing experiment.
func Scale(tbl *table.Table, k int) (*table.Table, error) {
	if k < 1 {
		return nil, fmt.Errorf("datagen: scale factor %d < 1", k)
	}
	out := table.New(tbl.Name, tbl.Schema())
	out.Grow(tbl.NumRows() * k)
	for i := 0; i < k; i++ {
		if err := out.AppendTable(tbl); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// zipfWeights returns w_i ∝ 1/(i+1)^s for i in [0,n).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// cumulative normalizes weights into a cumulative distribution.
func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	var total float64
	for _, x := range w {
		total += x
	}
	var run float64
	for i, x := range w {
		run += x / total
		out[i] = run
	}
	out[len(out)-1] = 1
	return out
}

// searchCum returns the first index whose cumulative weight exceeds u.
func searchCum(cum []float64, u float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
