package sqlparse_test

// FuzzParse checks robustness end to end down the query stack. On
// arbitrary input: the parser never panics, and any query it accepts
// renders to SQL that re-parses to the same canonical form (String is
// a fixed point after one round). Every accepted query is then pushed
// through the physical planner (internal/plan), which must never panic
// — reject, yes; panic, no. And when the planner accepts a query, the
// columnar execution must agree bit-for-bit with the row interpreter,
// so the fuzzer searches for differential counterexamples too, not
// just crashes.
//
// The test lives outside package sqlparse because the planner imports
// sqlparse; an in-package test would be an import cycle.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// fuzzTables builds the fixed execution targets: a plain table "t"
// whose column names cover the corpus vocabulary, and an
// OpenAQ-shaped "OpenAQ" so the EXPLAIN golden seeds bind too.
func fuzzTables() map[string]*table.Table {
	t := table.New("t", table.Schema{
		{Name: "a", Kind: table.String},
		{Name: "c", Kind: table.String},
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
		{Name: "x", Kind: table.Float},
		{Name: "y", Kind: table.Int},
		{Name: "b", Kind: table.Int},
	})
	as := []string{"p", "q", "r", "it's"}
	gs := []string{"g1", "g2"}
	for i := 0; i < 64; i++ {
		err := t.AppendRow(as[i%len(as)], as[(i/2)%len(as)], gs[i%len(gs)],
			float64(i%7)-2.5, float64(i%11)/3, int64(i%5), int64(i%3))
		if err != nil {
			panic(err)
		}
	}
	aq := table.New("OpenAQ", table.Schema{
		{Name: "country", Kind: table.String},
		{Name: "parameter", Kind: table.String},
		{Name: "unit", Kind: table.String},
		{Name: "value", Kind: table.Float},
		{Name: "year", Kind: table.Int},
	})
	countries := []string{"US", "IN", "CN"}
	params := []string{"pm25", "pm10", "co"}
	for i := 0; i < 48; i++ {
		err := aq.AppendRow(countries[i%3], params[(i/3)%3], "ppm",
			float64(i%19)*1.5, int64(2015+i%5))
		if err != nil {
			panic(err)
		}
	}
	return map[string]*table.Table{"t": t, "openaq": aq}
}

// sameResult compares two executor results bit-for-bit (NaN == NaN).
func sameResult(a, b *exec.Result) bool {
	sameStrs := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !sameStrs(a.GroupAttrs, b.GroupAttrs) || !sameStrs(a.AggLabels, b.AggLabels) ||
		len(a.Sets) != len(b.Sets) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Sets {
		if !sameStrs(a.Sets[i], b.Sets[i]) {
			return false
		}
	}
	for i := range a.Rows {
		ra, rb := &a.Rows[i], &b.Rows[i]
		if ra.Set != rb.Set || !sameStrs(ra.Key, rb.Key) || len(ra.Aggs) != len(rb.Aggs) {
			return false
		}
		for j := range ra.Aggs {
			if math.Float64bits(ra.Aggs[j]) != math.Float64bits(rb.Aggs[j]) {
				return false
			}
		}
	}
	return true
}

func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT major, AVG(gpa) FROM Student GROUP BY major",
		"SELECT country, parameter, unit, SUM(value) AS agg1, COUNT(*) AS agg2 FROM OpenAQ GROUP BY country, parameter, unit WITH CUBE",
		"SELECT a, SUM(v) FROM t WHERE x BETWEEN 0 AND 5 AND c IN ('p', 'q') GROUP BY a HAVING SUM(v) > 1 ORDER BY a DESC LIMIT 3",
		"SELECT COUNT_IF(v > 0.5), MIN(v), MAX(v), VAR(v), STDDEV(v) FROM t GROUP BY g",
		"SELECT -a FROM t WHERE NOT x = 'it''s' OR y != 1e3",
		"SELECT SUM(IF(v > 2, 1, 0)) / COUNT(*) FROM t GROUP BY g",
		"SELECT",
		"SELECT (((((a FROM t",
		"'unterminated",
		"SELECT a FROM t WHERE \x00\xff",
	}
	// the EXPLAIN golden corpus: every shape with a committed plan
	// rendering is a permanent planner seed
	seeds = append(seeds,
		"SELECT country, AVG(value), COUNT(*) FROM OpenAQ WHERE (value > 10) GROUP BY country",
		"SELECT country, parameter, SUM(value) AS total FROM OpenAQ GROUP BY country, parameter HAVING (COUNT(*) > 5)",
		"SELECT country, AVG(value) AS avg_v FROM OpenAQ WHERE (parameter = 'pm25') GROUP BY country ORDER BY avg_v DESC LIMIT 10",
		"SELECT country, parameter, AVG(value) FROM OpenAQ GROUP BY country, parameter WITH CUBE",
		"SELECT country, AVG(value) FROM OpenAQ GROUP BY country",
	)
	for _, s := range seeds {
		f.Add(s)
	}
	tables := fuzzTables()
	f.Fuzz(func(t *testing.T, input string) {
		q, err := sqlparse.Parse(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		rendered := q.String()
		q2, err := sqlparse.Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("render not canonical:\n%q\n%q", rendered, q2.String())
		}

		// planner round trip: Compile may reject any query, but must
		// not panic, and an accepted plan must execute to the exact
		// interpreter result
		tbl, ok := tables[strings.ToLower(q.From)]
		if !ok {
			tbl = tables["t"]
		}
		p, err := plan.Compile(tbl, q)
		if err != nil {
			return
		}
		want, err := exec.Run(tbl, q)
		if err != nil {
			t.Fatalf("planner accepted %q but the interpreter rejects it: %v", rendered, err)
		}
		got, err := p.Execute(tbl, nil, nil)
		if err != nil {
			t.Fatalf("compiled plan for %q failed to execute: %v", rendered, err)
		}
		if !sameResult(want, got) {
			t.Fatalf("executor divergence on %q:\ninterpreter: %+v\ncolumnar:    %+v", rendered, want, got)
		}
	})
}
