package sqlparse

import (
	"testing"
)

// FuzzParse checks two robustness properties on arbitrary input: the
// parser never panics, and any query it accepts renders to SQL that
// re-parses to the same canonical form (String is a fixed point after
// one round).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT major, AVG(gpa) FROM Student GROUP BY major",
		"SELECT country, parameter, unit, SUM(value) AS agg1, COUNT(*) AS agg2 FROM OpenAQ GROUP BY country, parameter, unit WITH CUBE",
		"SELECT a, SUM(v) FROM t WHERE x BETWEEN 0 AND 5 AND c IN ('p', 'q') GROUP BY a HAVING SUM(v) > 1 ORDER BY a DESC LIMIT 3",
		"SELECT COUNT_IF(v > 0.5), MIN(v), MAX(v), VAR(v), STDDEV(v) FROM t GROUP BY g",
		"SELECT -a FROM t WHERE NOT x = 'it''s' OR y != 1e3",
		"SELECT SUM(IF(v > 2, 1, 0)) / COUNT(*) FROM t GROUP BY g",
		"SELECT",
		"SELECT (((((a FROM t",
		"'unterminated",
		"SELECT a FROM t WHERE \x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not re-parse: %v", input, rendered, err)
		}
		if q2.String() != rendered {
			t.Fatalf("render not canonical:\n%q\n%q", rendered, q2.String())
		}
	})
}
