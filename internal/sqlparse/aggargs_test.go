package sqlparse

import (
	"reflect"
	"testing"
)

func TestAggColumnArgs(t *testing.T) {
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT g, AVG(v) FROM t GROUP BY g", []string{"v"}},
		{"SELECT g, COUNT(*) FROM t GROUP BY g", nil},
		{"SELECT g, SUM(v), AVG(u), SUM(v) FROM t GROUP BY g", []string{"v", "u"}},
		// column arithmetic inside the call, calls inside arithmetic
		{"SELECT g, SUM(v * u) / COUNT(*) FROM t GROUP BY g", []string{"v", "u"}},
		// non-aggregate references (group keys, WHERE-ish exprs in
		// select) contribute nothing
		{"SELECT g, g, AVG(v) FROM t GROUP BY g", []string{"v"}},
	}
	for _, c := range cases {
		q, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		var got []string
		seen := map[string]bool{}
		for _, item := range q.Select {
			for _, col := range AggColumnArgs(item.Expr) {
				if !seen[col] {
					seen[col] = true
					got = append(got, col)
				}
			}
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("%s: agg columns %v, want %v", c.sql, got, c.want)
		}
	}
}
