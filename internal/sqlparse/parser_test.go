package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *Query {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, AVG(v) FROM t WHERE x >= 1.5e2 AND y != 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if kinds[0] != TokKeyword || texts[0] != "SELECT" {
		t.Fatalf("first token %v %q", kinds[0], texts[0])
	}
	found := false
	for i, x := range texts {
		if x == "it's" && kinds[i] == TokString {
			found = true
		}
	}
	if !found {
		t.Fatalf("doubled-quote escape not handled: %v", texts)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatalf("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 .75 1e3 2.5E-2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", ".75", "1e3", "2.5E-2"}
	for i, w := range want {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Fatalf("token %d = %v %q want number %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("< <= > >= = != <>")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "=", "!=", "!="}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("op %d = %q want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a ! b", "a ; b", "a # b"} {
		if _, err := Lex(bad); err == nil {
			t.Fatalf("Lex(%q) should fail", bad)
		}
	}
}

func TestParseSimpleGroupBy(t *testing.T) {
	q := mustParse(t, "SELECT major, AVG(gpa) FROM Student GROUP BY major")
	if q.From != "Student" {
		t.Fatalf("from = %q", q.From)
	}
	if len(q.Select) != 2 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if _, ok := q.Select[0].Expr.(*ColumnRef); !ok {
		t.Fatalf("first item should be column ref")
	}
	call, ok := q.Select[1].Expr.(*FuncCall)
	if !ok || call.Name != "AVG" {
		t.Fatalf("second item should be AVG call: %v", q.Select[1].Expr)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "major" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if q.Cube {
		t.Fatalf("cube should be false")
	}
}

func TestParsePaperQueries(t *testing.T) {
	// every paper query shape must parse
	queries := []string{
		// AQ2 (MASG)
		"SELECT country, parameter, unit, SUM(value) agg1, COUNT(*) agg2 FROM OpenAQ GROUP BY country, parameter, unit",
		// B1
		"SELECT from_station_id, AVG(age) agg1, AVG(trip_duration) agg2 FROM Bikes WHERE age > 0 GROUP BY from_station_id",
		// AQ3
		"SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 24 GROUP BY country, parameter, unit",
		// B2
		"SELECT from_station_id, AVG(trip_duration) FROM Bikes WHERE trip_duration > 0 GROUP BY from_station_id",
		// AQ4 (flattened: month/year are columns in our synthetic schema)
		"SELECT AVG(value), country, month, year FROM OpenAQ WHERE parameter = 'co' GROUP BY country, month, year",
		// AQ5
		"SELECT country, parameter, unit, AVG(value) average FROM OpenAQ WHERE latitude > 0 GROUP BY country, parameter, unit",
		// AQ6
		"SELECT parameter, unit, COUNT_IF(value > 0.5) AS count FROM OpenAQ WHERE country = 'VN' GROUP BY parameter, unit",
		// AQ7 (cube)
		"SELECT country, parameter, SUM(value) FROM OpenAQ GROUP BY country, parameter WITH CUBE",
		// AQ8
		"SELECT country, parameter, SUM(value), SUM(latitude) FROM OpenAQ GROUP BY country, parameter WITH CUBE",
		// AQ1 halves (the join is composed in the harness)
		"SELECT country, AVG(value) AS avg_value, COUNT_IF(value > 0.04) AS high_cnt FROM OpenAQ WHERE parameter = 'bc' AND year = 2018 GROUP BY country",
	}
	for _, sql := range queries {
		q := mustParse(t, sql)
		if q.From == "" || len(q.Select) == 0 {
			t.Fatalf("degenerate parse of %q", sql)
		}
	}
}

func TestParseCube(t *testing.T) {
	q := mustParse(t, "SELECT a, b, SUM(v) FROM t GROUP BY a, b WITH CUBE")
	if !q.Cube {
		t.Fatalf("WITH CUBE not detected")
	}
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParseAliases(t *testing.T) {
	q := mustParse(t, "SELECT SUM(v) AS total, AVG(v) mean FROM t GROUP BY g")
	if q.Select[0].Alias != "total" || q.Select[1].Alias != "mean" {
		t.Fatalf("aliases = %q, %q", q.Select[0].Alias, q.Select[1].Alias)
	}
	if q.Select[0].Label() != "total" {
		t.Fatalf("label should use alias")
	}
	noAlias := mustParse(t, "SELECT SUM(v) FROM t GROUP BY g")
	if noAlias.Select[0].Label() != "SUM(v)" {
		t.Fatalf("label = %q", noAlias.Select[0].Label())
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE x + 2 * y < 10 AND b = 'z' OR NOT c > 1")
	// ((x + (2*y)) < 10 AND b='z') OR (NOT (c>1))
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top should be OR: %v", q.Where)
	}
	and, ok := or.Left.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("left of OR should be AND: %v", or.Left)
	}
	lt, ok := and.Left.(*BinaryExpr)
	if !ok || lt.Op != "<" {
		t.Fatalf("comparison missing: %v", and.Left)
	}
	plus, ok := lt.Left.(*BinaryExpr)
	if !ok || plus.Op != "+" {
		t.Fatalf("additive missing: %v", lt.Left)
	}
	if mul, ok := plus.Right.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Fatalf("* should bind tighter than +: %v", plus.Right)
	}
	if _, ok := or.Right.(*UnaryExpr); !ok {
		t.Fatalf("NOT missing: %v", or.Right)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE h BETWEEN 0 AND 12 AND c IN ('x', 'y') AND d BETWEEN 1 AND 2")
	s := q.Where.String()
	if !strings.Contains(s, "BETWEEN") || !strings.Contains(s, "IN") {
		t.Fatalf("where = %s", s)
	}
	// the AND after BETWEEN's hi bound must attach to the conjunction
	top, ok := q.Where.(*BinaryExpr)
	if !ok || top.Op != "AND" {
		t.Fatalf("top level should be AND: %v", q.Where)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t WHERE x > -5 AND y = -2.5")
	s := q.Where.String()
	if !strings.Contains(s, "-") {
		t.Fatalf("negation lost: %s", s)
	}
}

func TestParseCountVariants(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(*), COUNT(v), COUNT_IF(v > 3) FROM t GROUP BY g")
	star := q.Select[0].Expr.(*FuncCall)
	if !star.Star {
		t.Fatalf("COUNT(*) star flag missing")
	}
	cv := q.Select[1].Expr.(*FuncCall)
	if cv.Star || len(cv.Args) != 1 {
		t.Fatalf("COUNT(v) args wrong")
	}
	ci := q.Select[2].Expr.(*FuncCall)
	if ci.Name != "COUNT_IF" || len(ci.Args) != 1 {
		t.Fatalf("COUNT_IF wrong: %v", ci)
	}
}

func TestParseIfFunction(t *testing.T) {
	q := mustParse(t, "SELECT SUM(IF(v > 0.5, 1, 0)) FROM t GROUP BY g")
	sum := q.Select[0].Expr.(*FuncCall)
	inner := sum.Args[0].(*FuncCall)
	if inner.Name != "IF" || len(inner.Args) != 3 {
		t.Fatalf("IF call wrong: %v", inner)
	}
}

func TestParseParenthesizedExpr(t *testing.T) {
	q := mustParse(t, "SELECT (a + b) / 2 FROM t GROUP BY g")
	div := q.Select[0].Expr.(*BinaryExpr)
	if div.Op != "/" {
		t.Fatalf("top op = %s", div.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM 5",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t GROUP BY 5",
		"SELECT a FROM t GROUP BY g WITH",
		"SELECT a FROM t GROUP BY g WITH ROLLUP",
		"SELECT a FROM t trailing garbage (",
		"SELECT a AS FROM t",
		"SELECT f() FROM t",
		"SELECT a FROM t WHERE x BETWEEN 1",
		"SELECT a FROM t WHERE x BETWEEN 1 AND",
		"SELECT a FROM t WHERE x IN ('a'",
		"SELECT a FROM t WHERE x IN ",
		"SELECT (a FROM t",
		"SELECT a FROM t WHERE 1e FROM",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Fatalf("Parse(%q) should fail", sql)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("SELECT a FROM t WHERE !")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T", err)
	}
	if se.Pos <= 0 || !strings.Contains(se.Error(), "position") {
		t.Fatalf("error lacks position: %v", se)
	}
}

func TestQueryString(t *testing.T) {
	src := "SELECT a, SUM(v) AS s FROM t WHERE x > 1 AND c IN ('p', 'q') GROUP BY a WITH CUBE"
	q := mustParse(t, src)
	round := mustParse(t, q.String())
	if round.String() != q.String() {
		t.Fatalf("String round-trip unstable:\n%s\n%s", q.String(), round.String())
	}
}

func TestHasAggregate(t *testing.T) {
	q := mustParse(t, "SELECT a, SUM(v), a + 1, COUNT(*) + 2, IF(a > 1, 1, 0) FROM t GROUP BY a")
	want := []bool{false, true, false, true, false}
	for i, w := range want {
		if HasAggregate(q.Select[i].Expr) != w {
			t.Fatalf("item %d HasAggregate != %v", i, w)
		}
	}
}

func TestColumns(t *testing.T) {
	q := mustParse(t, "SELECT SUM(a + b) FROM t WHERE c BETWEEN d AND 5 AND e IN (f, 1)")
	cols := Columns(q.Select[0].Expr)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("select cols = %v", cols)
	}
	wcols := Columns(q.Where)
	if len(wcols) != 4 {
		t.Fatalf("where cols = %v", wcols)
	}
}

func TestTokenKindString(t *testing.T) {
	kinds := []TokenKind{TokEOF, TokIdent, TokNumber, TokString, TokSymbol, TokKeyword, TokenKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d renders empty", k)
		}
	}
}

func TestExprString(t *testing.T) {
	q := mustParse(t, "SELECT -a, NOT b = 1, 'x''y' FROM t")
	for _, item := range q.Select {
		if item.Expr.String() == "" {
			t.Fatalf("empty render")
		}
	}
	if q.Select[2].Expr.String() != "'x''y'" {
		t.Fatalf("string literal render = %s", q.Select[2].Expr.String())
	}
}
