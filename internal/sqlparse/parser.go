package sqlparse

import (
	"strconv"
	"strings"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, errAt(p.peek().Pos, "unexpected trailing input %q", p.peek().Text)
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errAt(p.peek().Pos, "expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return errAt(p.peek().Pos, "expected %q, found %q", sym, p.peek().Text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.Kind != TokIdent {
		return nil, errAt(t.Pos, "expected table name, found %q", t.Text)
	}
	q.From = t.Text
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.Kind != TokIdent {
				return nil, errAt(t.Pos, "expected group-by column, found %q", t.Text)
			}
			q.GroupBy = append(q.GroupBy, t.Text)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if p.acceptKeyword("WITH") {
			if err := p.expectKeyword("CUBE"); err != nil {
				return nil, err
			}
			q.Cube = true
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Kind != TokNumber {
			return nil, errAt(t.Pos, "expected LIMIT count, found %q", t.Text)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return nil, errAt(t.Pos, "LIMIT must be a positive integer, got %q", t.Text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return SelectItem{}, errAt(t.Pos, "expected alias after AS, found %q", t.Text)
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// bare alias: SELECT SUM(v) total
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

// Expression grammar, lowest to highest precedence:
// or -> and -> not -> comparison/BETWEEN/IN -> additive -> multiplicative -> unary -> primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// AND binds comparisons, but inside a BETWEEN the AND belongs to
		// the BETWEEN; parseComparison consumes it there.
		if t := p.peek(); t.Kind == TokKeyword && t.Text == "AND" {
			p.pos++
			right, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "AND", Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind == TokSymbol {
		switch t.Text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, Left: left, Right: right}, nil
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var items []Expr
		for {
			it, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, Items: items}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "+" || t.Text == "-") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol && (t.Text == "*" || t.Text == "/") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == "-" {
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokNumber:
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errAt(t.Pos, "bad number %q: %v", t.Text, err)
		}
		return &NumberLit{Value: v}, nil
	case TokString:
		return &StringLit{Value: t.Text}, nil
	case TokIdent:
		if p.acceptSymbol("(") {
			return p.parseCallArgs(strings.ToUpper(t.Text), t.Pos)
		}
		return &ColumnRef{Name: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errAt(t.Pos, "unexpected token %q", t.Text)
}

func (p *parser) parseCallArgs(name string, pos int) (Expr, error) {
	call := &FuncCall{Name: name}
	if p.acceptSymbol("*") {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		call.Star = true
		return call, nil
	}
	if p.acceptSymbol(")") {
		return nil, errAt(pos, "%s() requires arguments", name)
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return call, nil
}
