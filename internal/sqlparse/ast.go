package sqlparse

import (
	"fmt"
	"strings"
)

// Expr is a parsed expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef references a table column by name.
type ColumnRef struct{ Name string }

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BinaryExpr applies an infix operator: arithmetic (+ - * /),
// comparison (= != < <= > >=), or boolean (AND OR).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies a prefix operator: "-" or "NOT".
type UnaryExpr struct {
	Op   string
	Expr Expr
}

// FuncCall invokes a function. Star marks COUNT(*).
type FuncCall struct {
	Name string // uppercased
	Args []Expr
	Star bool
}

// BetweenExpr is `e BETWEEN lo AND hi` (inclusive both ends).
type BetweenExpr struct {
	Expr, Lo, Hi Expr
}

// InExpr is `e IN (item, ...)`.
type InExpr struct {
	Expr  Expr
	Items []Expr
}

func (*ColumnRef) exprNode()   {}
func (*NumberLit) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*FuncCall) exprNode()    {}
func (*BetweenExpr) exprNode() {}
func (*InExpr) exprNode()      {}

func (e *ColumnRef) String() string { return e.Name }
func (e *NumberLit) String() string { return fmt.Sprintf("%g", e.Value) }
func (e *StringLit) String() string { return "'" + strings.ReplaceAll(e.Value, "'", "''") + "'" }
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.Expr)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.Expr)
}
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}
func (e *BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", e.Expr, e.Lo, e.Hi)
}
func (e *InExpr) String() string {
	items := make([]string, len(e.Items))
	for i, it := range e.Items {
		items[i] = it.String()
	}
	return fmt.Sprintf("(%s IN (%s))", e.Expr, strings.Join(items, ", "))
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Label is the display name of the item: the alias if present, else the
// rendered expression.
func (s SelectItem) Label() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key: an output expression (a group-by
// column or an aggregate, matched against the select list by alias or
// rendering) with a direction.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SELECT statement.
type Query struct {
	Select  []SelectItem
	From    string
	Where   Expr // nil when absent
	GroupBy []string
	Cube    bool        // GROUP BY ... WITH CUBE
	Having  Expr        // nil when absent; may reference aggregates
	OrderBy []OrderItem // empty when absent
	Limit   int         // 0 = no limit
}

// String renders the query back to SQL (canonicalized).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Expr.String())
		if s.Alias != "" {
			sb.WriteString(" AS " + s.Alias)
		}
	}
	sb.WriteString(" FROM " + q.From)
	if q.Where != nil {
		sb.WriteString(" WHERE " + q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(q.GroupBy, ", "))
		if q.Cube {
			sb.WriteString(" WITH CUBE")
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING " + q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", q.Limit)
	}
	return sb.String()
}

// AggFuncs lists the aggregate function names the engine understands.
var AggFuncs = map[string]bool{
	"AVG": true, "SUM": true, "COUNT": true, "COUNT_IF": true,
	"MIN": true, "MAX": true, "VAR": true, "STDDEV": true,
}

// HasAggregate reports whether the expression contains an aggregate
// function call. Kept as a short-circuiting walk (not len(AggCalls))
// because the executor calls it in per-item compile loops.
func HasAggregate(e Expr) bool {
	switch n := e.(type) {
	case *FuncCall:
		if AggFuncs[n.Name] {
			return true
		}
		for _, a := range n.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return HasAggregate(n.Left) || HasAggregate(n.Right)
	case *UnaryExpr:
		return HasAggregate(n.Expr)
	case *BetweenExpr:
		return HasAggregate(n.Expr) || HasAggregate(n.Lo) || HasAggregate(n.Hi)
	case *InExpr:
		if HasAggregate(n.Expr) {
			return true
		}
		for _, it := range n.Items {
			if HasAggregate(it) {
				return true
			}
		}
	}
	return false
}

// walkExpr visits e and its descendants in preorder — the ONE place
// that knows every Expr variant's children, so the inspectors below
// cannot drift apart when a node type is added. visit returning false
// prunes the node's children.
func walkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		walkExpr(n.Left, visit)
		walkExpr(n.Right, visit)
	case *UnaryExpr:
		walkExpr(n.Expr, visit)
	case *FuncCall:
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *BetweenExpr:
		walkExpr(n.Expr, visit)
		walkExpr(n.Lo, visit)
		walkExpr(n.Hi, visit)
	case *InExpr:
		walkExpr(n.Expr, visit)
		for _, it := range n.Items {
			walkExpr(it, visit)
		}
	}
}

// AggCalls returns the names of the aggregate functions called in e,
// in first-appearance order (duplicates included).
func AggCalls(e Expr) []string {
	var out []string
	walkExpr(e, func(x Expr) bool {
		if n, ok := x.(*FuncCall); ok && AggFuncs[n.Name] {
			out = append(out, n.Name)
		}
		return true
	})
	return out
}

// AggColumnArgs returns the distinct column names referenced inside
// aggregate function calls in e, in first-appearance order. COUNT(*)
// contributes nothing (no column). Used to derive the workload a sample
// must serve from a submitted query (e.g. budget autoscaling's
// query-driven builds).
func AggColumnArgs(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	walkExpr(e, func(x Expr) bool {
		n, ok := x.(*FuncCall)
		if !ok || !AggFuncs[n.Name] {
			return true
		}
		for _, a := range n.Args {
			for _, c := range Columns(a) {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return false // the call's columns are collected; don't re-walk
	})
	return out
}

// QueryAggColumns returns the distinct column names referenced inside
// aggregate calls anywhere estimates are produced — the SELECT list
// and, because the executor accepts new aggregate calls there, HAVING
// — in first-appearance order. This is *the* workload derivation for
// query-driven sample builds: the serving registry's autoscaled builds
// and cvquery's remote build-if-missing must agree on it, so both call
// here.
func QueryAggColumns(q *Query) []string {
	var out []string
	seen := map[string]bool{}
	exprs := make([]Expr, 0, len(q.Select)+1)
	for _, item := range q.Select {
		exprs = append(exprs, item.Expr)
	}
	if q.Having != nil {
		exprs = append(exprs, q.Having)
	}
	for _, e := range exprs {
		for _, c := range AggColumnArgs(e) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// Columns returns the distinct column names referenced by e, in first-
// appearance order.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	walkExpr(e, func(x Expr) bool {
		if n, ok := x.(*ColumnRef); ok && !seen[n.Name] {
			seen[n.Name] = true
			out = append(out, n.Name)
		}
		return true
	})
	return out
}
