// Package sqlparse implements a lexer and recursive-descent parser for
// the SQL subset the paper's workload queries use:
//
//	SELECT expr [AS alias], ...
//	FROM table
//	[WHERE predicate]
//	[GROUP BY col, ... [WITH CUBE]]
//	[HAVING predicate-over-aggregates]
//	[ORDER BY item [ASC|DESC], ...]
//	[LIMIT n]
//
// with aggregate functions AVG, SUM, COUNT, COUNT_IF, MIN, MAX, the
// scalar IF(cond, a, b), arithmetic (+ - * /), comparisons, BETWEEN,
// IN (...), AND/OR/NOT, string and numeric literals. This is the query
// surface needed to express every query of the paper's appendix (AQ1-AQ8,
// B1-B4) against the synthetic tables.
package sqlparse

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokSymbol  // ( ) , * + - / = != < <= > >=
	TokKeyword // SELECT FROM WHERE GROUP BY WITH CUBE AND OR NOT BETWEEN IN AS
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	case TokKeyword:
		return "keyword"
	}
	return "unknown"
}

// Token is one lexical unit. Text is uppercased for keywords, verbatim
// otherwise.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"WITH": true, "CUBE": true, "AND": true, "OR": true, "NOT": true,
	"BETWEEN": true, "IN": true, "AS": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: position %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes the input.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == quote {
					if j+1 < n && input[j+1] == quote { // doubled quote escape
						sb.WriteByte(quote)
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, errAt(i, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (input[j] == '+' || input[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[i:j], Pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: i})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: i})
			}
			i = j
		default:
			switch c {
			case '(', ')', ',', '*', '+', '-', '/', '=':
				toks = append(toks, Token{Kind: TokSymbol, Text: string(c), Pos: i})
				i++
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					text := input[i : i+2]
					if text == "<>" {
						text = "!="
					}
					toks = append(toks, Token{Kind: TokSymbol, Text: text, Pos: i})
					i += 2
				} else {
					toks = append(toks, Token{Kind: TokSymbol, Text: "<", Pos: i})
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, Token{Kind: TokSymbol, Text: ">=", Pos: i})
					i += 2
				} else {
					toks = append(toks, Token{Kind: TokSymbol, Text: ">", Pos: i})
					i++
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, Token{Kind: TokSymbol, Text: "!=", Pos: i})
					i += 2
				} else {
					return nil, errAt(i, "unexpected character %q", c)
				}
			default:
				return nil, errAt(i, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

// Identifiers are ASCII-only: the lexer scans bytes, so admitting
// non-ASCII "letters" would mis-split multi-byte UTF-8 sequences.
func isIdentStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}
