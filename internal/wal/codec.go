package wal

// The on-disk binary codec shared by every persistence artifact: WAL
// record payloads (row batches, refresh markers), table checkpoints and
// spilled sample entries. Everything is explicit little-endian with
// length-prefixed strings — no encoding/json (wire shapes belong to
// internal/api/v1; disk shapes belong here) and no reflection, so the
// format is exactly what this file says it is. Integrity is end-checked
// with CRC-32C everywhere a file can be half-written.

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

// ErrCorrupt reports a persistence artifact whose framing or checksum
// does not verify. Callers match it with errors.Is; the wrapped message
// names the file and offset.
var ErrCorrupt = errors.New("wal: corrupt data")

// castagnoli is the CRC-32C table used for every checksum in the
// package (hardware-accelerated on the platforms that matter).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// --- primitive little-endian writer/reader ---------------------------

// writer accumulates one encoded artifact in memory. Append-only; the
// caller frames and checksums the finished buffer.
type writer struct{ buf []byte }

func (w *writer) u8(v byte) { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (w *writer) u64(v uint64) {
	w.u32(uint32(v))
	w.u32(uint32(v >> 32))
}
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader decodes one artifact, latching the first framing error so call
// sites stay linear and check err once at the end.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.off)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) u64() uint64 {
	lo := r.u32()
	hi := r.u32()
	return uint64(lo) | uint64(hi)<<32
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a u32 element count and sanity-bounds it by the bytes
// remaining (each element costs at least min bytes), so a corrupt count
// cannot drive a giant allocation.
func (r *reader) count(min int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || (min > 0 && n > (len(r.buf)-r.off)/min+1) {
		r.fail()
		return 0
	}
	return n
}

// --- WAL record payloads ---------------------------------------------

// Cell tags for loosely-typed row values in a rows payload. Appends are
// logged after schema coercion, so only these three types ever occur.
const (
	cellString byte = 1
	cellFloat  byte = 2
	cellInt    byte = 3
)

// EncodeRows encodes one append batch of schema-coerced rows (string /
// float64 / int64 cells) as a TypeRows payload.
func EncodeRows(rows [][]any) ([]byte, error) {
	w := &writer{}
	w.u32(uint32(len(rows)))
	for _, row := range rows {
		w.u32(uint32(len(row)))
		for _, v := range row {
			switch x := v.(type) {
			case string:
				w.u8(cellString)
				w.str(x)
			case float64:
				w.u8(cellFloat)
				w.f64(x)
			case int64:
				w.u8(cellInt)
				w.i64(x)
			default:
				return nil, fmt.Errorf("wal: cannot encode cell of type %T (coerce rows first)", v)
			}
		}
	}
	return w.buf, nil
}

// DecodeRows decodes a TypeRows payload back into the loose rows the
// ingest Append path accepts.
func DecodeRows(p []byte) ([][]any, error) {
	r := &reader{buf: p}
	n := r.count(4)
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		cols := r.count(2)
		row := make([]any, 0, cols)
		for j := 0; j < cols; j++ {
			switch tag := r.u8(); tag {
			case cellString:
				row = append(row, r.str())
			case cellFloat:
				row = append(row, r.f64())
			case cellInt:
				row = append(row, r.i64())
			default:
				if r.err == nil {
					r.err = fmt.Errorf("%w: unknown cell tag %d", ErrCorrupt, tag)
				}
			}
			if r.err != nil {
				return nil, r.err
			}
		}
		rows = append(rows, row)
	}
	if r.err != nil {
		return nil, r.err
	}
	return rows, nil
}

// EncodeRefresh encodes a TypeRefresh payload: the generation number the
// publication carried, logged so replay re-finalizes at exactly the
// recorded points (the sampler's RNG consumption depends on the
// interleaving of appends and finalizes).
func EncodeRefresh(generation uint64) []byte {
	w := &writer{}
	w.u64(generation)
	return w.buf
}

// DecodeRefresh decodes a TypeRefresh payload.
func DecodeRefresh(p []byte) (uint64, error) {
	r := &reader{buf: p}
	gen := r.u64()
	if r.err != nil {
		return 0, r.err
	}
	return gen, nil
}

// --- workload / options encoding -------------------------------------

func encodeQueries(w *writer, queries []core.QuerySpec) {
	w.u32(uint32(len(queries)))
	for _, q := range queries {
		w.u32(uint32(len(q.GroupBy)))
		for _, a := range q.GroupBy {
			w.str(a)
		}
		w.u32(uint32(len(q.Aggs)))
		for _, a := range q.Aggs {
			w.str(a.Column)
			w.f64(a.Weight)
			w.u32(uint32(len(a.GroupWeights)))
			for k, v := range a.GroupWeights {
				w.str(k)
				w.f64(v)
			}
		}
	}
}

func decodeQueries(r *reader) []core.QuerySpec {
	n := r.count(8)
	queries := make([]core.QuerySpec, 0, n)
	for i := 0; i < n; i++ {
		var q core.QuerySpec
		ng := r.count(4)
		for j := 0; j < ng; j++ {
			q.GroupBy = append(q.GroupBy, r.str())
		}
		na := r.count(8)
		for j := 0; j < na; j++ {
			a := core.AggColumn{Column: r.str(), Weight: r.f64()}
			if gw := r.count(12); gw > 0 {
				a.GroupWeights = make(map[string]float64, gw)
				for k := 0; k < gw; k++ {
					key := r.str()
					a.GroupWeights[key] = r.f64()
				}
			}
			q.Aggs = append(q.Aggs, a)
		}
		queries = append(queries, q)
		if r.err != nil {
			return nil
		}
	}
	return queries
}

func encodeOptions(w *writer, o core.Options) {
	w.u8(byte(o.Norm))
	w.f64(o.P)
	w.i64(int64(o.MinPerStratum))
}

func decodeOptions(r *reader) core.Options {
	return core.Options{
		Norm:          core.Norm(r.u8()),
		P:             r.f64(),
		MinPerStratum: int(r.i64()),
	}
}

// --- table encoding ---------------------------------------------------

func encodeTable(w *writer, t *table.Table) error {
	sch := t.Schema()
	w.str(t.Name)
	w.u32(uint32(len(sch)))
	for _, c := range sch {
		w.str(c.Name)
		w.u8(byte(c.Kind))
	}
	rows := t.NumRows()
	w.u32(uint32(rows))
	for _, col := range t.Columns {
		switch col.Spec.Kind {
		case table.String:
			w.u32(uint32(col.Dict.Len()))
			for c := int32(0); c < int32(col.Dict.Len()); c++ {
				w.str(col.Dict.Value(c))
			}
			for _, code := range col.Str[:rows] {
				w.u32(uint32(code))
			}
		case table.Float:
			for _, v := range col.Float[:rows] {
				w.f64(v)
			}
		case table.Int:
			for _, v := range col.Int[:rows] {
				w.i64(v)
			}
		default:
			return fmt.Errorf("wal: cannot encode column kind %v", col.Spec.Kind)
		}
	}
	return nil
}

func decodeTable(r *reader) (*table.Table, error) {
	name := r.str()
	ncols := r.count(5)
	sch := make(table.Schema, 0, ncols)
	for i := 0; i < ncols; i++ {
		sch = append(sch, table.ColumnSpec{Name: r.str(), Kind: table.Kind(r.u8())})
	}
	rows := r.count(0)
	if r.err != nil {
		return nil, r.err
	}
	// decode column-major into dense slices, then materialize rows — the
	// same O(rows × cols) work a CSV load does
	strs := make([][]string, ncols)
	floats := make([][]float64, ncols)
	ints := make([][]int64, ncols)
	for i, c := range sch {
		switch c.Kind {
		case table.String:
			dictLen := r.count(4)
			dict := make([]string, dictLen)
			for j := 0; j < dictLen; j++ {
				dict[j] = r.str()
			}
			col := make([]string, rows)
			for j := 0; j < rows; j++ {
				code := int(r.u32())
				if r.err == nil && code >= dictLen {
					r.err = fmt.Errorf("%w: dict code %d out of range", ErrCorrupt, code)
				}
				if r.err != nil {
					return nil, r.err
				}
				col[j] = dict[code]
			}
			strs[i] = col
		case table.Float:
			col := make([]float64, rows)
			for j := 0; j < rows; j++ {
				col[j] = r.f64()
			}
			floats[i] = col
		case table.Int:
			col := make([]int64, rows)
			for j := 0; j < rows; j++ {
				col[j] = r.i64()
			}
			ints[i] = col
		default:
			return nil, fmt.Errorf("%w: unknown column kind %d", ErrCorrupt, c.Kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	t := table.New(name, sch)
	vals := make([]any, ncols)
	for j := 0; j < rows; j++ {
		for i, c := range sch {
			switch c.Kind {
			case table.String:
				vals[i] = strs[i][j]
			case table.Float:
				vals[i] = floats[i][j]
			case table.Int:
				vals[i] = ints[i][j]
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return nil, fmt.Errorf("wal: rebuilding table %q: %w", name, err)
		}
	}
	return t, nil
}

// SchemaSignature renders a schema as a stable string, stored with
// spilled samples so a changed source CSV invalidates them instead of
// silently serving row ids into the wrong table.
func SchemaSignature(sch table.Schema) string {
	w := &writer{}
	for _, c := range sch {
		w.str(c.Name)
		w.u8(byte(c.Kind))
	}
	return fmt.Sprintf("%08x-%d", crc32.Checksum(w.buf, castagnoli), len(sch))
}

// --- checkpoint files -------------------------------------------------

// StreamConfig is the persisted mirror of an ingest streaming
// configuration (the wal package cannot import ingest — ingest imports
// wal — so the serve layer converts). Policy fields are stored resolved:
// a restart must reproduce the policy the stream actually ran with, not
// re-apply whatever defaults the new process was started with.
type StreamConfig struct {
	Queries    []core.QuerySpec
	Budget     int
	Rate       float64
	TargetCV   float64
	MaxBudget  int
	Capacity   int
	Opts       core.Options
	Seed       int64
	MaxPending int
	Interval   time.Duration
}

// Checkpoint is one durable cut of a streaming table: the published
// snapshot at some generation, the configuration to rebuild the resident
// sampler, and the WAL sequence the snapshot covers. Records with seq <=
// Seq are redundant once a checkpoint lands and may be truncated.
type Checkpoint struct {
	Table      string
	Seq        uint64 // WAL records <= Seq are covered by Snapshot
	Generation uint64 // generation published for Snapshot
	Config     StreamConfig
	Snapshot   *table.Table
}

// The magic names the layout; cvckpt02 added the autoscale sizing
// (target CV + budget cap) to the stream configuration. Older files
// fail the magic check cleanly instead of misparsing.
const checkpointMagic = "cvckpt02"

// WriteCheckpoint atomically replaces the checkpoint file at path:
// the encoding goes to a temp file in the same directory, optionally
// fsynced, then renamed over the old checkpoint — a crash leaves either
// the previous complete checkpoint or the new one, never a torn mix.
func WriteCheckpoint(path string, cp *Checkpoint, sync bool) error {
	w := &writer{}
	w.str(cp.Table)
	w.u64(cp.Seq)
	w.u64(cp.Generation)
	encodeQueries(w, cp.Config.Queries)
	w.i64(int64(cp.Config.Budget))
	w.f64(cp.Config.Rate)
	w.f64(cp.Config.TargetCV)
	w.i64(int64(cp.Config.MaxBudget))
	w.i64(int64(cp.Config.Capacity))
	encodeOptions(w, cp.Config.Opts)
	w.i64(cp.Config.Seed)
	w.i64(int64(cp.Config.MaxPending))
	w.i64(int64(cp.Config.Interval))
	if err := encodeTable(w, cp.Snapshot); err != nil {
		return err
	}
	return writeFileAtomic(path, checkpointMagic, w.buf, sync)
}

// ReadCheckpoint reads and verifies a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	body, err := readFramedFile(path, checkpointMagic)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}
	cp := &Checkpoint{
		Table:      r.str(),
		Seq:        r.u64(),
		Generation: r.u64(),
	}
	cp.Config.Queries = decodeQueries(r)
	cp.Config.Budget = int(r.i64())
	cp.Config.Rate = r.f64()
	cp.Config.TargetCV = r.f64()
	cp.Config.MaxBudget = int(r.i64())
	cp.Config.Capacity = int(r.i64())
	cp.Config.Opts = decodeOptions(r)
	cp.Config.Seed = r.i64()
	cp.Config.MaxPending = int(r.i64())
	cp.Config.Interval = time.Duration(r.i64())
	if r.err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", path, r.err)
	}
	snap, err := decodeTable(r)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	cp.Snapshot = snap
	return cp, nil
}

// --- spilled sample entries ------------------------------------------

// SampleEntry is one built static sample persisted under the data dir:
// the canonical registry key and the build metadata (autoscale results
// included) plus the sampled row ids and weights. TableRows and
// SchemaSig guard validity: the row ids index the registered table, so
// they are only meaningful while that table is byte-identical to the
// one the sample was built against.
type SampleEntry struct {
	Key           string
	Table         string
	Budget        int
	TargetCV      float64
	AchievedCV    float64
	TargetMet     bool
	Queries       []core.QuerySpec
	Opts          core.Options
	BuiltAt       time.Time
	BuildDuration time.Duration
	TableRows     int
	SchemaSig     string
	Rows          []int32
	Weights       []float64
}

const sampleMagic = "cvspll01"

// WriteSample atomically writes a spilled sample entry to path. Layout:
// magic, u32 header length, header, u32 header CRC, row/weight data,
// u32 data CRC — so ReadSampleHeader can index a spill directory
// without reading sample payloads.
func WriteSample(path string, e *SampleEntry, sync bool) error {
	h := &writer{}
	h.str(e.Key)
	h.str(e.Table)
	h.i64(int64(e.Budget))
	h.f64(e.TargetCV)
	h.f64(e.AchievedCV)
	if e.TargetMet {
		h.u8(1)
	} else {
		h.u8(0)
	}
	encodeQueries(h, e.Queries)
	encodeOptions(h, e.Opts)
	h.i64(e.BuiltAt.UnixNano())
	h.i64(int64(e.BuildDuration))
	h.i64(int64(e.TableRows))
	h.str(e.SchemaSig)
	h.u32(uint32(len(e.Rows)))

	d := &writer{}
	for _, id := range e.Rows {
		d.u32(uint32(id))
	}
	for _, wt := range e.Weights {
		d.f64(wt)
	}

	w := &writer{}
	w.buf = append(w.buf, sampleMagic...)
	w.u32(uint32(len(h.buf)))
	w.buf = append(w.buf, h.buf...)
	w.u32(crc32.Checksum(h.buf, castagnoli))
	w.buf = append(w.buf, d.buf...)
	w.u32(crc32.Checksum(d.buf, castagnoli))
	return writeRawAtomic(path, w.buf, sync)
}

// readSampleHeader parses the framed header region, returning the
// header-populated entry, the row count and the offset where data
// begins.
func readSampleHeader(path string, data []byte) (*SampleEntry, int, int, error) {
	if len(data) < len(sampleMagic)+4 || string(data[:len(sampleMagic)]) != sampleMagic {
		return nil, 0, 0, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	r := &reader{buf: data, off: len(sampleMagic)}
	hlen := int(r.u32())
	if r.err != nil || hlen < 0 || r.off+hlen+4 > len(data) {
		return nil, 0, 0, fmt.Errorf("%w: %s: truncated header", ErrCorrupt, path)
	}
	header := data[r.off : r.off+hlen]
	r.off += hlen
	if crc := r.u32(); r.err != nil || crc != crc32.Checksum(header, castagnoli) {
		return nil, 0, 0, fmt.Errorf("%w: %s: header checksum mismatch", ErrCorrupt, path)
	}
	dataOff := r.off

	hr := &reader{buf: header}
	e := &SampleEntry{
		Key:        hr.str(),
		Table:      hr.str(),
		Budget:     int(hr.i64()),
		TargetCV:   hr.f64(),
		AchievedCV: hr.f64(),
		TargetMet:  hr.u8() == 1,
	}
	e.Queries = decodeQueries(hr)
	e.Opts = decodeOptions(hr)
	e.BuiltAt = time.Unix(0, hr.i64())
	e.BuildDuration = time.Duration(hr.i64())
	e.TableRows = int(hr.i64())
	e.SchemaSig = hr.str()
	n := int(hr.u32())
	if hr.err != nil || n < 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s: bad sample header", ErrCorrupt, path)
	}
	return e, n, dataOff, nil
}

// ReadSampleHeader reads only the metadata of a spilled sample — enough
// to index it by key at boot without paying for the row payload.
func ReadSampleHeader(path string) (*SampleEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// headers are small; 64 KiB bounds pathological workloads without a
	// second read in practice
	buf := make([]byte, 64<<10)
	n, _ := f.Read(buf)
	e, _, _, err := readSampleHeader(path, buf[:n])
	if err != nil {
		// fall back to a full read for oversized headers
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, err
		}
		e, _, _, err = readSampleHeader(path, data)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// ReadSample reads and fully verifies a spilled sample entry.
func ReadSample(path string) (*SampleEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, n, off, err := readSampleHeader(path, data)
	if err != nil {
		return nil, err
	}
	want := n*4 + n*8 + 4
	if len(data)-off != want {
		return nil, fmt.Errorf("%w: %s: data length %d, want %d", ErrCorrupt, path, len(data)-off, want)
	}
	body := data[off : len(data)-4]
	r := &reader{buf: data, off: len(data) - 4}
	if crc := r.u32(); crc != crc32.Checksum(body, castagnoli) {
		return nil, fmt.Errorf("%w: %s: data checksum mismatch", ErrCorrupt, path)
	}
	dr := &reader{buf: body}
	e.Rows = make([]int32, n)
	for i := range e.Rows {
		e.Rows[i] = int32(dr.u32())
	}
	e.Weights = make([]float64, n)
	for i := range e.Weights {
		e.Weights[i] = dr.f64()
	}
	if dr.err != nil {
		return nil, fmt.Errorf("%w: %s: truncated sample data", ErrCorrupt, path)
	}
	return e, nil
}

// --- atomic file helpers ---------------------------------------------

// writeFileAtomic frames body as [magic][body][u32 crc] and writes it
// atomically (temp file + rename), optionally fsyncing before the
// rename so the rename never publishes unflushed bytes.
func writeFileAtomic(path, magic string, body []byte, sync bool) error {
	w := &writer{}
	w.buf = append(w.buf, magic...)
	w.buf = append(w.buf, body...)
	w.u32(crc32.Checksum(body, castagnoli))
	return writeRawAtomic(path, w.buf, sync)
}

// readFramedFile reads a [magic][body][u32 crc] file and verifies both.
func readFramedFile(path, magic string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	body := data[len(magic) : len(data)-4]
	r := &reader{buf: data, off: len(data) - 4}
	if crc := r.u32(); r.err != nil || crc != crc32.Checksum(body, castagnoli) {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return body, nil
}

// writeRawAtomic writes data to path via a same-directory temp file and
// rename. With sync set, the temp file is fsynced before the rename and
// the directory after it, making the replacement durable.
func writeRawAtomic(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			cleanup()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if sync {
		if d, err := os.Open(dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	return nil
}
