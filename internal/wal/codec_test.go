package wal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/table"
)

func TestRowsRoundTrip(t *testing.T) {
	rows := [][]any{
		{"east", 12.5, int64(3)},
		{"west", math.Inf(1), int64(-9)},
		{"", 0.0, int64(0)},
	}
	p, err := EncodeRows(rows)
	if err != nil {
		t.Fatalf("EncodeRows: %v", err)
	}
	got, err := DecodeRows(p)
	if err != nil {
		t.Fatalf("DecodeRows: %v", err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, rows)
	}
}

func TestRowsEncodeRejectsUncoerced(t *testing.T) {
	if _, err := EncodeRows([][]any{{uint8(3)}}); err == nil {
		t.Fatal("expected error for uncoerced cell type")
	}
}

func TestRowsDecodeCorrupt(t *testing.T) {
	p, err := EncodeRows([][]any{{"a", 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(p); cut++ {
		if _, err := DecodeRows(p[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
	bad := append([]byte(nil), p...)
	bad[8] = 99 // invalid cell tag
	if _, err := DecodeRows(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad tag: got %v, want ErrCorrupt", err)
	}
}

func TestRefreshRoundTrip(t *testing.T) {
	gen, err := DecodeRefresh(EncodeRefresh(42))
	if err != nil || gen != 42 {
		t.Fatalf("got (%d, %v), want (42, nil)", gen, err)
	}
	if _, err := DecodeRefresh([]byte{1, 2}); err == nil {
		t.Fatal("short refresh payload not detected")
	}
}

func testTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
		{Name: "qty", Kind: table.Int},
	})
	regions := []string{"east", "west", "north"}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(regions[i%len(regions)], float64(i)*1.5, int64(i)); err != nil {
			t.Fatalf("AppendRow: %v", err)
		}
	}
	return tbl
}

func tablesEqual(a, b *table.Table) bool {
	if a.Name != b.Name || a.NumRows() != b.NumRows() || len(a.Columns) != len(b.Columns) {
		return false
	}
	n := a.NumRows()
	for i := range a.Columns {
		ca, cb := a.Columns[i], b.Columns[i]
		if ca.Spec != cb.Spec {
			return false
		}
		for r := 0; r < n; r++ {
			switch ca.Spec.Kind {
			case table.String:
				if ca.Dict.Value(ca.Str[r]) != cb.Dict.Value(cb.Str[r]) {
					return false
				}
			case table.Float:
				if ca.Float[r] != cb.Float[r] {
					return false
				}
			case table.Int:
				if ca.Int[r] != cb.Int[r] {
					return false
				}
			}
		}
	}
	return true
}

func testConfig() StreamConfig {
	return StreamConfig{
		Queries: []core.QuerySpec{{
			GroupBy: []string{"region"},
			Aggs: []core.AggColumn{
				{Column: "amount", Weight: 2},
				{Column: "qty", Weight: 1, GroupWeights: map[string]float64{"east": 3}},
			},
		}},
		Budget:     128,
		Rate:       0.25,
		Capacity:   512,
		Opts:       core.Options{Norm: core.L2, P: 0.9, MinPerStratum: 2},
		Seed:       987654321,
		MaxPending: 64,
		Interval:   250 * time.Millisecond,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")
	cp := &Checkpoint{
		Table:      "sales",
		Seq:        17,
		Generation: 4,
		Config:     testConfig(),
		Snapshot:   testTable(t, 37),
	}
	if err := WriteCheckpoint(path, cp, true); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if got.Table != cp.Table || got.Seq != cp.Seq || got.Generation != cp.Generation {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Config, cp.Config) {
		t.Fatalf("config mismatch:\n got %+v\nwant %+v", got.Config, cp.Config)
	}
	if !tablesEqual(got.Snapshot, cp.Snapshot) {
		t.Fatal("snapshot tables differ after round trip")
	}

	// rewrite over the existing file (the steady-state checkpoint path)
	cp.Seq, cp.Generation = 42, 9
	if err := WriteCheckpoint(path, cp, false); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err = ReadCheckpoint(path)
	if err != nil || got.Seq != 42 || got.Generation != 9 {
		t.Fatalf("rewrite read: %+v, %v", got, err)
	}
}

func TestCheckpointCorruptDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint")
	cp := &Checkpoint{Table: "sales", Seq: 1, Generation: 1, Config: testConfig(), Snapshot: testTable(t, 5)}
	if err := WriteCheckpoint(path, cp, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped bit: got %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: got %v, want ErrCorrupt", err)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deadbeef.smp")
	e := &SampleEntry{
		Key:           "sales/b=128",
		Table:         "sales",
		Budget:        128,
		TargetCV:      0.05,
		AchievedCV:    math.Inf(1), // +Inf must survive: empty strata report it
		TargetMet:     false,
		Queries:       testConfig().Queries,
		Opts:          core.Options{Norm: core.L2, P: 0.9, MinPerStratum: 1},
		BuiltAt:       time.Unix(0, 1754550000000000000),
		BuildDuration: 42 * time.Millisecond,
		TableRows:     1000,
		SchemaSig:     SchemaSignature(testTable(t, 1).Schema()),
		Rows:          []int32{5, 9, 400, 999},
		Weights:       []float64{2.5, 1.0, 8.25, 250},
	}
	if err := WriteSample(path, e, true); err != nil {
		t.Fatalf("WriteSample: %v", err)
	}

	hdr, err := ReadSampleHeader(path)
	if err != nil {
		t.Fatalf("ReadSampleHeader: %v", err)
	}
	if hdr.Key != e.Key || hdr.Table != e.Table || hdr.TableRows != e.TableRows ||
		hdr.SchemaSig != e.SchemaSig || !math.IsInf(hdr.AchievedCV, 1) {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if hdr.Rows != nil {
		t.Fatal("header read must not load row payload")
	}

	got, err := ReadSample(path)
	if err != nil {
		t.Fatalf("ReadSample: %v", err)
	}
	if !reflect.DeepEqual(got.Rows, e.Rows) || !reflect.DeepEqual(got.Weights, e.Weights) {
		t.Fatalf("payload mismatch: %+v", got)
	}
	if !got.BuiltAt.Equal(e.BuiltAt) || got.BuildDuration != e.BuildDuration || !reflect.DeepEqual(got.Queries, e.Queries) {
		t.Fatalf("metadata mismatch: %+v", got)
	}
}

func TestSampleCorruptDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.smp")
	e := &SampleEntry{Key: "k", Table: "t", TableRows: 10, SchemaSig: "sig",
		Rows: []int32{1, 2}, Weights: []float64{1, 2}}
	if err := WriteSample(path, e, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// flip a payload byte: full read fails, header read still succeeds
	bad := append([]byte(nil), data...)
	bad[len(bad)-6] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSample(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: got %v, want ErrCorrupt", err)
	}
	if _, err := ReadSampleHeader(path); err != nil {
		t.Fatalf("header should still verify: %v", err)
	}
	// flip a header byte: both fail
	bad = append([]byte(nil), data...)
	bad[len(sampleMagic)+6] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSampleHeader(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header flip: got %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSample(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("junk file: got %v, want ErrCorrupt", err)
	}
}

func TestSchemaSignature(t *testing.T) {
	a := testTable(t, 1).Schema()
	if SchemaSignature(a) != SchemaSignature(testTable(t, 5).Schema()) {
		t.Fatal("same schema must sign identically")
	}
	b := table.Schema{{Name: "region", Kind: table.String}, {Name: "amount", Kind: table.Int}}
	if SchemaSignature(a) == SchemaSignature(b) {
		t.Fatal("kind change must alter the signature")
	}
}
