package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(context.Background(), from, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := l.Append(TypeRows, []byte(fmt.Sprintf("batch-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if _, err := l.Append(TypeRefresh, EncodeRefresh(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", l2.LastSeq())
	}
	recs := collect(t, l2, 0)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	if string(recs[2].Payload) != "batch-3" || recs[2].Seq != 3 || recs[2].Type != TypeRows {
		t.Fatalf("record 3 = %+v", recs[2])
	}
	if recs[5].Type != TypeRefresh {
		t.Fatalf("record 6 type = %d, want TypeRefresh", recs[5].Type)
	}
	if got := collect(t, l2, 4); len(got) != 2 || got[0].Seq != 5 {
		t.Fatalf("Replay from 4: %+v", got)
	}

	// appends continue from the recovered sequence
	seq, err := l2.Append(TypeRows, []byte("after"))
	if err != nil || seq != 7 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 40)
	var lastSeq uint64
	for i := 0; i < 12; i++ {
		if lastSeq, err = l.Append(TypeRows, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 3 {
		t.Fatalf("Segments = %d, want >= 3 after rotation", l.Segments())
	}
	before := l.SizeBytes()

	// truncating through a mid-log seq drops only fully-covered segments
	n, err := l.TruncateThrough(lastSeq - 1)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if n == 0 {
		t.Fatal("expected at least one segment removed")
	}
	if l.SizeBytes() >= before {
		t.Fatal("truncation did not reduce size")
	}
	// the surviving tail still replays, and sequence numbers are intact
	recs := collect(t, l, 0)
	if len(recs) == 0 || recs[len(recs)-1].Seq != lastSeq {
		t.Fatalf("tail replay: %d recs, last %d want %d", len(recs), recs[len(recs)-1].Seq, lastSeq)
	}
	// covering everything still keeps the active segment
	if _, err := l.TruncateThrough(lastSeq); err != nil {
		t.Fatal(err)
	}
	if l.Segments() == 0 {
		t.Fatal("active segment must survive truncation")
	}
	if seq, err := l.Append(TypeRows, payload); err != nil || seq != lastSeq+1 {
		t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// reopen after truncation: firstSeq of the oldest segment is > 1 but
	// continuity within the surviving chain still validates
	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err == nil {
		defer l2.Close()
		if l2.LastSeq() != lastSeq+1 {
			t.Fatalf("reopen LastSeq = %d, want %d", l2.LastSeq(), lastSeq+1)
		}
	} else {
		t.Fatalf("reopen after truncate: %v", err)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append(TypeRows, []byte("good")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// simulate a crash mid-write: garbage appended to the last segment
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.TornTails() != 1 {
		t.Fatalf("TornTails = %d, want 1", l2.TornTails())
	}
	if recs := collect(t, l2, 0); len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3 (torn tail dropped)", len(recs))
	}
	// the torn bytes are physically gone: a third open sees a clean log
	if seq, err := l2.Append(TypeRows, []byte("next")); err != nil || seq != 4 {
		t.Fatalf("append after torn recovery: seq=%d err=%v", seq, err)
	}
	l2.Commit()
	l2.Close()
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.TornTails() != 0 || l3.LastSeq() != 4 {
		t.Fatalf("third open: torn=%d last=%d", l3.TornTails(), l3.LastSeq())
	}
}

func TestCorruptMiddleSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append(TypeRows, make([]byte, 30)); err != nil {
			t.Fatal(err)
		}
	}
	l.Commit()
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle segment: got %v, want ErrCorrupt", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(TypeRows, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Commit is a no-op under interval policy; the ticker syncs
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		synced := l.synced
		l.mu.Unlock()
		if synced >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sync never caught up")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// double close is fine
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayHonorsContext(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(TypeRows, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Sync()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = l.Replay(ctx, 0, func(Record) error { t.Fatal("fn called after cancel"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	sentinel := errors.New("stop here")
	n := 0
	err = l.Replay(context.Background(), 0, func(Record) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Fatalf("fn error: err=%v n=%d", err, n)
	}
}

func TestAppendClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(TypeRows, []byte("x")); err == nil {
		t.Fatal("append on closed log must fail")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"Interval", SyncInterval}, {" never ", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if !strings.EqualFold(strings.TrimSpace(tc.in), got.String()) {
			t.Fatalf("String() = %q for input %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestConcurrentAppendSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, Policy: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := l.Append(TypeRows, []byte("concurrent-payload")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 200 {
		t.Fatalf("LastSeq = %d, want 200", l2.LastSeq())
	}
	if recs := collect(t, l2, 0); len(recs) != 200 {
		t.Fatalf("replayed %d, want 200", len(recs))
	}
}
