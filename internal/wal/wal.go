// Package wal implements the durability layer under cvserve's streaming
// tables: a segmented, CRC-checksummed write-ahead log plus the binary
// codecs for table checkpoints and spilled sample entries.
//
// Log layout: a directory of fixed-prefix segment files
// (wal-%016x.seg), each opening with a 20-byte header (magic, first
// sequence number, header CRC) followed by length-prefixed records:
//
//	[u32 length = 1+len(payload)] [u32 crc32c(type ‖ payload)] [u8 type] [payload]
//
// Sequence numbers are implicit — firstSeq plus the record's index in
// its segment — and globally monotone across segments, so a checkpoint
// can name the exact prefix it covers and TruncateThrough can delete
// covered segments without renumbering anything.
//
// Crash tolerance: Open validates every segment. A torn tail (partial
// or checksum-failing record at the end of the *last* segment) is the
// expected crash signature and is truncated away; corruption anywhere
// else means bytes the log previously reported durable are gone, and
// Open refuses to continue.
//
// Locking: the Log's mutex covers in-memory state and buffered writes
// only. Sync (and Commit under SyncAlways) fsyncs with the mutex
// released — reprolint's lockdiscipline analyzer enforces the same rule
// on callers: no fsync while holding a shard or stream lock.
package wal

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record types carried in the log.
const (
	// TypeRows is a batch of schema-coerced appended rows (EncodeRows).
	TypeRows byte = 1
	// TypeRefresh marks a publication point: the sampler finalized and
	// published the generation in the payload (EncodeRefresh). Logged so
	// replay reproduces the exact interleaving of appends and finalizes,
	// which the sampler's RNG consumption depends on.
	TypeRefresh byte = 2
)

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Commit — no acknowledged append is lost
	// to a crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker (Options.SyncEvery);
	// a crash can lose the last interval's appends but never corrupts.
	SyncInterval
	// SyncNever leaves flushing to the OS. Fastest; a crash can lose any
	// unflushed suffix.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default 1 MiB.
	SegmentBytes int64
	// Policy selects the fsync discipline. Default SyncAlways.
	Policy SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	// Default 100ms.
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

// Record is one replayed log entry.
type Record struct {
	Seq     uint64
	Type    byte
	Payload []byte
}

const (
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	walMagic    = "cvwal001"
	headerSize  = len(walMagic) + 8 + 4 // magic + firstSeq + crc
	frameSize   = 4 + 4 + 1             // length + crc + type
	maxRecBytes = 1 << 30               // guard against corrupt length prefixes
)

type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64 // 0 when empty (header only)
	size     int64
}

// Log is a segmented write-ahead log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	active   *os.File
	activeSz int64
	segs     []segment
	seq      uint64 // last assigned sequence number
	synced   uint64 // last sequence known durable
	// rotated-out segment files not yet fsynced; Sync flushes and closes
	// them so rotation never blocks on IO
	pending  []*os.File
	dirf     *os.File
	dirDirty bool
	closed   bool

	tornTails int

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the log in dir, validating every segment.
// Torn tails on the final segment are truncated away and counted;
// corruption elsewhere is fatal.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range names {
		n := e.Name()
		if strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			paths = append(paths, filepath.Join(dir, n))
		}
	}
	sort.Strings(paths)

	for i, p := range paths {
		seg, torn, err := scanSegment(p, i == len(paths)-1)
		if err != nil {
			return nil, err
		}
		if torn {
			l.tornTails++
		}
		// the oldest surviving segment sets the baseline (earlier segments
		// may have been truncated away after a checkpoint); from there on,
		// sequence numbering must be continuous
		if i == 0 {
			l.seq = seg.firstSeq - 1
		} else if seg.firstSeq != l.seq+1 {
			return nil, fmt.Errorf("%w: %s: first seq %d, want %d", ErrCorrupt, p, seg.firstSeq, l.seq+1)
		}
		if seg.lastSeq > 0 {
			l.seq = seg.lastSeq
		}
		l.segs = append(l.segs, seg)
	}
	l.synced = l.seq

	if len(l.segs) == 0 {
		if err := l.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		tail := &l.segs[len(l.segs)-1]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.active = f
		l.activeSz = tail.size
	}

	if d, err := os.Open(dir); err == nil {
		l.dirf = d
	}

	if opts.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// scanSegment validates one segment file. For the last segment a torn
// tail is truncated in place; for earlier segments it is an error.
func scanSegment(path string, last bool) (segment, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, false, err
	}
	if len(data) < headerSize || string(data[:len(walMagic)]) != walMagic {
		return segment{}, false, fmt.Errorf("%w: %s: bad segment header", ErrCorrupt, path)
	}
	hr := &reader{buf: data, off: len(walMagic)}
	firstSeq := hr.u64()
	hcrc := hr.u32()
	if hr.err != nil || hcrc != crc32.Checksum(data[:len(walMagic)+8], castagnoli) {
		return segment{}, false, fmt.Errorf("%w: %s: segment header checksum", ErrCorrupt, path)
	}

	off := headerSize
	good := off
	count := uint64(0)
	torn := false
	for off < len(data) {
		n, cerr := checkRecord(data, off)
		if cerr != nil {
			if !last {
				return segment{}, false, fmt.Errorf("%w: %s: record %d at offset %d: %v", ErrCorrupt, path, count+1, off, cerr)
			}
			torn = true
			break
		}
		off += n
		good = off
		count++
	}
	if torn {
		if err := os.Truncate(path, int64(good)); err != nil {
			return segment{}, false, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	seg := segment{path: path, firstSeq: firstSeq, size: int64(good)}
	if count > 0 {
		seg.lastSeq = firstSeq + count - 1
	}
	return seg, torn, nil
}

// checkRecord validates the record framed at data[off:], returning its
// total framed length.
func checkRecord(data []byte, off int) (int, error) {
	if off+8 > len(data) {
		return 0, fmt.Errorf("truncated frame")
	}
	r := &reader{buf: data, off: off}
	n := int(r.u32())
	crc := r.u32()
	if n < 1 || n > maxRecBytes {
		return 0, fmt.Errorf("implausible record length %d", n)
	}
	if off+8+n > len(data) {
		return 0, fmt.Errorf("truncated record body")
	}
	body := data[off+8 : off+8+n]
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, fmt.Errorf("record checksum mismatch")
	}
	return 8 + n, nil
}

// newSegmentLocked rotates to a fresh segment whose first record will
// carry sequence number firstSeq. Caller holds l.mu.
func (l *Log) newSegmentLocked(firstSeq uint64) error {
	if l.active != nil {
		if l.opts.Policy == SyncNever {
			l.active.Close()
		} else {
			// keep the handle so the next Sync can fsync it before close
			l.pending = append(l.pending, l.active)
		}
		l.active = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	w := &writer{}
	w.buf = append(w.buf, walMagic...)
	w.u64(firstSeq)
	w.u32(crc32.Checksum(w.buf, castagnoli))
	if _, err := f.Write(w.buf); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.active = f
	l.activeSz = int64(headerSize)
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq, size: int64(headerSize)})
	l.dirDirty = true
	return nil
}

// Append writes one record and returns its sequence number. The write
// is buffered by the OS; durability follows the sync policy (call
// Commit for SyncAlways semantics). Append itself never fsyncs, so it
// is safe to call with stream-level locks held.
func (l *Log) Append(typ byte, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	frame := int64(frameSize + len(payload))
	if l.activeSz > int64(headerSize) && l.activeSz+frame > l.opts.SegmentBytes {
		if err := l.newSegmentLocked(l.seq + 1); err != nil {
			return 0, err
		}
	}
	w := &writer{buf: make([]byte, 0, frame)}
	w.u32(uint32(1 + len(payload)))
	body := make([]byte, 0, 1+len(payload))
	body = append(body, typ)
	body = append(body, payload...)
	w.u32(crc32.Checksum(body, castagnoli))
	w.buf = append(w.buf, body...)
	if _, err := l.active.Write(w.buf); err != nil {
		return 0, err
	}
	l.seq++
	l.activeSz += frame
	tail := &l.segs[len(l.segs)-1]
	tail.size = l.activeSz
	tail.lastSeq = l.seq
	return l.seq, nil
}

// Sync makes every appended record durable. The fsync runs with l.mu
// released: the lock only captures which files need flushing and, on
// success, records the new durable horizon.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	target := l.seq
	if target == l.synced && !l.dirDirty {
		l.mu.Unlock()
		return nil
	}
	files := make([]*os.File, 0, len(l.pending)+1)
	files = append(files, l.pending...)
	rotated := len(l.pending)
	l.pending = nil
	if l.active != nil {
		files = append(files, l.active)
	}
	dirf := l.dirf
	flushDir := l.dirDirty
	l.dirDirty = false
	l.mu.Unlock()

	var firstErr error
	for _, f := range files {
		if err := f.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if flushDir && dirf != nil {
		if err := dirf.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	l.mu.Lock()
	if firstErr == nil {
		if target > l.synced {
			l.synced = target
		}
		for _, f := range files[:rotated] {
			f.Close()
		}
	} else {
		// keep rotated handles queued so a later Sync can retry them
		l.pending = append(files[:rotated:rotated], l.pending...)
		l.dirDirty = l.dirDirty || flushDir
	}
	l.mu.Unlock()
	return firstErr
}

// Commit applies the configured durability policy to everything
// appended so far: an fsync under SyncAlways, a no-op otherwise.
func (l *Log) Commit() error {
	if l.opts.Policy == SyncAlways {
		return l.Sync()
	}
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = l.Sync()
		case <-l.stopSync:
			return
		}
	}
}

// Replay streams records with sequence numbers > from to fn, in order.
// It must be called before the first Append (segments are re-read from
// disk, so interleaved writes would be missed). fn errors abort the
// replay; ctx is checked between records.
func (l *Log) Replay(ctx context.Context, from uint64, fn func(Record) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.lastSeq != 0 && seg.lastSeq <= from {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off := headerSize
		seq := seg.firstSeq - 1
		for off < len(data) {
			n, cerr := checkRecord(data, off)
			if cerr != nil {
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorrupt, seg.path, off, cerr)
			}
			seq++
			if seq > from {
				if err := ctx.Err(); err != nil {
					return err
				}
				body := data[off+8 : off+n]
				rec := Record{Seq: seq, Type: body[0], Payload: body[1:]}
				if err := fn(rec); err != nil {
					return err
				}
			}
			off += n
		}
	}
	return nil
}

// TruncateThrough removes whole segments whose records are all covered
// by seq (typically a checkpoint's covered sequence). The active
// segment is never removed, so sequence numbering stays continuous.
// Returns the number of segments deleted.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	var drop []segment
	keep := l.segs[:0]
	for i, s := range l.segs {
		if i < len(l.segs)-1 && s.lastSeq != 0 && s.lastSeq <= seq {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.segs = keep
	// close any rotated-but-unsynced handle for a dropped segment; its
	// bytes are covered by the checkpoint, so losing them is fine
	if len(drop) > 0 && len(l.pending) > 0 {
		byName := make(map[string]bool, len(drop))
		for _, s := range drop {
			byName[s.path] = true
		}
		pending := l.pending[:0]
		for _, f := range l.pending {
			if byName[f.Name()] {
				f.Close()
			} else {
				pending = append(pending, f)
			}
		}
		l.pending = pending
	}
	if len(drop) > 0 {
		l.dirDirty = true
	}
	l.mu.Unlock()

	var firstErr error
	for _, s := range drop {
		if err := os.Remove(s.path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return len(drop), firstErr
}

// Close stops the background syncer, flushes per policy and releases
// all file handles. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	if l.stopSync != nil {
		close(l.stopSync)
		<-l.syncDone
	}
	var err error
	if l.opts.Policy != SyncNever {
		err = l.Sync()
	}

	l.mu.Lock()
	l.closed = true
	for _, f := range l.pending {
		f.Close()
	}
	l.pending = nil
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	if l.dirf != nil {
		l.dirf.Close()
		l.dirf = nil
	}
	l.mu.Unlock()
	return err
}

// LastSeq returns the sequence number of the most recent append.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// SizeBytes returns the total bytes across live segments.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// TornTails reports how many torn segment tails Open truncated away.
func (l *Log) TornTails() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tornTails
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

var _ io.Closer = (*Log)(nil)
