package v1

import "time"

// TraceSpan is one timed phase of a request trace: its name (the phase
// glossary is in docs/OBSERVABILITY.md), its offset from the start of
// the request, and its duration, both in milliseconds.
type TraceSpan struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// RequestTrace is one request's phase timing: returned inline on
// responses when the request set debug=true, and listed by
// GET /debug/requests. Status is 0 on an inline trace (the response is
// still being written when the trace is snapshotted).
type RequestTrace struct {
	RequestID  string      `json:"request_id"`
	Route      string      `json:"route"`
	Status     int         `json:"status,omitempty"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Spans      []TraceSpan `json:"spans"`
}

// DebugRequests is the GET /debug/requests response body: for each
// route that has served at least one request, its most recent traces,
// newest first. Ring capacity bounds the list per route.
type DebugRequests struct {
	Routes map[string][]RequestTrace `json:"routes"`
}
