// Package v1 is the versioned wire contract of the cvserve HTTP API:
// every request, response and error body that crosses the wire is
// declared here, once, as an exported struct. The server
// (internal/serve) marshals these types and nothing else; the typed Go
// client (internal/client) unmarshals the same types — both sides
// compile against one source of truth, so a field added or renamed
// here is a visible API change rather than a silent drift between two
// private structs.
//
// The package is pure data: no HTTP, no registry imports, no behavior
// beyond JSON tags, the error-code table (error.go) and the route
// table (routes.go). v2, if it ever exists, is a sibling package — v1
// stays frozen for old clients.
package v1

import "time"

// Agg is one aggregation column of a workload query, with an optional
// relative weight (0 means 1).
type Agg struct {
	Column string  `json:"column"`
	Weight float64 `json:"weight,omitempty"`
}

// QuerySpec is one workload query of a build or stream registration:
// the group-by attributes (the stratification) and the aggregation
// columns the sample must estimate well.
type QuerySpec struct {
	GroupBy []string `json:"group_by"`
	Aggs    []Agg    `json:"aggs"`
}

// Norm values for BuildRequest.Norm and StreamRequest.Norm.
const (
	NormL2   = "l2"   // minimize the ℓ2 norm of per-group CVs (default)
	NormLInf = "linf" // minimize the worst per-group CV
	NormLp   = "lp"   // ℓp norm; requires P >= 1
)

// BuildRequest is the POST /v1/samples request body.
type BuildRequest struct {
	Table   string      `json:"table"`
	Queries []QuerySpec `json:"queries"`
	// Budget is the absolute row budget; Rate (in (0, 1]) is the
	// fractional alternative; TargetCV asks the server to *autoscale*
	// the budget instead — find the smallest one whose predicted worst
	// per-group CV meets the target. Exactly one of the three must be
	// set (or none, when the daemon has a -default-target-cv).
	Budget   int     `json:"budget,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	TargetCV float64 `json:"target_cv,omitempty"`
	// MaxBudget caps an autoscaled search (0 = table rows); requires
	// TargetCV. When the cap cannot meet the target the response is
	// best-effort: TargetMet false, AchievedCV reporting the guarantee
	// actually obtained.
	MaxBudget int     `json:"max_budget,omitempty"`
	Norm      string  `json:"norm,omitempty"` // NormL2 (default), NormLInf, NormLp
	P         float64 `json:"p,omitempty"`    // exponent for NormLp
	Seed      int64   `json:"seed,omitempty"`
	// Debug returns the request's per-phase trace inline on the
	// response (Sample.Trace).
	Debug bool `json:"debug,omitempty"`
}

// Sample describes one built sample: the POST /v1/samples and
// POST /v1/tables/{name}/refresh response body, and one element of
// SamplesList.
type Sample struct {
	Key     string    `json:"key"`
	Table   string    `json:"table"`
	Budget  int       `json:"budget"`
	Rows    int       `json:"rows"`
	GroupBy []string  `json:"group_by"`
	BuiltAt time.Time `json:"built_at"`
	BuildMS float64   `json:"build_ms"`
	// Hits is how many times this sample (this key, across streaming
	// generations) was reused: queries answered plus cached build
	// fetches.
	Hits int64 `json:"hits"`
	// SizeBytes is the sample's resident-memory estimate charged
	// against the daemon's -max-sample-bytes budget.
	SizeBytes int64 `json:"size_bytes"`
	// Generation is the streaming publication number (absent for
	// static builds).
	Generation uint64 `json:"generation,omitempty"`
	Cached     bool   `json:"cached,omitempty"`
	// Autoscaled builds only: the requested CV goal, the budget the
	// search chose (== Budget, surfaced under the name callers look
	// for), the predicted worst per-group CV at that budget (absent when
	// it is infinite — an unsampleable stratum), and whether the target
	// was met (false = max_budget bound the search, best-effort sample).
	TargetCV     float64  `json:"target_cv,omitempty"`
	ChosenBudget int      `json:"chosen_budget,omitempty"`
	AchievedCV   *float64 `json:"achieved_cv,omitempty"`
	TargetMet    *bool    `json:"target_met,omitempty"`
	// Trace is the request's per-phase timing, present only when the
	// request set debug=true.
	Trace *RequestTrace `json:"trace,omitempty"`
}

// SamplesList is the GET /v1/samples response body.
type SamplesList struct {
	Samples []Sample `json:"samples"`
	// ResidentBytes/MaxBytes/Evictions are the daemon-wide sample
	// memory-budget counters (MaxBytes 0 = unbounded).
	ResidentBytes int64 `json:"resident_bytes"`
	MaxBytes      int64 `json:"max_bytes"`
	Evictions     int64 `json:"evictions"`
}

// Table describes one registered table in GET /v1/tables.
type Table struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Streaming tables additionally report their live state: the
	// latest published generation and how many appended rows the
	// published sample does not cover yet.
	Streaming  bool   `json:"streaming,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	Pending    int    `json:"pending,omitempty"`
}

// TablesList is the GET /v1/tables response body.
type TablesList struct {
	Tables []Table `json:"tables"`
}

// Query modes for QueryRequest.Mode.
const (
	ModeAuto   = "auto"   // covering sample if built, exact otherwise (default)
	ModeSample = "sample" // fail without a covering sample
	ModeExact  = "exact"  // always scan the full table
)

// QueryRequest is the POST /v1/query request body.
type QueryRequest struct {
	SQL  string `json:"sql"`
	Mode string `json:"mode,omitempty"` // ModeAuto (default), ModeSample, ModeExact
	// Compare also runs the exact query and reports each group's true
	// relative error next to its estimate (ops/debugging aid).
	Compare bool `json:"compare,omitempty"`
	// TargetCV answers from an autoscaled sample built for this query's
	// own workload: the smallest budget whose predicted worst per-group
	// CV meets the target. Cached per (table, workload, target), so
	// repeat and concurrent queries share one build. Incompatible with
	// ModeExact. MaxBudget caps the search (0 = table rows).
	TargetCV  float64 `json:"target_cv,omitempty"`
	MaxBudget int     `json:"max_budget,omitempty"`
	// Debug returns the request's per-phase trace inline on the
	// response (QueryResponse.Trace).
	Debug bool `json:"debug,omitempty"`
	// Explain returns the compiled physical plan that answered the
	// query (QueryResponse.Plan). Queries outside the planner's subset
	// are answered by the row interpreter and carry no plan.
	Explain bool `json:"explain,omitempty"`
}

// Executor values for QueryResponse.Executor.
const (
	// ExecutorColumnar is the compiled-plan vectorized executor
	// (internal/plan): typed per-column loops over row batches.
	ExecutorColumnar = "columnar"
	// ExecutorInterpreted is the row-at-a-time AST interpreter
	// (internal/exec), the reference oracle and the fallback for
	// queries the planner does not support.
	ExecutorInterpreted = "interpreted"
)

// PlanNode is one operator of a compiled physical plan, returned on
// QueryResponse.Plan when the request sets explain=true. Children are
// the operator's inputs (a single-input chain for this engine:
// output → sort → aggregate → filter → scan). Detail holds
// operator-specific attributes; map marshaling sorts keys, so the JSON
// rendering of a plan is byte-stable and suitable for golden tests.
type PlanNode struct {
	Op       string         `json:"op"`
	Detail   map[string]any `json:"detail,omitempty"`
	Children []*PlanNode    `json:"children,omitempty"`
}

// Group is one output group of a query response.
type Group struct {
	Set  int        `json:"set"`
	Key  []string   `json:"key"`
	Aggs []*float64 `json:"aggs"`
	// SE are the per-aggregate standard errors (approximate answers
	// only; null where no estimator applies).
	SE []*float64 `json:"se,omitempty"`
	// RelErr are the true per-aggregate relative errors (compare mode
	// only).
	RelErr []*float64 `json:"rel_err,omitempty"`
}

// QueryResponse is the POST /v1/query response body.
type QueryResponse struct {
	Table      string `json:"table"`
	Exact      bool   `json:"exact"`
	SampleKey  string `json:"sample_key,omitempty"`
	SampleRows int    `json:"sample_rows,omitempty"`
	// Generation is the streaming publication the answer came from
	// (absent for static samples and exact answers).
	Generation uint64 `json:"generation,omitempty"`
	// Autoscaled answers only: the CV goal of the sample that answered,
	// the budget the search chose, the predicted worst per-group CV at
	// that budget (absent when infinite) and whether the goal was met.
	TargetCV     float64  `json:"target_cv,omitempty"`
	ChosenBudget int      `json:"chosen_budget,omitempty"`
	AchievedCV   *float64 `json:"achieved_cv,omitempty"`
	TargetMet    *bool    `json:"target_met,omitempty"`
	// Degraded reports that load shedding answered this target_cv query
	// from the cheapest already-resident sample instead of building (or
	// queueing for) the autoscaled one: the estimate is honest but the
	// requested CV goal was not enforced — AchievedCV (when present)
	// reports the guarantee of the sample that actually answered.
	Degraded bool       `json:"degraded,omitempty"`
	Sets     [][]string `json:"sets"`
	AggLabels    []string   `json:"agg_labels"`
	Groups       []Group    `json:"groups"`
	// Executor names the engine that computed the answer:
	// ExecutorColumnar or ExecutorInterpreted.
	Executor string `json:"executor,omitempty"`
	// Plan is the compiled physical plan, present only when the request
	// set explain=true and the columnar executor answered.
	Plan *PlanNode `json:"plan,omitempty"`
	// Trace is the request's per-phase timing, present only when the
	// request set debug=true.
	Trace *RequestTrace `json:"trace,omitempty"`
}

// StreamRequest is the POST /v1/tables/{name}/stream request body:
// the workload and budget the live sample must serve plus the refresh
// policy. Omitted policy fields fall back to the daemon's
// -refresh-rows / -refresh-interval defaults.
type StreamRequest struct {
	Queries []QuerySpec `json:"queries"`
	// Budget is the absolute per-generation row budget; Rate (in
	// (0, 1]) spends a fraction of the current rows instead, so the
	// sample grows with the stream. TargetCV re-runs the autoscale
	// search at every refresh instead, so the sample keeps the CV goal
	// as the table grows; MaxBudget caps each search (0 = current
	// rows). Exactly one of budget, rate and target_cv must be set.
	Budget    int     `json:"budget,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	TargetCV  float64 `json:"target_cv,omitempty"`
	MaxBudget int     `json:"max_budget,omitempty"`
	Norm      string  `json:"norm,omitempty"`
	P      float64 `json:"p,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	// Capacity is the per-stratum reservoir capacity (the streaming
	// memory/accuracy knob; 0 = server default).
	Capacity int `json:"capacity,omitempty"`
	// RefreshRows republishes after this many appended rows. 0 (or
	// omitted) inherits the daemon's -refresh-rows default; a negative
	// value explicitly disables the threshold even when a default is
	// set.
	RefreshRows int `json:"refresh_rows,omitempty"`
	// RefreshInterval republishes periodically, as a Go duration
	// string like "30s". "" inherits the daemon's -refresh-interval
	// default; a negative duration like "-1s" explicitly disables the
	// ticker.
	RefreshInterval string `json:"refresh_interval,omitempty"`
}

// StreamState describes a live table: the POST /v1/tables/{name}/stream
// response body.
type StreamState struct {
	Table      string `json:"table"`
	Streaming  bool   `json:"streaming"`
	Generation uint64 `json:"generation"`
	Rows       int    `json:"rows"`
	Pending    int    `json:"pending"`
}

// AppendRequest is the POST /v1/tables/{name}/rows request body: a
// batch of rows in schema order, loosely typed (JSON numbers for both
// float and int columns, strings for dictionary columns).
type AppendRequest struct {
	Rows [][]any `json:"rows"`
}

// AppendResponse is the POST /v1/tables/{name}/rows response body. The
// batch is not part of the published sample until the next refresh;
// Pending counts the rows waiting for one.
type AppendResponse struct {
	Table      string `json:"table"`
	Appended   int    `json:"appended"`
	Pending    int    `json:"pending"`
	Rows       int    `json:"rows"`
	Generation uint64 `json:"generation"`
}

// LatencySummary is one route's request-latency digest in Health:
// request count and p50/p95/p99 latency in milliseconds, estimated
// from a fixed-bucket histogram.
type LatencySummary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// Health is the GET /healthz response body: liveness, build identity
// and the registry/latency counters fleet dashboards scrape.
type Health struct {
	Status string `json:"status"`
	// Version is the daemon build version (cvserve is built with
	// -ldflags "-X repro/internal/serve.Version=v1.2.3"; "dev" when
	// unset) and Go the toolchain that built it — together they let a
	// fleet operator tell daemons apart.
	Version string `json:"version"`
	Go      string `json:"go"`

	Tables              int   `json:"tables"`
	Samples             int   `json:"samples"`
	Builds              int64 `json:"builds"`
	Streams             int   `json:"streams"`
	Refreshes           int64 `json:"refreshes"`
	SampleHits          int64 `json:"sample_hits"`
	Shards              int   `json:"shards"`
	ResidentSampleBytes int64 `json:"resident_sample_bytes"`
	MaxSampleBytes      int64 `json:"max_sample_bytes"`
	Evictions           int64 `json:"evictions"`

	// Latency maps each served route pattern ("POST /v1/query", ...)
	// to its request-latency digest. Routes appear once they have
	// served at least one request.
	Latency map[string]LatencySummary `json:"latency,omitempty"`

	// StreamTables maps each live (streaming) table to its refresh
	// health — generation, refresh count and last-refresh duration — so
	// an operator can spot a stalled or slow stream from /healthz alone.
	StreamTables map[string]StreamHealth `json:"stream_tables,omitempty"`

	// Warnings lists operator-actionable conditions that do not fail
	// liveness — today, streaming tables whose in-memory buffer exceeds
	// the daemon's -ingest-horizon-rows.
	Warnings []string `json:"warnings,omitempty"`

	// QoS reports the admission-control front end; absent when the
	// daemon runs without one (no -max-inflight).
	QoS *QoSHealth `json:"qos,omitempty"`

	// Persistence reports the WAL/spill durability layer; absent when
	// the daemon runs without -data-dir.
	Persistence *PersistenceHealth `json:"persistence,omitempty"`
}

// PersistenceHealth is the durability layer's digest in Health: WAL
// footprint and lag, checkpoint/truncation activity, spill counts and
// the outcome of boot recovery.
type PersistenceHealth struct {
	// Dir is the data directory; Fsync the WAL durability policy
	// ("always", "interval" or "never").
	Dir   string `json:"dir"`
	Fsync string `json:"fsync"`
	// WalSegments / WalBytes total the live WAL segment files across
	// streaming tables.
	WalSegments int   `json:"wal_segments"`
	WalBytes    int64 `json:"wal_bytes"`
	// WalLagRecords is the number of WAL records past the last
	// checkpoint — the replay debt a crash right now would pay.
	WalLagRecords uint64 `json:"wal_lag_records"`
	// Checkpoints counts checkpoint cuts; TruncatedSegments the WAL
	// segments they deleted.
	Checkpoints       int64 `json:"checkpoints"`
	TruncatedSegments int64 `json:"truncated_segments"`
	// SpilledSamples is the number of spilled static samples on disk.
	SpilledSamples int `json:"spilled_samples"`
	// RecoveredTables / ReplayedRecords / TornTails / ReplayMS
	// summarize the boot recovery that produced this process's state.
	RecoveredTables int64   `json:"recovered_tables"`
	ReplayedRecords int64   `json:"replayed_records"`
	TornTails       int64   `json:"torn_tails"`
	ReplayMS        float64 `json:"replay_ms"`
	// Errors counts persistence faults (failed fsyncs, unreadable
	// spills); the daemon keeps serving from memory when one occurs.
	Errors int64 `json:"errors"`
}

// StreamHealth is one live table's refresh digest in Health.
type StreamHealth struct {
	// Generation is the latest published sample generation (each
	// publication increments it, so it doubles as a refresh count).
	Generation uint64 `json:"generation"`
	// LastRefreshMS is the duration of the most recent refresh build
	// (0 until the first refresh completes).
	LastRefreshMS float64 `json:"last_refresh_ms"`
	// Pending counts appended rows the published generation does not
	// cover yet.
	Pending int `json:"pending"`
	// RefreshErrors counts failed automatic refreshes.
	RefreshErrors int64 `json:"refresh_errors"`
	// ResidentRows is the stream's in-memory buffer size (every row
	// ingested so far); the row-horizon warning in Health.Warnings fires
	// off this number.
	ResidentRows int `json:"resident_rows"`
}

// QoSHealth is the admission-control front end's digest in Health.
type QoSHealth struct {
	// MaxInflight / MaxQueue are the configured capacity: requests
	// executing concurrently and requests parked waiting for a slot.
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`
	// Inflight / Queued are the current occupancy.
	Inflight int `json:"inflight"`
	Queued   int `json:"queued"`
	// Admitted / Rejected / Shed count admission outcomes: requests
	// granted a slot (queued-then-admitted included), requests refused
	// with 429, and target_cv queries degraded to a resident sample
	// under pressure.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
	// Coalesced counts query requests that shared another request's
	// executor pass; Batches counts the passes that served more than one
	// request.
	Coalesced int64 `json:"coalesced"`
	Batches   int64 `json:"batches"`
	// TenantRejected counts requests refused by a per-tenant token
	// bucket (a subset of Rejected).
	TenantRejected int64 `json:"tenant_rejected"`
}
