package v1

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// Every listed code must map to a real (non-500) status — a code whose
// status falls through to 500 is a contract bug — and codes must be
// unique, since clients branch on them.
func TestCodesAreExhaustiveAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, code := range Codes {
		if seen[code] {
			t.Errorf("duplicate code %q", code)
		}
		seen[code] = true
		if got := StatusOf(code); got == http.StatusInternalServerError {
			t.Errorf("code %q has no status mapping", code)
		}
	}
	if got := StatusOf("no_such_code"); got != http.StatusInternalServerError {
		t.Errorf("unknown code mapped to %d, want 500", got)
	}
}

func TestRoutesListMatchesConstants(t *testing.T) {
	want := map[string]bool{
		RouteHealthz: true, RouteMetrics: true, RouteDebugReqs: true,
		RouteTables: true, RouteListSamples: true,
		RouteBuildSample: true, RouteQuery: true, RouteStreamTable: true,
		RouteAppendRows: true, RouteRefreshTable: true,
	}
	if len(Routes) != len(want) {
		t.Fatalf("Routes has %d entries, want %d", len(Routes), len(want))
	}
	for _, r := range Routes {
		if !want[r] {
			t.Errorf("Routes carries unexpected entry %q", r)
		}
	}
}

// The error envelope must keep the "error" JSON key (the pre-versioned
// wire name every existing client decodes) alongside the new "code".
func TestErrorEnvelopeWireFormat(t *testing.T) {
	data, err := json.Marshal(Error{Code: CodeTableNotFound, Message: "unknown table"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["error"] != "unknown table" || m["code"] != CodeTableNotFound {
		t.Fatalf("envelope = %s", data)
	}
}

func TestFloat64NullsNonFinite(t *testing.T) {
	if Float64(math.NaN()) != nil || Float64(math.Inf(1)) != nil || Float64(math.Inf(-1)) != nil {
		t.Fatal("non-finite floats must render as null")
	}
	if v := Float64(1.5); v == nil || *v != 1.5 {
		t.Fatalf("Float64(1.5) = %v", v)
	}
	if Float64s(nil) != nil {
		t.Fatal("Float64s(nil) must stay nil")
	}
	out := Float64s([]float64{1, math.NaN()})
	if len(out) != 2 || out[0] == nil || out[1] != nil {
		t.Fatalf("Float64s = %v", out)
	}
}
