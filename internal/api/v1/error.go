package v1

import "net/http"

// Error is the envelope of every non-2xx response body. Message is the
// human-readable diagnosis (historically the only field, kept under the
// "error" JSON key); Code is the machine-readable category a client
// branches on — string matching response prose is never necessary.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"error"`
}

// Error codes. Each code maps to exactly one HTTP status (StatusOf);
// several codes can share a status, which is why clients branch on the
// code rather than the status. Adding a code here requires documenting
// it in docs/API.md (scripts/check_docs.sh enforces this).
const (
	// CodeInvalidBody — 400: the request body is not well-formed JSON
	// for the route (syntax error, wrong types, unknown field — the
	// strict decoder treats typos like "buget" as errors).
	CodeInvalidBody = "invalid_body"
	// CodeInvalidRequest — 400: the body parsed but a field value is
	// invalid (missing table/sql/rows, bad norm or mode, rate out of
	// range, negative budget, bad refresh_interval, ...).
	CodeInvalidRequest = "invalid_request"
	// CodeBudgetConflict — 400: the sizing fields contradict each
	// other — budget and rate both set, target_cv combined with
	// budget/rate (or with mode "exact" on a query), max_budget without
	// target_cv, or no sizing at all on a daemon without a default
	// target CV.
	CodeBudgetConflict = "budget_conflict"
	// CodeTableNotFound — 404: no table is registered under the name —
	// POST /v1/samples, any /v1/tables/{name}/... route, or the FROM
	// table of a POST /v1/query.
	CodeTableNotFound = "table_not_found"
	// CodeNotStreaming — 409: rows/refresh on a table that is
	// registered but not live.
	CodeNotStreaming = "not_streaming"
	// CodeAlreadyStreaming — 409: a second stream registration of one
	// table.
	CodeAlreadyStreaming = "already_streaming"
	// CodeBodyTooLarge — 413: the request body exceeds the 1 MiB cap.
	CodeBodyTooLarge = "body_too_large"
	// CodeUnsupportedMedia — 415: a POST carried a Content-Type other
	// than application/json. (A missing Content-Type is accepted and
	// treated as JSON.)
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeBuildFailed — 422: the build request was well-formed but the
	// sampler could not serve it (unknown aggregation column, no
	// sampleable stratum, ...). Not cached; a corrected request
	// retries.
	CodeBuildFailed = "build_failed"
	// CodeQueryFailed — 422: the query was well-formed JSON but could
	// not be answered (SQL parse error, no covering sample in mode
	// "sample", target_cv under a WHERE filter or on
	// MIN/MAX/VAR/STDDEV, ...).
	CodeQueryFailed = "query_failed"
	// CodeAppendFailed — 422: a row batch was rejected (wrong arity, a
	// value that does not coerce to its column's type). The batch is
	// atomic: nothing was appended.
	CodeAppendFailed = "append_failed"
	// CodeOverloaded — 429: admission control refused the request — the
	// inflight and queue limits are full, or the tenant's token bucket is
	// empty. The response carries a Retry-After header (whole seconds);
	// the typed client backs off at least that long before retrying.
	CodeOverloaded = "overloaded"
)

// Codes lists every error code, for exhaustiveness checks (the client
// error-mapping test and scripts/check_docs.sh iterate it).
var Codes = []string{
	CodeInvalidBody,
	CodeInvalidRequest,
	CodeBudgetConflict,
	CodeTableNotFound,
	CodeNotStreaming,
	CodeAlreadyStreaming,
	CodeBodyTooLarge,
	CodeUnsupportedMedia,
	CodeBuildFailed,
	CodeQueryFailed,
	CodeAppendFailed,
	CodeOverloaded,
}

// StatusOf returns the HTTP status a code is served under — the
// server derives every non-2xx status from the code, so the two can
// never disagree on the wire. Unknown codes map to 500 (a server bug
// by construction).
func StatusOf(code string) int {
	switch code {
	case CodeInvalidBody, CodeInvalidRequest, CodeBudgetConflict:
		return http.StatusBadRequest
	case CodeTableNotFound:
		return http.StatusNotFound
	case CodeNotStreaming, CodeAlreadyStreaming:
		return http.StatusConflict
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnsupportedMedia:
		return http.StatusUnsupportedMediaType
	case CodeBuildFailed, CodeQueryFailed, CodeAppendFailed:
		return http.StatusUnprocessableEntity
	case CodeOverloaded:
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}
