package v1

import "strings"

// Route patterns, in net/http "METHOD /path" mux form. The server
// registers exactly these; the client builds its URLs from the same
// strings. scripts/check_docs.sh greps this file, so every route must
// be documented in docs/API.md.
const (
	RouteHealthz      = "GET /healthz"
	RouteMetrics      = "GET /metrics"
	RouteDebugReqs    = "GET /debug/requests"
	RouteTables       = "GET /v1/tables"
	RouteListSamples  = "GET /v1/samples"
	RouteBuildSample  = "POST /v1/samples"
	RouteQuery        = "POST /v1/query"
	RouteStreamTable  = "POST /v1/tables/{name}/stream"
	RouteAppendRows   = "POST /v1/tables/{name}/rows"
	RouteRefreshTable = "POST /v1/tables/{name}/refresh"
)

// Routes lists every route pattern, for exhaustiveness checks.
var Routes = []string{
	RouteHealthz,
	RouteMetrics,
	RouteDebugReqs,
	RouteTables,
	RouteListSamples,
	RouteBuildSample,
	RouteQuery,
	RouteStreamTable,
	RouteAppendRows,
	RouteRefreshTable,
}

// HeaderRequestID is the request-identity header: the client sends one
// per request (minting an ID when the caller didn't), the server adopts
// it as the trace ID and echoes it on every response — success or
// error — so one ID follows a request through client logs, server logs,
// /debug/requests and the error body (APIError.RequestID).
const HeaderRequestID = "X-Request-ID"

// HeaderAPIToken identifies the calling tenant for per-tenant QoS: a
// daemon started with -tenant-limits matches this header's value
// against its token-bucket table (an unlisted token falls back to the
// "*" default when one is configured). The header is optional — a
// request without one is only subject to the global admission limits.
const HeaderAPIToken = "X-API-Token"

// HeaderRetryAfter is the standard Retry-After header every 429
// (overloaded) response carries: the server's estimate, in whole
// seconds, of when capacity will free up. The typed client's retry
// policy uses it as a backoff floor.
const HeaderRetryAfter = "Retry-After"

// Path returns a route constant's URL path — the pattern with its
// method prefix stripped ("POST /v1/query" → "/v1/query"). The client
// builds its request URLs through this, so a renamed route moves both
// sides of the contract at once.
func Path(route string) string {
	_, path, _ := strings.Cut(route, " ")
	return path
}
