package v1

import "math"

// Float64 renders a float for the wire: NaN and ±Inf (legal
// aggregates, illegal JSON) become null. Both the server's encoders
// and any client synthesizing responses use this, so the convention
// cannot fork.
func Float64(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// Float64s maps Float64 over a slice, preserving nil.
func Float64s(vs []float64) []*float64 {
	if vs == nil {
		return nil
	}
	out := make([]*float64, len(vs))
	for i, v := range vs {
		out[i] = Float64(v)
	}
	return out
}
