// Package stats provides one-pass, mergeable summary statistics used by
// the CVOPT sampling framework.
//
// All samplers in this repository (CVOPT, Congressional, RL, Sample+Seek)
// need the count, mean and variance of one or more aggregation columns
// within every stratum, computed in a single scan of the data. Summary
// implements Welford's online algorithm, which is numerically stable and
// supports merging two summaries (Chan et al.), so statistics of a coarse
// stratum can be derived from the statistics of its finer refinement —
// the property Section 5 of the paper requires of any aggregate plugged
// into the framework.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Summary is a mergeable running summary of a stream of float64 values:
// count, mean, and centered second moment (Welford M2). The zero value is
// an empty summary ready for use.
type Summary struct {
	N    int64   // number of observations
	Mean float64 // running mean
	M2   float64 // sum of squared deviations from the mean
	Min  float64 // minimum observed value (undefined when N == 0)
	Max  float64 // maximum observed value (undefined when N == 0)
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.Mean = x
		s.M2 = 0
		s.Min = x
		s.Max = x
		return
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.M2 += delta * (x - s.Mean)
	if x < s.Min {
		s.Min = x
	}
	if x > s.Max {
		s.Max = x
	}
}

// Merge folds another summary into s using the parallel-variance
// combination rule. Merging an empty summary is a no-op.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.N), float64(o.N)
	delta := o.Mean - s.Mean
	total := n1 + n2
	s.Mean += delta * n2 / total
	s.M2 += o.M2 + delta*delta*n1*n2/total
	s.N += o.N
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Variance returns the population variance (M2/N). It returns 0 for
// summaries with fewer than one observation.
func (s *Summary) Variance() float64 {
	if s.N < 1 {
		return 0
	}
	v := s.M2 / float64(s.N)
	if v < 0 { // guard tiny negative rounding residue
		return 0
	}
	return v
}

// SampleVariance returns the Bessel-corrected variance (M2/(N-1)), 0 when
// N < 2.
func (s *Summary) SampleVariance() float64 {
	if s.N < 2 {
		return 0
	}
	v := s.M2 / float64(s.N-1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Sum returns the total of all observations (N·mean).
func (s *Summary) Sum() float64 { return float64(s.N) * s.Mean }

// CV returns the coefficient of variation σ/µ. The paper assumes the
// aggregated attribute has a non-zero mean; when the mean is zero CV is
// reported as +Inf (for nonzero σ) or 0 (degenerate all-zero group).
func (s *Summary) CV() float64 {
	sd := s.StdDev()
	if s.Mean == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(s.Mean)
}

// String implements fmt.Stringer for diagnostics.
func (s *Summary) String() string {
	return fmt.Sprintf("Summary{n=%d mean=%.6g sd=%.6g}", s.N, s.Mean, s.StdDev())
}

// GroupStats holds, for one stratum, a Summary per aggregation column.
// Columns are addressed positionally; the mapping from position to table
// column is owned by the caller (core.Plan).
type GroupStats struct {
	Cols []Summary
}

// NewGroupStats returns stats for t aggregation columns.
func NewGroupStats(t int) *GroupStats { return &GroupStats{Cols: make([]Summary, t)} }

// Add records one row's aggregation values. len(vals) must equal the
// number of columns the GroupStats was created with.
func (g *GroupStats) Add(vals []float64) {
	for i, v := range vals {
		g.Cols[i].Add(v)
	}
}

// N returns the number of rows observed (taken from column 0; all columns
// see every row).
func (g *GroupStats) N() int64 {
	if len(g.Cols) == 0 {
		return 0
	}
	return g.Cols[0].N
}

// Merge folds another GroupStats with the same arity into g.
func (g *GroupStats) Merge(o *GroupStats) error {
	if len(g.Cols) != len(o.Cols) {
		return fmt.Errorf("stats: merge arity mismatch: %d vs %d", len(g.Cols), len(o.Cols))
	}
	for i := range g.Cols {
		g.Cols[i].Merge(o.Cols[i])
	}
	return nil
}

// Collector accumulates per-stratum statistics over one scan of a table.
// Strata are identified by dense integer ids assigned by the caller
// (table.GroupIndex). It is the "first pass" of the paper's two-pass
// offline sampling phase.
type Collector struct {
	arity  int
	groups []*GroupStats
}

// ErrArity is returned when an observation's arity does not match the
// collector's.
var ErrArity = errors.New("stats: observation arity mismatch")

// NewCollector creates a collector for nStrata strata and arity
// aggregation columns.
func NewCollector(nStrata, arity int) *Collector {
	c := &Collector{arity: arity, groups: make([]*GroupStats, nStrata)}
	for i := range c.groups {
		c.groups[i] = NewGroupStats(arity)
	}
	return c
}

// Observe records one row belonging to stratum id with the given
// aggregation values.
func (c *Collector) Observe(stratum int, vals []float64) error {
	if len(vals) != c.arity {
		return ErrArity
	}
	if stratum < 0 || stratum >= len(c.groups) {
		return fmt.Errorf("stats: stratum %d out of range [0,%d)", stratum, len(c.groups))
	}
	c.groups[stratum].Add(vals)
	return nil
}

// Group returns the statistics of stratum id.
func (c *Collector) Group(id int) *GroupStats { return c.groups[id] }

// NumStrata returns the number of strata the collector tracks.
func (c *Collector) NumStrata() int { return len(c.groups) }

// Arity returns the number of aggregation columns tracked per stratum.
func (c *Collector) Arity() int { return c.arity }

// TotalRows returns the total number of observed rows across strata.
func (c *Collector) TotalRows() int64 {
	var n int64
	for _, g := range c.groups {
		n += g.N()
	}
	return n
}

// MergeProjected combines the statistics of a set of fine strata into a
// single GroupStats, used to derive the statistics of a coarse group a
// from its refinement C(a) (Section 4.1's Π projection).
func MergeProjected(groups []*GroupStats) (*GroupStats, error) {
	if len(groups) == 0 {
		return nil, errors.New("stats: MergeProjected on empty set")
	}
	out := NewGroupStats(len(groups[0].Cols))
	for _, g := range groups {
		if err := out.Merge(g); err != nil {
			return nil, err
		}
	}
	return out, nil
}
