package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d <= tol*scale
}

// naive reference implementation.
func naive(xs []float64) (n int64, mean, variance float64) {
	n = int64(len(xs))
	if n == 0 {
		return 0, 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return n, mean, ss / float64(n)
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N != 0 || s.Mean != 0 || s.Variance() != 0 || s.StdDev() != 0 || s.Sum() != 0 {
		t.Fatalf("zero-value summary not empty: %+v", s)
	}
	if got := s.CV(); got != 0 {
		t.Fatalf("empty CV = %v, want 0", got)
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.N != 1 || s.Mean != 42 || s.Variance() != 0 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
	if s.Min != 42 || s.Max != 42 {
		t.Fatalf("min/max wrong: %+v", s)
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		wn, wm, wv := naive(xs)
		if s.N != wn {
			t.Fatalf("N=%d want %d", s.N, wn)
		}
		if !almostEq(s.Mean, wm, 1e-10) {
			t.Fatalf("mean=%v want %v", s.Mean, wm)
		}
		if !almostEq(s.Variance(), wv, 1e-8) {
			t.Fatalf("var=%v want %v", s.Variance(), wv)
		}
	}
}

func TestSummaryNumericalStability(t *testing.T) {
	// Large offset values are where the naive sum-of-squares formula
	// catastrophically cancels; Welford must not.
	var s Summary
	base := 1e9
	for i := 0; i < 1000; i++ {
		s.Add(base + float64(i%2)) // values 1e9 and 1e9+1
	}
	if !almostEq(s.Variance(), 0.25, 1e-6) {
		t.Fatalf("variance = %v, want 0.25", s.Variance())
	}
}

func TestSummaryMergeEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n1, n2 := rng.Intn(200), rng.Intn(200)
		var a, b, all Summary
		for i := 0; i < n1; i++ {
			x := rng.ExpFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.ExpFloat64() * 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N != all.N {
			t.Fatalf("merged N=%d want %d", a.N, all.N)
		}
		if !almostEq(a.Mean, all.Mean, 1e-9) || !almostEq(a.Variance(), all.Variance(), 1e-7) {
			t.Fatalf("merge mismatch: got (%v,%v) want (%v,%v)", a.Mean, a.Variance(), all.Mean, all.Variance())
		}
		if a.Min != all.Min || a.Max != all.Max {
			t.Fatalf("min/max mismatch after merge")
		}
	}
}

func TestSummaryMergeWithEmpty(t *testing.T) {
	var a, empty Summary
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(empty)
	if a != before {
		t.Fatalf("merging empty changed summary: %+v vs %+v", a, before)
	}
	empty.Merge(a)
	if empty != a {
		t.Fatalf("merging into empty did not copy: %+v vs %+v", empty, a)
	}
}

func TestSummaryCV(t *testing.T) {
	var s Summary
	for _, x := range []float64{90, 100, 110} {
		s.Add(x)
	}
	wantSD := math.Sqrt(200.0 / 3.0)
	if !almostEq(s.CV(), wantSD/100, 1e-12) {
		t.Fatalf("CV=%v want %v", s.CV(), wantSD/100)
	}
}

func TestSummaryCVZeroMean(t *testing.T) {
	var s Summary
	s.Add(-1)
	s.Add(1)
	if !math.IsInf(s.CV(), 1) {
		t.Fatalf("CV of zero-mean nonzero-sd = %v, want +Inf", s.CV())
	}
	var z Summary
	z.Add(0)
	z.Add(0)
	if z.CV() != 0 {
		t.Fatalf("CV of all-zero group = %v, want 0", z.CV())
	}
}

func TestSampleVariance(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 6} {
		s.Add(x)
	}
	if !almostEq(s.SampleVariance(), 4, 1e-12) {
		t.Fatalf("sample variance = %v, want 4", s.SampleVariance())
	}
	var one Summary
	one.Add(5)
	if one.SampleVariance() != 0 {
		t.Fatalf("sample variance of n=1 should be 0")
	}
}

func TestGroupStats(t *testing.T) {
	g := NewGroupStats(2)
	g.Add([]float64{1, 10})
	g.Add([]float64{3, 30})
	if g.N() != 2 {
		t.Fatalf("N=%d want 2", g.N())
	}
	if g.Cols[0].Mean != 2 || g.Cols[1].Mean != 20 {
		t.Fatalf("col means wrong: %v %v", g.Cols[0].Mean, g.Cols[1].Mean)
	}
}

func TestGroupStatsMergeArityMismatch(t *testing.T) {
	a, b := NewGroupStats(2), NewGroupStats(3)
	if err := a.Merge(b); err == nil {
		t.Fatalf("expected arity mismatch error")
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(3, 1)
	for i := 0; i < 10; i++ {
		if err := c.Observe(i%3, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumStrata() != 3 || c.Arity() != 1 {
		t.Fatalf("shape wrong")
	}
	if c.TotalRows() != 10 {
		t.Fatalf("total rows = %d want 10", c.TotalRows())
	}
	// stratum 0 sees 0,3,6,9
	if got := c.Group(0).Cols[0].Mean; !almostEq(got, 4.5, 1e-12) {
		t.Fatalf("stratum 0 mean = %v want 4.5", got)
	}
}

func TestCollectorErrors(t *testing.T) {
	c := NewCollector(2, 2)
	if err := c.Observe(0, []float64{1}); err != ErrArity {
		t.Fatalf("want ErrArity, got %v", err)
	}
	if err := c.Observe(5, []float64{1, 2}); err == nil {
		t.Fatalf("want out-of-range error")
	}
	if err := c.Observe(-1, []float64{1, 2}); err == nil {
		t.Fatalf("want out-of-range error for negative stratum")
	}
}

func TestMergeProjected(t *testing.T) {
	a := NewGroupStats(1)
	b := NewGroupStats(1)
	var all Summary
	for i := 0; i < 5; i++ {
		x := float64(i)
		a.Add([]float64{x})
		all.Add(x)
	}
	for i := 5; i < 12; i++ {
		x := float64(i * i)
		b.Add([]float64{x})
		all.Add(x)
	}
	m, err := MergeProjected([]*GroupStats{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != all.N || !almostEq(m.Cols[0].Mean, all.Mean, 1e-10) || !almostEq(m.Cols[0].Variance(), all.Variance(), 1e-8) {
		t.Fatalf("projected merge mismatch: %+v vs %+v", m.Cols[0], all)
	}
	if _, err := MergeProjected(nil); err == nil {
		t.Fatalf("want error on empty set")
	}
}

// Property: merging in any split position gives the same summary as the
// sequential fold (associativity of Merge over concatenation).
func TestQuickMergeSplitInvariance(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i) // keep the property about finite inputs
			}
			// bound magnitude to keep tolerance meaningful
			if math.Abs(xs[i]) > 1e6 {
				xs[i] = math.Mod(xs[i], 1e6)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var a, b, all Summary
		for _, x := range xs[:k] {
			a.Add(x)
		}
		for _, x := range xs[k:] {
			b.Add(x)
		}
		for _, x := range xs {
			all.Add(x)
		}
		a.Merge(b)
		return a.N == all.N && almostEq(a.Mean, all.Mean, 1e-6) && almostEq(a.M2, all.M2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative and Sum == N*Mean.
func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				x = float64(i) // keep the property about moderate finite inputs
			}
			s.Add(x)
		}
		return s.Variance() >= 0 && almostEq(s.Sum(), float64(s.N)*s.Mean, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
	}
	_ = s.Variance()
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := NewCollector(256, 2)
	vals := []float64{1.5, 2.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Observe(i&255, vals)
	}
}
