package client_test

// Retry behavior: idempotent requests ride out transient failures
// (503s, dropped connections) with bounded attempts, non-idempotent
// appends never fire twice, and cancellation cuts the backoff short.
// The fake servers here count attempts — the client's only observable.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
)

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = client.RetryPolicy{MaxAttempts: 4, Base: time.Microsecond, Max: time.Millisecond}

// flakyServer fails the first fail requests with status, then delegates
// to ok. It returns the attempt counter.
func flakyServer(t *testing.T, fail int, status int, ok http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			http.Error(w, `{"error":{"code":"unavailable","message":"restarting"}}`, status)
			return
		}
		ok(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func retryClient(t *testing.T, url string, p client.RetryPolicy) *client.Client {
	t.Helper()
	c, err := client.New(url, nil, client.WithRetry(p))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetryIdempotentPOSTSurvives503(t *testing.T) {
	ts, calls := flakyServer(t, 2, http.StatusServiceUnavailable, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"table":"sales","rows":[]}`))
	})
	c := retryClient(t, ts.URL, fastRetry)
	if _, err := c.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}); err != nil {
		t.Fatalf("query should survive two 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two failures + success)", got)
	}
}

func TestRetryStopsAtMaxAttempts(t *testing.T) {
	ts, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c := retryClient(t, ts.URL, fastRetry)
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("want an error once attempts are exhausted")
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("want the final 503 APIError, got %v", err)
	}
	if got := calls.Load(); got != int64(fastRetry.MaxAttempts) {
		t.Fatalf("server saw %d attempts, want %d", got, fastRetry.MaxAttempts)
	}
}

func TestRetryNonIdempotentAppendNeverRetries(t *testing.T) {
	ts, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c := retryClient(t, ts.URL, fastRetry)
	if _, err := c.AppendRows(context.Background(), "sales", [][]any{{"NA", "widget", 1.0}}); err == nil {
		t.Fatal("append against a 503 server should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("append fired %d times, want exactly 1 (a retried append could duplicate rows)", got)
	}
	if _, err := c.MakeStreaming(context.Background(), "sales", apiv1.StreamRequest{}); err == nil {
		t.Fatal("stream registration against a 503 server should fail")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("stream registration retried (%d total calls, want 2)", got)
	}
}

func TestRetryDeterministicErrorsDontRetry(t *testing.T) {
	ts, calls := flakyServer(t, 1<<30, http.StatusNotFound, nil)
	c := retryClient(t, ts.URL, fastRetry)
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("want the 404 surfaced")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("a 404 was retried: %d attempts, want 1", got)
	}
}

func TestRetryTransportErrors(t *testing.T) {
	// the connection drops mid-flight twice before the server answers
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c := retryClient(t, ts.URL, fastRetry)
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz should survive two dropped connections: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryHonorsContextDuringBackoff(t *testing.T) {
	ts, calls := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	// long backoff so cancellation lands inside the sleep
	c := retryClient(t, ts.URL, client.RetryPolicy{
		MaxAttempts: 10, Base: 10 * time.Second, Max: 10 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Healthz(ctx)
	if err == nil {
		t.Fatal("want an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to cut the backoff short", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (the rest canceled away)", got)
	}
}

func TestRetryKeepsOneRequestID(t *testing.T) {
	var ids []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids = append(ids, r.Header.Get(apiv1.HeaderRequestID))
		if calls.Add(1) <= 2 {
			http.Error(w, "down", http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c := retryClient(t, ts.URL, fastRetry)
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("attempts must share one request ID for log correlation, got %v", ids)
	}
}
