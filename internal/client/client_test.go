package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
	"repro/internal/serve"
	"repro/internal/table"
)

func salesTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "product", Kind: table.String},
		{Name: "amount", Kind: table.Float},
	})
	add := func(region, product string, n int, base float64) {
		for i := 0; i < n; i++ {
			v := base + float64(i%17) - 8
			if err := tbl.AppendRow(region, product, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("NA", "widget", 2000, 100)
	add("NA", "gadget", 900, 70)
	add("EU", "widget", 500, 80)
	add("EU", "gadget", 300, 120)
	add("APAC", "widget", 40, 300)
	return tbl
}

// startServer spins up a real serve.Server over a sales registry and a
// client pointed at it.
func startServer(t *testing.T) (*client.Client, string) {
	t.Helper()
	reg := serve.NewRegistry()
	t.Cleanup(reg.Close)
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts.URL
}

func TestNewValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "localhost:8080", "ftp://host", "http://", "://x"} {
		if _, err := client.New(bad, nil); err == nil {
			t.Errorf("New(%q) should fail", bad)
		}
	}
	c, err := client.New("http://localhost:8080/", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseURL() != "http://localhost:8080" {
		t.Fatalf("base URL not normalized: %q", c.BaseURL())
	}
}

// Every contract error code must round-trip through the wire into the
// right typed sentinel: the server (stubbed here so each code is
// reachable unconditionally) writes {code, error} at its canonical
// status, and the decoded *APIError must carry both and unwrap to the
// code's sentinel — and to no other.
func TestErrorCodeMappingRoundTrip(t *testing.T) {
	for _, code := range apiv1.Codes {
		t.Run(code, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(apiv1.StatusOf(code))
				_ = json.NewEncoder(w).Encode(apiv1.Error{Code: code, Message: "synthetic " + code})
			}))
			defer ts.Close()
			c, err := client.New(ts.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			_, err = c.Healthz(context.Background())
			if err == nil {
				t.Fatal("expected an error")
			}
			want := client.SentinelFor(code)
			if want == nil {
				t.Fatalf("no sentinel registered for code %q", code)
			}
			if !errors.Is(err, want) {
				t.Fatalf("errors.Is(%v, sentinel %v) = false", err, want)
			}
			var ae *client.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("error %T is not *APIError", err)
			}
			if ae.Code != code || ae.Status != apiv1.StatusOf(code) {
				t.Fatalf("APIError = %+v, want code %q status %d", ae, code, apiv1.StatusOf(code))
			}
			if ae.Message != "synthetic "+code {
				t.Fatalf("message lost: %+v", ae)
			}
			// no cross-talk: the error must not satisfy any other code's
			// sentinel
			for _, other := range apiv1.Codes {
				if other != code && errors.Is(err, client.SentinelFor(other)) {
					t.Fatalf("code %q error also matches sentinel for %q", code, other)
				}
			}
		})
	}
}

// A non-envelope error body (a proxy's HTML page, a truncated
// response) still yields an APIError with the status and raw text.
func TestErrorDecodeFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		_, _ = w.Write([]byte("<html>bad gateway</html>"))
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Tables(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *APIError", err)
	}
	if ae.Status != http.StatusBadGateway || ae.Code != "" {
		t.Fatalf("APIError = %+v", ae)
	}
	if !strings.Contains(ae.Error(), "502") {
		t.Fatalf("Error() should carry the status: %q", ae.Error())
	}
	for _, code := range apiv1.Codes {
		if errors.Is(err, client.SentinelFor(code)) {
			t.Fatalf("code-less error matches sentinel for %q", code)
		}
	}
}

// Organic error triggers against the real server: each typed sentinel
// is produced by an actual misuse of the API, not a stub — this is the
// contract the remote CLIs branch on.
func TestTypedErrorsAgainstRealServer(t *testing.T) {
	c, base := startServer(t)
	ctx := context.Background()
	workload := []apiv1.QuerySpec{{GroupBy: []string{"region"}, Aggs: []apiv1.Agg{{Column: "amount"}}}}

	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"unknown table", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "nope", Queries: workload, Budget: 10})
			return err
		}, client.ErrTableNotFound},
		{"budget and rate", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload, Budget: 10, Rate: 0.1})
			return err
		}, client.ErrBudgetConflict},
		{"no sizing", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload})
			return err
		}, client.ErrBudgetConflict},
		{"target_cv with rate", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload, Rate: 0.1, TargetCV: 0.05})
			return err
		}, client.ErrBudgetConflict},
		{"bad norm", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload, Budget: 10, Norm: "l7"})
			return err
		}, client.ErrInvalidRequest},
		{"unknown agg column", func() error {
			_, err := c.BuildSample(ctx, apiv1.BuildRequest{
				Table:   "sales",
				Queries: []apiv1.QuerySpec{{GroupBy: []string{"region"}, Aggs: []apiv1.Agg{{Column: "nope"}}}},
				Budget:  10,
			})
			return err
		}, client.ErrBuildFailed},
		{"bad sql", func() error {
			_, err := c.Query(ctx, apiv1.QueryRequest{SQL: "not sql"})
			return err
		}, client.ErrQueryFailed},
		{"append to static table", func() error {
			_, err := c.AppendRows(ctx, "sales", [][]any{{"NA", "widget", 1.0}})
			return err
		}, client.ErrNotStreaming},
		{"refresh unknown table", func() error {
			_, err := c.Refresh(ctx, "nope")
			return err
		}, client.ErrTableNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(_, %v)", err, tc.want)
			}
		})
	}

	// streaming conflicts and atomic append rejection
	if _, err := c.MakeStreaming(ctx, "sales", apiv1.StreamRequest{Queries: workload, Rate: 0.05}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if _, err := c.MakeStreaming(ctx, "sales", apiv1.StreamRequest{Queries: workload, Rate: 0.05}); !errors.Is(err, client.ErrAlreadyStreaming) {
		t.Fatalf("double stream: got %v, want ErrAlreadyStreaming", err)
	}
	if _, err := c.AppendRows(ctx, "sales", [][]any{{"NA", "widget"}}); !errors.Is(err, client.ErrAppendFailed) {
		t.Fatalf("short row: got %v, want ErrAppendFailed", err)
	}

	// oversized body → 413 body_too_large
	big := make([][]any, 0, 60000)
	for i := 0; i < 60000; i++ {
		big = append(big, []any{"NA", "widget", 100.5})
	}
	if _, err := c.AppendRows(ctx, "sales", big); !errors.Is(err, client.ErrBodyTooLarge) {
		t.Fatalf("giant batch: got %v, want ErrBodyTooLarge", err)
	}

	// raw requests the typed client cannot produce: a non-JSON
	// Content-Type → 415, malformed JSON → 400 invalid_body — both
	// decoded by the same client error path
	resp, err := http.Post(base+"/v1/query", "text/plain", strings.NewReader("sql?"))
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeAs(resp, client.ErrUnsupportedMedia); err != nil {
		t.Fatalf("text/plain POST: %v", err)
	}
	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeAs(resp, client.ErrInvalidBody); err != nil {
		t.Fatalf("malformed JSON POST: %v", err)
	}
}

// decodeAs runs a raw response through the client's error decoding and
// checks the sentinel.
func decodeAs(resp *http.Response, want error) error {
	defer resp.Body.Close()
	err := client.DecodeErrorForTest(resp)
	if !errors.Is(err, want) {
		return errors.New("decoded " + err.Error())
	}
	return nil
}

// The full surface, happy path: every client method against a live
// server, including the streaming lifecycle.
func TestClientRoundTrip(t *testing.T) {
	c, _ := startServer(t)
	ctx := context.Background()
	workload := []apiv1.QuerySpec{{GroupBy: []string{"region"}, Aggs: []apiv1.Agg{{Column: "amount"}}}}

	tables, err := c.Tables(ctx)
	if err != nil || len(tables) != 1 || tables[0].Name != "sales" || tables[0].Rows != 3740 {
		t.Fatalf("Tables = %+v, %v", tables, err)
	}

	s, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload, Budget: 300, Seed: 7})
	if err != nil {
		t.Fatalf("BuildSample: %v", err)
	}
	if s.Cached || s.Rows == 0 || s.Key == "" || s.Budget != 300 {
		t.Fatalf("fresh sample: %+v", s)
	}
	again, err := c.BuildSample(ctx, apiv1.BuildRequest{Table: "sales", Queries: workload, Budget: 300, Seed: 7})
	if err != nil || !again.Cached || again.Key != s.Key {
		t.Fatalf("cached rebuild: %+v, %v", again, err)
	}

	list, err := c.Samples(ctx)
	if err != nil || len(list.Samples) != 1 || list.Samples[0].Key != s.Key {
		t.Fatalf("Samples = %+v, %v", list, err)
	}
	if list.Samples[0].Hits == 0 {
		t.Fatalf("cached fetch should count as a hit: %+v", list.Samples[0])
	}

	qr, err := c.Query(ctx, apiv1.QueryRequest{SQL: "SELECT region, AVG(amount) FROM sales GROUP BY region"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if qr.Exact || qr.SampleKey != s.Key || len(qr.Groups) != 3 {
		t.Fatalf("query should answer from the sample: %+v", qr)
	}
	for _, g := range qr.Groups {
		if len(g.Aggs) != 1 || g.Aggs[0] == nil || len(g.SE) != 1 || g.SE[0] == nil {
			t.Fatalf("group %v missing estimate or SE", g.Key)
		}
	}

	// autoscaled query: the server picks the budget and reports the
	// a-priori guarantee
	aq, err := c.Query(ctx, apiv1.QueryRequest{SQL: "SELECT region, SUM(amount) FROM sales GROUP BY region", TargetCV: 0.05})
	if err != nil {
		t.Fatalf("autoscaled Query: %v", err)
	}
	if aq.TargetCV != 0.05 || aq.ChosenBudget <= 0 || aq.AchievedCV == nil || *aq.AchievedCV > 0.05 {
		t.Fatalf("autoscale fields: %+v", aq)
	}

	// streaming lifecycle: stream → append → refresh advances the
	// generation and the queried answer follows it
	st, err := c.MakeStreaming(ctx, "sales", apiv1.StreamRequest{Queries: workload, Rate: 0.05})
	if err != nil || !st.Streaming || st.Generation != 1 {
		t.Fatalf("MakeStreaming = %+v, %v", st, err)
	}
	ap, err := c.AppendRows(ctx, "sales", [][]any{
		{"NA", "widget", 105.5}, {"EU", "gadget", 82.0}, {"APAC", "widget", 290.0},
	})
	if err != nil || ap.Appended != 3 || ap.Pending != 3 {
		t.Fatalf("AppendRows = %+v, %v", ap, err)
	}
	ref, err := c.Refresh(ctx, "sales")
	if err != nil || ref.Generation != 2 {
		t.Fatalf("Refresh = %+v, %v", ref, err)
	}

	// health last: build identity plus the latency digests fed by all
	// the requests above
	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if h.Status != "ok" || h.Version != "dev" || !strings.HasPrefix(h.Go, "go") {
		t.Fatalf("health identity: %+v", h)
	}
	if h.Tables != 1 || h.Streams != 1 || h.Builds == 0 {
		t.Fatalf("health counters: %+v", h)
	}
	lat, ok := h.Latency[apiv1.RouteQuery]
	if !ok || lat.Count < 2 || lat.P99MS < lat.P50MS || lat.P50MS <= 0 {
		t.Fatalf("latency digest for %s implausible: %+v (all: %+v)", apiv1.RouteQuery, lat, h.Latency)
	}
}

// Context cancellation must abort a call with a non-API error.
func TestContextCancellation(t *testing.T) {
	c, _ := startServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Healthz(ctx)
	if err == nil {
		t.Fatal("canceled context should fail")
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		t.Fatalf("cancellation surfaced as APIError: %+v", ae)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled: %v", err)
	}
}

// Request identification: every call carries a minted X-Request-ID,
// and on failure the server's echoed ID lands in APIError.RequestID so
// an operator can grep the daemon's request log for the exact request.
func TestClientRequestIDOnErrors(t *testing.T) {
	var sent string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sent = r.Header.Get(apiv1.HeaderRequestID)
		w.Header().Set(apiv1.HeaderRequestID, sent)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(apiv1.StatusOf(apiv1.CodeTableNotFound))
		_ = json.NewEncoder(w).Encode(apiv1.Error{Code: apiv1.CodeTableNotFound, Message: "nope"})
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Tables(context.Background())
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(sent) {
		t.Fatalf("client sent request id %q, want 16 hex chars", sent)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *APIError", err)
	}
	if ae.RequestID != sent {
		t.Fatalf("APIError.RequestID = %q, want the echoed %q", ae.RequestID, sent)
	}

	// against the real server: an organic error carries the ID too
	rc, _ := startServer(t)
	_, err = rc.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT region, AVG(amount) FROM nope GROUP BY region"})
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *APIError", err)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(ae.RequestID) {
		t.Fatalf("real-server APIError.RequestID = %q, want 16 hex chars", ae.RequestID)
	}
}
