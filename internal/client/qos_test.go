package client_test

// The client half of the overload contract: 429s resolve to
// ErrOverloaded via errors.Is, the Retry-After hint is surfaced and
// floors the retry backoff, and WithAPIToken identifies the tenant.
// Stub servers pin the exact wire bytes; the live-server tests prove
// the contract against a real serve.Server with a QoS front end.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	apiv1 "repro/internal/api/v1"
	"repro/internal/client"
	"repro/internal/qos"
	"repro/internal/serve"
)

// overloadedServer answers the first fail requests with the canonical
// overloaded response (429, code "overloaded", Retry-After: secs),
// then delegates to ok.
func overloadedServer(t *testing.T, fail int, secs string, ok http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fail) {
			w.Header().Set(apiv1.HeaderRetryAfter, secs)
			http.Error(w, `{"code":"overloaded","error":"admission queue full"}`,
				http.StatusTooManyRequests)
			return
		}
		ok(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestOverloadedSentinelAndRetryAfter(t *testing.T) {
	ts, calls := overloadedServer(t, 1<<30, "2", nil)
	c := retryClient(t, ts.URL, client.RetryPolicy{MaxAttempts: 1})
	_, err := c.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT COUNT(*) FROM sales"})
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T", err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != apiv1.CodeOverloaded {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", apiErr.RetryAfter)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts with retries disabled, want 1", got)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	// One 429 with Retry-After: 1, then success. fastRetry's backoff is
	// microseconds, so an elapsed time near a full second proves the
	// hint floored the wait.
	ts, calls := overloadedServer(t, 1, "1", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"table":"sales","rows":[]}`))
	})
	c := retryClient(t, ts.URL, fastRetry)
	start := time.Now()
	if _, err := c.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT COUNT(*) FROM sales"}); err != nil {
		t.Fatalf("query should survive one 429: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited only %v; the Retry-After: 1 hint was ignored", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestWithAPITokenHeader(t *testing.T) {
	var tokens []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v, present := r.Header[http.CanonicalHeaderKey(apiv1.HeaderAPIToken)]
		if present {
			tokens = append(tokens, v[0])
		} else {
			tokens = append(tokens, "<absent>")
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)

	withToken, err := client.New(ts.URL, nil, client.WithAPIToken("team-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := withToken.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	anonymous, err := client.New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anonymous.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 2 || tokens[0] != "team-a" || tokens[1] != "<absent>" {
		t.Fatalf("X-API-Token per request = %v, want [team-a <absent>]", tokens)
	}
}

// startQoSServer spins up a real serve.Server with a QoS front end and
// a client with retries disabled, so each call maps to one admission
// decision.
func startQoSServer(t *testing.T, cfg qos.Config, opts ...client.Option) (*client.Client, *qos.FrontEnd) {
	t.Helper()
	fe, err := qos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	t.Cleanup(reg.Close)
	if err := reg.RegisterTable(salesTable(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewServer(reg, serve.WithQoS(fe)))
	t.Cleanup(ts.Close)
	opts = append(opts, client.WithRetry(client.RetryPolicy{MaxAttempts: 1}))
	c, err := client.New(ts.URL, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, fe
}

func TestLiveServerOverloaded(t *testing.T) {
	c, fe := startQoSServer(t, qos.Config{MaxInflight: 1, MaxQueue: -1})

	release, ok := fe.Admission.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on idle controller")
	}
	_, err := c.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT region, AVG(amount) FROM sales GROUP BY region"})
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("saturated live server: want ErrOverloaded, got %v", err)
	}
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter < time.Second {
		t.Fatalf("live 429 must carry a Retry-After of >= 1s: %v", err)
	}

	// Capacity back → the same request succeeds.
	release()
	if _, err := c.Query(context.Background(), apiv1.QueryRequest{SQL: "SELECT region, AVG(amount) FROM sales GROUP BY region"}); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

func TestLiveServerTenantLimit(t *testing.T) {
	c, _ := startQoSServer(t, qos.Config{MaxInflight: 8, TenantLimits: "team-a=1:1"},
		client.WithAPIToken("team-a"))

	req := apiv1.QueryRequest{SQL: "SELECT region, AVG(amount) FROM sales GROUP BY region"}
	if _, err := c.Query(context.Background(), req); err != nil {
		t.Fatalf("first request in the bucket: %v", err)
	}
	_, err := c.Query(context.Background(), req)
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("drained tenant bucket: want ErrOverloaded, got %v", err)
	}
}
