// Package client is the typed Go client for the cvserve HTTP API. It
// compiles against the same versioned contract package as the server
// (internal/api/v1), so client and server cannot drift apart on the
// wire format, and it decodes every non-2xx response into an *APIError
// whose contract code resolves to a sentinel (errors.go) — callers
// branch with errors.Is, never by string-matching messages.
//
//	c, _ := client.New("http://localhost:8080", nil)
//	sample, err := c.BuildSample(ctx, apiv1.BuildRequest{
//	    Table:   "sales",
//	    Queries: []apiv1.QuerySpec{{GroupBy: []string{"region"}, Aggs: []apiv1.Agg{{Column: "amount"}}}},
//	    Rate:    0.01,
//	})
//	if errors.Is(err, client.ErrTableNotFound) { ... }
//
// Every method takes a context and honors its cancellation/deadline.
// cmd/cvquery and cmd/cvsample use this package for their -server
// (remote) mode; the facade re-exports it as repro.Client.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	apiv1 "repro/internal/api/v1"
	"repro/internal/obs"
)

// Client talks to one cvserve daemon. It is safe for concurrent use;
// all state is the base URL, the underlying *http.Client and the
// retry policy.
type Client struct {
	base     string
	hc       *http.Client
	retry    RetryPolicy
	apiToken string
}

// New returns a client for the daemon at baseURL (scheme + host
// [+ port], e.g. "http://localhost:8080"; a path prefix is kept, for
// daemons behind a routing proxy). hc == nil uses http.DefaultClient.
// Builds and autoscale searches can run long, so callers wanting
// timeouts should set them per call via context rather than a blanket
// http.Client.Timeout. Idempotent requests retry transient failures
// under DefaultRetry unless WithRetry overrides it (retry.go).
func New(baseURL string, hc *http.Client, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad server URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: server URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: server URL %q has no host", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: hc, retry: DefaultRetry}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// BaseURL returns the normalized server base URL.
func (c *Client) BaseURL() string { return c.base }

// do sends one request and decodes the response: into out on 2xx, into
// an *APIError otherwise. in == nil sends no body. Idempotent requests
// retry transient failures (transport errors, 502/503/504) under the
// client's RetryPolicy; non-idempotent ones get exactly one attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
	}
	// one ID for all attempts of one logical request, so the server's
	// logs show the retries as what they are
	reqID := obs.NewRequestID()
	attempts := 1
	if idempotent {
		attempts = c.retry.MaxAttempts
	}
	for attempt := 0; ; attempt++ {
		err, retryable := c.attempt(ctx, method, path, reqID, data, in != nil, out)
		if err == nil {
			return nil
		}
		if !retryable || attempt+1 >= attempts || ctx.Err() != nil {
			return err
		}
		wait := c.retry.backoff(attempt)
		// an overloaded server's Retry-After is a floor, not a hint to
		// ignore: hammering it sooner only deepens the queue it is
		// shedding
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > wait {
			wait = apiErr.RetryAfter
		}
		if sleepCtx(ctx, wait) != nil {
			return err // canceled mid-backoff: report the attempt's error
		}
	}
}

// attempt runs one HTTP round trip. retryable reports whether the
// failure is transient enough that an idempotent request may try again.
func (c *Client) attempt(ctx context.Context, method, path, reqID string, data []byte, hasBody bool, out any) (err error, retryable bool) {
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err), false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	// every request carries an ID the server adopts as its trace ID and
	// echoes back; on failure it lands in APIError.RequestID, so one
	// string ties a client-side error to the server's logs and traces
	req.Header.Set(apiv1.HeaderRequestID, reqID)
	if c.apiToken != "" {
		req.Header.Set(apiv1.HeaderAPIToken, c.apiToken)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// a transport error means the request may never have arrived;
		// the retry loop checks ctx itself, so cancellation stops here
		return fmt.Errorf("client: %s %s: %w", method, path, err), true
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp), retryableStatus(resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err), false
		}
	}
	return nil, false
}

// decodeError turns a non-2xx response into an *APIError. A body that
// is not the contract envelope (a proxy's error page, a truncated
// response) still yields an APIError carrying the status and the raw
// text, so the caller always gets the status to branch on. The echoed
// X-Request-ID (when present) rides along for log correlation.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	id := resp.Header.Get(apiv1.HeaderRequestID)
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(resp.Header.Get(apiv1.HeaderRetryAfter)); err == nil && secs > 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	var env apiv1.Error
	if err := json.Unmarshal(data, &env); err == nil && env.Message != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Message, RequestID: id, RetryAfter: retryAfter}
	}
	return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data)), RequestID: id, RetryAfter: retryAfter}
}

// tablePath resolves a /v1/tables/{name}/... route constant against a
// concrete table, escaping the name so a table called "a/b" cannot
// traverse the route space.
func tablePath(route, name string) string {
	return strings.Replace(apiv1.Path(route), "{name}", url.PathEscape(name), 1)
}

// Healthz reports the daemon's liveness, build identity (version, Go
// runtime) and registry/latency counters.
func (c *Client) Healthz(ctx context.Context) (*apiv1.Health, error) {
	var out apiv1.Health
	if err := c.do(ctx, http.MethodGet, apiv1.Path(apiv1.RouteHealthz), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tables lists the registered tables; live ones carry stream state.
func (c *Client) Tables(ctx context.Context) ([]apiv1.Table, error) {
	var out apiv1.TablesList
	if err := c.do(ctx, http.MethodGet, apiv1.Path(apiv1.RouteTables), nil, &out, true); err != nil {
		return nil, err
	}
	return out.Tables, nil
}

// Samples lists the built samples plus the daemon's sample-memory
// counters.
func (c *Client) Samples(ctx context.Context) (*apiv1.SamplesList, error) {
	var out apiv1.SamplesList
	if err := c.do(ctx, http.MethodGet, apiv1.Path(apiv1.RouteListSamples), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// BuildSample registers a sample for a table + workload + sizing
// (budget, rate or autoscaled target_cv), or fetches the cached one an
// equal request built before; Sample.Cached distinguishes the two.
func (c *Client) BuildSample(ctx context.Context, req apiv1.BuildRequest) (*apiv1.Sample, error) {
	var out apiv1.Sample
	if err := c.do(ctx, http.MethodPost, apiv1.Path(apiv1.RouteBuildSample), req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query answers a SQL group-by query — from the best covering sample,
// exactly, or from an autoscaled sample when req.TargetCV is set.
func (c *Client) Query(ctx context.Context, req apiv1.QueryRequest) (*apiv1.QueryResponse, error) {
	var out apiv1.QueryResponse
	if err := c.do(ctx, http.MethodPost, apiv1.Path(apiv1.RouteQuery), req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// MakeStreaming converts a registered table into a live (streaming)
// one; generation 1 publishes before it returns.
func (c *Client) MakeStreaming(ctx context.Context, table string, req apiv1.StreamRequest) (*apiv1.StreamState, error) {
	var out apiv1.StreamState
	if err := c.do(ctx, http.MethodPost, tablePath(apiv1.RouteStreamTable, table), req, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// AppendRows batch-appends rows (schema order, loosely typed) to a
// streaming table. The batch is atomic: on ErrAppendFailed nothing was
// appended.
func (c *Client) AppendRows(ctx context.Context, table string, rows [][]any) (*apiv1.AppendResponse, error) {
	var out apiv1.AppendResponse
	if err := c.do(ctx, http.MethodPost, tablePath(apiv1.RouteAppendRows, table), apiv1.AppendRequest{Rows: rows}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Refresh forces a streaming table to publish a fresh sample
// generation now and returns the freshly installed sample.
func (c *Client) Refresh(ctx context.Context, table string) (*apiv1.Sample, error) {
	var out apiv1.Sample
	if err := c.do(ctx, http.MethodPost, tablePath(apiv1.RouteRefreshTable, table), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}
