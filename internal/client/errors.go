package client

import (
	"errors"
	"fmt"
	"time"

	apiv1 "repro/internal/api/v1"
)

// Sentinel errors, one per contract error code (apiv1.Codes). Every
// *APIError unwraps to the sentinel matching its code, so callers
// branch with errors.Is instead of string-matching messages:
//
//	_, err := c.BuildSample(ctx, req)
//	switch {
//	case errors.Is(err, client.ErrTableNotFound):
//	    // load the table first
//	case errors.Is(err, client.ErrBudgetConflict):
//	    // fix the sizing fields
//	}
var (
	// ErrInvalidBody: the request body was not well-formed JSON for the
	// route (400, invalid_body).
	ErrInvalidBody = errors.New("invalid request body")
	// ErrInvalidRequest: a field value is invalid (400, invalid_request).
	ErrInvalidRequest = errors.New("invalid request")
	// ErrBudgetConflict: the sizing fields contradict each other —
	// budget and rate both set, target_cv with budget/rate or exact
	// mode, max_budget without target_cv, or no sizing at all (400,
	// budget_conflict).
	ErrBudgetConflict = errors.New("budget conflict")
	// ErrTableNotFound: no table is registered under the name —
	// including the FROM table of a query (404, table_not_found).
	ErrTableNotFound = errors.New("table not found")
	// ErrNotStreaming: append/refresh on a table that is not live (409,
	// not_streaming).
	ErrNotStreaming = errors.New("table is not streaming")
	// ErrAlreadyStreaming: a second stream registration of one table
	// (409, already_streaming).
	ErrAlreadyStreaming = errors.New("table is already streaming")
	// ErrBodyTooLarge: the request body exceeds the server's 1 MiB cap
	// (413, body_too_large).
	ErrBodyTooLarge = errors.New("request body too large")
	// ErrUnsupportedMedia: the request declared a non-JSON Content-Type
	// (415, unsupported_media_type).
	ErrUnsupportedMedia = errors.New("unsupported media type")
	// ErrBuildFailed: the sampler could not serve a well-formed build or
	// stream registration (422, build_failed).
	ErrBuildFailed = errors.New("build failed")
	// ErrQueryFailed: a well-formed query could not be answered (422,
	// query_failed).
	ErrQueryFailed = errors.New("query failed")
	// ErrAppendFailed: a row batch was rejected atomically (422,
	// append_failed).
	ErrAppendFailed = errors.New("append failed")
	// ErrOverloaded: the server refused the request under load — the
	// admission queue was full or a tenant bucket was empty (429,
	// overloaded). The response's Retry-After hint is surfaced on
	// APIError.RetryAfter, and the retry loop waits at least that long.
	ErrOverloaded = errors.New("server overloaded")
)

// sentinels maps each contract code to its sentinel; APIError.Unwrap
// resolves through it. An unlisted code (a newer server) unwraps to
// nil — the *APIError itself still carries Code and Status.
var sentinels = map[string]error{
	apiv1.CodeInvalidBody:      ErrInvalidBody,
	apiv1.CodeInvalidRequest:   ErrInvalidRequest,
	apiv1.CodeBudgetConflict:   ErrBudgetConflict,
	apiv1.CodeTableNotFound:    ErrTableNotFound,
	apiv1.CodeNotStreaming:     ErrNotStreaming,
	apiv1.CodeAlreadyStreaming: ErrAlreadyStreaming,
	apiv1.CodeBodyTooLarge:     ErrBodyTooLarge,
	apiv1.CodeUnsupportedMedia: ErrUnsupportedMedia,
	apiv1.CodeBuildFailed:      ErrBuildFailed,
	apiv1.CodeQueryFailed:      ErrQueryFailed,
	apiv1.CodeAppendFailed:     ErrAppendFailed,
	apiv1.CodeOverloaded:       ErrOverloaded,
}

// SentinelFor returns the sentinel error for a contract code, or nil
// for codes this client version does not know. Exposed for tests that
// iterate apiv1.Codes.
func SentinelFor(code string) error { return sentinels[code] }

// APIError is a non-2xx response decoded into a Go error: the HTTP
// status, the machine-readable contract code and the server's
// human-readable message. It unwraps to the sentinel for its code, so
// errors.Is(err, client.ErrTableNotFound) works across wrapping.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the contract error code (apiv1.Code*); empty when the
	// server's error body carried none (e.g. a proxy's HTML error page).
	Code string
	// Message is the server's human-readable diagnosis.
	Message string
	// RequestID is the X-Request-ID the server echoed — the same ID in
	// the daemon's log line and /debug/requests trace for this request.
	// Empty when the response carried no echo (e.g. a proxy error).
	RequestID string
	// RetryAfter is the server's Retry-After hint, zero when the
	// response carried none. On overloaded responses the retry loop
	// never sleeps less than this before the next attempt.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// Unwrap resolves the error to its code's sentinel.
func (e *APIError) Unwrap() error { return sentinels[e.Code] }
