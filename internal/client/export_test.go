package client

import "net/http"

// DecodeErrorForTest exposes the non-2xx decode path to the external
// test package, so raw responses the typed client cannot produce (415,
// malformed JSON bodies) still exercise the real mapping.
func DecodeErrorForTest(resp *http.Response) error { return decodeError(resp) }
