package client

// Retry with jittered exponential backoff for idempotent requests, so
// callers ride out the window where a daemon is restarting (and, with
// -data-dir, replaying its WAL) behind a load balancer. A request is
// retried only when the attempt could not have taken effect or taking
// effect twice is harmless: transport errors, 502/503/504. The GET
// methods and the idempotent POSTs (BuildSample is keyed and cached,
// Query is read-only, Refresh returns the current generation when
// nothing is pending) opt in; MakeStreaming and AppendRows never retry
// — replaying an append would duplicate rows, and the server cannot
// tell a retry from a new batch.

import (
	"context"
	"math/rand"
	"time"
)

// DefaultRetry is the policy New installs: up to 4 attempts, backoff
// starting at 50ms and capped at 2s, with equal jitter.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, Base: 50 * time.Millisecond, Max: 2 * time.Second}

// RetryPolicy bounds the client's retry loop for idempotent requests.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 1 mean 1 (retries off).
	MaxAttempts int
	// Base is the backoff before the first retry; attempt i waits
	// min(Base<<i, Max), jittered. Zero values take DefaultRetry's.
	Base time.Duration
	Max  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.Base <= 0 {
		p.Base = DefaultRetry.Base
	}
	if p.Max <= 0 {
		p.Max = DefaultRetry.Max
	}
	return p
}

// backoff returns the jittered wait before retry number attempt
// (0-based): equal jitter over min(Base<<attempt, Max), i.e. half the
// window deterministic, half uniform — retries spread out instead of
// synchronizing across clients hammering a recovering daemon.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	b := p.Max
	if attempt < 30 { // avoid the shift overflowing
		if d := p.Base << attempt; d < b {
			b = d
		}
	}
	half := b / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Option configures a Client at New time.
type Option func(*Client)

// WithRetry overrides DefaultRetry. WithRetry(RetryPolicy{MaxAttempts:
// 1}) disables retries entirely.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithAPIToken sends token as the X-API-Token header on every request,
// identifying this client to the server's per-tenant QoS limits. The
// empty string sends no header (the server's default/anonymous lane).
func WithAPIToken(token string) Option {
	return func(c *Client) { c.apiToken = token }
}

// retryableStatus reports whether an HTTP status may be retried: the
// gateway-transient trio, where the request plausibly never reached a
// healthy daemon, plus 429 — an explicit "come back later" from QoS
// admission, whose Retry-After hint floors the backoff. Other 4xx are
// deterministic contract errors and 500 may have had effects.
func retryableStatus(code int) bool {
	return code == 429 || code == 502 || code == 503 || code == 504
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
