package plan

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/table"
)

// batchSize is the vectorized batch width: large enough to amortize
// per-batch dispatch, small enough that a plan's scratch vectors stay
// cache-resident.
const batchSize = 1024

// grouping strategies, picked per grouping set at Execute time.
const (
	gmGlobal uint8 = iota // no group columns: a single grand-total group
	gmDense               // one string column: dense code → gid array
	gmInt                 // one int column: map[int64]gid
	gmBytes               // multi-column: fixed-width binary key → gid
	gmJoin                // multi-column with NUL-bearing dictionary values:
	// rendered joined key → gid, so groups merge exactly as the
	// interpreter's "\x00"-joined map keys would
)

// setState is the per-execution accumulation state of one grouping set.
type setState struct {
	pos  []int           // positions into the plan's group columns
	cols []*table.Column // bound group columns of this set
	mode uint8

	dense  []int32          // gmDense: dict code → gid+1 (0 = unseen)
	intm   map[int64]int32  // gmInt
	bytm   map[string]int32 // gmBytes
	joinm  map[string]int32 // gmJoin
	keybuf []byte

	keys   [][]string // per gid: rendered key parts (output Row.Key)
	joined []string   // per gid: the interpreter's map key (ordering)
	accs   []aggAcc   // flat per-(gid, site): len = numGroups * stride
}

// dictHasNUL reports whether any dictionary value contains the "\x00"
// the interpreter joins key parts with — the one case where joining is
// not injective and code-tuple identity could split groups the
// interpreter merges.
func dictHasNUL(d *table.Dict) bool {
	for i := 0; i < d.Len(); i++ {
		if strings.IndexByte(d.Value(int32(i)), 0) >= 0 {
			return true
		}
	}
	return false
}

func newSetState(pos []int, groupCols []*table.Column) *setState {
	st := &setState{pos: pos}
	for _, p := range pos {
		st.cols = append(st.cols, groupCols[p])
	}
	switch {
	case len(st.cols) == 0:
		st.mode = gmGlobal
	case len(st.cols) == 1 && st.cols[0].Spec.Kind == table.String:
		st.mode = gmDense
		st.dense = make([]int32, st.cols[0].Dict.Len())
	case len(st.cols) == 1:
		st.mode = gmInt
		st.intm = make(map[int64]int32, 64)
	default:
		st.mode = gmBytes
		for _, c := range st.cols {
			if c.Spec.Kind == table.String && dictHasNUL(c.Dict) {
				st.mode = gmJoin
				break
			}
		}
		if st.mode == gmBytes {
			st.bytm = make(map[string]int32, 64)
			st.keybuf = make([]byte, 8*len(st.cols))
		} else {
			st.joinm = make(map[string]int32, 64)
		}
	}
	return st
}

// newGroup registers a fresh group: renders its key parts exactly as
// the interpreter does (Column.StringAt) and grows the accumulators.
func (st *setState) newGroup(r int32, stride int) int32 {
	parts := make([]string, len(st.cols))
	for i, c := range st.cols {
		parts[i] = c.StringAt(int(r))
	}
	gid := int32(len(st.keys))
	st.keys = append(st.keys, parts)
	st.joined = append(st.joined, strings.Join(parts, "\x00"))
	st.accs = append(st.accs, make([]aggAcc, stride)...)
	return gid
}

// assign maps each batch row to its group id, creating groups in
// first-visit order (the interpreter's visit order over the same row
// stream, so per-group accumulation order is identical).
func (st *setState) assign(rows []int32, n, stride int, gids []int32) {
	switch st.mode {
	case gmGlobal:
		if len(st.keys) == 0 && n > 0 {
			parts := make([]string, 0)
			st.keys = append(st.keys, parts)
			st.joined = append(st.joined, "")
			st.accs = append(st.accs, make([]aggAcc, stride)...)
		}
		for i := 0; i < n; i++ {
			gids[i] = 0
		}
	case gmDense:
		codes := st.cols[0].Str
		for i := 0; i < n; i++ {
			r := rows[i]
			code := codes[r]
			id := st.dense[code]
			if id == 0 {
				id = st.newGroup(r, stride) + 1
				st.dense[code] = id
			}
			gids[i] = id - 1
		}
	case gmInt:
		vals := st.cols[0].Int
		for i := 0; i < n; i++ {
			r := rows[i]
			v := vals[r]
			id, ok := st.intm[v]
			if !ok {
				id = st.newGroup(r, stride)
				st.intm[v] = id
			}
			gids[i] = id
		}
	case gmBytes:
		for i := 0; i < n; i++ {
			r := rows[i]
			buf := st.keybuf
			for ci, c := range st.cols {
				var u uint64
				if c.Spec.Kind == table.String {
					u = uint64(uint32(c.Str[r]))
				} else {
					u = uint64(c.Int[r])
				}
				binary.BigEndian.PutUint64(buf[ci*8:], u)
			}
			id, ok := st.bytm[string(buf)]
			if !ok {
				id = st.newGroup(r, stride)
				st.bytm[string(buf)] = id
			}
			gids[i] = id
		}
	default: // gmJoin
		parts := make([]string, len(st.cols))
		for i := 0; i < n; i++ {
			r := rows[i]
			for ci, c := range st.cols {
				parts[ci] = c.StringAt(int(r))
			}
			k := strings.Join(parts, "\x00")
			id, ok := st.joinm[k]
			if !ok {
				id = st.newGroup(r, stride)
				st.joinm[k] = id
			}
			gids[i] = id
		}
	}
}

// accumulate folds one site's batch values into the per-group
// accumulators. The per-(group, site) observation stream is in row
// order — exactly the interpreter's — so floating-point accumulation
// is bit-identical.
func accumulateSite(accs []aggAcc, stride, si int, kind aggKind, gids []int32, xs, ws []float64, n int) {
	switch kind {
	case aggCount:
		for j := 0; j < n; j++ {
			accs[int(gids[j])*stride+si].accumulate(1, ws[j])
		}
	case aggMin, aggMax:
		for j := 0; j < n; j++ {
			a := &accs[int(gids[j])*stride+si]
			x := xs[j]
			if !a.seen {
				a.minV, a.maxV = x, x
				a.seen = true
			} else {
				if x < a.minV {
					a.minV = x
				}
				if x > a.maxV {
					a.maxV = x
				}
			}
		}
	default: // AVG/SUM/VAR/STDDEV and COUNT_IF's prepared 0/1 vector
		for j := 0; j < n; j++ {
			accs[int(gids[j])*stride+si].accumulate(xs[j], ws[j])
		}
	}
}

// bindCheck verifies the executing table still matches the schema the
// plan was compiled against (streaming snapshots share it; a mismatch
// means the caller's cache is stale and it should fall back).
func (p *Plan) bindCheck(tbl *table.Table) error {
	if len(tbl.Columns) != len(p.schema) {
		return fmt.Errorf("plan: table %q has %d columns, plan compiled for %d", tbl.Name, len(tbl.Columns), len(p.schema))
	}
	for i, col := range tbl.Columns {
		if col.Spec.Kind != p.schema[i] {
			return fmt.Errorf("plan: column %d of table %q changed kind", i, tbl.Name)
		}
	}
	return nil
}

// Execute evaluates the plan over tbl: the full table with unit
// weights when rows is nil, or the weighted row sample otherwise —
// the same contract as exec.Run / exec.RunWeighted, with bit-identical
// output.
func (p *Plan) Execute(tbl *table.Table, rows []int32, weights []float64) (*exec.Result, error) {
	if rows != nil && len(rows) != len(weights) {
		return nil, fmt.Errorf("plan: %d rows but %d weights", len(rows), len(weights))
	}
	if err := p.bindCheck(tbl); err != nil {
		return nil, err
	}

	ec := newExecCtx(tbl.Columns, p.numSlots, p.boolSlots, p.tabSlots)
	groupCols := make([]*table.Column, len(p.groupIdx))
	for i, idx := range p.groupIdx {
		groupCols[i] = tbl.Columns[idx]
	}
	stride := len(p.sites)
	states := make([]*setState, len(p.sets))
	for i, pos := range p.sets {
		states[i] = newSetState(pos, groupCols)
	}

	rowBuf := make([]int32, batchSize)
	wBuf := make([]float64, batchSize)
	gidBuf := make([]int32, batchSize)
	argVecs := make([][]float64, len(p.sites))

	total := tbl.NumRows()
	if rows != nil {
		total = len(rows)
	}
	for start := 0; start < total; start += batchSize {
		n := total - start
		if n > batchSize {
			n = batchSize
		}
		if rows == nil {
			for i := 0; i < n; i++ {
				rowBuf[i] = int32(start + i)
				wBuf[i] = 1
			}
		} else {
			copy(rowBuf[:n], rows[start:start+n])
			copy(wBuf[:n], weights[start:start+n])
		}
		ec.rows, ec.n = rowBuf, n

		if p.where != nil {
			sel := p.where.eval(ec)
			m := 0
			for i := 0; i < n; i++ {
				if sel[i] {
					rowBuf[m], wBuf[m] = rowBuf[i], wBuf[i]
					m++
				}
			}
			n = m
			ec.n = n
		}
		if n == 0 {
			continue
		}

		// Site argument vectors are evaluated once per batch and shared
		// across grouping sets: arguments are pure, so every set would
		// compute the same values anyway.
		for si := range p.sites {
			s := &p.sites[si]
			switch {
			case s.argNum != nil:
				argVecs[si] = s.argNum.eval(ec)
			case s.argBool != nil:
				bv := s.argBool.eval(ec)
				xs := ec.nums[s.cifSlot][:n]
				for i, b := range bv {
					if b {
						xs[i] = 1
					} else {
						xs[i] = 0
					}
				}
				argVecs[si] = xs
			default:
				argVecs[si] = nil
			}
		}

		for _, st := range states {
			st.assign(rowBuf, n, stride, gidBuf)
			for si := range p.sites {
				accumulateSite(st.accs, stride, si, p.sites[si].kind, gidBuf[:n], argVecs[si], wBuf[:n], n)
			}
		}
	}

	res := &exec.Result{
		GroupAttrs: p.groupAttrs,
		Sets:       p.setNames,
		AggLabels:  p.aggLabels,
	}
	for setIdx, st := range states {
		order := make([]int, len(st.keys))
		for i := range order {
			order[i] = i
		}
		// The interpreter sorts groups by their "\x00"-joined rendered
		// keys; joined keys are unique per group, so this order matches
		// its sort.Strings exactly.
		sort.Slice(order, func(i, j int) bool { return st.joined[order[i]] < st.joined[order[j]] })
		for _, gid := range order {
			siteVals := make([]float64, stride)
			for si := range p.sites {
				siteVals[si] = st.accs[gid*stride+si].final(p.sites[si].kind)
			}
			if p.having != nil && !p.having(siteVals) {
				continue
			}
			aggs := make([]float64, len(p.items))
			for ii, combine := range p.items {
				aggs[ii] = combine(siteVals)
			}
			row := exec.Row{Set: setIdx, Key: st.keys[gid], Aggs: aggs}
			if rows != nil {
				row.SE = make([]float64, len(p.items))
				for ii, site := range p.itemSite {
					if site >= 0 {
						row.SE[ii] = st.accs[gid*stride+site].stdErr(p.sites[site].kind)
					} else {
						row.SE[ii] = math.NaN()
					}
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	exec.ApplyOrderAndLimit(res, p.orderBy, p.limit)
	return res, nil
}
