package plan_test

// Golden EXPLAIN tests: each fixture query's rendered plan is diffed
// byte-for-byte against a checked-in JSON file. Regenerate with
//
//	go test ./internal/plan -run TestExplainGolden -update
//
// and review the diff like any other code change — the fixtures are
// the wire contract of explain:true, not an implementation detail.
//
// ExplainGoldenQueries is shared with the parser fuzz corpus
// (internal/sqlparse), so every shape with a committed plan rendering
// is also a permanent fuzz seed.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datagen"
	"repro/internal/plan"
	"repro/internal/sqlparse"
)

var update = flag.Bool("update", false, "rewrite golden EXPLAIN fixtures")

// ExplainGoldenQueries maps fixture names to the queries whose plan
// renderings are pinned in testdata/.
var ExplainGoldenQueries = map[string]string{
	"filter_group_agg": "SELECT country, AVG(value), COUNT(*) FROM OpenAQ WHERE (value > 10) GROUP BY country",
	"having":           "SELECT country, parameter, SUM(value) AS total FROM OpenAQ GROUP BY country, parameter HAVING (COUNT(*) > 5)",
	"order_limit":      "SELECT country, AVG(value) AS avg_v FROM OpenAQ WHERE (parameter = 'pm25') GROUP BY country ORDER BY avg_v DESC LIMIT 10",
	"cube":             "SELECT country, parameter, AVG(value) FROM OpenAQ GROUP BY country, parameter WITH CUBE",
	"autoscaled":       "SELECT country, AVG(value) FROM OpenAQ GROUP BY country",
}

// explainInputs gives the non-default execution contexts; fixtures not
// listed here render a plain full-table scan.
var explainInputs = map[string]plan.ExplainInput{
	"autoscaled": {Source: "sample", Rows: 2048, SampleKey: "OpenAQ/cv=0.05", TargetCV: 0.05},
}

func TestExplainGolden(t *testing.T) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 100, Countries: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, sql := range ExplainGoldenQueries {
		t.Run(name, func(t *testing.T) {
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("parse %q: %v", sql, err)
			}
			p, err := plan.Compile(tbl, q)
			if err != nil {
				t.Fatalf("compile %q: %v", sql, err)
			}
			in, ok := explainInputs[name]
			if !ok {
				in = plan.ExplainInput{Source: "table", Rows: tbl.NumRows()}
			}
			got, err := json.MarshalIndent(p.Explain(in), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("plan rendering for %q diverged from %s:\n--- got ---\n%s--- want ---\n%s",
					sql, path, got, want)
			}
		})
	}
}
