// Package plan lowers parsed queries (internal/sqlparse) to compiled
// physical plans executed columnar-style: predicate → group → aggregate
// operators evaluated in tight typed per-column loops over vectorized
// row batches, with no per-cell boxing. It is the fast path in front of
// the row interpreter (internal/exec), which stays as the reference
// oracle — a plan's Execute is required to produce bit-identical
// results (values, group keys, ordering, standard-error estimates) to
// exec.Run/exec.RunWeighted on every query it accepts, a property
// enforced by the package's differential tests.
//
// Plans are immutable after Compile and safe for concurrent Execute
// calls: all mutable evaluation state (batch buffers, scratch vectors,
// per-dictionary-code predicate tables) lives in a per-call context.
// The registry (internal/serve) caches plans keyed by normalized SQL.
//
// Queries outside the planner's statically-typed subset (for example
// IF with differently-kinded branches) fail Compile with an error
// wrapping ErrNotPlannable; callers fall back to the interpreter, so
// the planner never changes which queries are answerable — only how
// fast the answerable ones run.
package plan

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// ErrNotPlannable marks a valid query the columnar executor does not
// support; callers should fall back to the row interpreter. Compile
// can also fail with ordinary validation errors (unknown column, bad
// aggregate arity, ...) — those queries fail in the interpreter too.
var ErrNotPlannable = errors.New("query not plannable")

// planSite is one aggregate call site: the kind plus the compiled
// argument in the representation its accumulator consumes.
type planSite struct {
	kind    aggKind
	argNum  numOp  // AVG/SUM/MIN/MAX/VAR/STDDEV
	argBool boolOp // COUNT_IF
	cifSlot int    // scratch slot for COUNT_IF's 0/1 vector, else -1
}

// Plan is a query compiled against a table schema. It binds columns by
// index and kind, so it remains valid across streaming snapshots of
// the same table (appends never change the schema); Execute re-checks
// the binding and errors on any mismatch.
type Plan struct {
	tableName string
	schema    []table.Kind // full column-kind fingerprint at compile

	groupAttrs []string
	groupIdx   []int // table column index per group attr
	sets       [][]int
	setNames   [][]string
	cube       bool

	where boolOp
	sites []planSite
	items []func(siteVals []float64) float64
	// itemSite[i] is the site index when select item i is a bare
	// aggregate call (SE reportable), else -1.
	itemSite  []int
	aggLabels []string
	having    func([]float64) bool
	orderBy   []exec.OrderSpec
	limit     int

	numSlots, boolSlots, tabSlots int

	// rendered fragments for EXPLAIN
	whereStr  string
	havingStr string
	orderStrs []string
}

// Compile validates and lowers q against tbl's schema. The validation
// mirrors the interpreter's compile step, then adds the planner's own
// static-typing restrictions (ErrNotPlannable); any error means the
// caller should serve the query through the interpreter.
func Compile(tbl *table.Table, q *sqlparse.Query) (*Plan, error) {
	if q.From != "" && !strings.EqualFold(q.From, tbl.Name) {
		return nil, fmt.Errorf("plan: query targets table %q, got %q", q.From, tbl.Name)
	}
	p := &Plan{tableName: tbl.Name, limit: q.Limit, cube: q.Cube}
	p.schema = make([]table.Kind, len(tbl.Columns))
	for i, col := range tbl.Columns {
		p.schema[i] = col.Spec.Kind
	}
	c := &compiler{tbl: tbl}

	if q.Where != nil {
		f, err := c.compileBool(q.Where)
		if err != nil {
			return nil, err
		}
		p.where = f
		p.whereStr = q.Where.String()
	}

	grouped := map[string]bool{}
	for _, g := range q.GroupBy {
		idx := tbl.ColumnIndex(g)
		if idx < 0 {
			return nil, fmt.Errorf("plan: unknown group-by column %q", g)
		}
		if tbl.Columns[idx].Spec.Kind == table.Float {
			return nil, fmt.Errorf("plan: cannot group by float column %q", g)
		}
		p.groupIdx = append(p.groupIdx, idx)
		grouped[g] = true
	}
	p.groupAttrs = append([]string(nil), q.GroupBy...)
	if q.Cube && len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("plan: WITH CUBE requires GROUP BY columns")
	}

	// grouping sets, in the interpreter's order: full mask downward
	if q.Cube {
		n := len(q.GroupBy)
		for mask := (1 << n) - 1; mask >= 0; mask-- {
			var pos []int
			var names []string
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					pos = append(pos, i)
					names = append(names, q.GroupBy[i])
				}
			}
			p.sets = append(p.sets, pos)
			p.setNames = append(p.setNames, names)
		}
	} else {
		pos := make([]int, len(q.GroupBy))
		for i := range pos {
			pos[i] = i
		}
		p.sets = append(p.sets, pos)
		p.setNames = append(p.setNames, append([]string(nil), q.GroupBy...))
	}

	for _, item := range q.Select {
		if ref, ok := item.Expr.(*sqlparse.ColumnRef); ok {
			if !grouped[ref.Name] {
				return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", ref.Name)
			}
			continue
		}
		if !sqlparse.HasAggregate(item.Expr) {
			return nil, fmt.Errorf("plan: select item %q is neither a grouped column nor an aggregate", item.Label())
		}
		siteBefore := len(p.sites)
		combine, err := p.compileAggItem(c, item.Expr)
		if err != nil {
			return nil, err
		}
		site := -1
		if _, bare := item.Expr.(*sqlparse.FuncCall); bare && len(p.sites) == siteBefore+1 {
			site = siteBefore
		}
		p.items = append(p.items, combine)
		p.itemSite = append(p.itemSite, site)
		p.aggLabels = append(p.aggLabels, item.Label())
	}
	if len(p.items) == 0 {
		return nil, fmt.Errorf("plan: query has no aggregate outputs")
	}

	if q.Having != nil {
		h, err := p.compileHaving(c, q.Having)
		if err != nil {
			return nil, err
		}
		p.having = h
		p.havingStr = q.Having.String()
	}
	if len(q.OrderBy) > 0 {
		specs, err := exec.ResolveOrderBy(q)
		if err != nil {
			return nil, err
		}
		p.orderBy = specs
		for _, item := range q.OrderBy {
			s := item.Expr.String()
			if item.Desc {
				s += " DESC"
			}
			p.orderStrs = append(p.orderStrs, s)
		}
	}

	p.numSlots, p.boolSlots, p.tabSlots = c.nums, c.bools, c.tabs
	return p, nil
}

// compileAggItem registers aggregate call sites and returns a combiner
// over finalized site values, mirroring the interpreter's version
// (including the site-registration order HAVING relies on).
func (p *Plan) compileAggItem(c *compiler, e sqlparse.Expr) (func([]float64) float64, error) {
	switch n := e.(type) {
	case *sqlparse.FuncCall:
		if sqlparse.AggFuncs[n.Name] {
			site := planSite{cifSlot: -1}
			switch n.Name {
			case "AVG":
				site.kind = aggAvg
			case "SUM":
				site.kind = aggSum
			case "COUNT":
				site.kind = aggCount
			case "COUNT_IF":
				site.kind = aggCountIf
			case "MIN":
				site.kind = aggMin
			case "MAX":
				site.kind = aggMax
			case "VAR":
				site.kind = aggVar
			case "STDDEV":
				site.kind = aggStdDev
			}
			if n.Star {
				if site.kind != aggCount {
					return nil, fmt.Errorf("plan: %s(*) is not valid", n.Name)
				}
			} else {
				if len(n.Args) != 1 {
					return nil, fmt.Errorf("plan: %s takes exactly one argument", n.Name)
				}
				if sqlparse.HasAggregate(n.Args[0]) {
					return nil, fmt.Errorf("plan: nested aggregates are not supported")
				}
				switch site.kind {
				case aggCount:
					// COUNT(expr) validates but ignores its argument (no NULLs)
					if _, err := c.compile(n.Args[0]); err != nil {
						return nil, err
					}
				case aggCountIf:
					f, err := c.compileBool(n.Args[0])
					if err != nil {
						return nil, err
					}
					site.argBool = f
					site.cifSlot = c.numSlot()
				default:
					x, err := c.compile(n.Args[0])
					if err != nil {
						return nil, err
					}
					site.argNum = c.asNumOp(x)
				}
			}
			idx := len(p.sites)
			p.sites = append(p.sites, site)
			return func(vals []float64) float64 { return vals[idx] }, nil
		}
		return nil, fmt.Errorf("plan: scalar function %s cannot be an output without an enclosing aggregate", n.Name)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "+", "-", "*", "/":
		default:
			return nil, fmt.Errorf("plan: operator %q not supported over aggregates", n.Op)
		}
		left, err := p.compileAggItem(c, n.Left)
		if err != nil {
			return nil, err
		}
		right, err := p.compileAggItem(c, n.Right)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(vals []float64) float64 {
			a, b := left(vals), right(vals)
			switch op {
			case "+":
				return a + b
			case "-":
				return a - b
			case "*":
				return a * b
			default:
				if b == 0 {
					return math.NaN()
				}
				return a / b
			}
		}, nil
	case *sqlparse.UnaryExpr:
		if n.Op != "-" {
			return nil, fmt.Errorf("plan: operator %q not supported over aggregates", n.Op)
		}
		inner, err := p.compileAggItem(c, n.Expr)
		if err != nil {
			return nil, err
		}
		return func(vals []float64) float64 { return -inner(vals) }, nil
	case *sqlparse.NumberLit:
		v := n.Value
		return func([]float64) float64 { return v }, nil
	}
	return nil, fmt.Errorf("plan: unsupported aggregate expression %T", e)
}

// compileHaving mirrors the interpreter's HAVING compiler: boolean
// combinations of comparisons between aggregate items, which may
// register additional sites.
func (p *Plan) compileHaving(c *compiler, e sqlparse.Expr) (func([]float64) bool, error) {
	switch n := e.(type) {
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			left, err := p.compileHaving(c, n.Left)
			if err != nil {
				return nil, err
			}
			right, err := p.compileHaving(c, n.Right)
			if err != nil {
				return nil, err
			}
			if n.Op == "AND" {
				return func(v []float64) bool { return left(v) && right(v) }, nil
			}
			return func(v []float64) bool { return left(v) || right(v) }, nil
		case "=", "!=", "<", "<=", ">", ">=":
			left, err := p.compileAggItem(c, n.Left)
			if err != nil {
				return nil, err
			}
			right, err := p.compileAggItem(c, n.Right)
			if err != nil {
				return nil, err
			}
			op := n.Op
			return func(v []float64) bool {
				a, b := left(v), right(v)
				switch op {
				case "=":
					return a == b
				case "!=":
					return a != b
				case "<":
					return a < b
				case "<=":
					return a <= b
				case ">":
					return a > b
				default:
					return a >= b
				}
			}, nil
		}
		return nil, fmt.Errorf("plan: operator %q not supported in HAVING", n.Op)
	case *sqlparse.UnaryExpr:
		if n.Op != "NOT" {
			return nil, fmt.Errorf("plan: operator %q not supported in HAVING", n.Op)
		}
		inner, err := p.compileHaving(c, n.Expr)
		if err != nil {
			return nil, err
		}
		return func(v []float64) bool { return !inner(v) }, nil
	case *sqlparse.BetweenExpr:
		x, err := p.compileAggItem(c, n.Expr)
		if err != nil {
			return nil, err
		}
		lo, err := p.compileAggItem(c, n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := p.compileAggItem(c, n.Hi)
		if err != nil {
			return nil, err
		}
		return func(v []float64) bool {
			val := x(v)
			return val >= lo(v) && val <= hi(v)
		}, nil
	}
	return nil, fmt.Errorf("plan: HAVING must be a boolean expression over aggregates, got %T", e)
}
