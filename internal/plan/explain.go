package plan

import (
	apiv1 "repro/internal/api/v1"
)

// ExplainInput is the execution context an EXPLAIN rendering reflects:
// what the scan operator actually reads for this answer — the full
// table ("table") or a weighted sample ("sample"), how many rows, and
// for autoscaled samples the key and CV goal.
type ExplainInput struct {
	Source    string  // "table" or "sample"
	Rows      int     // rows the scan reads
	SampleKey string  // sample scans only
	TargetCV  float64 // autoscaled sample scans only
}

// Explain renders the plan as the wire contract's operator tree, a
// single-input chain: output → sort? → aggregate → filter? → scan.
// Detail maps marshal with sorted keys, so the JSON form is
// byte-stable (golden-testable).
func (p *Plan) Explain(in ExplainInput) *apiv1.PlanNode {
	scan := &apiv1.PlanNode{
		Op: "scan",
		Detail: map[string]any{
			"table":  p.tableName,
			"source": in.Source,
			"rows":   in.Rows,
		},
	}
	if in.SampleKey != "" {
		scan.Detail["sample_key"] = in.SampleKey
	}
	if in.TargetCV > 0 {
		scan.Detail["target_cv"] = in.TargetCV
	}
	node := scan

	if p.where != nil {
		node = &apiv1.PlanNode{
			Op:       "filter",
			Detail:   map[string]any{"predicate": p.whereStr},
			Children: []*apiv1.PlanNode{node},
		}
	}

	aggDetail := map[string]any{
		"aggregates":    p.aggLabels,
		"grouping_sets": len(p.sets),
	}
	if len(p.groupAttrs) > 0 {
		aggDetail["group_by"] = p.groupAttrs
	}
	if p.cube {
		aggDetail["cube"] = true
	}
	if p.having != nil {
		aggDetail["having"] = p.havingStr
	}
	node = &apiv1.PlanNode{Op: "aggregate", Detail: aggDetail, Children: []*apiv1.PlanNode{node}}

	if len(p.orderBy) > 0 || p.limit > 0 {
		sortDetail := map[string]any{}
		if len(p.orderStrs) > 0 {
			sortDetail["order_by"] = p.orderStrs
		}
		if p.limit > 0 {
			sortDetail["limit"] = p.limit
		}
		node = &apiv1.PlanNode{Op: "sort", Detail: sortDetail, Children: []*apiv1.PlanNode{node}}
	}

	columns := append(append([]string(nil), p.groupAttrs...), p.aggLabels...)
	return &apiv1.PlanNode{
		Op:       "output",
		Detail:   map[string]any{"columns": columns},
		Children: []*apiv1.PlanNode{node},
	}
}
