package plan_test

// Deterministic unit tests for the planner's edges: rejection
// taxonomy (ErrNotPlannable vs hard errors), schema re-binding, the
// rows/weights contract, and a handful of semantic corners pinned as
// fixed cases (the randomized oracle in differential_test.go covers
// the same ground statistically; these are the human-readable
// counterexamples-by-construction).

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func miniTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("mini", table.Schema{
		{Name: "cat", Kind: table.String},
		{Name: "tag", Kind: table.String},
		{Name: "v", Kind: table.Float},
		{Name: "n", Kind: table.Int},
	})
	rows := []struct {
		cat, tag string
		v        float64
		n        int64
	}{
		{"a", "x", 1.5, 1}, {"b", "y", -2, 2}, {"a", "a", 0, 3},
		{"c", "x", 10, 4}, {"b", "b", 7.25, 5}, {"a", "x", math.Pi, 6},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.cat, r.tag, r.v, r.n); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func mustPlan(t *testing.T, tbl *table.Table, sql string) *plan.Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := plan.Compile(tbl, q)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	return p
}

// runBoth executes sql through both executors and requires bit-equal
// aggregates, returning the interpreter's result.
func runBoth(t *testing.T, tbl *table.Table, sql string) *exec.Result {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Compile(tbl, q)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	want, err := exec.Run(tbl, q)
	if err != nil {
		t.Fatalf("interpret %q: %v", sql, err)
	}
	got, err := p.Execute(tbl, nil, nil)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("divergence on %q: %s", sql, d)
	}
	return want
}

func TestPlanSemanticCorners(t *testing.T) {
	tbl := miniTable(t)
	for _, sql := range []string{
		// boolean under a numeric aggregate: asNum(bool)
		"SELECT cat, SUM((v > 1)) FROM mini GROUP BY cat",
		// string column vs column, all six operators
		"SELECT COUNT_IF(cat = tag), COUNT_IF(cat != tag), COUNT_IF(cat < tag), COUNT_IF(cat <= tag), COUNT_IF(cat > tag), COUNT_IF(cat >= tag) FROM mini",
		// literal-vs-column orientations
		"SELECT COUNT_IF('b' < cat), COUNT_IF(cat > 'b'), COUNT_IF('b' = 'b'), COUNT_IF('a' != 'b') FROM mini",
		// mixed-kind comparisons constant-fold: != true, everything else false
		"SELECT COUNT_IF(cat = 1), COUNT_IF(cat != 1), COUNT_IF(cat < 1), COUNT_IF(1 >= tag) FROM mini",
		// string in arithmetic reads the num field (0); under an
		// aggregate it goes through asNum (NaN)
		"SELECT SUM(cat + v), MIN(cat) FROM mini",
		// division by zero is NaN, which MIN/MAX must propagate like
		// the interpreter (first-NaN sticks)
		"SELECT MIN(v / 0), MAX(v / 0), AVG(n / n) FROM mini",
		// HAVING with BETWEEN and NOT over aggregate expressions
		"SELECT cat, COUNT(*) FROM mini GROUP BY cat HAVING COUNT(*) BETWEEN 2 AND 9 AND NOT SUM(v) < 0",
		// IF with boolean branches in a predicate
		"SELECT COUNT_IF(IF(v > 0, cat = 'a', cat = 'b')) FROM mini",
		// empty result: nothing passes the filter
		"SELECT cat, AVG(v) FROM mini WHERE v > 1e9 GROUP BY cat",
	} {
		runBoth(t, tbl, sql)
	}
}

func TestPlanRejections(t *testing.T) {
	tbl := miniTable(t)
	cases := []struct {
		sql          string
		notPlannable bool // expect ErrNotPlannable specifically
	}{
		{"SELECT AVG(IF(v > 0, v, cat)) FROM mini", true},
		{"SELECT AVG(IF(v > 0, cat, tag)) FROM mini", true},
		{"SELECT AVG(nope) FROM mini", false},
		{"SELECT AVG(v) FROM elsewhere", false},
		{"SELECT cat FROM mini", false},                    // no aggregate outputs
		{"SELECT v, AVG(v) FROM mini", false},              // ungrouped column ref
		{"SELECT cat, AVG(v) FROM mini GROUP BY v", false}, // grouping a Float
	}
	for _, c := range cases {
		q, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		_, err = plan.Compile(tbl, q)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", c.sql)
			continue
		}
		if got := errors.Is(err, plan.ErrNotPlannable); got != c.notPlannable {
			t.Errorf("Compile(%q): errors.Is(ErrNotPlannable) = %v, want %v (err: %v)",
				c.sql, got, c.notPlannable, err)
		}
	}
}

func TestPlanBindCheck(t *testing.T) {
	tbl := miniTable(t)
	p := mustPlan(t, tbl, "SELECT cat, AVG(v) FROM mini GROUP BY cat")

	// same schema, new snapshot: fine (the streaming case)
	again := miniTable(t)
	if _, err := p.Execute(again, nil, nil); err != nil {
		t.Fatalf("re-binding an identical schema should work: %v", err)
	}

	// column count changed
	fewer := table.New("mini", table.Schema{{Name: "cat", Kind: table.String}})
	if _, err := p.Execute(fewer, nil, nil); err == nil {
		t.Fatal("executing against a narrower schema must fail")
	}

	// column kind changed
	mutated := table.New("mini", table.Schema{
		{Name: "cat", Kind: table.String},
		{Name: "tag", Kind: table.String},
		{Name: "v", Kind: table.Int}, // was Float
		{Name: "n", Kind: table.Int},
	})
	if _, err := p.Execute(mutated, nil, nil); err == nil {
		t.Fatal("executing against a kind-changed schema must fail")
	} else if !strings.Contains(err.Error(), "changed kind") {
		t.Fatalf("want a changed-kind error, got: %v", err)
	}
}

func TestPlanExecuteRowWeightContract(t *testing.T) {
	tbl := miniTable(t)
	p := mustPlan(t, tbl, "SELECT cat, AVG(v) FROM mini GROUP BY cat")
	if _, err := p.Execute(tbl, []int32{0, 1}, []float64{2}); err == nil {
		t.Fatal("mismatched rows/weights lengths must fail")
	}
	res, err := p.Execute(tbl, []int32{0, 0, 5}, []float64{2, 3, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.SE == nil {
			t.Fatal("weighted execution must attach SE estimates")
		}
	}
}
