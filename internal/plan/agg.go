package plan

import "math"

// aggKind mirrors the interpreter's aggregate-site kinds.
type aggKind uint8

const (
	aggAvg aggKind = iota
	aggSum
	aggCount
	aggCountIf
	aggMin
	aggMax
	aggVar
	aggStdDev
)

// aggAcc accumulates one aggregate site for one group. It is a field-
// for-field copy of exec.aggState, and accumulate/final/stdErr repeat
// the interpreter's arithmetic operation for operation: the
// differential oracle asserts bit-identical outputs, so the columnar
// path must perform the same float64 computations in the same order,
// not merely algebraically equivalent ones.
type aggAcc struct {
	sumW, sumWX float64
	sumWX2      float64
	sumW2       float64
	sumW2X      float64
	sumW2X2     float64
	nObs        int64
	minV, maxV  float64
	seen        bool
}

func (s *aggAcc) accumulate(x, w float64) {
	s.sumW += w
	s.sumWX += w * x
	s.sumWX2 += w * x * x
	s.sumW2 += w * w
	s.sumW2X += w * w * x
	s.sumW2X2 += w * w * x * x
	s.nObs++
}

func (s *aggAcc) stdErr(kind aggKind) float64 {
	if s.nObs == 0 || s.sumW <= 0 {
		return math.NaN()
	}
	fpc := 1 - float64(s.nObs)/s.sumW
	if fpc < 0 {
		fpc = 0
	}
	switch kind {
	case aggAvg:
		mean := s.sumWX / s.sumW
		v := s.sumW2X2 - 2*mean*s.sumW2X + mean*mean*s.sumW2
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v*fpc) / s.sumW
	case aggSum, aggCount, aggCountIf:
		if s.nObs < 2 {
			if fpc == 0 {
				return 0
			}
			return math.NaN()
		}
		k := float64(s.nObs)
		v := (k*s.sumW2X2 - s.sumWX*s.sumWX) / (k - 1)
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v * fpc)
	default:
		return math.NaN()
	}
}

func (s *aggAcc) final(kind aggKind) float64 {
	switch kind {
	case aggAvg:
		if s.sumW == 0 {
			return math.NaN()
		}
		return s.sumWX / s.sumW
	case aggSum, aggCount, aggCountIf:
		return s.sumWX
	case aggVar, aggStdDev:
		if s.sumW == 0 {
			return math.NaN()
		}
		mean := s.sumWX / s.sumW
		v := s.sumWX2/s.sumW - mean*mean
		if v < 0 {
			v = 0
		}
		if kind == aggStdDev {
			return math.Sqrt(v)
		}
		return v
	case aggMin:
		if !s.seen {
			return math.NaN()
		}
		return s.minV
	default: // aggMax
		if !s.seen {
			return math.NaN()
		}
		return s.maxV
	}
}
