package plan_test

// The differential oracle. The row interpreter (internal/exec) is the
// reference semantics of the engine; the columnar executor is an
// optimization that must be invisible. This harness generates
// randomized (table, query) cases — group-bys over datagen's synthetic
// OpenAQ and Bikes schemas with predicates, CUBE, HAVING, ORDER BY and
// LIMIT — runs every case through both executors, exact and weighted,
// and fails on ANY divergence: group keys, row order, aggregate
// values, standard-error estimates. Floats are compared bit-for-bit
// (math.Float64bits), so "close enough" does not exist here: the
// columnar executor is required to perform the same float64 operations
// in the same order as the interpreter.
//
// Every generated query must also compile — the generator emits only
// the plannable subset, so a Compile rejection is a planner
// regression, not a skip.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// genTable is one generation target: a table plus the column
// vocabulary the query generator draws from.
type genTable struct {
	tbl       *table.Table
	strCols   []string            // String columns (comparisons, IN, grouping)
	numCols   []string            // Float and Int columns (arithmetic, aggregates)
	groupCols []string            // groupable columns (String and Int)
	strVals   map[string][]string // sampled dictionary values per string column
}

var (
	oracleOnce   sync.Once
	oracleTables []*genTable
)

// oracleCorpus builds the generation targets once: OpenAQ and Bikes
// instances of varied size, cardinality and seed, including a
// deliberately tiny one so empty groups and single-row strata get
// exercised.
func oracleCorpus(t *testing.T) []*genTable {
	t.Helper()
	oracleOnce.Do(func() {
		type spec struct {
			build func() (*table.Table, error)
		}
		specs := []spec{
			{func() (*table.Table, error) {
				return datagen.OpenAQ(datagen.OpenAQConfig{Rows: 400, Countries: 3, Seed: 11})
			}},
			{func() (*table.Table, error) {
				return datagen.OpenAQ(datagen.OpenAQConfig{Rows: 900, Countries: 8, Seed: 12})
			}},
			{func() (*table.Table, error) {
				return datagen.OpenAQ(datagen.OpenAQConfig{Rows: 1500, Countries: 15, Seed: 13})
			}},
			{func() (*table.Table, error) {
				return datagen.OpenAQ(datagen.OpenAQConfig{Rows: 50, Countries: 2, Seed: 14})
			}},
			{func() (*table.Table, error) {
				return datagen.Bikes(datagen.BikesConfig{Rows: 600, Stations: 12, Seed: 15})
			}},
			{func() (*table.Table, error) {
				return datagen.Bikes(datagen.BikesConfig{Rows: 1200, Stations: 40, Seed: 16})
			}},
		}
		for _, s := range specs {
			tbl, err := s.build()
			if err != nil {
				panic(err)
			}
			oracleTables = append(oracleTables, newGenTable(tbl))
		}
	})
	return oracleTables
}

func newGenTable(tbl *table.Table) *genTable {
	gt := &genTable{tbl: tbl, strVals: map[string][]string{}}
	rng := rand.New(rand.NewSource(int64(tbl.NumRows())))
	for _, col := range tbl.Columns {
		name := col.Spec.Name
		switch col.Spec.Kind {
		case table.String:
			gt.strCols = append(gt.strCols, name)
			gt.groupCols = append(gt.groupCols, name)
			seen := map[string]bool{}
			for i := 0; i < 12 && tbl.NumRows() > 0; i++ {
				v := col.StringAt(rng.Intn(tbl.NumRows()))
				if !seen[v] {
					seen[v] = true
					gt.strVals[name] = append(gt.strVals[name], v)
				}
			}
		case table.Int:
			gt.numCols = append(gt.numCols, name)
			gt.groupCols = append(gt.groupCols, name)
		case table.Float:
			gt.numCols = append(gt.numCols, name)
		}
	}
	return gt
}

// --- query generation ---------------------------------------------------

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// genNumLit emits small literals that survive the %g render/reparse
// round trip exactly.
func genNumLit(rng *rand.Rand) string {
	v := float64(rng.Intn(200)-50) / 4
	return fmt.Sprintf("%g", v)
}

// genNumExpr emits a numeric scalar expression. At depth 0 it bottoms
// out on columns and literals. When allowStr is set, a rare
// string-column leaf exercises the interpreter's string-in-arithmetic
// semantics (the value's num field, 0) and the NaN path when it lands
// directly under an aggregate; IF branches clear it, because a bare
// string leaf at a branch root makes the branch kinds diverge — the
// one shape the planner (deliberately) rejects.
func genNumExpr(rng *rand.Rand, gt *genTable, depth int, allowStr bool) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(8) {
		case 0:
			return genNumLit(rng)
		case 1:
			if allowStr && len(gt.strCols) > 0 && rng.Intn(10) == 0 {
				return pick(rng, gt.strCols)
			}
			return pick(rng, gt.numCols)
		default:
			return pick(rng, gt.numCols)
		}
	}
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(-%s)", genNumExpr(rng, gt, depth-1, allowStr))
	case 1:
		return fmt.Sprintf("ABS(%s)", genNumExpr(rng, gt, depth-1, allowStr))
	case 2:
		return fmt.Sprintf("IF(%s, %s, %s)",
			genBoolExpr(rng, gt, depth-1, true),
			genNumExpr(rng, gt, depth-1, false), genNumExpr(rng, gt, depth-1, false))
	default:
		op := pick(rng, []string{"+", "-", "*", "/"})
		return fmt.Sprintf("(%s %s %s)",
			genNumExpr(rng, gt, depth-1, allowStr), op, genNumExpr(rng, gt, depth-1, allowStr))
	}
}

var cmpOps = []string{"=", "!=", "<", "<=", ">", ">="}

// genBoolExpr emits a predicate: numeric comparisons, string
// comparisons against (mostly resident) dictionary values, IN,
// BETWEEN, boolean combinators, and — rarely — the deliberately odd
// cases: a mixed-kind comparison (constant-folds) and a bare numeric
// expression used for its truthiness. allowTruthy gates the latter;
// IF branches clear it so both branches stay boolean-kinded (a
// numeric-rooted branch beside a boolean one is the planner's one
// rejection shape).
func genBoolExpr(rng *rand.Rand, gt *genTable, depth int, allowTruthy bool) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(10) {
		case 0, 1, 2:
			if len(gt.strCols) > 0 {
				col := pick(rng, gt.strCols)
				lit := "'zzz-absent'"
				if vs := gt.strVals[col]; len(vs) > 0 && rng.Intn(5) != 0 {
					lit = "'" + strings.ReplaceAll(pick(rng, vs), "'", "''") + "'"
				}
				return fmt.Sprintf("(%s %s %s)", col, pick(rng, cmpOps), lit)
			}
			fallthrough
		case 3:
			if len(gt.strCols) > 0 {
				col := pick(rng, gt.strCols)
				var items []string
				for i, vs := 0, gt.strVals[col]; i < 1+rng.Intn(3) && len(vs) > 0; i++ {
					items = append(items, "'"+strings.ReplaceAll(pick(rng, vs), "'", "''")+"'")
				}
				if len(items) > 0 {
					return fmt.Sprintf("(%s IN (%s))", col, strings.Join(items, ", "))
				}
			}
			fallthrough
		case 4:
			lo := rng.Intn(40)
			return fmt.Sprintf("(%s BETWEEN %d AND %d)", pick(rng, gt.numCols), lo, lo+rng.Intn(60))
		case 5:
			if rng.Intn(4) == 0 && len(gt.strCols) > 0 {
				// mixed-kind comparison: constant-folds in the planner,
				// NaN-compares in the interpreter — must agree
				return fmt.Sprintf("(%s %s %s)", pick(rng, gt.strCols), pick(rng, cmpOps), genNumLit(rng))
			}
			fallthrough
		case 6:
			if len(gt.strCols) >= 2 {
				// string column vs column: lexicographic per row
				return fmt.Sprintf("(%s %s %s)",
					pick(rng, gt.strCols), pick(rng, cmpOps), pick(rng, gt.strCols))
			}
			fallthrough
		default:
			return fmt.Sprintf("(%s %s %s)",
				genNumExpr(rng, gt, 0, true), pick(rng, cmpOps), genNumExpr(rng, gt, 0, true))
		}
	}
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(NOT %s)", genBoolExpr(rng, gt, depth-1, allowTruthy))
	case 1:
		if allowTruthy {
			// numeric truthiness: WHERE x means WHERE x != 0
			return genNumExpr(rng, gt, depth-1, true)
		}
		fallthrough
	case 2:
		return fmt.Sprintf("IF(%s, %s, %s)",
			genBoolExpr(rng, gt, depth-1, true),
			genBoolExpr(rng, gt, depth-1, false), genBoolExpr(rng, gt, depth-1, false))
	default:
		op := pick(rng, []string{"AND", "OR"})
		return fmt.Sprintf("(%s %s %s)",
			genBoolExpr(rng, gt, depth-1, allowTruthy), op, genBoolExpr(rng, gt, depth-1, allowTruthy))
	}
}

// genAggItem emits one aggregate select item (without alias).
func genAggItem(rng *rand.Rand, gt *genTable) string {
	switch rng.Intn(12) {
	case 0:
		return "COUNT(*)"
	case 1:
		return fmt.Sprintf("COUNT(%s)", genNumExpr(rng, gt, 1, true))
	case 2:
		return fmt.Sprintf("COUNT_IF(%s)", genBoolExpr(rng, gt, 1, true))
	case 3:
		return fmt.Sprintf("(SUM(%s) / COUNT(*))", pick(rng, gt.numCols))
	case 4:
		return fmt.Sprintf("(AVG(%s) + %s)", pick(rng, gt.numCols), genNumLit(rng))
	case 5:
		return fmt.Sprintf("(-SUM(%s))", genNumExpr(rng, gt, 1, true))
	case 6:
		return fmt.Sprintf("%s(%s)", pick(rng, []string{"VAR", "STDDEV"}), pick(rng, gt.numCols))
	case 7:
		return fmt.Sprintf("%s(%s)", pick(rng, []string{"MIN", "MAX"}), genNumExpr(rng, gt, 1, true))
	case 8:
		// boolean under a numeric aggregate: asNum(true)=1, asNum(false)=0
		return fmt.Sprintf("SUM(%s)", genBoolExpr(rng, gt, 1, true))
	default:
		return fmt.Sprintf("%s(%s)", pick(rng, []string{"AVG", "SUM"}), genNumExpr(rng, gt, rng.Intn(3), true))
	}
}

// genQuery emits one complete, valid, plannable SQL query against gt.
func genQuery(rng *rand.Rand, gt *genTable) string {
	// group-by subset: 0, 1 or 2 groupable columns
	nGroup := rng.Intn(3)
	perm := rng.Perm(len(gt.groupCols))
	var groupBy []string
	for i := 0; i < nGroup && i < len(perm); i++ {
		groupBy = append(groupBy, gt.groupCols[perm[i]])
	}

	var selects []string
	selects = append(selects, groupBy...)
	nAgg := 1 + rng.Intn(3)
	var orderables []string // ORDER BY vocabulary: group cols, aliases, renderings
	orderables = append(orderables, groupBy...)
	for i := 0; i < nAgg; i++ {
		item := genAggItem(rng, gt)
		if rng.Intn(2) == 0 {
			alias := fmt.Sprintf("a%d", i)
			selects = append(selects, item+" AS "+alias)
			orderables = append(orderables, alias)
		} else {
			selects = append(selects, item)
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(selects, ", "))
	sb.WriteString(" FROM " + gt.tbl.Name)
	if rng.Intn(5) != 0 {
		sb.WriteString(" WHERE " + genBoolExpr(rng, gt, 1+rng.Intn(2), true))
	}
	if len(groupBy) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(groupBy, ", "))
		if rng.Intn(5) == 0 {
			sb.WriteString(" WITH CUBE")
		}
	}
	if rng.Intn(4) == 0 {
		sb.WriteString(" HAVING " + genHaving(rng, gt))
	}
	if rng.Intn(5) < 2 && len(orderables) > 0 {
		var keys []string
		for i := 0; i < 1+rng.Intn(2); i++ {
			k := pick(rng, orderables)
			if rng.Intn(2) == 0 {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		sb.WriteString(" ORDER BY " + strings.Join(keys, ", "))
	}
	if rng.Intn(10) < 3 {
		fmt.Fprintf(&sb, " LIMIT %d", 1+rng.Intn(20))
	}
	return sb.String()
}

// genHaving emits a HAVING condition over aggregate expressions.
func genHaving(rng *rand.Rand, gt *genTable) string {
	leaf := func() string {
		return fmt.Sprintf("(%s %s %s)", genAggItem(rng, gt), pick(rng, cmpOps), genNumLit(rng))
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", leaf(), pick(rng, []string{"AND", "OR"}), leaf())
	case 1:
		return fmt.Sprintf("(NOT %s)", leaf())
	default:
		return leaf()
	}
}

// --- result comparison --------------------------------------------------

// sameF64 is bit-identity with NaN == NaN: the oracle's float equality.
func sameF64(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func sameStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffResults reports the first divergence between the interpreter's
// result and the columnar executor's, or "" when bit-identical.
func diffResults(want, got *exec.Result) string {
	if !sameStrs(want.GroupAttrs, got.GroupAttrs) {
		return fmt.Sprintf("GroupAttrs: %v vs %v", want.GroupAttrs, got.GroupAttrs)
	}
	if len(want.Sets) != len(got.Sets) {
		return fmt.Sprintf("Sets: %d vs %d", len(want.Sets), len(got.Sets))
	}
	for i := range want.Sets {
		if !sameStrs(want.Sets[i], got.Sets[i]) {
			return fmt.Sprintf("Sets[%d]: %v vs %v", i, want.Sets[i], got.Sets[i])
		}
	}
	if !sameStrs(want.AggLabels, got.AggLabels) {
		return fmt.Sprintf("AggLabels: %v vs %v", want.AggLabels, got.AggLabels)
	}
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count: %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		w, g := &want.Rows[i], &got.Rows[i]
		if w.Set != g.Set {
			return fmt.Sprintf("row %d: Set %d vs %d", i, w.Set, g.Set)
		}
		if !sameStrs(w.Key, g.Key) {
			return fmt.Sprintf("row %d: Key %q vs %q", i, w.Key, g.Key)
		}
		if len(w.Aggs) != len(g.Aggs) {
			return fmt.Sprintf("row %d: %d aggs vs %d", i, len(w.Aggs), len(g.Aggs))
		}
		for j := range w.Aggs {
			if !sameF64(w.Aggs[j], g.Aggs[j]) {
				return fmt.Sprintf("row %d agg %d: %v (%#x) vs %v (%#x)", i, j,
					w.Aggs[j], math.Float64bits(w.Aggs[j]), g.Aggs[j], math.Float64bits(g.Aggs[j]))
			}
		}
		if (w.SE == nil) != (g.SE == nil) || len(w.SE) != len(g.SE) {
			return fmt.Sprintf("row %d: SE shape %v vs %v", i, w.SE, g.SE)
		}
		for j := range w.SE {
			if !sameF64(w.SE[j], g.SE[j]) {
				return fmt.Sprintf("row %d SE %d: %v (%#x) vs %v (%#x)", i, j,
					w.SE[j], math.Float64bits(w.SE[j]), g.SE[j], math.Float64bits(g.SE[j]))
			}
		}
	}
	return ""
}

// --- the oracle ---------------------------------------------------------

// oracleCase runs one generated case through both executors, exact and
// weighted, and fails on any divergence.
func oracleCase(t *testing.T, gt *genTable, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sql := genQuery(rng, gt)

	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("case %d: generator emitted unparseable SQL %q: %v", seed, sql, err)
	}
	p, err := plan.Compile(gt.tbl, q)
	if err != nil {
		t.Fatalf("case %d: planner rejected %q: %v", seed, sql, err)
	}

	// exact path
	want, err := exec.Run(gt.tbl, q)
	if err != nil {
		t.Fatalf("case %d: interpreter rejected %q: %v", seed, sql, err)
	}
	got, err := p.Execute(gt.tbl, nil, nil)
	if err != nil {
		t.Fatalf("case %d: columnar executor failed on %q: %v", seed, sql, err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("case %d: exact divergence on %q:\n  %s", seed, sql, d)
	}

	// weighted path: a random multiset of rows with non-unit weights
	n := 1 + rng.Intn(gt.tbl.NumRows())
	rows := make([]int32, n)
	weights := make([]float64, n)
	for i := range rows {
		rows[i] = int32(rng.Intn(gt.tbl.NumRows()))
		weights[i] = 0.25 + rng.Float64()*50
	}
	want, err = exec.RunWeighted(gt.tbl, q, rows, weights)
	if err != nil {
		t.Fatalf("case %d: weighted interpreter rejected %q: %v", seed, sql, err)
	}
	got, err = p.Execute(gt.tbl, rows, weights)
	if err != nil {
		t.Fatalf("case %d: weighted columnar executor failed on %q: %v", seed, sql, err)
	}
	if d := diffResults(want, got); d != "" {
		t.Fatalf("case %d: weighted divergence on %q:\n  %s", seed, sql, d)
	}
}

// TestDifferentialOracle is the headline correctness gate: 1200
// randomized cases (150 under -short), sharded across parallel
// subtests so the executors also run concurrently under -race.
func TestDifferentialOracle(t *testing.T) {
	tables := oracleCorpus(t)
	cases := 1200
	if testing.Short() {
		cases = 150
	}
	const shards = 8
	per := (cases + shards - 1) / shards
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < per; i++ {
				seed := int64(s*per + i)
				gt := tables[int(seed)%len(tables)]
				oracleCase(t, gt, seed)
			}
		})
	}
}
