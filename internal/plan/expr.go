package plan

import (
	"fmt"
	"math"

	"repro/internal/sqlparse"
	"repro/internal/table"
)

// vkind is the statically inferred kind of a compiled expression. The
// row interpreter (internal/exec) carries kinds on runtime values; the
// planner infers them once at compile time so batch kernels can run
// over unboxed typed slices. Expressions whose kind cannot be pinned
// statically (e.g. IF with differently-kinded branches) are rejected
// with ErrNotPlannable and served by the interpreter instead.
type vkind uint8

const (
	kNum vkind = iota
	kStr
	kBool
)

// numOp evaluates to a float64 vector over the current batch. The
// returned slice is owned by the execution context (slot storage) and
// is valid until the same node is evaluated again.
type numOp interface {
	eval(ec *execCtx) []float64
}

// boolOp evaluates to a bool vector over the current batch.
type boolOp interface {
	eval(ec *execCtx) []bool
}

// strSrc is the only form string-kinded expressions take: a literal or
// a dictionary-encoded column. String values are never materialized
// per row — comparisons against literals become per-dictionary-code
// bool tables, so the inner loops touch only int32 codes.
type strSrc struct {
	isConst bool
	lit     string
	col     int // column index when !isConst
}

// cexpr is a compiled expression: a static kind plus the matching
// evaluator (num, b, or str).
type cexpr struct {
	kind vkind
	num  numOp
	b    boolOp
	str  strSrc
}

// execCtx is the per-execution scratch state. A Plan is immutable and
// shared across goroutines; everything mutable during evaluation —
// slot vectors, lazily built per-code tables (the dictionary belongs
// to the executing snapshot, not the plan) — lives here.
type execCtx struct {
	cols  []*table.Column
	rows  []int32 // absolute row ids of the current batch
	n     int
	nums  [][]float64
	bools [][]bool
	tabs  [][]bool // per-dict-code tables, built on first use
}

func newExecCtx(cols []*table.Column, numSlots, boolSlots, tabSlots int) *execCtx {
	ec := &execCtx{
		cols:  cols,
		nums:  make([][]float64, numSlots),
		bools: make([][]bool, boolSlots),
		tabs:  make([][]bool, tabSlots),
	}
	for i := range ec.nums {
		ec.nums[i] = make([]float64, batchSize)
	}
	for i := range ec.bools {
		ec.bools[i] = make([]bool, batchSize)
	}
	return ec
}

// cmpOp is a comparison operator, switched on once per batch rather
// than once per row.
type cmpOp uint8

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

var cmpOps = map[string]cmpOp{
	"=": opEq, "!=": opNe, "<": opLt, "<=": opLe, ">": opGt, ">=": opGe,
}

func cmpStr(op cmpOp, a, b string) bool {
	switch op {
	case opEq:
		return a == b
	case opNe:
		return a != b
	case opLt:
		return a < b
	case opLe:
		return a <= b
	case opGt:
		return a > b
	default:
		return a >= b
	}
}

// ---- numeric kernels ----

type numConst struct {
	v    float64
	slot int
}

func (o *numConst) eval(ec *execCtx) []float64 {
	out := ec.nums[o.slot][:ec.n]
	for i := range out {
		out[i] = o.v
	}
	return out
}

type numColFloat struct {
	col  int
	slot int
}

func (o *numColFloat) eval(ec *execCtx) []float64 {
	out := ec.nums[o.slot][:ec.n]
	src := ec.cols[o.col].Float
	for i, r := range ec.rows[:ec.n] {
		out[i] = src[r]
	}
	return out
}

type numColInt struct {
	col  int
	slot int
}

func (o *numColInt) eval(ec *execCtx) []float64 {
	out := ec.nums[o.slot][:ec.n]
	src := ec.cols[o.col].Int
	for i, r := range ec.rows[:ec.n] {
		out[i] = float64(src[r])
	}
	return out
}

// numFromBool is asNum over a boolean: true → 1, false → 0.
type numFromBool struct {
	x    boolOp
	slot int
}

func (o *numFromBool) eval(ec *execCtx) []float64 {
	xs := o.x.eval(ec)
	out := ec.nums[o.slot][:ec.n]
	for i, b := range xs {
		if b {
			out[i] = 1
		} else {
			out[i] = 0
		}
	}
	return out
}

type numBin struct {
	op   byte // '+', '-', '*', '/'
	l, r numOp
	slot int
}

func (o *numBin) eval(ec *execCtx) []float64 {
	a := o.l.eval(ec)
	b := o.r.eval(ec)
	out := ec.nums[o.slot][:ec.n]
	switch o.op {
	case '+':
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case '-':
		for i := range out {
			out[i] = a[i] - b[i]
		}
	case '*':
		for i := range out {
			out[i] = a[i] * b[i]
		}
	default: // '/' — division by zero is NaN, matching the interpreter
		for i := range out {
			if b[i] == 0 {
				out[i] = math.NaN()
			} else {
				out[i] = a[i] / b[i]
			}
		}
	}
	return out
}

type numNeg struct {
	x    numOp
	slot int
}

func (o *numNeg) eval(ec *execCtx) []float64 {
	xs := o.x.eval(ec)
	out := ec.nums[o.slot][:ec.n]
	for i := range out {
		out[i] = -xs[i]
	}
	return out
}

type numAbs struct {
	x    numOp
	slot int
}

func (o *numAbs) eval(ec *execCtx) []float64 {
	xs := o.x.eval(ec)
	out := ec.nums[o.slot][:ec.n]
	for i := range out {
		out[i] = math.Abs(xs[i])
	}
	return out
}

// numSelect is IF over numeric branches. Both branches are evaluated
// for the whole batch; expressions are pure, so this computes the same
// values the interpreter's lazy branch would.
type numSelect struct {
	cond boolOp
	a, b numOp
	slot int
}

func (o *numSelect) eval(ec *execCtx) []float64 {
	cs := o.cond.eval(ec)
	as := o.a.eval(ec)
	bs := o.b.eval(ec)
	out := ec.nums[o.slot][:ec.n]
	for i := range out {
		if cs[i] {
			out[i] = as[i]
		} else {
			out[i] = bs[i]
		}
	}
	return out
}

// ---- boolean kernels ----

type boolConst struct {
	v    bool
	slot int
}

func (o *boolConst) eval(ec *execCtx) []bool {
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		out[i] = o.v
	}
	return out
}

type boolCmpNum struct {
	op   cmpOp
	l, r numOp
	slot int
}

func (o *boolCmpNum) eval(ec *execCtx) []bool {
	a := o.l.eval(ec)
	b := o.r.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	switch o.op {
	case opEq:
		for i := range out {
			out[i] = a[i] == b[i]
		}
	case opNe:
		for i := range out {
			out[i] = a[i] != b[i]
		}
	case opLt:
		for i := range out {
			out[i] = a[i] < b[i]
		}
	case opLe:
		for i := range out {
			out[i] = a[i] <= b[i]
		}
	case opGt:
		for i := range out {
			out[i] = a[i] > b[i]
		}
	default:
		for i := range out {
			out[i] = a[i] >= b[i]
		}
	}
	return out
}

// boolStrTab evaluates any per-row predicate over one string column by
// precomputing its answer per dictionary code (comparison with a
// literal, IN membership, truthiness). The table is built lazily per
// execution — the dictionary belongs to the executing snapshot — and
// cached in the context, so the per-row cost is one int32 index.
type boolStrTab struct {
	col   int
	tab   int
	build func(d *table.Dict) []bool
	slot  int
}

func (o *boolStrTab) eval(ec *execCtx) []bool {
	tab := ec.tabs[o.tab]
	if tab == nil {
		tab = o.build(ec.cols[o.col].Dict)
		ec.tabs[o.tab] = tab
	}
	codes := ec.cols[o.col].Str
	out := ec.bools[o.slot][:ec.n]
	for i, r := range ec.rows[:ec.n] {
		out[i] = tab[codes[r]]
	}
	return out
}

// tabFromDict materializes a predicate over every dictionary value.
func tabFromDict(d *table.Dict, pred func(string) bool) []bool {
	t := make([]bool, d.Len())
	for i := range t {
		t[i] = pred(d.Value(int32(i)))
	}
	return t
}

// boolCmpStrCols compares two string columns row by row through their
// dictionaries (the rare string-vs-string-column case; no per-code
// table applies because both sides vary).
type boolCmpStrCols struct {
	op   cmpOp
	a, b int // column indexes
	slot int
}

func (o *boolCmpStrCols) eval(ec *execCtx) []bool {
	ca, cb := ec.cols[o.a], ec.cols[o.b]
	out := ec.bools[o.slot][:ec.n]
	for i, r := range ec.rows[:ec.n] {
		out[i] = cmpStr(o.op, ca.Dict.Value(ca.Str[r]), cb.Dict.Value(cb.Str[r]))
	}
	return out
}

type boolAnd struct {
	l, r boolOp
	slot int
}

func (o *boolAnd) eval(ec *execCtx) []bool {
	a := o.l.eval(ec)
	b := o.r.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		out[i] = a[i] && b[i]
	}
	return out
}

type boolOr struct {
	l, r boolOp
	slot int
}

func (o *boolOr) eval(ec *execCtx) []bool {
	a := o.l.eval(ec)
	b := o.r.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		out[i] = a[i] || b[i]
	}
	return out
}

type boolNot struct {
	x    boolOp
	slot int
}

func (o *boolNot) eval(ec *execCtx) []bool {
	xs := o.x.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		out[i] = !xs[i]
	}
	return out
}

// boolNumTruthy is truthiness of a numeric: v != 0 (NaN is truthy,
// matching the interpreter's `num != 0`).
type boolNumTruthy struct {
	x    numOp
	slot int
}

func (o *boolNumTruthy) eval(ec *execCtx) []bool {
	xs := o.x.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		out[i] = xs[i] != 0
	}
	return out
}

// boolSelect is IF over boolean branches.
type boolSelect struct {
	cond boolOp
	a, b boolOp
	slot int
}

func (o *boolSelect) eval(ec *execCtx) []bool {
	cs := o.cond.eval(ec)
	as := o.a.eval(ec)
	bs := o.b.eval(ec)
	out := ec.bools[o.slot][:ec.n]
	for i := range out {
		if cs[i] {
			out[i] = as[i]
		} else {
			out[i] = bs[i]
		}
	}
	return out
}

// ---- compiler ----

// compiler allocates slot storage while lowering expressions. Every
// node gets its own slot, so distinct expression trees never alias
// scratch vectors and evaluated vectors stay valid until their own
// node is re-evaluated.
type compiler struct {
	tbl   *table.Table
	nums  int
	bools int
	tabs  int
}

func (c *compiler) numSlot() int  { s := c.nums; c.nums++; return s }
func (c *compiler) boolSlot() int { s := c.bools; c.bools++; return s }
func (c *compiler) tabSlot() int  { s := c.tabs; c.tabs++; return s }

func (c *compiler) numExpr(op numOp) cexpr   { return cexpr{kind: kNum, num: op} }
func (c *compiler) boolExpr(op boolOp) cexpr { return cexpr{kind: kBool, b: op} }

// asNumOp converts to the interpreter's value.asNum semantics: numbers
// pass through, booleans become 0/1, strings become NaN.
func (c *compiler) asNumOp(x cexpr) numOp {
	switch x.kind {
	case kNum:
		return x.num
	case kBool:
		return &numFromBool{x: x.b, slot: c.numSlot()}
	default:
		return &numConst{v: math.NaN(), slot: c.numSlot()}
	}
}

// numFieldOp converts with the interpreter's raw `.num` field access
// used by arithmetic, unary minus and ABS: non-numeric values read as
// their zero num field.
func (c *compiler) numFieldOp(x cexpr) numOp {
	if x.kind == kNum {
		return x.num
	}
	return &numConst{v: 0, slot: c.numSlot()}
}

// truthyOp converts to the interpreter's value.truthy semantics.
func (c *compiler) truthyOp(x cexpr) boolOp {
	switch x.kind {
	case kBool:
		return x.b
	case kNum:
		return &boolNumTruthy{x: x.num, slot: c.boolSlot()}
	default:
		if x.str.isConst {
			return &boolConst{v: x.str.lit != "", slot: c.boolSlot()}
		}
		return &boolStrTab{
			col:   x.str.col,
			tab:   c.tabSlot(),
			build: func(d *table.Dict) []bool { return tabFromDict(d, func(v string) bool { return v != "" }) },
			slot:  c.boolSlot(),
		}
	}
}

// compileBool lowers an expression used in boolean context (WHERE,
// COUNT_IF argument).
func (c *compiler) compileBool(e sqlparse.Expr) (boolOp, error) {
	x, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	return c.truthyOp(x), nil
}

// compile lowers a scalar expression, mirroring exec.compileScalar's
// validation and value semantics exactly.
func (c *compiler) compile(e sqlparse.Expr) (cexpr, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		return c.numExpr(&numConst{v: n.Value, slot: c.numSlot()}), nil

	case *sqlparse.StringLit:
		return cexpr{kind: kStr, str: strSrc{isConst: true, lit: n.Value}}, nil

	case *sqlparse.ColumnRef:
		idx := c.tbl.ColumnIndex(n.Name)
		if idx < 0 {
			return cexpr{}, fmt.Errorf("plan: unknown column %q", n.Name)
		}
		switch c.tbl.Columns[idx].Spec.Kind {
		case table.String:
			return cexpr{kind: kStr, str: strSrc{col: idx}}, nil
		case table.Float:
			return c.numExpr(&numColFloat{col: idx, slot: c.numSlot()}), nil
		default: // Int
			return c.numExpr(&numColInt{col: idx, slot: c.numSlot()}), nil
		}

	case *sqlparse.UnaryExpr:
		inner, err := c.compile(n.Expr)
		if err != nil {
			return cexpr{}, err
		}
		switch n.Op {
		case "-":
			return c.numExpr(&numNeg{x: c.numFieldOp(inner), slot: c.numSlot()}), nil
		case "NOT":
			return c.boolExpr(&boolNot{x: c.truthyOp(inner), slot: c.boolSlot()}), nil
		}
		return cexpr{}, fmt.Errorf("plan: unknown unary operator %q", n.Op)

	case *sqlparse.BinaryExpr:
		left, err := c.compile(n.Left)
		if err != nil {
			return cexpr{}, err
		}
		right, err := c.compile(n.Right)
		if err != nil {
			return cexpr{}, err
		}
		switch n.Op {
		case "+", "-", "*", "/":
			return c.numExpr(&numBin{
				op:   n.Op[0],
				l:    c.numFieldOp(left),
				r:    c.numFieldOp(right),
				slot: c.numSlot(),
			}), nil
		case "=", "!=", "<", "<=", ">", ">=":
			return c.boolExpr(c.compileCmp(left, right, cmpOps[n.Op])), nil
		case "AND":
			return c.boolExpr(&boolAnd{l: c.truthyOp(left), r: c.truthyOp(right), slot: c.boolSlot()}), nil
		case "OR":
			return c.boolExpr(&boolOr{l: c.truthyOp(left), r: c.truthyOp(right), slot: c.boolSlot()}), nil
		}
		return cexpr{}, fmt.Errorf("plan: unknown operator %q", n.Op)

	case *sqlparse.BetweenExpr:
		x, err := c.compile(n.Expr)
		if err != nil {
			return cexpr{}, err
		}
		lo, err := c.compile(n.Lo)
		if err != nil {
			return cexpr{}, err
		}
		hi, err := c.compile(n.Hi)
		if err != nil {
			return cexpr{}, err
		}
		// x BETWEEN lo AND hi ≡ x >= lo AND x <= hi; sharing x's compiled
		// node between both comparisons recomputes the same pure values.
		return c.boolExpr(&boolAnd{
			l:    c.compileCmp(x, lo, opGe),
			r:    c.compileCmp(x, hi, opLe),
			slot: c.boolSlot(),
		}), nil

	case *sqlparse.InExpr:
		x, err := c.compile(n.Expr)
		if err != nil {
			return cexpr{}, err
		}
		items := make([]cexpr, len(n.Items))
		allStrConst := true
		for i, it := range n.Items {
			v, err := c.compile(it)
			if err != nil {
				return cexpr{}, err
			}
			items[i] = v
			if !(v.kind == kStr && v.str.isConst) {
				allStrConst = false
			}
		}
		if len(items) == 0 {
			return c.boolExpr(&boolConst{v: false, slot: c.boolSlot()}), nil
		}
		if x.kind == kStr && !x.str.isConst && allStrConst {
			// string column IN literal set: one per-code membership table
			set := make(map[string]bool, len(items))
			for _, v := range items {
				set[v.str.lit] = true
			}
			return c.boolExpr(&boolStrTab{
				col:   x.str.col,
				tab:   c.tabSlot(),
				build: func(d *table.Dict) []bool { return tabFromDict(d, func(v string) bool { return set[v] }) },
				slot:  c.boolSlot(),
			}), nil
		}
		var acc boolOp
		for _, v := range items {
			eq := c.compileCmp(x, v, opEq)
			if acc == nil {
				acc = eq
			} else {
				acc = &boolOr{l: acc, r: eq, slot: c.boolSlot()}
			}
		}
		return c.boolExpr(acc), nil

	case *sqlparse.FuncCall:
		if sqlparse.AggFuncs[n.Name] {
			return cexpr{}, fmt.Errorf("plan: aggregate %s not allowed in scalar context", n.Name)
		}
		switch n.Name {
		case "IF":
			if len(n.Args) != 3 {
				return cexpr{}, fmt.Errorf("plan: IF takes 3 arguments, got %d", len(n.Args))
			}
			cond, err := c.compileBool(n.Args[0])
			if err != nil {
				return cexpr{}, err
			}
			a, err := c.compile(n.Args[1])
			if err != nil {
				return cexpr{}, err
			}
			b, err := c.compile(n.Args[2])
			if err != nil {
				return cexpr{}, err
			}
			if a.kind != b.kind {
				return cexpr{}, fmt.Errorf("%w: IF branches have different kinds", ErrNotPlannable)
			}
			switch a.kind {
			case kNum:
				return c.numExpr(&numSelect{cond: cond, a: a.num, b: b.num, slot: c.numSlot()}), nil
			case kBool:
				return c.boolExpr(&boolSelect{cond: cond, a: a.b, b: b.b, slot: c.boolSlot()}), nil
			default:
				return cexpr{}, fmt.Errorf("%w: IF over string branches", ErrNotPlannable)
			}
		case "ABS":
			if len(n.Args) != 1 {
				return cexpr{}, fmt.Errorf("plan: ABS takes 1 argument")
			}
			a, err := c.compile(n.Args[0])
			if err != nil {
				return cexpr{}, err
			}
			return c.numExpr(&numAbs{x: c.numFieldOp(a), slot: c.numSlot()}), nil
		}
		return cexpr{}, fmt.Errorf("plan: unknown function %s", n.Name)
	}
	return cexpr{}, fmt.Errorf("plan: unsupported expression %T", e)
}

// compileCmp lowers a comparison with exec.compare's semantics: both
// sides string → lexicographic; otherwise both via asNum, which folds
// string-vs-numeric comparisons into constants (string asNum is NaN:
// != is always true, every other operator always false).
func (c *compiler) compileCmp(a, b cexpr, op cmpOp) boolOp {
	if a.kind == kStr && b.kind == kStr {
		switch {
		case a.str.isConst && b.str.isConst:
			return &boolConst{v: cmpStr(op, a.str.lit, b.str.lit), slot: c.boolSlot()}
		case !a.str.isConst && b.str.isConst:
			lit := b.str.lit
			return &boolStrTab{
				col:   a.str.col,
				tab:   c.tabSlot(),
				build: func(d *table.Dict) []bool { return tabFromDict(d, func(v string) bool { return cmpStr(op, v, lit) }) },
				slot:  c.boolSlot(),
			}
		case a.str.isConst && !b.str.isConst:
			lit := a.str.lit
			return &boolStrTab{
				col:   b.str.col,
				tab:   c.tabSlot(),
				build: func(d *table.Dict) []bool { return tabFromDict(d, func(v string) bool { return cmpStr(op, lit, v) }) },
				slot:  c.boolSlot(),
			}
		default:
			return &boolCmpStrCols{op: op, a: a.str.col, b: b.str.col, slot: c.boolSlot()}
		}
	}
	if a.kind == kStr || b.kind == kStr {
		// Mixed string/numeric comparison: the string side reads as NaN
		// under asNum, so the outcome is row-independent.
		return &boolConst{v: op == opNe, slot: c.boolSlot()}
	}
	return &boolCmpNum{op: op, l: c.asNumOp(a), r: c.asNumOp(b), slot: c.boolSlot()}
}
