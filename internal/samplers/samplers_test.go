package samplers

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// skewedTable builds a table with one dominant low-variance group, one
// small high-variance group and a tiny group — the setting where the
// samplers separate.
func skewedTable(t testing.TB) *table.Table {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(31))
	add := func(key string, n int, mean, sd float64) {
		for i := 0; i < n; i++ {
			if err := tbl.AppendRow(key, mean+sd*rng.NormFloat64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("big", 20000, 100, 5)
	add("mid", 2000, 50, 40)
	add("small", 60, 500, 250)
	return tbl
}

func specs() []core.QuerySpec {
	return []core.QuerySpec{{GroupBy: []string{"g"}, Aggs: []core.AggColumn{{Column: "v"}}}}
}

func TestAllSamplersRespectBudgetAndWeights(t *testing.T) {
	tbl := skewedTable(t)
	rng := rand.New(rand.NewSource(5))
	const m = 500
	for _, s := range WithSenate() {
		rs, err := s.Build(tbl, specs(), m, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if rs.Len() == 0 {
			t.Fatalf("%s produced empty sample", s.Name())
		}
		if rs.Len() > m+10 { // ceil-rounding slack only
			t.Fatalf("%s exceeded budget: %d > %d", s.Name(), rs.Len(), m)
		}
		var est float64
		for _, w := range rs.Weights {
			if w <= 0 {
				t.Fatalf("%s produced non-positive weight", s.Name())
			}
			est += w
		}
		n := float64(tbl.NumRows())
		if math.Abs(est-n)/n > 0.35 {
			t.Fatalf("%s weighted count %v far from %v", s.Name(), est, n)
		}
		for _, r := range rs.Rows {
			if r < 0 || int(r) >= tbl.NumRows() {
				t.Fatalf("%s sampled out-of-range row %d", s.Name(), r)
			}
		}
	}
}

func TestSamplerNames(t *testing.T) {
	want := map[string]bool{"Uniform": true, "Sample+Seek": true, "CS": true, "RL": true, "CVOPT": true, "Senate": true}
	for _, s := range WithSenate() {
		if !want[s.Name()] {
			t.Fatalf("unexpected sampler name %q", s.Name())
		}
	}
	inf := &CVOPT{Opts: core.Options{Norm: core.LInf}}
	if inf.Name() != "CVOPT-INF" {
		t.Fatalf("inf name = %q", inf.Name())
	}
	lp := &CVOPT{Opts: core.Options{Norm: core.Lp, P: 4}}
	if lp.Name() != "CVOPT-L4" {
		t.Fatalf("lp name = %q", lp.Name())
	}
	if len(All()) != 5 {
		t.Fatalf("All() should have 5 samplers")
	}
}

// The headline property: on skewed data with a fixed budget, CVOPT's
// worst-group error beats Uniform's by a wide margin, and beats or
// matches CS and RL (the Figure 1 shape).
func TestCVOPTBeatsBaselinesOnMaxError(t *testing.T) {
	tbl := skewedTable(t)
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	const m = 220 // ~1% of the table
	const reps = 5
	maxErr := map[string]float64{}
	for _, s := range All() {
		var sum float64
		for rep := 0; rep < reps; rep++ {
			rng := rand.New(rand.NewSource(int64(100 + rep)))
			rs, err := s.Build(tbl, specs(), m, rng)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
			if err != nil {
				t.Fatal(err)
			}
			sum += metrics.Summarize(metrics.GroupErrors(exact, approx)).Max
		}
		maxErr[s.Name()] = sum / reps
	}
	if maxErr["CVOPT"] >= maxErr["Uniform"] {
		t.Fatalf("CVOPT max err %v should beat Uniform %v", maxErr["CVOPT"], maxErr["Uniform"])
	}
	if maxErr["CVOPT"] > maxErr["CS"]*1.1 {
		t.Fatalf("CVOPT max err %v should not lose to CS %v", maxErr["CVOPT"], maxErr["CS"])
	}
	if maxErr["CVOPT"] > 0.5 {
		t.Fatalf("CVOPT max error implausibly high: %v", maxErr["CVOPT"])
	}
}

func TestUniformMissesTinyGroups(t *testing.T) {
	tbl := skewedTable(t)
	q, _ := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	// 0.1% sample: 22 rows over 22060 -> tiny group (60 rows, 0.27%)
	// almost surely missing
	rng := rand.New(rand.NewSource(77))
	missed := 0
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		rs, err := Uniform{}.Build(tbl, specs(), 22, rng)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := approx.Lookup(0, []string{"small"}); !ok {
			missed++
		}
	}
	if missed < reps/2 {
		t.Fatalf("tiny group should usually be missed by uniform: %d/%d", missed, reps)
	}
	// CVOPT must never miss it (min-per-stratum repair)
	for rep := 0; rep < reps; rep++ {
		rs, err := (&CVOPT{}).Build(tbl, specs(), 22, rng)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := approx.Lookup(0, []string{"small"}); !ok {
			t.Fatalf("CVOPT missed the small group")
		}
	}
}

func TestSenateEqualSplit(t *testing.T) {
	tbl := skewedTable(t)
	rng := rand.New(rand.NewSource(9))
	rs, err := Senate{}.Build(tbl, specs(), 90, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{} // weight -> rows (weight identifies stratum here)
	for _, w := range rs.Weights {
		counts[w]++
	}
	// 3 strata x 30 rows each
	if len(counts) != 3 {
		t.Fatalf("senate should hit 3 strata: %v", counts)
	}
	for w, c := range counts {
		if c != 30 {
			t.Fatalf("senate stratum with weight %v got %d rows, want 30", w, c)
		}
	}
}

func TestCongressDominatesHouseAndSenate(t *testing.T) {
	tbl := skewedTable(t)
	rng := rand.New(rand.NewSource(13))
	const m = 300
	rs, err := Congress{}.Build(tbl, specs(), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	// reconstruct per-stratum counts via weights: w = n_c/s_c
	gi, err := table.BuildGroupIndex(tbl, []string{"g"})
	if err != nil {
		t.Fatal(err)
	}
	perStratum := map[int]int{}
	for _, r := range rs.Rows {
		perStratum[int(gi.RowID[r])]++
	}
	nc := gi.StratumSizes()
	total := float64(tbl.NumRows())
	for c, got := range perStratum {
		house := float64(m) * float64(nc[c]) / total
		senate := float64(m) / 3.0
		// congress normalizes max(house, senate) shares; each stratum must
		// get at least ~60% of min share after normalization
		lower := math.Min(house, senate) * 0.5
		if float64(got) < lower {
			t.Fatalf("stratum %d got %d rows, below house/senate floor %v", c, got, lower)
		}
	}
	if len(perStratum) != 3 {
		t.Fatalf("CS must cover all strata")
	}
}

// RL allocates by CV ignoring group size: the tiny, huge-variance group
// demands more rows than it has; RL clips and loses the surplus, so the
// total drawn can fall visibly short of the budget.
func TestRLClipsOversizedAllocations(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10000; i++ {
		if err := tbl.AppendRow("calm", 100+rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := tbl.AppendRow("wild", 10+9*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	const m = 1000
	rs, err := RL{}.Build(tbl, specs(), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	// ideal RL share of "wild" is ~99% of 1000 rows, but it only has 40.
	if rs.Len() > 200 {
		t.Fatalf("RL should lose clipped budget (got %d of %d)", rs.Len(), m)
	}
	// CVOPT redistributes instead
	cv, err := (&CVOPT{}).Build(tbl, specs(), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Len() != m {
		t.Fatalf("CVOPT should spend the full budget: %d", cv.Len())
	}
}

func TestSampleSeekBiasedTowardLargeMeasures(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	for i := 0; i < 1000; i++ {
		key, val := "low", 1.0
		if i%2 == 0 {
			key, val = "high", 99.0
		}
		if err := tbl.AppendRow(key, val); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	rs, err := SampleSeek{}.Build(tbl, specs(), 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	gi, _ := table.BuildGroupIndex(tbl, []string{"g"})
	hi := 0
	for _, r := range rs.Rows {
		if gi.Key(int(gi.RowID[r])).String() == "high" {
			hi++
		}
	}
	if float64(hi)/float64(len(rs.Rows)) < 0.9 {
		t.Fatalf("measure-biased sampling should overwhelmingly pick large values: %d/%d", hi, len(rs.Rows))
	}
	// weighted COUNT still unbiased
	var est float64
	for _, w := range rs.Weights {
		est += w
	}
	if math.Abs(est-1000)/1000 > 0.25 {
		t.Fatalf("Sample+Seek weighted count = %v want ~1000", est)
	}
}

func TestSampleSeekHandlesNonPositiveMeasures(t *testing.T) {
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "v", Kind: table.Float},
	})
	for i := 0; i < 100; i++ {
		v := float64(i % 5)
		if i%7 == 0 {
			v = -3
		}
		if err := tbl.AppendRow("g", v); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	rs, err := SampleSeek{}.Build(tbl, specs(), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 50 {
		t.Fatalf("sample size = %d", rs.Len())
	}
}

func TestSamplerErrors(t *testing.T) {
	tbl := skewedTable(t)
	rng := rand.New(rand.NewSource(1))
	noGroup := []core.QuerySpec{}
	for _, s := range []Sampler{Senate{}, Congress{}} {
		if _, err := s.Build(tbl, noGroup, 10, rng); err == nil {
			t.Fatalf("%s should reject empty query set", s.Name())
		}
	}
	if _, err := (RL{}).Build(tbl, noGroup, 10, rng); err == nil {
		t.Fatalf("RL should reject empty query set")
	}
	if _, err := (SampleSeek{}).Build(tbl, noGroup, 10, rng); err == nil {
		t.Fatalf("Sample+Seek should reject empty query set")
	}
	if _, err := (&CVOPT{}).Build(tbl, noGroup, 10, rng); err == nil {
		t.Fatalf("CVOPT should reject empty query set")
	}
	badCol := []core.QuerySpec{{GroupBy: []string{"g"}, Aggs: []core.AggColumn{{Column: "zz"}}}}
	if _, err := (SampleSeek{}).Build(tbl, badCol, 10, rng); err == nil {
		t.Fatalf("Sample+Seek should reject unknown measure column")
	}
}

func TestUniformBudgetLargerThanTable(t *testing.T) {
	tbl := skewedTable(t)
	rng := rand.New(rand.NewSource(1))
	rs, err := Uniform{}.Build(tbl, specs(), tbl.NumRows()*2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != tbl.NumRows() {
		t.Fatalf("uniform should clamp to table size")
	}
	if rs.Weights[0] != 1 {
		t.Fatalf("full sample weight should be 1")
	}
}

// Multiple group-bys: every stratified sampler must stratify on the
// union and still cover all strata.
func TestSamplersMultiGroupBy(t *testing.T) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	qs := []core.QuerySpec{
		{GroupBy: []string{"country"}, Aggs: []core.AggColumn{{Column: "value"}}},
		{GroupBy: []string{"parameter"}, Aggs: []core.AggColumn{{Column: "value"}}},
	}
	rng := rand.New(rand.NewSource(2))
	for _, s := range []Sampler{Congress{}, RL{}, &CVOPT{}} {
		rs, err := s.Build(tbl, qs, 2000, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// every country and parameter must be represented
		giC, _ := table.BuildGroupIndex(tbl, []string{"country"})
		seen := make([]bool, giC.NumStrata())
		for _, r := range rs.Rows {
			seen[giC.RowID[r]] = true
		}
		if s.Name() != "RL" { // RL may legitimately starve groups
			for c, ok := range seen {
				if !ok {
					t.Fatalf("%s missed country %s", s.Name(), giC.Key(c))
				}
			}
		}
	}
}
