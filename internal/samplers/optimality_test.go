package samplers

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
)

// allocationOf reconstructs the per-stratum sample sizes a sampler chose
// by mapping its sampled rows back through the group index.
func allocationOf(t *testing.T, gi *table.GroupIndex, rs *RowSample) []int {
	t.Helper()
	alloc := make([]int, gi.NumStrata())
	for _, r := range rs.Rows {
		alloc[gi.RowID[r]]++
	}
	return alloc
}

// The paper's central claim, checked against every competitor: CVOPT's
// allocation minimizes the exact l2 objective, so no other method's
// allocation may score better (modulo integer rounding and budget
// underuse, tolerated via a 2% slack).
func TestCVOPTObjectiveDominatesCompetitors(t *testing.T) {
	tbl := skewedTable(t)
	qs := specs()
	plan, err := core.NewPlan(tbl, qs)
	if err != nil {
		t.Fatal(err)
	}
	const m = 400
	rng := rand.New(rand.NewSource(19))
	cvoptSample, err := (&CVOPT{}).Build(tbl, qs, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	cvoptObj := plan.ObjectiveL2(allocationOf(t, plan.Index, cvoptSample))
	for _, s := range []Sampler{Uniform{}, Senate{}, Congress{}, RL{}, SampleSeek{}} {
		rs, err := s.Build(tbl, qs, m, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		obj := plan.ObjectiveL2(allocationOf(t, plan.Index, rs))
		if cvoptObj > obj*1.02 {
			t.Fatalf("%s allocation scores %v on the l2 objective, better than CVOPT's %v", s.Name(), obj, cvoptObj)
		}
	}
}

// Allocation must depend only on per-stratum statistics, not on row
// order: shuffling the table leaves each group's sample size unchanged.
func TestAllocationRowOrderInvariant(t *testing.T) {
	base := skewedTable(t)
	perm := rand.New(rand.NewSource(23)).Perm(base.NumRows())
	shuffled := base.Select(perm)

	sizesByKey := func(tbl *table.Table) map[string]int {
		plan, err := core.NewPlan(tbl, specs())
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := plan.Allocate(300, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for c := 0; c < plan.NumStrata(); c++ {
			out[plan.Index.Key(c).String()] = alloc[c]
		}
		return out
	}
	a, b := sizesByKey(base), sizesByKey(shuffled)
	if len(a) != len(b) {
		t.Fatalf("stratum counts differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("group %s allocation changed with row order: %d vs %d", k, v, b[k])
		}
	}
}

// The l2 and linf samplers must produce different allocations on
// heterogeneous data (the norms genuinely trade mean for max).
func TestL2AndInfAllocationsDiffer(t *testing.T) {
	tbl := skewedTable(t)
	plan, err := core.NewPlan(tbl, specs())
	if err != nil {
		t.Fatal(err)
	}
	l2, err := plan.Allocate(400, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	linf, err := plan.Allocate(400, core.Options{Norm: core.LInf})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range l2 {
		if l2[i] != linf[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("l2 and linf allocations identical on heterogeneous data: %v", l2)
	}
}
