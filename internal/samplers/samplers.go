// Package samplers puts every sampling method of the paper's evaluation
// behind one interface: CVOPT (ℓ2 and ℓ∞) and the four competitors —
// Uniform, Congressional sampling (CS, Acharya et al.), RL (Rösch &
// Lehner) and Sample+Seek's measure-biased sampling (Ding et al.) — plus
// the Senate strategy CS builds on.
//
// Every sampler turns a table, the query specs the sample must serve,
// and a row budget M into a weighted row sample: row ids of the original
// table, each carrying a Horvitz-Thompson style weight such that the
// weighted sample is an unbiased (or, for the heuristics, approximately
// unbiased) representation of the full table. The query engine
// (internal/exec) evaluates any aggregate over the weighted rows.
package samplers

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/table"
)

// RowSample is a weighted row sample of a table.
type RowSample struct {
	Rows    []int32
	Weights []float64
}

// Len returns the number of sampled rows.
func (r *RowSample) Len() int { return len(r.Rows) }

// Sampler builds a weighted sample serving the given group-by queries
// within a budget of m rows.
type Sampler interface {
	Name() string
	Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error)
}

// fromStratified converts a stratified sample into weighted rows.
func fromStratified(ss *sample.StratifiedSample) *RowSample {
	rows, weights := core.RowWeights(ss)
	return &RowSample{Rows: rows, Weights: weights}
}

// stratify builds the finest stratification for the queries and returns
// the index plus per-stratum row lists; shared by the stratified
// competitors, which differ only in the allocation rule.
func stratify(tbl *table.Table, queries []core.QuerySpec) (*table.GroupIndex, [][]int32, error) {
	var attrs []string
	seen := map[string]bool{}
	for _, q := range queries {
		for _, a := range q.GroupBy {
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
	}
	if len(attrs) == 0 {
		return nil, nil, fmt.Errorf("samplers: queries declare no group-by attributes")
	}
	gi, err := table.BuildGroupIndex(tbl, attrs)
	if err != nil {
		return nil, nil, err
	}
	return gi, gi.RowsByStratum(), nil
}

// drawAndWeight draws the allocation and wraps it as a RowSample.
func drawAndWeight(rowsBy [][]int32, sizes []int, attrs []string, rng *rand.Rand) (*RowSample, error) {
	ss, err := sample.DrawStratified(rowsBy, sizes, attrs, rng)
	if err != nil {
		return nil, err
	}
	return fromStratified(ss), nil
}

// CVOPT is the paper's ℓ2-optimal sampler (Sections 3-4).
type CVOPT struct {
	Opts core.Options
}

// Name implements Sampler.
func (c *CVOPT) Name() string {
	switch c.Opts.Norm {
	case core.LInf:
		return "CVOPT-INF"
	case core.Lp:
		return fmt.Sprintf("CVOPT-L%g", c.Opts.P)
	default:
		return "CVOPT"
	}
}

// Build implements Sampler via core.Plan.
func (c *CVOPT) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	plan, err := core.NewPlan(tbl, queries)
	if err != nil {
		return nil, err
	}
	ss, _, err := plan.Sample(m, c.Opts, rng)
	if err != nil {
		return nil, err
	}
	return fromStratified(ss), nil
}

// Uniform samples m rows uniformly without replacement from the table.
// Per-group estimates are post-stratified: a sampled row's weight is
// n/m, so small groups are frequently missing — the failure mode the
// paper's Figure 1 shows.
type Uniform struct{}

// Name implements Sampler.
func (Uniform) Name() string { return "Uniform" }

// Build implements Sampler.
func (Uniform) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	n := tbl.NumRows()
	if m > n {
		m = n
	}
	rows := sample.UniformWithoutReplacement(n, m, rng)
	w := float64(n) / float64(len(rows))
	weights := make([]float64, len(rows))
	for i := range weights {
		weights[i] = w
	}
	return &RowSample{Rows: rows, Weights: weights}, nil
}

// Senate splits the budget equally among the strata of the finest
// stratification, ignoring size, mean and variance (the "senate"
// component of congressional sampling, used standalone as a baseline in
// Section 3.1).
type Senate struct{}

// Name implements Sampler.
func (Senate) Name() string { return "Senate" }

// Build implements Sampler.
func (Senate) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	gi, rowsBy, err := stratify(tbl, queries)
	if err != nil {
		return nil, err
	}
	r := gi.NumStrata()
	real := make([]float64, r)
	for i := range real {
		real[i] = float64(m) / float64(r)
	}
	sizes, err := core.RoundAllocation(real, gi.StratumSizes(), m, 1)
	if err != nil {
		return nil, err
	}
	return drawAndWeight(rowsBy, sizes, gi.Attrs, rng)
}

// Congress implements congressional sampling (CS): the allocation of a
// stratum is proportional to the maximum of its "house" share
// (frequency-proportional) and its "senate" share (equal split),
// generalized over all groupings of the submitted queries exactly as in
// the scaled-congress construction of Acharya et al.: for each query's
// grouping A, a stratum c's share under A is (1/|A-groups|)·(n_c /
// n_{Π(c,A)}); the house is the share under the empty grouping, n_c/n.
type Congress struct{}

// Name implements Sampler.
func (Congress) Name() string { return "CS" }

// Build implements Sampler.
func (Congress) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	gi, rowsBy, err := stratify(tbl, queries)
	if err != nil {
		return nil, err
	}
	nc := gi.StratumSizes()
	total := float64(tbl.NumRows())
	r := gi.NumStrata()
	share := make([]float64, r)
	// house
	for c := 0; c < r; c++ {
		share[c] = float64(nc[c]) / total
	}
	// senate + scaled congress per query grouping
	for _, q := range queries {
		f2c, keys, err := gi.Project(q.GroupBy)
		if err != nil {
			return nil, err
		}
		ng := make([]float64, len(keys))
		for c := 0; c < r; c++ {
			ng[f2c[c]] += float64(nc[c])
		}
		g := float64(len(keys))
		for c := 0; c < r; c++ {
			s := (1.0 / g) * float64(nc[c]) / ng[f2c[c]]
			if s > share[c] {
				share[c] = s
			}
		}
	}
	real := make([]float64, r)
	var sumShare float64
	for _, s := range share {
		sumShare += s
	}
	for c := 0; c < r; c++ {
		real[c] = float64(m) * share[c] / sumShare
	}
	sizes, err := core.RoundAllocation(real, nc, m, 1)
	if err != nil {
		return nil, err
	}
	return drawAndWeight(rowsBy, sizes, gi.Attrs, rng)
}

// RL implements the Rösch-Lehner heuristic: like CVOPT-SASG it sizes
// strata proportionally to the coefficient of variation, but — as the
// paper points out in Section 6.1 — it assumes groups are large, ignores
// group size when allocating, and may therefore assign a stratum more
// rows than it has; the excess is clipped and lost rather than
// redistributed, and no minimum-representation repair is applied. For
// multiple group-bys it follows a hierarchical-partitioning heuristic:
// the budget is split equally across queries, each query's share is
// allocated over its own groups by CV, and a group's quota is spread
// over its finest strata proportionally to stratum size.
type RL struct{}

// Name implements Sampler.
func (RL) Name() string { return "RL" }

// Build implements Sampler.
func (RL) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	plan, err := core.NewPlan(tbl, queries)
	if err != nil {
		return nil, err
	}
	gi := plan.Index
	nc := gi.StratumSizes()
	r := plan.NumStrata()
	real := make([]float64, r)
	perQuery := float64(m) / float64(len(queries))
	for qi, q := range plan.Queries {
		keys, coarse := plan.CoarseGroups(qi)
		f2c, _, err := gi.Project(q.GroupBy)
		if err != nil {
			return nil, err
		}
		// CV per coarse group, averaged over the query's aggregates.
		cv := make([]float64, len(keys))
		var cvSum float64
		for a := range keys {
			var v float64
			for _, ac := range q.Aggs {
				pos := planAggPos(plan, ac.Column)
				col := coarse[a].Cols[pos]
				if col.Mean != 0 {
					v += col.StdDev() / abs(col.Mean)
				}
			}
			cv[a] = v / float64(len(q.Aggs))
			cvSum += cv[a]
		}
		if cvSum == 0 {
			continue
		}
		// spread each group's quota over its strata by stratum size
		na := make([]float64, len(keys))
		for c := 0; c < r; c++ {
			na[f2c[c]] += float64(nc[c])
		}
		for c := 0; c < r; c++ {
			a := f2c[c]
			if na[a] == 0 {
				continue
			}
			real[c] += perQuery * (cv[a] / cvSum) * float64(nc[c]) / na[a]
		}
	}
	// RL's defining flaw: clip at the population without redistribution.
	sizes := make([]int, r)
	for c := 0; c < r; c++ {
		s := int(real[c] + 0.5)
		if int64(s) > nc[c] {
			s = int(nc[c])
		}
		sizes[c] = s
	}
	return drawAndWeight(gi.RowsByStratum(), sizes, gi.Attrs, rng)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// planAggPos finds the position of a column in the plan's aggregate
// union; the plan validated the column exists.
func planAggPos(p *core.Plan, col string) int {
	for i, c := range p.AggColumns() {
		if c == col {
			return i
		}
	}
	return 0
}

// SampleSeek implements the sampling component of Sample+Seek:
// measure-biased sampling, where a row is drawn with probability
// proportional to its value on the (first) aggregation column, with
// replacement. A drawn row's weight is Σv/(M·v_row), the inverse
// inclusion intensity. The paper notes this favors rows with large
// values but ignores within-group variability — a uniform large-valued
// group still soaks up samples. Rows with non-positive measure fall back
// to the minimum positive measure so they stay sampleable.
type SampleSeek struct{}

// Name implements Sampler.
func (SampleSeek) Name() string { return "Sample+Seek" }

// Build implements Sampler.
func (SampleSeek) Build(tbl *table.Table, queries []core.QuerySpec, m int, rng *rand.Rand) (*RowSample, error) {
	if len(queries) == 0 || len(queries[0].Aggs) == 0 {
		return nil, fmt.Errorf("samplers: Sample+Seek needs an aggregation column")
	}
	col := tbl.Column(queries[0].Aggs[0].Column)
	if col == nil {
		return nil, fmt.Errorf("samplers: unknown measure column %q", queries[0].Aggs[0].Column)
	}
	n := tbl.NumRows()
	measures := make([]float64, n)
	minPos := 0.0
	var total float64
	for r := 0; r < n; r++ {
		v := col.Numeric(r)
		if v > 0 && (minPos == 0 || v < minPos) {
			minPos = v
		}
		measures[r] = v
	}
	if minPos == 0 {
		minPos = 1
	}
	for r := 0; r < n; r++ {
		if measures[r] <= 0 {
			measures[r] = minPos
		}
		total += measures[r]
	}
	idx, err := sample.WeightedWithReplacement(measures, m, rng)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(idx))
	for i, r := range idx {
		weights[i] = total / (float64(m) * measures[r])
	}
	return &RowSample{Rows: idx, Weights: weights}, nil
}

// All returns the paper's full comparison set in display order, with
// CVOPT last as in the figures. Senate is included for the ablation
// discussion of Section 3.1 but excluded from All (the paper reports it
// only as a component of CS); use WithSenate for the extended set.
func All() []Sampler {
	return []Sampler{Uniform{}, SampleSeek{}, Congress{}, RL{}, &CVOPT{}}
}

// WithSenate returns All plus the standalone Senate strategy.
func WithSenate() []Sampler {
	return []Sampler{Uniform{}, SampleSeek{}, Congress{}, RL{}, Senate{}, &CVOPT{}}
}
