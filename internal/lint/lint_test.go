package lint_test

import (
	"os/exec"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

const testdata = "testdata/src"

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, testdata, lint.LockDiscipline, "lockdiscipline/a", "lockdiscipline/gate")
}

func TestAtomicHits(t *testing.T) {
	linttest.Run(t, testdata, lint.AtomicHits, "atomichits/a")
}

func TestWireContract(t *testing.T) {
	linttest.Run(t, testdata, lint.WireContract,
		"wirecontract/api/v1", "wirecontract/srv", "wirecontract/mainpkg")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, testdata, lint.CtxFlow, "ctxflow/lib", "ctxflow/mainpkg")
}

func TestErrCompare(t *testing.T) {
	linttest.Run(t, testdata, lint.ErrCompare, "errcompare/a")
}

// TestDirectiveMisuse pins the driver's handling of malformed
// //lint:allow comments: each misuse is itself a finding, and none of
// them suppresses the underlying diagnostic. Asserted without want
// comments — a directive and a want comment cannot share a line.
func TestDirectiveMisuse(t *testing.T) {
	pkgs, err := analysis.LoadTree(testdata, "directive/a")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{lint.ErrCompare})
	if err != nil {
		t.Fatal(err)
	}
	var errcompares, misuses []string
	for _, f := range findings {
		switch f.Analyzer {
		case "errcompare":
			errcompares = append(errcompares, f.String())
		case "directive":
			misuses = append(misuses, f.Message)
		default:
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
	}
	if len(errcompares) != 3 {
		t.Errorf("want 3 unsuppressed errcompare findings, got %d: %v", len(errcompares), errcompares)
	}
	wantMisuses := []string{
		"needs a reason",
		"unknown analyzer nosuchanalyzer",
		"names no analyzer",
	}
	if len(misuses) != len(wantMisuses) {
		t.Fatalf("want %d directive misuses, got %d: %v", len(wantMisuses), len(misuses), misuses)
	}
	for i, want := range wantMisuses {
		if !strings.Contains(misuses[i], want) {
			t.Errorf("misuse %d = %q, want it to mention %q", i, misuses[i], want)
		}
	}
}

// TestRepoClean is the in-process smoke test: the suite must run clean
// over the real tree, so a finding introduced anywhere in the repo
// fails `go test ./...` as well as the CI lint job.
func TestRepoClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(pkgs, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding on the real tree: %s", f)
	}
}

// TestReprolintCommand smoke-tests the CLI entry point end to end.
func TestReprolintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run subprocess in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/reprolint", "./...")
	cmd.Dir = "../.."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/reprolint ./... failed: %v\n%s", err, out)
	}
	if len(strings.TrimSpace(string(out))) != 0 {
		t.Errorf("reprolint printed findings on a clean tree:\n%s", out)
	}
}
