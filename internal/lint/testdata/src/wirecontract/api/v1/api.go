// Package v1 is wirecontract golden testdata for the api side of the
// contract: json-tag coverage and error-code exhaustiveness.
package v1

type Query struct {
	Table  string  `json:"table"`
	Target float64 `json:"target_cv"`
	Bad    string  // want `wire field Query\.Bad has no json tag`
}

type internalOnly struct {
	scratch int // unexported struct: not part of the contract
}

const (
	CodeOK       = "ok"
	CodeBadTable = "table_not_found"
	CodeOrphan   = "orphan" // want `error code CodeOrphan has no StatusOf entry` `error code CodeOrphan is missing from the Codes list`
)

// Codes enumerates the wire contract's error codes.
var Codes = []string{CodeOK, CodeBadTable}

// StatusOf maps a wire code to its HTTP status.
func StatusOf(code string) int {
	switch code {
	case CodeOK:
		return 200
	case CodeBadTable:
		return 404
	}
	return 500
}

// RouteQuery is a route constant; literals are legal inside the api
// package.
const RouteQuery = "/v1/query"

func use(i internalOnly) int { return i.scratch }
