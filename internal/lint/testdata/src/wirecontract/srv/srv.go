// Package srv is wirecontract golden testdata for the consumer side:
// contract leaks outside the versioned api package.
package srv

import (
	"bytes"
	"encoding/json"

	v1 "wirecontract/api/v1"
)

type local struct { // want `struct local has json-tagged fields outside the versioned api package`
	Name string `json:"name"`
}

type plain struct {
	Name string
}

type tagged struct {
	Path string `route:"/v1/inline"` // struct tags are not route literals
}

func route() string {
	return "/v1/query" // want `literal versioned route "/v1/query"`
}

func routeOK() string {
	return v1.RouteQuery
}

func encode(l *local) ([]byte, error) {
	return json.Marshal(l) // want `json wire encoding of non-api type wirecontract/srv\.local`
}

func encodeOK(q v1.Query) ([]byte, error) {
	return json.Marshal(q)
}

func decode(data []byte) (plain, error) {
	var p plain
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&p) // want `json wire encoding of non-api type wirecontract/srv\.plain`
	return p, err
}

func allowedRoute() string {
	//lint:allow wirecontract legacy probe endpoint predates the route constants
	return "/v1/legacy"
}

func use() (tagged, []byte, error) {
	l := local{Name: "x"}
	data, err := encode(&l)
	if err == nil {
		if p, derr := decode(data); derr == nil {
			_ = p
		}
	}
	_, _ = encodeOK(v1.Query{Table: route(), Target: 0.05})
	_ = routeOK()
	_ = allowedRoute()
	return tagged{Path: "x"}, data, err
}
