// Command mainpkg is wirecontract golden testdata for the CLI
// boundary: package main owns its local file formats (a benchmark
// report, a config file), so json-tagged structs and their encoding
// are legal here — but route literals are still flagged, because CLIs
// must build URLs from the contract's Route constants.
package main

import (
	"encoding/json"

	v1 "wirecontract/api/v1"
)

// report is a CLI-owned file format, not a wire type: exempt.
type report struct {
	Schema  string  `json:"schema"`
	NsPerOp float64 `json:"ns_per_op"`
}

func emit(r report) ([]byte, error) {
	return json.Marshal(r) // CLI-owned encoding: exempt
}

func route() string {
	return "/v1/query" // want `literal versioned route "/v1/query"`
}

func routeOK() string {
	return v1.RouteQuery
}

func main() {
	data, err := emit(report{Schema: "x", NsPerOp: 1})
	if err == nil {
		_ = data
	}
	_, _ = route(), routeOK()
}
