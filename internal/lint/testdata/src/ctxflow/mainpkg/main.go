// Command mainpkg is ctxflow golden testdata: package main owns the
// root context, so nothing here is flagged.
package main

import (
	"context"
	"time"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	<-ctx.Done()
}
