// Package lib is ctxflow golden testdata for library code, where
// contexts must be threaded rather than minted.
package lib

import (
	"context"
	"net/http"
)

type Client struct{ hc *http.Client }

// Fetch threads the caller's context; the good case.
func (c *Client) Fetch(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

func (c *Client) Bad(url string) (*http.Response, error) { // want `exported Bad calls context-aware Fetch but has no leading context\.Context parameter`
	return c.Fetch(context.Background(), url) // want `context\.Background\(\) in library code`
}

func (c *Client) BadReq(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want `http\.NewRequest binds the background context; use http\.NewRequestWithContext`
}

func Misplaced(url string, ctx context.Context) error { // want `Misplaced takes a context\.Context but not as its first parameter`
	_ = url
	_ = ctx
	return nil
}

type handler struct {
	c *Client
}

// ServeHTTP has its signature fixed by net/http and reaches the
// context through the request; exempt.
func (h handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	resp, err := h.c.Fetch(r.Context(), "http://example.invalid")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
}

// HandleDebug has the http handler signature: like ServeHTTP its shape
// is fixed by net/http and the context arrives in the request, so
// calling context-aware code without a ctx parameter is exempt.
func HandleDebug(w http.ResponseWriter, r *http.Request) {
	c := &Client{hc: http.DefaultClient}
	resp, err := c.Fetch(r.Context(), "http://example.invalid")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp.Body.Close()
}

// Detached documents its deliberate root context with the escape
// hatch.
func Detached() {
	//lint:allow ctxflow warmup is deliberately detached from caller cancellation
	ctx := context.Background()
	_ = ctx
}
