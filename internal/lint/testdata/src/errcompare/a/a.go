// Package a is errcompare golden testdata: identity and string
// matching on errors versus the errors.Is/errors.As forms.
package a

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

var ErrGone = errors.New("gone")

func bad(err error) bool {
	if err == io.EOF { // want `comparing errors with == breaks on wrapped errors; use errors\.Is`
		return true
	}
	if err != ErrGone { // want `comparing errors with != breaks on wrapped errors`
		return false
	}
	switch err { // want `switching on an error value breaks on wrapped errors`
	case ErrGone:
		return true
	}
	if strings.Contains(err.Error(), "gone") { // want `matching on an error's text with strings\.Contains`
		return true
	}
	return err.Error() == "gone" // want `comparing error strings with ==`
}

func good(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, io.EOF) {
		return true
	}
	var gone *GoneError
	return errors.As(err, &gone)
}

func nilSwitch(err error) string {
	switch err {
	case nil:
		return "ok"
	}
	return "fail"
}

type GoneError struct{ Name string }

func (e *GoneError) Error() string { return fmt.Sprintf("%s gone", e.Name) }

// Is implements the errors.Is protocol; identity comparison here is
// the mechanism, not a bypass.
func (e *GoneError) Is(target error) bool {
	return target == ErrGone
}

func allowed(err error) bool {
	//lint:allow errcompare io.EOF identity is the csv.Reader contract at this call site
	return err == io.EOF
}
