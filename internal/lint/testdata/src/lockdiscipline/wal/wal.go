// Package wal is a stand-in for the repo's WAL with its fsync-bearing
// surface (Sync, Commit), so lockdiscipline testdata can exercise the
// durability entries of the blocking table. Append is buffered and
// deliberately absent from the table.
package wal

type Log struct{}

func (l *Log) Append(typ byte, payload []byte) (uint64, error) { return 0, nil }
func (l *Log) Sync() error                                     { return nil }
func (l *Log) Commit() error                                   { return nil }
