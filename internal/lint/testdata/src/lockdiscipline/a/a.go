// Package a is lockdiscipline golden testdata: shard-shaped critical
// sections with blocking operations inside and outside them.
package a

import (
	"os"
	"sync"
	"time"

	"lockdiscipline/wal"
)

type shard struct {
	mu     sync.RWMutex
	tables map[string]int
	kick   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	log    *wal.Log
	f      *os.File
}

func (s *shard) bad() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time.Sleep may block while s\.mu is held`
	<-s.done                     // want `channel receive while s\.mu is held`
	s.kick <- struct{}{}         // want `channel send while s\.mu is held`
	s.wg.Wait()                  // want `call to sync\.WaitGroup\.Wait may block while s\.mu is held`
	s.mu.Unlock()
}

func (s *shard) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default case while s\.mu is held`
	case <-s.done:
	case s.kick <- struct{}{}:
	}
}

func (s *shard) badBranch(grow bool) {
	s.mu.Lock()
	if grow {
		<-s.done // want `channel receive while s\.mu is held`
	}
	s.mu.Unlock()
}

// good waits only after the read lock is dropped, the way Build parks
// on an inflight build's done channel.
func (s *shard) good() int {
	s.mu.RLock()
	n := len(s.tables)
	s.mu.RUnlock()
	<-s.done
	return n
}

// goodKick sends under the lock through a select with a default, the
// ingest kick pattern.
func (s *shard) goodKick() {
	s.mu.Lock()
	s.tables["x"] = 1
	select {
	case s.kick <- struct{}{}:
	default:
	}
	s.mu.Unlock()
}

// goodClosure captures the shard in a cleanup closure; the closure
// body runs outside this critical section.
func (s *shard) goodClosure() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		<-s.done
	}
}

// badFsync fsyncs inside the critical section: a disk flush can stall
// every reader behind the shard lock for the device's worst-case
// latency.
func (s *shard) badFsync() {
	s.mu.Lock()
	_ = s.f.Sync()     // want `call to os\.File\.Sync may block while s\.mu is held`
	_ = s.log.Sync()   // want `call to lockdiscipline/wal\.Log\.Sync may block while s\.mu is held`
	_ = s.log.Commit() // want `call to lockdiscipline/wal\.Log\.Commit may block while s\.mu is held`
	s.mu.Unlock()
}

// goodWal appends under the lock (buffered, no fsync) and commits only
// after the unlock — the registry's persistCommit pattern.
func (s *shard) goodWal() {
	s.mu.Lock()
	_, _ = s.log.Append(1, nil)
	s.mu.Unlock()
	_ = s.log.Commit()
}

func (s *shard) allowed() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) //lint:allow lockdiscipline simulated work to provoke contention in benchmarks
	s.mu.Unlock()
}
