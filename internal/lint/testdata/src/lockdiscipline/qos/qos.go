// Package qos is a stand-in for the repo's QoS front end, so
// lockdiscipline testdata can exercise its blocking-table entries:
// Controller.Acquire parks in the admission queue and Coalescer.Do
// sleeps out the batching window. TryAcquire and TryShed are the
// non-blocking probes and deliberately absent from the table.
package qos

import "context"

type Controller struct{}

func (c *Controller) Acquire(ctx context.Context) (func(), error) { return func() {}, nil }
func (c *Controller) TryAcquire() (func(), bool)                  { return func() {}, true }
func (c *Controller) TryShed() (func(), bool)                     { return func() {}, true }

type Coalescer struct{}

func (c *Coalescer) Do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	return nil, false, nil
}
