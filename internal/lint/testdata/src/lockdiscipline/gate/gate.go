// Package gate is lockdiscipline golden testdata for the QoS front
// end: admission waits and coalesced passes must never run under a
// shard lock, or one queued request stalls every reader on the shard.
package gate

import (
	"context"
	"sync"

	"lockdiscipline/qos"
)

type front struct {
	mu   sync.Mutex
	ctl  *qos.Controller
	coal *qos.Coalescer
	n    int
}

// badAcquire parks in the admission queue with the lock held.
func (f *front) badAcquire(ctx context.Context) {
	f.mu.Lock()
	release, err := f.ctl.Acquire(ctx) // want `call to lockdiscipline/qos\.Controller\.Acquire may block while f\.mu is held`
	f.mu.Unlock()
	if err == nil {
		release()
	}
}

// badCoalesce runs a coalesced pass under the lock: the leader sleeps
// out the batching window while holding it.
func (f *front) badCoalesce(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, _, _ = f.coal.Do(ctx, "k", func() (any, error) { return nil, nil }) // want `call to lockdiscipline/qos\.Coalescer\.Do may block while f\.mu is held`
}

// goodTryAcquire is the non-blocking admission probe; it is safe under
// the lock, the way the shed path checks for a free slot.
func (f *front) goodTryAcquire() {
	f.mu.Lock()
	if release, ok := f.ctl.TryAcquire(); ok {
		f.n++
		release()
	}
	f.mu.Unlock()
}

// goodAcquire waits only after the unlock.
func (f *front) goodAcquire(ctx context.Context) {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	if release, err := f.ctl.Acquire(ctx); err == nil {
		release()
	}
}
