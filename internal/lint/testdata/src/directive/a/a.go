// Package a is directive-misuse testdata: malformed //lint:allow
// comments must be reported and must not suppress anything. The
// expectations are asserted programmatically (TestDirectiveMisuse),
// not with want comments, because a directive and a want comment
// cannot share a line.
package a

import "io"

func compare(err error) bool {
	//lint:allow errcompare
	if err == io.EOF {
		return true
	}
	//lint:allow nosuchanalyzer the analyzer name is wrong
	if err == io.EOF {
		return true
	}
	//lint:allow
	return err == io.EOF
}
