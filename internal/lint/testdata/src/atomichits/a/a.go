// Package a is atomichits golden testdata: an entry with an atomic
// hit counter, a marked plain generation field, and a histogram-style
// atomic array.
package a

import "sync/atomic"

type entry struct {
	hits   atomic.Int64
	gen    int64 //lint:atomic
	counts [4]atomic.Int64
}

func good(e *entry) int64 {
	e.hits.Add(1)
	p := &e.hits
	p.Store(2)
	for i := range e.counts {
		e.counts[i].Add(int64(i))
	}
	_ = len(e.counts)
	atomic.AddInt64(&e.gen, 1)
	return e.hits.Load() + atomic.LoadInt64(&e.gen)
}

func bad(e *entry) {
	v := e.hits // want `non-atomic access to atomic field hits`
	_ = v
	e.gen++    // want `field gen is marked //lint:atomic`
	g := e.gen // want `field gen is marked //lint:atomic`
	_ = g
	for _, c := range e.counts { // want `ranging over atomic array counts with a value variable copies its elements`
		_ = c
	}
	b := e.counts[0] // want `non-atomic access to atomic array field counts`
	_ = b
}

func allowed(e *entry) int64 {
	//lint:allow atomichits snapshot taken under the exclusive lock during freeze
	return e.gen
}
