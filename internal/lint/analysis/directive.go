package analysis

import (
	"go/token"
	"strings"
)

// The suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it silences
// that analyzer there. The reason is mandatory — an allow that does
// not say why is itself a finding (Misuses), so deliberate exceptions
// stay documented at the site rather than rotting into folklore.

// directive is one parsed //lint:allow comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
}

// Misuse is a malformed or unknown suppression directive — reported
// as a finding by the driver and never able to suppress anything.
type Misuse struct {
	Pos     token.Position
	Message string
}

// Suppressor indexes every well-formed //lint:allow directive in a set
// of packages.
type Suppressor struct {
	// allowed maps filename → line → analyzer names allowed there.
	allowed map[string]map[int]map[string]bool
	misuses []Misuse
}

// NewSuppressor scans the comments of every file of every package.
// known is the set of valid analyzer names; an //lint:allow naming
// anything else is recorded as a misuse.
func NewSuppressor(pkgs []*Package, known map[string]bool) *Suppressor {
	s := &Suppressor{allowed: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.add(pkg.Fset.Position(c.Pos()), c.Text, known)
				}
			}
		}
	}
	return s
}

// add parses one comment's text and records the directive, if any.
func (s *Suppressor) add(pos token.Position, text string, known map[string]bool) {
	const prefix = "//lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	name, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(reason)
	switch {
	case name == "":
		s.misuses = append(s.misuses, Misuse{pos, "lint:allow directive names no analyzer (want //lint:allow <analyzer> <reason>)"})
		return
	case !known[name]:
		s.misuses = append(s.misuses, Misuse{pos, "lint:allow directive names unknown analyzer " + name})
		return
	case reason == "":
		s.misuses = append(s.misuses, Misuse{pos, "lint:allow " + name + " needs a reason (want //lint:allow <analyzer> <reason>)"})
		return
	}
	byLine, ok := s.allowed[pos.Filename]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s.allowed[pos.Filename] = byLine
	}
	if byLine[pos.Line] == nil {
		byLine[pos.Line] = make(map[string]bool)
	}
	byLine[pos.Line][name] = true
}

// Allowed reports whether a finding by the named analyzer at pos is
// suppressed: a directive on the same line or the line directly above.
func (s *Suppressor) Allowed(pos token.Position, analyzer string) bool {
	byLine, ok := s.allowed[pos.Filename]
	if !ok {
		return false
	}
	return byLine[pos.Line][analyzer] || byLine[pos.Line-1][analyzer]
}

// Misuses returns the malformed directives found during the scan.
func (s *Suppressor) Misuses() []Misuse { return s.misuses }
