package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported, non-suppressed diagnostic, positioned and
// attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes every analyzer over every package, filters findings
// through the //lint:allow suppressor, appends directive misuses (as
// analyzer "directive"), and returns the findings sorted by position.
// An analyzer returning an error aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup := NewSuppressor(pkgs, known)
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.Allowed(pos, a.Name) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, m := range sup.Misuses() {
		findings = append(findings, Finding{Analyzer: "directive", Pos: m.Pos, Message: m.Message})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
