package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	// PkgPath is the import path ("repro/internal/serve"; for testdata
	// trees, the path relative to the tree root).
	PkgPath string
	Dir     string
	GoFiles []string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over the given
// patterns and decodes the package stream. -export materializes export
// data for every dependency in the build cache (offline: the standard
// library and the module's own packages need no network), which is
// what lets the type checker resolve imports without re-checking the
// whole dependency graph from source.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the Export
// files `go list` reported: import path → export data reader.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// parseDir parses the named files of one package directory, with
// comments (directives and `// want` expectations live there).
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package's parsed files.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Load loads and type-checks the packages matching patterns, resolved
// in module mode from dir (the repo root). Test files are excluded —
// the invariants the analyzers encode are production-code invariants,
// and tests legitimately poke raw routes and sentinel identities.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listPkg
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	out := make([]*Package, 0, len(targets))
	for _, p := range targets {
		files, err := parseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", p.ImportPath, err)
		}
		tpkg, info, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: p.ImportPath,
			Dir:     p.Dir,
			GoFiles: p.GoFiles,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// treeLoader resolves imports for a GOPATH-style testdata tree:
// srcdir/<pkgpath>/*.go first, the standard library's export data
// second. It is the types.Importer golden-test packages are checked
// with, so testdata can model multi-package contracts (an api package
// next to a serve package) without being part of the module.
type treeLoader struct {
	srcdir  string
	fset    *token.FileSet
	pkgs    map[string]*Package
	std     types.Importer
	loading map[string]bool // import-cycle guard
}

// Import implements types.Importer.
func (l *treeLoader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one tree package.
func (l *treeLoader) load(path, dir string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, err := parseDir(l.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := check(l.fset, path, files, l)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{
		PkgPath: path,
		Dir:     dir,
		GoFiles: names,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[path] = p
	return p, nil
}

// stdImports collects every import path mentioned anywhere under
// srcdir that does not resolve inside the tree itself — the set whose
// export data LoadTree must materialize up front.
func stdImports(srcdir string) ([]string, error) {
	seen := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(srcdir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(srcdir, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue // resolves inside the tree
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// LoadTree loads and type-checks GOPATH-style packages rooted at
// srcdir (srcdir/<pkgpath>/*.go), the layout golden testdata uses.
// Imports resolve against the tree first, then against the standard
// library.
func LoadTree(srcdir string, pkgpaths ...string) ([]*Package, error) {
	abs, err := filepath.Abs(srcdir)
	if err != nil {
		return nil, err
	}
	std, err := stdImports(abs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(std) > 0 {
		listed, err := goList(abs, std)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	l := &treeLoader{
		srcdir:  abs,
		fset:    fset,
		pkgs:    make(map[string]*Package),
		std:     importer.ForCompiler(fset, "gc", exportLookup(exports)),
		loading: make(map[string]bool),
	}
	out := make([]*Package, 0, len(pkgpaths))
	for _, path := range pkgpaths {
		if _, ok := l.pkgs[path]; !ok {
			if _, err := l.load(path, filepath.Join(abs, filepath.FromSlash(path))); err != nil {
				return nil, err
			}
		}
		out = append(out, l.pkgs[path])
	}
	return out, nil
}
