// Package analysis is a self-contained, stdlib-only reimplementation
// of the golang.org/x/tools/go/analysis surface the repo's custom
// linters (internal/lint) are written against. It exists because this
// build environment carries no third-party modules: packages are
// loaded through `go list -export` (export data for dependencies,
// source for the packages under analysis) and type-checked with
// go/types, which is exactly the pipeline the real driver uses — so
// the analyzers themselves read like ordinary go/analysis code and
// could be ported to the upstream framework by swapping this import.
//
// The three pieces:
//
//   - Analyzer / Pass / Diagnostic (this file): the analyzer API.
//   - Load / LoadTree (load.go): package loading + type checking, in
//     module mode for the real tree and GOPATH-style for golden
//     testdata trees.
//   - Run (run.go): the multichecker — run every analyzer over every
//     package, honor `//lint:allow <analyzer> <reason>` suppressions
//     (directive.go), and return findings sorted by position.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run is invoked once per loaded package
// with a fully type-checked Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// `//lint:allow <name> <reason>` directives.
	Name string
	// Doc is the one-paragraph description `reprolint -list` prints:
	// the invariant the analyzer encodes.
	Doc string
	// Run reports diagnostics via pass.Report/Reportf. A non-nil error
	// aborts the whole run (reserved for analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files, parsed with
	// comments.
	Files []*ast.File
	// Pkg and Info are the go/types results for exactly those files.
	Pkg  *types.Package
	Info *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding inside one package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
