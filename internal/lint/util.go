// Package lint is the repo's analyzer suite: five checks that turn
// the codebase's load-bearing concurrency, context and wire-contract
// invariants — previously enforced by reviewer memory and shell greps
// — into machine-checked CI gates. The analyzers are written against
// internal/lint/analysis (a stdlib-only go/analysis workalike) and
// compiled into the cmd/reprolint multichecker; docs/LINTING.md
// documents each invariant and the //lint:allow escape hatch.
package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// walkStack traverses root in source order, calling f with each node
// and the stack of its ancestors (outermost first, root included,
// n excluded). Returning false prunes the subtree under n.
func walkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeFunc resolves a call expression to the function or method it
// statically invokes, or nil for calls through function values,
// built-ins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn // method call
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified function
		}
	}
	return nil
}

// funcOrigin describes a resolved callee for matching against
// qualified-name tables: the defining package path, the receiver's
// named-type name ("" for plain functions) and the function name.
func funcOrigin(fn *types.Func) (pkgPath, recv, name string) {
	name = fn.Name()
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgPath, "", name
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		recv = n.Obj().Name()
		if n.Obj().Pkg() != nil {
			pkgPath = n.Obj().Pkg().Path()
		}
	}
	return pkgPath, recv, name
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t (or *t) implements error.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}

// isNil reports whether e is the untyped nil literal.
func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// fieldOf resolves a selector to the struct field it selects, or nil
// when it selects something else (a method, a package member, ...).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// qualified references (pkg.Var) and struct-literal keys resolve
	// through Uses
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// namedFromPkg reports whether t is (or points to) a named type
// defined in the package with the given import path, returning its
// type name.
func namedFromPkg(t types.Type, pkgPath string) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != pkgPath {
		return "", false
	}
	return n.Obj().Name(), true
}

// All returns the full reprolint analyzer suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		LockDiscipline,
		AtomicHits,
		WireContract,
		CtxFlow,
		ErrCompare,
	}
}
