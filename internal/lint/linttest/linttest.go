// Package linttest is the golden-test harness for the repo's
// analyzers, in the style of go/analysis/analysistest: testdata
// packages live in a GOPATH-style tree (testdata/src/<pkgpath>) and
// annotate the lines where findings are expected with
//
//	code() // want "regexp" `another regexp`
//
// Run loads the packages, runs one analyzer, and fails the test on any
// finding without a matching want and any want without a matching
// finding. Suppression directives (//lint:allow) are honored exactly
// as in the real driver, so testdata can pin the escape hatch too.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// wantExp is one expectation parsed from a // want comment.
type wantExp struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

type lineKey struct {
	file string
	line int
}

// Run executes one analyzer over the named testdata packages and
// diffs its findings against the // want annotations.
func Run(t *testing.T, srcdir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadTree(srcdir, pkgpaths...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgpaths, err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := collectWants(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	byLine := make(map[lineKey][]*wantExp)
	for _, w := range wants {
		k := lineKey{w.file, w.line}
		byLine[k] = append(byLine[k], w)
	}
	for _, f := range findings {
		matched := false
		for _, w := range byLine[lineKey{f.Pos.Filename, f.Pos.Line}] {
			if !w.used && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, a.Name, w.re)
		}
	}
}

// collectWants parses every // want comment in the loaded packages.
func collectWants(pkgs []*analysis.Package) ([]*wantExp, error) {
	var wants []*wantExp
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue
					}
					rest = strings.TrimSpace(rest)
					rest, ok = strings.CutPrefix(rest, "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					exps, err := parsePatterns(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: %v", pos, err)
					}
					for _, exp := range exps {
						re, err := regexp.Compile(exp)
						if err != nil {
							return nil, fmt.Errorf("%s: %v", pos, err)
						}
						wants = append(wants, &wantExp{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants, nil
}

// parsePatterns splits `"rx" "rx"` / “ `rx` “ sequences into their
// unquoted patterns.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q in want comment", s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad pattern %s: %v", s[:end+1], err)
			}
			out = append(out, pat)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q in want comment", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want comment patterns must be quoted: %q", s)
		}
	}
}
