package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ErrCompare encodes the error-identity rule behind the client's
// sentinel mapping: errors that travel through fmt.Errorf("%w") and
// the APIError Unwrap chain only match via errors.Is/errors.As.
// Identity comparison (==, !=, switch on an error value) and string
// matching (strings.Contains on err.Error(), comparing Error() texts)
// both break the moment anyone wraps the error, so the analyzer flags
// them. Comparisons against nil stay legal, as does the == inside an
// Is(target error) bool method — that is the one place the identity
// check is the implementation of errors.Is rather than a bypass of it.
var ErrCompare = &analysis.Analyzer{
	Name: "errcompare",
	Doc: "flags ==/!=, switch, and string matching on error values " +
		"where errors.Is/errors.As is required",
	Run: runErrCompare,
}

func runErrCompare(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isIsMethod(pass, fd) {
				continue
			}
			checkErrCompares(pass, fd.Body)
		}
	}
	return nil
}

// isIsMethod reports whether fd is an Is(error) bool method — the
// errors.Is protocol hook, where identity comparison is the point.
func isIsMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Is" || fd.Recv == nil {
		return false
	}
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && implementsError(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1
}

func checkErrCompares(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkBinary(pass, n)
		case *ast.SwitchStmt:
			checkErrSwitch(pass, n)
		case *ast.CallExpr:
			checkStringMatch(pass, n)
		}
		return true
	})
}

// errOperand reports whether e is an error-typed expression (the
// static type implements error) other than the nil literal.
func errOperand(pass *analysis.Pass, e ast.Expr) bool {
	if isNil(pass.Info, e) {
		return false
	}
	tv, ok := pass.Info.Types[e]
	return ok && implementsError(tv.Type)
}

// errorTextCall reports whether e is a call to the Error() string
// method of an error value.
func errorTextCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Name() != "Error" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && implementsError(sig.Recv().Type())
}

// checkBinary flags err == sentinel / err != sentinel and comparisons
// of Error() texts. Nil checks pass.
func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if errorTextCall(pass, be.X) || errorTextCall(pass, be.Y) {
		pass.Reportf(be.OpPos, "comparing error strings with %s; match the error itself with errors.Is", be.Op)
		return
	}
	if errOperand(pass, be.X) && errOperand(pass, be.Y) {
		pass.Reportf(be.OpPos, "comparing errors with %s breaks on wrapped errors; use errors.Is", be.Op)
	}
}

// checkErrSwitch flags `switch err { case ErrX: }` — identity matching
// in switch form. A switch with only nil/default cases passes.
func checkErrSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !errOperand(pass, sw.Tag) {
		return
	}
	for _, cc := range sw.Body.List {
		cc, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNil(pass.Info, e) {
				pass.Reportf(sw.Switch, "switching on an error value breaks on wrapped errors; use errors.Is per case")
				return
			}
		}
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix/Index
// applied to an error's text.
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	pkg, recv, name := funcOrigin(fn)
	if pkg != "strings" || recv != "" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if errorTextCall(pass, arg) {
			pass.Reportf(call.Pos(), "matching on an error's text with strings.%s; use errors.Is/errors.As", name)
			return
		}
	}
}
