package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// LockDiscipline encodes the serving registry's shard-lock rule: a
// sync.Mutex / sync.RWMutex critical section may only do map and field
// work. Anything that can block — channel receives, sends without a
// select default, selects without a default, and calls from a known
// blocking table (time.Sleep, WaitGroup.Wait, network and exec calls,
// singleflight Do, ingest Stream methods) — must happen after the
// unlock, the way Build parks on an inflight build's done channel only
// once the shard mutex is released.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "flags blocking operations (channel ops, sleeps, network and " +
		"singleflight calls) inside sync.Mutex/RWMutex critical sections",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *analysis.Pass) error {
	c := &lockChecker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.stmts(fd.Body.List, make(map[string]bool))
			}
		}
	}
	return nil
}

type lockChecker struct {
	pass *analysis.Pass
}

// stmts interprets a statement list in order, tracking which mutexes
// are held. held maps the rendered receiver expression ("sh.mu") to
// true while locked.
func (c *lockChecker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		c.stmt(s, held)
	}
}

func cloneHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// heldNames renders the held set for diagnostics, deterministically.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

const (
	lockAcquire = iota
	lockRelease
)

// lockOp classifies e as a Lock/RLock (acquire) or Unlock/RUnlock
// (release) call on a sync.Mutex or sync.RWMutex, returning the
// rendered receiver as the held-set key.
func lockOp(info *types.Info, e ast.Expr) (key string, op int, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", 0, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", 0, false
	}
	pkg, recv, name := funcOrigin(fn)
	if pkg != "sync" || (recv != "Mutex" && recv != "RWMutex") {
		return "", 0, false
	}
	switch name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), lockAcquire, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), lockRelease, true
	}
	return "", 0, false
}

// stmt interprets one statement. Branching constructs recurse with a
// cloned held set so a lock taken in one arm does not leak into its
// sibling; straight-line Lock/Unlock pairs mutate held in place, which
// is exactly how the registry's fast-path RLock/RUnlock and
// Lock/inflight-check/Unlock sequences read.
func (c *lockChecker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockOp(c.pass.Info, s.X); ok {
			if op == lockAcquire {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		// defer x.Unlock() holds the lock to function end: no state
		// change. Other deferred calls run outside the region; only
		// their arguments evaluate now.
		for _, a := range s.Call.Args {
			c.expr(a, held)
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's critical
		// section; only the call's arguments evaluate here.
		for _, a := range s.Call.Args {
			c.expr(a, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.pass.Reportf(s.Pos(), "channel send while %s is held; send after unlocking or use a select with a default case", heldNames(held))
		}
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		c.stmts(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			c.stmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		c.stmts(s.List, held)
	case *ast.ForStmt:
		inner := cloneHeld(held)
		if s.Init != nil {
			c.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inner)
		}
		c.stmts(s.Body.List, inner)
		if s.Post != nil {
			c.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.stmts(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.expr(e, held)
				}
				c.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			c.pass.Reportf(s.Pos(), "select with no default case while %s is held can block; add a default or move it after the unlock", heldNames(held))
		}
		// With a default case the communication clauses themselves are
		// non-blocking; either way only the clause bodies are checked.
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				c.stmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, held)
					}
				}
			}
		}
	}
}

// expr flags blocking operations inside an expression evaluated with
// locks held. Function literals are skipped: closures (deferred
// cleanups, spawned workers) run outside the current critical section.
func (c *lockChecker) expr(e ast.Expr, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.pass.Reportf(n.Pos(), "channel receive while %s is held; receive after unlocking", heldNames(held))
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(c.pass.Info, n); ok {
				c.pass.Reportf(n.Pos(), "call to %s may block while %s is held; move it outside the critical section", what, heldNames(held))
			}
		}
		return true
	})
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc, ok := cc.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall reports whether call resolves to a function from the
// known-blocking table, naming it for the diagnostic. The table covers
// the operations the serving path actually performs: sleeps, waits,
// network and subprocess calls, singleflight builds, ingest stream
// operations (Append/Refresh/Close take the stream's own mutex and do
// I/O-sized work), fsync-bearing durability calls — os.File.Sync and
// the WAL's Sync/Commit, which can stall for the disk's worst-case
// flush latency and must never run under a shard lock — and the QoS
// front end's waits: Controller.Acquire parks in the admission queue
// and Coalescer.Do sleeps out the batching window, so both belong
// after the unlock (TryAcquire/TryShed are the non-blocking probes).
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	pkg, recv, name := funcOrigin(fn)
	qual := name
	if recv != "" {
		qual = recv + "." + name
	}
	switch {
	case pkg == "time" && recv == "" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait", true
	case pkg == "sync" && recv == "Cond" && name == "Wait":
		return "sync.Cond.Wait", true
	case pkg == "net/http" && recv == "Client" &&
		(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "net/http." + qual, true
	case pkg == "net/http" && recv == "" &&
		(name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "net/http." + qual, true
	case pkg == "net" && recv == "" && strings.HasPrefix(name, "Dial"):
		return "net." + name, true
	case pkg == "os/exec" && recv == "Cmd" &&
		(name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
		return "os/exec." + qual, true
	case strings.HasSuffix(pkg, "singleflight") && recv == "Group" && name == "Do":
		return pkg + "." + qual, true
	case strings.HasSuffix(pkg, "ingest") && recv == "Stream" &&
		(name == "Append" || name == "Refresh" || name == "Close"):
		return pkg + "." + qual, true
	case strings.HasSuffix(pkg, "qos") && recv == "Controller" && name == "Acquire":
		return pkg + "." + qual, true
	case strings.HasSuffix(pkg, "qos") && recv == "Coalescer" && name == "Do":
		return pkg + "." + qual, true
	case pkg == "os" && recv == "File" && name == "Sync":
		return "os.File.Sync", true
	case strings.HasSuffix(pkg, "wal") && recv == "Log" &&
		(name == "Sync" || name == "Commit"):
		return pkg + "." + qual, true
	}
	return "", false
}
