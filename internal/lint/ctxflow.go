package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxFlow encodes the context-threading rule from the typed client
// work (PR 5): cancellation flows from the caller, so library code
// never mints its own root context. Package main owns the root and is
// exempt; everywhere else the analyzer flags context.Background() and
// context.TODO(), http.NewRequest (which silently binds the background
// context), ctx parameters not in the leading position, and exported
// functions that call context-taking code without accepting a leading
// context.Context themselves. ServeHTTP keeps its interface-fixed
// signature and is exempt — handlers reach the context through the
// request.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "requires library code to thread a leading context.Context " +
		"instead of minting context.Background()",
	Run: runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // main owns the root context
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxPosition(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkRootContexts(pass, fd.Body)
			checkMissingCtxParam(pass, fd)
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// ctxParamIndex returns the position of the context.Context parameter
// in fd's signature, or -1.
func ctxParamIndex(pass *analysis.Pass, fd *ast.FuncDecl) int {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return -1
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return i
		}
	}
	return -1
}

// checkCtxPosition flags a ctx parameter that is not first.
func checkCtxPosition(pass *analysis.Pass, fd *ast.FuncDecl) {
	if i := ctxParamIndex(pass, fd); i > 0 {
		pass.Reportf(fd.Name.Pos(), "%s takes a context.Context but not as its first parameter", fd.Name.Name)
	}
}

// checkRootContexts flags context.Background/TODO and http.NewRequest
// anywhere in the body, closures included — a root context minted in a
// goroutine detaches it from the caller's cancellation just the same.
func checkRootContexts(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		pkg, recv, name := funcOrigin(fn)
		switch {
		case pkg == "context" && recv == "" && (name == "Background" || name == "TODO"):
			pass.Reportf(call.Pos(), "context.%s() in library code; accept a context.Context from the caller instead", name)
		case pkg == "net/http" && recv == "" && name == "NewRequest":
			pass.Reportf(call.Pos(), "http.NewRequest binds the background context; use http.NewRequestWithContext")
		}
		return true
	})
}

// isHandlerSig reports whether fd has the http.HandlerFunc parameter
// shape (http.ResponseWriter, *http.Request). Like ServeHTTP, such
// functions have their signature fixed by net/http and reach the
// context through the request — they cannot grow a ctx parameter.
func isHandlerSig(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 2 {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNetHTTPNamed(sig.Params().At(0).Type(), "ResponseWriter") &&
		isNetHTTPNamed(ptr.Elem(), "Request")
}

// isNetHTTPNamed reports whether t is the named net/http type name.
func isNetHTTPNamed(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == name
}

// checkMissingCtxParam flags an exported function that statically
// calls context-taking code but has no context parameter of its own:
// it either drops cancellation on the floor or will grow a Background
// call. Closures are skipped (they run on their own schedule), and
// ServeHTTP plus anything else with the http handler signature is
// exempt — those signatures are fixed by net/http.
func checkMissingCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Name.Name == "ServeHTTP" || isHandlerSig(pass, fd) {
		return
	}
	if ctxParamIndex(pass, fd) >= 0 {
		return
	}
	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
			return true
		}
		// one finding per function is enough
		reported = true
		pass.Reportf(fd.Name.Pos(), "exported %s calls context-aware %s but has no leading context.Context parameter", fd.Name.Name, fn.Name())
		return false
	})
}
