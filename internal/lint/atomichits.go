package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// AtomicHits encodes the registry's lock-free counter rule: fields
// typed as sync/atomic values (Entry.Hits, Entry.lastUsed, the
// latency histogram buckets, generation counters) are read and written
// concurrently without the shard lock, so every access must go through
// the atomic API. The analyzer flags any use of such a field that is
// not a method call (x.f.Load()), an address-of (&x.f), an indexed
// method call on an atomic array (h.counts[i].Add(1)), an index-only
// range (for i := range h.counts), or a len(). It also honors a
// `//lint:atomic` marker on plain integer fields: those may only be
// touched as &x.f passed into a sync/atomic function.
var AtomicHits = &analysis.Analyzer{
	Name: "atomichits",
	Doc: "flags non-atomic accesses to sync/atomic-typed fields and to " +
		"plain fields marked //lint:atomic",
	Run: runAtomicHits,
}

func runAtomicHits(pass *analysis.Pass) error {
	marked := markedAtomicFields(pass)
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(pass.Info, sel)
			if fld == nil {
				return true
			}
			switch {
			case isAtomicType(fld.Type()):
				checkAtomicUse(pass, sel, stack)
			case isAtomicArray(fld.Type()):
				checkAtomicArrayUse(pass, sel, stack)
			case marked[fld]:
				checkMarkedUse(pass, sel, fld, stack)
			}
			return true
		})
	}
	return nil
}

// isAtomicType reports whether t is a named type from sync/atomic
// (atomic.Int64, atomic.Bool, atomic.Value, ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// isAtomicArray reports whether t is an array whose element type is a
// sync/atomic value, like the histogram's [32]atomic.Int64 buckets.
func isAtomicArray(t types.Type) bool {
	arr, ok := t.Underlying().(*types.Array)
	return ok && isAtomicType(arr.Elem())
}

// parentOf returns the nearest non-paren ancestor.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// grandparentOf returns the ancestor above parentOf.
func grandparentOf(stack []ast.Node) ast.Node {
	skipped := false
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		if !skipped {
			skipped = true
			continue
		}
		return stack[i]
	}
	return nil
}

// checkAtomicUse validates one use of a scalar atomic field: only a
// method call on it or taking its address is atomic-safe.
func checkAtomicUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	switch p := parentOf(stack).(type) {
	case *ast.SelectorExpr:
		// x.f.Load(), x.f.Store(v), or a method value: resolves through
		// the atomic API either way.
		if p.X == sel {
			if s, ok := pass.Info.Selections[p]; ok && s.Kind() != types.FieldVal {
				return
			}
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == sel {
			return
		}
	}
	pass.Reportf(sel.Pos(), "non-atomic access to atomic field %s; use its Load/Store/Add methods", sel.Sel.Name)
}

// checkAtomicArrayUse validates one use of an array-of-atomics field:
// indexing straight into a method call or address-of, an index-only
// range, or len().
func checkAtomicArrayUse(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) {
	switch p := parentOf(stack).(type) {
	case *ast.IndexExpr:
		if p.X != sel {
			break
		}
		switch gp := grandparentOf(stack).(type) {
		case *ast.SelectorExpr:
			if gp.X == p {
				if s, ok := pass.Info.Selections[gp]; ok && s.Kind() != types.FieldVal {
					return // h.counts[i].Load()
				}
			}
		case *ast.UnaryExpr:
			if gp.Op == token.AND && gp.X == p {
				return // &h.counts[i]
			}
		}
	case *ast.RangeStmt:
		if p.X == sel && p.Value == nil {
			return // for i := range h.counts — indices only, no copy
		}
		if p.X == sel {
			pass.Reportf(sel.Pos(), "ranging over atomic array %s with a value variable copies its elements; range over indices only", sel.Sel.Name)
			return
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && id.Name == "len" && len(p.Args) == 1 {
			return
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND && p.X == sel {
			return
		}
	}
	pass.Reportf(sel.Pos(), "non-atomic access to atomic array field %s; index into it and use Load/Store/Add", sel.Sel.Name)
}

// markedAtomicFields collects struct fields in this package annotated
// with a `//lint:atomic` comment (trailing the field or on the line
// above it).
func markedAtomicFields(pass *analysis.Pass) map[*types.Var]bool {
	marked := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		// Index comment lines once per file.
		commentLines := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:atomic") {
					commentLines[pass.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(commentLines) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				line := pass.Fset.Position(fld.Pos()).Line
				if !commentLines[line] && !commentLines[line-1] {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						marked[v] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

// checkMarkedUse validates one use of a //lint:atomic plain field: it
// may only appear as &x.f passed directly to a sync/atomic function
// (atomic.AddInt64(&x.f, 1), atomic.LoadInt64(&x.f), ...).
func checkMarkedUse(pass *analysis.Pass, sel *ast.SelectorExpr, fld *types.Var, stack []ast.Node) {
	if p, ok := parentOf(stack).(*ast.UnaryExpr); ok && p.Op == token.AND && p.X == sel {
		if call, ok := grandparentOf(stack).(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil {
				if pkg, _, _ := funcOrigin(fn); pkg == "sync/atomic" {
					return
				}
			}
		}
	}
	pass.Reportf(sel.Pos(), "field %s is marked //lint:atomic; access it only via sync/atomic functions on &%s", fld.Name(), types.ExprString(sel))
}
