package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
)

// WireContract encodes the versioned wire contract (PR 5): every type,
// route and error code that crosses the HTTP boundary lives in the
// internal/api/v1 package, and nowhere else.
//
// Inside an api package it checks the contract's own hygiene: exported
// struct fields carry json tags, and every Code* constant appears both
// in the StatusOf switch and in the Codes list.
//
// Outside api packages it flags contract leaks: struct declarations
// with json tags (wire shapes belong in api/v1), literal "/v1/..."
// route strings (use the Route* constants), and — in packages that
// import an api package — json encoding of named structs that are not
// api types. Package main is exempt from the struct and encoding
// checks (CLIs own their local file formats, like cvbench's benchmark
// report) but not from the route-literal check.
var WireContract = &analysis.Analyzer{
	Name: "wirecontract",
	Doc: "keeps wire types, routes and error codes inside the versioned " +
		"api package and checks the api package's own exhaustiveness",
	Run: runWireContract,
}

// isAPIPkg reports whether a package path is a versioned wire-contract
// package ("repro/internal/api/v1", or "api/v1" in testdata trees).
func isAPIPkg(path string) bool {
	return strings.Contains(path, "/api/") || strings.HasPrefix(path, "api/")
}

func runWireContract(pass *analysis.Pass) error {
	if isAPIPkg(pass.Pkg.Path()) {
		checkAPIPackage(pass)
		return nil
	}
	checkNonAPIPackage(pass)
	return nil
}

// --- inside the api package -----------------------------------------

func checkAPIPackage(pass *analysis.Pass) {
	checkJSONTags(pass)
	checkCodeCoverage(pass)
}

// checkJSONTags requires a json tag on every exported field of every
// exported struct type: an untagged field silently ships its Go name
// over the wire, which is exactly the kind of accidental contract the
// versioned package exists to prevent.
func checkJSONTags(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if !name.IsExported() {
							continue
						}
						if fld.Tag == nil || !strings.Contains(fld.Tag.Value, `json:"`) {
							pass.Reportf(name.Pos(), "wire field %s.%s has no json tag", ts.Name.Name, name.Name)
						}
					}
				}
			}
		}
	}
}

// checkCodeCoverage cross-references the three places an error code
// must appear: its Code* const declaration, the StatusOf switch that
// maps it to an HTTP status, and the Codes list that enumerates the
// contract for docs and clients.
func checkCodeCoverage(pass *analysis.Pass) {
	type codeConst struct {
		name string
		pos  token.Pos
	}
	var codes []codeConst
	inStatusOf := make(map[string]bool)
	inCodes := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					switch decl.Tok {
					case token.CONST:
						for _, name := range vs.Names {
							if strings.HasPrefix(name.Name, "Code") && name.Name != "Codes" && name.IsExported() {
								codes = append(codes, codeConst{name.Name, name.Pos()})
							}
						}
					case token.VAR:
						for i, name := range vs.Names {
							if name.Name != "Codes" || i >= len(vs.Values) {
								continue
							}
							if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
								for _, elt := range cl.Elts {
									if id, ok := ast.Unparen(elt).(*ast.Ident); ok {
										inCodes[id.Name] = true
									}
								}
							}
						}
					}
				}
			case *ast.FuncDecl:
				if decl.Name.Name != "StatusOf" || decl.Body == nil {
					continue
				}
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if id, ok := ast.Unparen(e).(*ast.Ident); ok {
							inStatusOf[id.Name] = true
						}
					}
					return true
				})
			}
		}
	}
	for _, c := range codes {
		if !inStatusOf[c.name] {
			pass.Reportf(c.pos, "error code %s has no StatusOf entry; every wire code must map to an HTTP status", c.name)
		}
		if !inCodes[c.name] {
			pass.Reportf(c.pos, "error code %s is missing from the Codes list", c.name)
		}
	}
}

// --- outside the api package ----------------------------------------

// routeLit matches a literal versioned route. The pattern is anchored,
// so the pattern string itself (which starts with '^') never matches.
var routeLit = regexp.MustCompile(`^/v1(/|$)`)

func checkNonAPIPackage(pass *analysis.Pass) {
	// package main is a CLI boundary, not a serving surface: commands
	// own their local file formats (cvbench's BENCH_serve.json report),
	// so the stray-struct and wire-encoding checks don't apply there.
	// Route literals are still flagged — CLIs must build their URLs
	// from the contract's Route constants like everyone else.
	isMain := pass.Pkg.Name() == "main"
	importsAPI := false
	for _, imp := range pass.Pkg.Imports() {
		if isAPIPkg(imp.Path()) {
			importsAPI = true
			break
		}
	}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if !isMain {
					checkStrayWireStruct(pass, n)
				}
			case *ast.BasicLit:
				checkRouteLiteral(pass, n, stack)
			case *ast.CallExpr:
				if importsAPI && !isMain {
					checkWireEncoding(pass, n)
				}
			}
			return true
		})
	}
}

// checkStrayWireStruct flags struct declarations with json-tagged
// fields outside the api package: a shape meant for the wire belongs
// in the versioned contract, not scattered through handlers.
func checkStrayWireStruct(pass *analysis.Pass, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, fld := range st.Fields.List {
		if fld.Tag != nil && strings.Contains(fld.Tag.Value, `json:"`) {
			pass.Reportf(ts.Name.Pos(), "struct %s has json-tagged fields outside the versioned api package; move wire types into internal/api", ts.Name.Name)
			return
		}
	}
}

// checkRouteLiteral flags hard-coded "/v1/..." strings: handlers and
// clients must reference the Route* constants so route changes stay a
// one-package affair. Struct tags and import paths are exempt.
func checkRouteLiteral(pass *analysis.Pass, lit *ast.BasicLit, stack []ast.Node) {
	if lit.Kind != token.STRING {
		return
	}
	switch parentOf(stack).(type) {
	case *ast.Field, *ast.ImportSpec:
		return
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || !routeLit.MatchString(val) {
		return
	}
	pass.Reportf(lit.Pos(), "literal versioned route %q; use the api package's Route constants", val)
}

// checkWireEncoding flags json encoding/decoding of named struct types
// that are not api types, in packages that already speak the versioned
// contract. Generic any-typed plumbing and api types pass; a local
// named struct on the wire is a contract leak.
func checkWireEncoding(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	pkg, recv, name := funcOrigin(fn)
	if pkg != "encoding/json" {
		return
	}
	var arg ast.Expr
	switch {
	case recv == "" && (name == "Marshal" || name == "MarshalIndent") && len(call.Args) > 0:
		arg = call.Args[0]
	case recv == "" && name == "Unmarshal" && len(call.Args) == 2:
		arg = call.Args[1]
	case (recv == "Encoder" && name == "Encode" || recv == "Decoder" && name == "Decode") && len(call.Args) == 1:
		arg = call.Args[0]
	default:
		return
	}
	tv, ok := pass.Info.Types[arg]
	if !ok {
		return
	}
	t := tv.Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	defPath := named.Obj().Pkg().Path()
	// api types are the contract; single-segment paths are stdlib.
	if isAPIPkg(defPath) || !strings.Contains(defPath, "/") {
		return
	}
	pass.Reportf(call.Pos(), "json wire encoding of non-api type %s.%s; wire shapes belong in internal/api", defPath, named.Obj().Name())
}
