package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReservoirBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(5, rng)
	for i := int32(0); i < 3; i++ {
		r.Offer(i)
	}
	if len(r.Rows()) != 3 || r.Seen() != 3 {
		t.Fatalf("reservoir under capacity should keep everything: %v", r.Rows())
	}
	for i := int32(3); i < 100; i++ {
		r.Offer(i)
	}
	if len(r.Rows()) != 5 {
		t.Fatalf("reservoir size = %d want 5", len(r.Rows()))
	}
	if r.Seen() != 100 {
		t.Fatalf("seen = %d want 100", r.Seen())
	}
	seen := map[int32]bool{}
	for _, x := range r.Rows() {
		if x < 0 || x >= 100 {
			t.Fatalf("sampled out-of-range row %d", x)
		}
		if seen[x] {
			t.Fatalf("duplicate row %d in without-replacement sample", x)
		}
		seen[x] = true
	}
}

func TestReservoirZeroCapacity(t *testing.T) {
	r := NewReservoir(0, rand.New(rand.NewSource(1)))
	for i := int32(0); i < 10; i++ {
		r.Offer(i)
	}
	if len(r.Rows()) != 0 {
		t.Fatalf("zero-capacity reservoir kept rows")
	}
	r2 := NewReservoir(-3, rand.New(rand.NewSource(1)))
	r2.Offer(1)
	if len(r2.Rows()) != 0 {
		t.Fatalf("negative capacity should clamp to 0")
	}
}

// Chi-square style uniformity check: every item should be selected with
// probability k/n; over many repetitions the per-item selection frequency
// must be close to that.
func TestReservoirUniformity(t *testing.T) {
	const n, k, reps = 20, 5, 20000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	for rep := 0; rep < reps; rep++ {
		r := NewReservoir(k, rng)
		for i := int32(0); i < n; i++ {
			r.Offer(i)
		}
		for _, x := range r.Rows() {
			counts[x]++
		}
	}
	want := float64(reps) * float64(k) / float64(n) // 5000
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("item %d selected %d times, want ~%.0f (±6%%)", i, c, want)
		}
	}
}

func TestUniformWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := UniformWithoutReplacement(10, 4, rng)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int32]bool{}
	for _, x := range got {
		if x < 0 || x >= 10 {
			t.Fatalf("out of range: %d", x)
		}
		if seen[x] {
			t.Fatalf("duplicate %d", x)
		}
		seen[x] = true
	}
	// k >= n returns everything
	all := UniformWithoutReplacement(5, 9, rng)
	if len(all) != 5 {
		t.Fatalf("k>=n should return n items, got %d", len(all))
	}
	if UniformWithoutReplacement(5, 0, rng) != nil {
		t.Fatalf("k=0 should return nil")
	}
	if UniformWithoutReplacement(5, -2, rng) != nil {
		t.Fatalf("k<0 should return nil")
	}
}

func TestUniformWithoutReplacementUniformity(t *testing.T) {
	const n, k, reps = 12, 3, 30000
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(11))
	for rep := 0; rep < reps; rep++ {
		for _, x := range UniformWithoutReplacement(n, k, rng) {
			counts[x]++
		}
	}
	want := float64(reps) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("index %d drawn %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestQuickUniformWithoutReplacementInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n8, k8 uint8) bool {
		n, k := int(n8)%200, int(k8)%200
		got := UniformWithoutReplacement(n, k, rng)
		if k > n {
			k = n
		}
		if len(got) != k {
			return false
		}
		seen := map[int32]bool{}
		for _, x := range got {
			if x < 0 || int(x) >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStratumSampleScale(t *testing.T) {
	s := StratumSample{PopulationN: 100, Rows: []int32{1, 2, 3, 4}}
	if s.SamplingFraction() != 0.04 {
		t.Fatalf("fraction = %v", s.SamplingFraction())
	}
	if s.ScaleUp() != 25 {
		t.Fatalf("scale = %v", s.ScaleUp())
	}
	empty := StratumSample{PopulationN: 50}
	if empty.ScaleUp() != 0 || empty.SamplingFraction() != 0 {
		t.Fatalf("empty stratum scale handling wrong")
	}
	zeroPop := StratumSample{}
	if zeroPop.SamplingFraction() != 0 {
		t.Fatalf("zero population fraction wrong")
	}
}

func TestDrawStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := [][]int32{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{10, 11, 12},
		{13},
	}
	ss, err := DrawStratified(rows, []int{4, 5, 1}, []string{"g"}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss.Strata) != 3 {
		t.Fatalf("strata = %d", len(ss.Strata))
	}
	if len(ss.Strata[0].Rows) != 4 {
		t.Fatalf("stratum 0 drew %d", len(ss.Strata[0].Rows))
	}
	if len(ss.Strata[1].Rows) != 3 { // clamped to population
		t.Fatalf("stratum 1 drew %d want clamped 3", len(ss.Strata[1].Rows))
	}
	if ss.Strata[2].PopulationN != 1 || len(ss.Strata[2].Rows) != 1 {
		t.Fatalf("stratum 2 wrong: %+v", ss.Strata[2])
	}
	if ss.TotalSampled() != 8 {
		t.Fatalf("total sampled = %d want 8", ss.TotalSampled())
	}
	if ss.TotalPopulation() != 14 {
		t.Fatalf("total population = %d want 14", ss.TotalPopulation())
	}
	all := ss.AllRows()
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("AllRows not sorted/unique: %v", all)
		}
	}
	// sampled rows must come from their stratum's row list
	for _, r := range ss.Strata[0].Rows {
		if r < 0 || r > 9 {
			t.Fatalf("stratum 0 sampled foreign row %d", r)
		}
	}
	if _, err := DrawStratified(rows, []int{1, 2}, nil, rng); err == nil {
		t.Fatalf("want size/strata mismatch error")
	}
}

func TestWeightedWithReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	idx, err := WeightedWithReplacement([]float64{1, 0, 3}, 40000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for _, i := range idx {
		counts[i]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight item drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.25 {
		t.Fatalf("weight ratio = %v want ~3", ratio)
	}
	if _, err := WeightedWithReplacement([]float64{0, 0}, 1, rng); err == nil {
		t.Fatalf("want zero-weight error")
	}
	if out, err := WeightedWithReplacement([]float64{1}, 0, rng); err != nil || out != nil {
		t.Fatalf("k=0 should be nil,nil")
	}
	// negative weights treated as zero
	idx2, err := WeightedWithReplacement([]float64{-5, 2}, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range idx2 {
		if i == 0 {
			t.Fatalf("negative-weight item drawn")
		}
	}
}

func BenchmarkReservoir(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := NewReservoir(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Offer(int32(i))
	}
}

func BenchmarkDrawStratified(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int32, 100)
	sizes := make([]int, 100)
	next := int32(0)
	for i := range rows {
		rows[i] = make([]int32, 1000)
		for j := range rows[i] {
			rows[i][j] = next
			next++
		}
		sizes[i] = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DrawStratified(rows, sizes, nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}
