// Package sample provides the row-sampling primitives shared by CVOPT
// and the baseline samplers: uniform reservoir sampling within a stratum
// (Vitter's Algorithm R), weighted (measure-biased) sampling with
// replacement for Sample+Seek, and the StratifiedSample container that
// records, per stratum, the population size and drawn sample so that
// estimators can apply the correct scale-up factors.
package sample

import (
	"fmt"
	"math/rand"
	"sort"
)

// Reservoir draws k items uniformly without replacement from a stream of
// unknown length using Algorithm R. The zero value is not usable; create
// with NewReservoir.
type Reservoir struct {
	k    int
	seen int64
	rows []int32
	rng  *rand.Rand
}

// NewReservoir creates a reservoir of capacity k fed by rng.
func NewReservoir(k int, rng *rand.Rand) *Reservoir {
	if k < 0 {
		k = 0
	}
	return &Reservoir{k: k, rows: make([]int32, 0, k), rng: rng}
}

// Offer presents one item (a row id) to the reservoir.
func (r *Reservoir) Offer(row int32) {
	r.seen++
	if len(r.rows) < r.k {
		r.rows = append(r.rows, row)
		return
	}
	if r.k == 0 {
		return
	}
	j := r.rng.Int63n(r.seen)
	if j < int64(r.k) {
		r.rows[j] = row
	}
}

// Rows returns the sampled row ids (order is arbitrary).
func (r *Reservoir) Rows() []int32 { return r.rows }

// Seen returns how many items were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// UniformWithoutReplacement draws k distinct indices from [0, n) using a
// partial Fisher-Yates shuffle; O(k) extra space via a sparse map when
// k << n would be possible, but the dense variant is fine at our scales.
// If k >= n it returns all indices.
func UniformWithoutReplacement(n, k int, rng *rand.Rand) []int32 {
	if k >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	if k <= 0 {
		return nil
	}
	// sparse Fisher-Yates: swap positions tracked in a map
	swap := make(map[int32]int32, k*2)
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		j := int32(i) + int32(rng.Int63n(int64(n-i)))
		vj, ok := swap[j]
		if !ok {
			vj = j
		}
		vi, ok := swap[int32(i)]
		if !ok {
			vi = int32(i)
		}
		out[i] = vj
		swap[j] = vi
	}
	return out
}

// StratumSample is the drawn sample of one stratum together with the
// population count needed to scale estimates back up.
type StratumSample struct {
	PopulationN int64   // n_c: rows of the full table in this stratum
	Rows        []int32 // sampled row ids (into the full table)
}

// SamplingFraction returns s_c/n_c.
func (s *StratumSample) SamplingFraction() float64 {
	if s.PopulationN == 0 {
		return 0
	}
	return float64(len(s.Rows)) / float64(s.PopulationN)
}

// ScaleUp returns n_c/s_c, the factor that converts a per-sample count or
// sum into an estimate of the stratum total. It is 0 when the stratum has
// no sampled rows (the estimator must treat such strata as missing).
func (s *StratumSample) ScaleUp() float64 {
	if len(s.Rows) == 0 {
		return 0
	}
	return float64(s.PopulationN) / float64(len(s.Rows))
}

// StratifiedSample is a sample of a table partitioned into strata. It is
// the artifact every sampler in this repository produces and every
// estimator consumes. Strata indices match the GroupIndex that defined
// the stratification.
type StratifiedSample struct {
	Attrs  []string // stratification attributes (finest stratification C)
	Strata []StratumSample
}

// TotalSampled returns the total number of sampled rows.
func (s *StratifiedSample) TotalSampled() int {
	n := 0
	for i := range s.Strata {
		n += len(s.Strata[i].Rows)
	}
	return n
}

// TotalPopulation returns the total number of rows of the sampled table.
func (s *StratifiedSample) TotalPopulation() int64 {
	var n int64
	for i := range s.Strata {
		n += s.Strata[i].PopulationN
	}
	return n
}

// AllRows returns all sampled row ids, sorted ascending, useful for
// materializing the sample as a physical sub-table.
func (s *StratifiedSample) AllRows() []int32 {
	out := make([]int32, 0, s.TotalSampled())
	for i := range s.Strata {
		out = append(out, s.Strata[i].Rows...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DrawStratified draws sizes[i] rows uniformly without replacement from
// each stratum, given the per-stratum row lists (from
// GroupIndex.RowsByStratum). Requested sizes larger than the stratum are
// clamped to the stratum size.
func DrawStratified(rowsByStratum [][]int32, sizes []int, attrs []string, rng *rand.Rand) (*StratifiedSample, error) {
	if len(rowsByStratum) != len(sizes) {
		return nil, fmt.Errorf("sample: %d strata but %d sizes", len(rowsByStratum), len(sizes))
	}
	out := &StratifiedSample{Attrs: append([]string(nil), attrs...), Strata: make([]StratumSample, len(sizes))}
	for i, rows := range rowsByStratum {
		k := sizes[i]
		if k > len(rows) {
			k = len(rows)
		}
		idx := UniformWithoutReplacement(len(rows), k, rng)
		picked := make([]int32, len(idx))
		for j, p := range idx {
			picked[j] = rows[p]
		}
		out.Strata[i] = StratumSample{PopulationN: int64(len(rows)), Rows: picked}
	}
	return out, nil
}

// WeightedWithReplacement draws k indices from [0, len(weights)) with
// probability proportional to weights[i], with replacement, using the
// alias-free cumulative method (binary search per draw). Negative weights
// are treated as zero. It returns an error when the total weight is zero
// and k > 0.
func WeightedWithReplacement(weights []float64, k int, rng *rand.Rand) ([]int32, error) {
	if k <= 0 {
		return nil, nil
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("sample: weighted draw from zero total weight")
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		u := rng.Float64() * total
		j := sort.SearchFloat64s(cum, u)
		if j >= len(cum) {
			j = len(cum) - 1
		}
		// skip zero-weight entries SearchFloat64s may land on
		for j < len(cum)-1 && (j == 0 && cum[j] == 0 || j > 0 && cum[j] == cum[j-1]) {
			j++
		}
		out[i] = int32(j)
	}
	return out, nil
}
