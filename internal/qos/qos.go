// Package qos is the heavy-traffic front end of the serving stack: the
// layer between the HTTP handlers and the registry that decides, for
// every request, whether it runs now, waits briefly, shares another
// request's work, degrades to a cheaper answer, or is refused with a
// retry hint. It has three cooperating parts:
//
//   - Admission control (admission.go): a bounded in-flight limit with a
//     bounded wait queue behind it. A request past both bounds is not
//     parked — it fails fast with ErrOverloaded and a Retry-After
//     estimate, so a thundering herd sees 429s in milliseconds instead
//     of timeouts in minutes.
//
//   - Query coalescing (coalesce.go): queries landing within a small
//     window that normalize to the same key (table, group-by, filter
//     class, sample generation — the serve layer builds the key from
//     the plan cache's normalized SQL) share one executor pass, with
//     the shared answer fanned back out per caller. Under a herd of
//     identical dashboard queries the daemon does O(1) work instead of
//     O(callers).
//
//   - Tenant token buckets (tenant.go): per-API-token rate limits, so
//     one hot tenant saturates its own bucket instead of the daemon.
//
// Load shedding is the fourth behavior but lives mostly in the serve
// layer: when admission would refuse a target_cv query, the registry
// degrades it to the cheapest already-resident covering sample and
// reports achieved_cv/degraded honestly — the autoscaler run in
// reverse. The Controller's shed lane bounds how much of that degraded
// work runs concurrently.
//
// The package is dependency-free within the repo (no api/v1, no serve
// imports): it speaks errors, durations and counters, and the serve
// layer translates those to wire codes, headers and metrics.
package qos

import (
	"time"
)

// Config sizes a FrontEnd.
type Config struct {
	// MaxInflight bounds requests executing concurrently (the admission
	// semaphore). Required: <= 0 is an error at New.
	MaxInflight int
	// MaxQueue bounds requests parked waiting for a slot. 0 defaults to
	// 2 × MaxInflight; negative disables queueing entirely (full slots
	// reject immediately).
	MaxQueue int
	// ShedSlots bounds degraded (load-shed) executions, a lane separate
	// from MaxInflight so cheap degraded answers still flow when the
	// main lane is saturated. 0 defaults to max(1, MaxInflight/4).
	ShedSlots int
	// CoalesceWindow is how long the first query of a coalescing key
	// waits for identical queries to pile on before executing once for
	// all of them. 0 disables coalescing (FrontEnd.Coalescer stays nil).
	CoalesceWindow time.Duration
	// TenantLimits is the per-tenant rate-limit table in
	// ParseTenantLimits syntax ("alice=100,bob=5:20,*=50"); empty
	// disables tenant limiting (FrontEnd.Tenants stays nil).
	TenantLimits string
}

// FrontEnd bundles the three QoS parts the serve layer consults. Nil
// Coalescer / Tenants mean that part is disabled; Admission is always
// present.
type FrontEnd struct {
	Admission *Controller
	Coalescer *Coalescer
	Tenants   *TenantLimiter
}

// New builds a FrontEnd from cfg, validating the tenant-limit spec.
func New(cfg Config) (*FrontEnd, error) {
	ctrl, err := NewController(cfg.MaxInflight, cfg.MaxQueue, cfg.ShedSlots)
	if err != nil {
		return nil, err
	}
	fe := &FrontEnd{Admission: ctrl}
	if cfg.CoalesceWindow > 0 {
		fe.Coalescer = NewCoalescer(cfg.CoalesceWindow)
	}
	if cfg.TenantLimits != "" {
		tl, err := ParseTenantLimits(cfg.TenantLimits)
		if err != nil {
			return nil, err
		}
		fe.Tenants = tl
	}
	return fe, nil
}

// Stats is a point-in-time snapshot of the front end's counters, for
// /healthz and the repro_qos_* metric series.
type Stats struct {
	MaxInflight, MaxQueue int
	Inflight, Queued      int
	Admitted, Rejected    int64
	Shed                  int64
	Coalesced, Batches    int64
	TenantRejected        int64
}

// Stats snapshots the front end. Each field is read atomically; the
// snapshot as a whole is not a consistent cut (counters advance while
// it is taken), which is fine for an ops surface.
func (f *FrontEnd) Stats() Stats {
	s := Stats{
		MaxInflight: f.Admission.MaxInflight(),
		MaxQueue:    f.Admission.MaxQueue(),
		Inflight:    f.Admission.Inflight(),
		Queued:      f.Admission.Queued(),
		Admitted:    f.Admission.Admitted(),
		Rejected:    f.Admission.Rejected(),
		Shed:        f.Admission.ShedCount(),
	}
	if f.Coalescer != nil {
		s.Coalesced = f.Coalescer.Coalesced()
		s.Batches = f.Coalescer.Batches()
	}
	if f.Tenants != nil {
		s.TenantRejected = f.Tenants.Rejected()
	}
	return s
}
