package qos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCoalesceSharesOnePass(t *testing.T) {
	c := NewCoalescer(30 * time.Millisecond)
	var calls atomic64
	fn := func() (any, error) {
		calls.add(1)
		return "answer", nil
	}

	const herd = 16
	var wg sync.WaitGroup
	var shared atomic64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, wasShared, err := c.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if val != "answer" {
				t.Errorf("val = %v, want answer", val)
			}
			if wasShared {
				shared.add(1)
			}
		}()
	}
	wg.Wait()
	if got := calls.load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := shared.load(); got != herd-1 {
		t.Fatalf("shared = %d, want %d followers", got, herd-1)
	}
	if got := c.Coalesced(); got != herd-1 {
		t.Fatalf("Coalesced = %d, want %d", got, herd-1)
	}
	if got := c.Batches(); got != 1 {
		t.Fatalf("Batches = %d, want 1", got)
	}
	if got := c.Passes(); got != 1 {
		t.Fatalf("Passes = %d, want 1", got)
	}
}

func TestCoalesceDistinctKeysRunSeparately(t *testing.T) {
	c := NewCoalescer(10 * time.Millisecond)
	var wg sync.WaitGroup
	var calls atomic64
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do(context.Background(), key, func() (any, error) {
				calls.add(1)
				return key, nil
			})
			if err != nil {
				t.Errorf("Do(%s): %v", key, err)
			}
		}()
	}
	wg.Wait()
	if got := calls.load(); got != 4 {
		t.Fatalf("fn ran %d times, want 4 (one per key)", got)
	}
	if got := c.Batches(); got != 0 {
		t.Fatalf("Batches = %d, want 0 (no sharing happened)", got)
	}
}

func TestCoalesceErrorFansOut(t *testing.T) {
	c := NewCoalescer(20 * time.Millisecond)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = c.Do(context.Background(), "k", func() (any, error) {
				return nil, boom
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}
}

func TestCoalesceFollowerCancel(t *testing.T) {
	c := NewCoalescer(2 * time.Second) // window far longer than the test
	leaderCtx, stopLeader := context.WithCancel(context.Background())
	defer stopLeader()
	go func() {
		_, _, _ = c.Do(leaderCtx, "k", func() (any, error) {
			return nil, nil
		})
	}()
	// Wait for the leader's flight to exist so we join as a follower.
	waitFor(t, func() bool {
		c.mu.Lock()
		_, ok := c.flights["k"]
		c.mu.Unlock()
		return ok
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, wasShared, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
	if !wasShared {
		t.Fatal("second caller should have joined the flight")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower = %v, want context.Canceled", err)
	}
}

func TestCoalesceLeaderCancelStillExecutes(t *testing.T) {
	c := NewCoalescer(time.Hour) // would hang forever if cancel didn't cut the window
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	val, _, err := c.Do(ctx, "k", func() (any, error) { return 42, nil })
	if err != nil || val != 42 {
		t.Fatalf("Do = (%v, %v), want (42, nil)", val, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("canceled leader waited %v, should have executed immediately", elapsed)
	}
}

func TestCoalesceZeroWindow(t *testing.T) {
	c := NewCoalescer(0)
	if got := c.Window(); got != 0 {
		t.Fatalf("Window = %v, want 0", got)
	}
	val, wasShared, err := c.Do(context.Background(), "k", func() (any, error) {
		return "v", nil
	})
	if err != nil || val != "v" || wasShared {
		t.Fatalf("Do = (%v, %v, %v), want (v, false, nil)", val, wasShared, err)
	}
	// Negative windows normalize to zero.
	if got := NewCoalescer(-time.Second).Window(); got != 0 {
		t.Fatalf("negative window = %v, want 0", got)
	}
}

func TestCoalesceNextWindowAfterExecution(t *testing.T) {
	c := NewCoalescer(5 * time.Millisecond)
	var calls atomic64
	fn := func() (any, error) {
		calls.add(1)
		return calls.load(), nil
	}
	v1, _, err := c.Do(context.Background(), "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := c.Do(context.Background(), "k", fn)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Fatalf("sequential windows shared a result (%v); want separate passes", v1)
	}
	if got := calls.load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2", got)
	}
}
