package qos

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(0, 0, 0); err == nil {
		t.Fatal("NewController(0) should fail")
	}
	if _, err := NewController(-3, 0, 0); err == nil {
		t.Fatal("NewController(-3) should fail")
	}
	c, err := NewController(8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxInflight(); got != 8 {
		t.Fatalf("MaxInflight = %d, want 8", got)
	}
	if got := c.MaxQueue(); got != 16 {
		t.Fatalf("default MaxQueue = %d, want 2x inflight = 16", got)
	}
	if got := cap(c.shed); got != 2 {
		t.Fatalf("default shed slots = %d, want inflight/4 = 2", got)
	}

	// Tiny controller: shed lane never collapses to zero.
	c, err = NewController(1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cap(c.shed); got != 1 {
		t.Fatalf("shed slots = %d, want floor of 1", got)
	}
	if got := c.MaxQueue(); got != 5 {
		t.Fatalf("MaxQueue = %d, want 5", got)
	}

	// Negative maxQueue disables queueing.
	c, err = NewController(2, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MaxQueue(); got != 0 {
		t.Fatalf("MaxQueue = %d, want 0 (disabled)", got)
	}
}

func TestAcquireFastPathAndRelease(t *testing.T) {
	c, err := NewController(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rel1, err := c.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
	rel1()
	rel1() // idempotent
	if got := c.Inflight(); got != 1 {
		t.Fatalf("Inflight after release = %d, want 1", got)
	}
	rel2()
	if got := c.Admitted(); got != 2 {
		t.Fatalf("Admitted = %d, want 2", got)
	}
}

func TestAcquireQueueFullRejects(t *testing.T) {
	c, err := NewController(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rel, err := c.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Park one waiter in the single queue position.
	entered := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		close(entered)
		r, err := c.Acquire(ctx)
		if err == nil {
			defer r()
		}
		got <- err
	}()
	<-entered
	waitFor(t, func() bool { return c.Queued() == 1 })

	// Queue is now full: the next arrival is refused immediately.
	if _, err := c.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire with full queue = %v, want ErrOverloaded", err)
	}
	if got := c.Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter failed: %v", err)
	}
}

func TestAcquireQueueDisabled(t *testing.T) {
	c, err := NewController(1, -1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire with queueing disabled = %v, want ErrOverloaded", err)
	}
}

func TestAcquireContextCanceledWhileQueued(t *testing.T) {
	c, err := NewController(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		got <- err
	}()
	waitFor(t, func() bool { return c.Queued() == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return c.Queued() == 0 })
	// Cancellation is not a rejection.
	if got := c.Rejected(); got != 0 {
		t.Fatalf("Rejected = %d, want 0", got)
	}
}

func TestTryAcquireAndTryShed(t *testing.T) {
	c, err := NewController(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel, ok := c.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire on idle controller should succeed")
	}
	if _, ok := c.TryAcquire(); ok {
		t.Fatal("TryAcquire with full slots should fail")
	}

	shedRel, ok := c.TryShed()
	if !ok {
		t.Fatal("TryShed with free shed lane should succeed")
	}
	if _, ok := c.TryShed(); ok {
		t.Fatal("TryShed with full shed lane should fail")
	}
	if got := c.Rejected(); got != 1 {
		t.Fatalf("Rejected after full shed lane = %d, want 1", got)
	}
	shedRel()
	shedRel() // idempotent
	if _, ok := c.TryShed(); !ok {
		t.Fatal("TryShed after release should succeed")
	}
	if got := c.ShedCount(); got != 2 {
		t.Fatalf("ShedCount = %d, want 2", got)
	}
	rel()
}

func TestRetryAfterEstimate(t *testing.T) {
	c, err := NewController(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No history: floor of 1s.
	if got := c.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter with no history = %v, want 1s", got)
	}

	// Feed the EWMA with a deterministic clock: 10s service times.
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	rel()
	// First observation sets the EWMA outright: 10s / 2 slots, 0
	// queued → ceil(10*1/2) = 5s.
	if got := c.RetryAfter(); got != 5*time.Second {
		t.Fatalf("RetryAfter = %v, want 5s", got)
	}

	// A second, faster pass pulls the EWMA down: 0.8*10 + 0.2*0 = 8s.
	rel, err = c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if got := c.RetryAfter(); got != 4*time.Second {
		t.Fatalf("RetryAfter after fast pass = %v, want 4s", got)
	}
}

func TestRetryAfterClamp(t *testing.T) {
	c, err := NewController(1, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	c.now = func() time.Time { return now }
	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Minute)
	rel()
	if got := c.RetryAfter(); got != 60*time.Second {
		t.Fatalf("RetryAfter = %v, want clamp at 60s", got)
	}
	// A negative clock skew must not poison the EWMA.
	rel, err = c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(-time.Hour)
	rel()
	if got := c.RetryAfter(); got != 60*time.Second {
		t.Fatalf("RetryAfter after skewed release = %v, want 60s", got)
	}
}

func TestAcquireConcurrentHerd(t *testing.T) {
	c, err := NewController(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	const herd = 64
	var wg sync.WaitGroup
	var admitted, overloaded atomic64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if errors.Is(err, ErrOverloaded) {
				overloaded.add(1)
				return
			}
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			admitted.add(1)
			time.Sleep(time.Millisecond)
			rel()
		}()
	}
	wg.Wait()
	if admitted.load()+overloaded.load() != herd {
		t.Fatalf("admitted %d + overloaded %d != %d", admitted.load(), overloaded.load(), herd)
	}
	if admitted.load() < 4 {
		t.Fatalf("admitted = %d, want at least the slot count", admitted.load())
	}
	if c.Inflight() != 0 || c.Queued() != 0 {
		t.Fatalf("leaked slots: inflight=%d queued=%d", c.Inflight(), c.Queued())
	}
}

// atomic64 is a tiny test helper (sync/atomic.Int64 spelled out so the
// test reads without the type noise).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(n int64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}
