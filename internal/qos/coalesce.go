package qos

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// flight is one in-progress coalesced execution: the leader runs fn and
// publishes (val, err) before closing done; followers block on done.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	joiners atomic.Int64
}

// Coalescer batches identical work under load: the first caller of a
// key becomes the leader, waits `window` for identical calls to pile
// on, then executes once; every caller of that key during the window
// (or during the execution itself) gets the leader's result. This is
// window-batched singleflight — the deliberate extra latency of the
// window is what turns a thundering herd of identical dashboard
// queries into one executor pass.
//
// Keys must capture everything that affects the answer; the serve
// layer builds them from the plan cache's normalized SQL plus the
// table's sample generation, so a refresh between windows never serves
// a stale answer.
type Coalescer struct {
	window time.Duration

	mu      sync.Mutex
	flights map[string]*flight

	coalesced atomic.Int64 // followers served from a shared pass
	batches   atomic.Int64 // passes that served more than one caller
	passes    atomic.Int64 // leader executions
}

// NewCoalescer returns a Coalescer with the given batching window. A
// zero window still deduplicates callers that arrive while a leader is
// executing, but won't hold work back to wait for them; callers that
// want coalescing off entirely should not route through a Coalescer.
func NewCoalescer(window time.Duration) *Coalescer {
	if window < 0 {
		window = 0
	}
	return &Coalescer{window: window, flights: make(map[string]*flight)}
}

// Do executes fn once per key per window and fans the result out to
// every caller that joined. shared reports whether this caller was a
// follower (its answer came from another caller's pass). The leader
// runs fn to completion even if its own ctx is canceled mid-window —
// followers depend on the result — so fn must not be bound to a single
// caller's cancellation (the serve layer wraps it over a detached
// context). A follower whose ctx is canceled while waiting returns
// ctx.Err.
func (c *Coalescer) Do(ctx context.Context, key string, fn func() (any, error)) (val any, shared bool, err error) {
	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		f.joiners.Add(1)
		c.mu.Unlock()
		select {
		case <-f.done:
			c.coalesced.Add(1)
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	if c.window > 0 {
		t := time.NewTimer(c.window)
		select {
		case <-t.C:
		case <-ctx.Done():
			// The leader is leaving, but followers may already be
			// waiting: stop batching and execute now rather than strand
			// them (fn is detached from this ctx by contract).
			t.Stop()
		}
	}

	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()

	f.val, f.err = fn()
	close(f.done)

	c.passes.Add(1)
	if f.joiners.Load() > 0 {
		c.batches.Add(1)
	}
	return f.val, false, f.err
}

// Coalesced returns the number of callers served from another caller's
// executor pass.
func (c *Coalescer) Coalesced() int64 { return c.coalesced.Load() }

// Batches returns the number of passes that served more than one
// caller.
func (c *Coalescer) Batches() int64 { return c.batches.Load() }

// Passes returns the total number of leader executions.
func (c *Coalescer) Passes() int64 { return c.passes.Load() }

// Window returns the configured batching window.
func (c *Coalescer) Window() time.Duration { return c.window }
