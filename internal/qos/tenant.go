package qos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxDynamicTenants bounds the buckets created lazily for tokens that
// only match the "*" default — an attacker cycling random tokens must
// not grow the bucket map without bound. Past the cap, unlisted tokens
// share one overflow bucket (they collectively get one default quota,
// which under that kind of abuse is the right degradation).
const maxDynamicTenants = 4096

// bucket is a classic token bucket: `rate` tokens per second refill up
// to `burst`. The zero value is unusable; fill via newBucket.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate, burst float64, now time.Time) *bucket {
	return &bucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take consumes one token if available; otherwise it reports how long
// until one accrues.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(b.burst, b.tokens+elapsed*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// limitSpec is one parsed tenant entry: rate requests/second with a
// burst allowance.
type limitSpec struct {
	rate  float64
	burst float64
}

// TenantLimiter maps API tokens to token buckets. Tokens listed in the
// -tenant-limits spec get their own bucket; unlisted tokens fall back
// to the "*" default (each getting its own bucket at the default rate,
// up to maxDynamicTenants) or pass freely when no default is set.
type TenantLimiter struct {
	mu       sync.Mutex
	buckets  map[string]*bucket
	specs    map[string]limitSpec
	def      *limitSpec
	overflow *bucket // shared bucket once maxDynamicTenants is hit
	dynamic  int

	rejected int64
	now      func() time.Time
}

// ParseTenantLimits parses a spec like "alice=100,bob=5:20,*=50":
// comma-separated token=rate entries, rate in requests/second, with an
// optional :burst suffix (default burst = max(1, rate)). The "*" token
// sets the default for unlisted tokens; without it, unlisted tokens
// are not rate-limited.
func ParseTenantLimits(spec string) (*TenantLimiter, error) {
	l := &TenantLimiter{
		buckets: make(map[string]*bucket),
		specs:   make(map[string]limitSpec),
		now:     time.Now,
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		token, limits, ok := strings.Cut(part, "=")
		token = strings.TrimSpace(token)
		if !ok || token == "" {
			return nil, fmt.Errorf("qos: tenant limit %q: want token=rate[:burst]", part)
		}
		rateStr, burstStr, hasBurst := strings.Cut(limits, ":")
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			return nil, fmt.Errorf("qos: tenant limit %q: rate must be a positive number", part)
		}
		s := limitSpec{rate: rate, burst: math.Max(1, rate)}
		if hasBurst {
			burst, err := strconv.ParseFloat(strings.TrimSpace(burstStr), 64)
			if err != nil || burst < 1 || math.IsInf(burst, 0) || math.IsNaN(burst) {
				return nil, fmt.Errorf("qos: tenant limit %q: burst must be a number >= 1", part)
			}
			s.burst = burst
		}
		if token == "*" {
			if l.def != nil {
				return nil, fmt.Errorf("qos: tenant limits: duplicate default %q", part)
			}
			def := s
			l.def = &def
			continue
		}
		if _, dup := l.specs[token]; dup {
			return nil, fmt.Errorf("qos: tenant limits: duplicate token %q", token)
		}
		l.specs[token] = s
	}
	if len(l.specs) == 0 && l.def == nil {
		return nil, fmt.Errorf("qos: tenant limits %q: no entries", spec)
	}
	return l, nil
}

// Allow charges one request to the token's bucket. It returns ok=true
// when the request may proceed; otherwise retryAfter is how long until
// the bucket accrues a token. Tokens with no matching entry and no "*"
// default always pass (rate limiting is opt-in per tenant).
func (l *TenantLimiter) Allow(token string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	b := l.buckets[token]
	if b == nil {
		if s, listed := l.specs[token]; listed {
			b = newBucket(s.rate, s.burst, now)
			l.buckets[token] = b
		} else if l.def != nil {
			if l.dynamic >= maxDynamicTenants {
				if l.overflow == nil {
					l.overflow = newBucket(l.def.rate, l.def.burst, now)
				}
				b = l.overflow
			} else {
				b = newBucket(l.def.rate, l.def.burst, now)
				l.buckets[token] = b
				l.dynamic++
			}
		}
	}
	l.mu.Unlock()
	if b == nil {
		return true, 0
	}
	ok, retryAfter = b.take(now)
	if !ok {
		l.mu.Lock()
		l.rejected++
		l.mu.Unlock()
	}
	return ok, retryAfter
}

// Rejected returns the count of requests refused by tenant buckets.
func (l *TenantLimiter) Rejected() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}

// Tokens returns the explicitly configured tokens, sorted — an ops/
// test convenience (the daemon logs them at startup; values are
// caller-chosen identifiers, not secrets minted here).
func (l *TenantLimiter) Tokens() []string {
	out := make([]string, 0, len(l.specs))
	for t := range l.specs {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// HasDefault reports whether unlisted tokens are rate-limited via a
// "*" entry.
func (l *TenantLimiter) HasDefault() bool { return l.def != nil }
