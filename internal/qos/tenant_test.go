package qos

import (
	"fmt"
	"testing"
	"time"
)

func TestParseTenantLimits(t *testing.T) {
	l, err := ParseTenantLimits("alice=100,bob=5:20, *=50 ")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Tokens(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Tokens = %v, want [alice bob]", got)
	}
	if !l.HasDefault() {
		t.Fatal("HasDefault should be true")
	}
	if s := l.specs["alice"]; s.rate != 100 || s.burst != 100 {
		t.Fatalf("alice spec = %+v, want rate 100 burst 100 (default burst = rate)", s)
	}
	if s := l.specs["bob"]; s.rate != 5 || s.burst != 20 {
		t.Fatalf("bob spec = %+v, want rate 5 burst 20", s)
	}

	// Low rates keep a burst floor of one full request.
	l, err = ParseTenantLimits("slow=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s := l.specs["slow"]; s.burst != 1 {
		t.Fatalf("slow burst = %v, want floor of 1", s.burst)
	}
}

func TestParseTenantLimitsErrors(t *testing.T) {
	for _, spec := range []string{
		"",                // no entries
		"   , ,",          // only empty parts
		"alice",           // no =
		"=5",              // empty token
		"alice=zero",      // non-numeric rate
		"alice=0",         // zero rate
		"alice=-2",        // negative rate
		"alice=NaN",       // NaN rate
		"alice=5:0",       // burst below 1
		"alice=5:x",       // non-numeric burst
		"alice=5,alice=6", // duplicate token
		"*=5,*=6",         // duplicate default
	} {
		if _, err := ParseTenantLimits(spec); err == nil {
			t.Errorf("ParseTenantLimits(%q) should fail", spec)
		}
	}
}

func TestTenantAllow(t *testing.T) {
	l, err := ParseTenantLimits("alice=1:2,*=1")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	// alice has burst 2: two requests pass, the third waits.
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("alice request %d should pass", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("alice's third burst request should be limited")
	}
	if retry != time.Second {
		t.Fatalf("retryAfter = %v, want 1s at rate 1", retry)
	}
	if got := l.Rejected(); got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}

	// Refill: one second accrues one token.
	now = now.Add(time.Second)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("alice should pass after refill")
	}

	// Unlisted token gets its own default bucket.
	if ok, _ := l.Allow("mallory"); !ok {
		t.Fatal("mallory's first request should pass (default burst 1)")
	}
	if ok, _ := l.Allow("mallory"); ok {
		t.Fatal("mallory's second request should be limited")
	}
	// A different unlisted token is not affected by mallory's bucket.
	if ok, _ := l.Allow("trent"); !ok {
		t.Fatal("trent should have his own default bucket")
	}
}

func TestTenantAllowNoDefault(t *testing.T) {
	l, err := ParseTenantLimits("alice=1")
	if err != nil {
		t.Fatal(err)
	}
	// Unlisted tokens pass freely when no "*" entry exists.
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("anyone"); !ok {
			t.Fatal("unlisted token must not be limited without a default")
		}
	}
	if got := l.Rejected(); got != 0 {
		t.Fatalf("Rejected = %d, want 0", got)
	}
}

func TestTenantDynamicBucketCap(t *testing.T) {
	l, err := ParseTenantLimits("*=1000000")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < maxDynamicTenants; i++ {
		if ok, _ := l.Allow(fmt.Sprintf("t%d", i)); !ok {
			t.Fatalf("tenant %d should pass", i)
		}
	}
	if l.dynamic != maxDynamicTenants {
		t.Fatalf("dynamic = %d, want %d", l.dynamic, maxDynamicTenants)
	}
	// Past the cap, new tokens share the overflow bucket rather than
	// growing the map.
	if ok, _ := l.Allow("overflow-1"); !ok {
		t.Fatal("overflow token should still pass (shared bucket has tokens)")
	}
	if ok, _ := l.Allow("overflow-2"); !ok {
		t.Fatal("second overflow token draws from the same shared bucket")
	}
	if len(l.buckets) != maxDynamicTenants {
		t.Fatalf("bucket map grew to %d, want capped at %d", len(l.buckets), maxDynamicTenants)
	}
	if l.overflow == nil {
		t.Fatal("overflow bucket should exist")
	}
}

func TestBucketRefillCapsAtBurst(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBucket(10, 3, now)
	// Drain the burst.
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d should succeed", i)
		}
	}
	if ok, _ := b.take(now); ok {
		t.Fatal("bucket should be empty")
	}
	// A long idle period refills to burst, not beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("post-idle take %d should succeed", i)
		}
	}
	if ok, _ := b.take(now); ok {
		t.Fatal("refill must cap at burst")
	}
}

func TestFrontEndNewAndStats(t *testing.T) {
	fe, err := New(Config{
		MaxInflight:    4,
		CoalesceWindow: time.Millisecond,
		TenantLimits:   "alice=5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fe.Coalescer == nil || fe.Tenants == nil {
		t.Fatal("coalescer and tenants should be configured")
	}
	s := fe.Stats()
	if s.MaxInflight != 4 || s.MaxQueue != 8 {
		t.Fatalf("Stats = %+v, want MaxInflight 4 MaxQueue 8", s)
	}

	// Disabled parts stay nil and Stats tolerates that.
	fe, err = New(Config{MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fe.Coalescer != nil || fe.Tenants != nil {
		t.Fatal("coalescer and tenants should be nil when unconfigured")
	}
	_ = fe.Stats()

	// Config errors propagate.
	if _, err := New(Config{MaxInflight: 0}); err == nil {
		t.Fatal("New with MaxInflight 0 should fail")
	}
	if _, err := New(Config{MaxInflight: 2, TenantLimits: "bad"}); err == nil {
		t.Fatal("New with a bad tenant spec should fail")
	}
}
