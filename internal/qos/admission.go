package qos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when admission control refuses a request:
// the in-flight and queue bounds are full, or — for a degradable
// request — the shed lane is full too. The serve layer maps it to the
// wire code "overloaded" (429) with a Retry-After header from
// Controller.RetryAfter.
var ErrOverloaded = errors.New("qos: overloaded")

// Controller is the admission gate: a semaphore of MaxInflight
// execution slots with a bounded wait queue in front of it, plus a
// small separate lane for degraded (load-shed) work. Both bounds are
// buffered channels, so waiting is allocation-free and wakeups are
// FIFO-ish without an explicit queue structure.
//
// Acquire/TryAcquire/TryShed return a release func; calling it more
// than once is safe. Release of a full (non-shed) slot feeds an EWMA of
// service time that RetryAfter turns into the 429 backoff hint.
type Controller struct {
	slots chan struct{} // full lane; a buffered token = one running request
	queue chan struct{} // wait-queue positions; nil when queueing is disabled
	shed  chan struct{} // degraded lane

	admitted atomic.Int64
	rejected atomic.Int64
	shedN    atomic.Int64

	// ewma holds math.Float64bits of the smoothed service time in
	// seconds; 0 means no observation yet.
	ewma atomic.Uint64

	now func() time.Time // injectable clock for tests
}

// NewController builds a Controller. maxInflight must be positive.
// maxQueue 0 defaults to 2×maxInflight, negative disables queueing;
// shedSlots 0 defaults to max(1, maxInflight/4).
func NewController(maxInflight, maxQueue, shedSlots int) (*Controller, error) {
	if maxInflight <= 0 {
		return nil, fmt.Errorf("qos: max inflight must be positive, got %d", maxInflight)
	}
	if maxQueue == 0 {
		maxQueue = 2 * maxInflight
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if shedSlots <= 0 {
		shedSlots = maxInflight / 4
		if shedSlots < 1 {
			shedSlots = 1
		}
	}
	c := &Controller{
		slots: make(chan struct{}, maxInflight),
		shed:  make(chan struct{}, shedSlots),
		now:   time.Now,
	}
	if maxQueue > 0 {
		c.queue = make(chan struct{}, maxQueue)
	}
	return c, nil
}

// Acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns a release func the caller must invoke
// when the work finishes. It fails fast with ErrOverloaded when the
// queue is full (or queueing is disabled), and with ctx.Err() when the
// caller gives up while queued.
func (c *Controller) Acquire(ctx context.Context) (func(), error) {
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return c.release(), nil
	default:
	}
	if c.queue == nil {
		c.rejected.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case c.queue <- struct{}{}:
	default:
		c.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer func() { <-c.queue }()
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return c.release(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryAcquire claims an execution slot without waiting. The degraded
// query path uses it: a free slot means full service, a busy daemon
// means TryShed instead of queueing.
func (c *Controller) TryAcquire() (func(), bool) {
	select {
	case c.slots <- struct{}{}:
		c.admitted.Add(1)
		return c.release(), true
	default:
		return nil, false
	}
}

// TryShed claims a degraded-lane slot without waiting — the admission
// path for a query that is about to be answered from an already
// resident sample instead of running the full target_cv search. A full
// shed lane counts as a rejection.
func (c *Controller) TryShed() (func(), bool) {
	select {
	case c.shed <- struct{}{}:
		c.shedN.Add(1)
		var once sync.Once
		return func() { once.Do(func() { <-c.shed }) }, true
	default:
		c.rejected.Add(1)
		return nil, false
	}
}

// release returns the release func for a full-lane slot, recording the
// slot's service time into the EWMA exactly once.
func (c *Controller) release() func() {
	start := c.now()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.observe(c.now().Sub(start))
			<-c.slots
		})
	}
}

// ewmaAlpha is the smoothing factor for the service-time average: new
// observations carry 20% weight, so the estimate settles within a few
// requests without whipsawing on one slow build.
const ewmaAlpha = 0.2

// observe folds one service duration into the EWMA (lock-free CAS
// loop; contention is bounded by release rate).
func (c *Controller) observe(d time.Duration) {
	s := d.Seconds()
	if s < 0 {
		return
	}
	for {
		old := c.ewma.Load()
		prev := math.Float64frombits(old)
		next := s
		if old != 0 {
			next = (1-ewmaAlpha)*prev + ewmaAlpha*s
		}
		if c.ewma.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// RetryAfter estimates when capacity will free up: the smoothed service
// time scaled by the queue depth ahead of a new arrival, spread over
// the slot count, rounded up to whole seconds and clamped to [1s, 60s].
// It is deliberately coarse — a polite hint, not a schedule.
func (c *Controller) RetryAfter() time.Duration {
	svc := math.Float64frombits(c.ewma.Load())
	if svc <= 0 {
		svc = 0.05 // no history yet; assume a cheap query mix
	}
	waiting := float64(c.Queued() + 1)
	est := svc * waiting / float64(cap(c.slots))
	secs := int64(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// MaxInflight returns the execution-slot bound.
func (c *Controller) MaxInflight() int { return cap(c.slots) }

// MaxQueue returns the wait-queue bound (0 when queueing is disabled).
func (c *Controller) MaxQueue() int { return cap(c.queue) }

// Inflight returns the number of currently executing full-lane
// requests.
func (c *Controller) Inflight() int { return len(c.slots) }

// Queued returns the number of requests parked waiting for a slot.
func (c *Controller) Queued() int { return len(c.queue) }

// Admitted returns the count of full-lane admissions.
func (c *Controller) Admitted() int64 { return c.admitted.Load() }

// Rejected returns the count of fail-fast refusals (queue full, shed
// lane full). Context cancellations while queued are not rejections.
func (c *Controller) Rejected() int64 { return c.rejected.Load() }

// ShedCount returns the count of degraded-lane admissions.
func (c *Controller) ShedCount() int64 { return c.shedN.Load() }
