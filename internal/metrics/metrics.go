// Package metrics computes the error measures of the paper's evaluation:
// per-group relative error |x̄ − x|/x of an approximate answer against
// the exact answer, and their max / average / percentile summaries over
// all groups of a query (Section 6 preliminaries).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
)

// RelativeError returns |approx − exact| / |exact|. When the exact value
// is zero the error is 0 if the estimate is also zero, else 1 (treated
// as 100%, the convention for missing/degenerate answers).
func RelativeError(exact, approx float64) float64 {
	if math.IsNaN(approx) || math.IsInf(approx, 0) {
		return 1
	}
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(approx-exact) / math.Abs(exact)
}

// GroupErrors compares an approximate query result against the exact
// one and returns one relative error per (grouping set, group,
// aggregate). Groups present in the exact answer but missing from the
// approximate one count as error 1 (the estimate is 0/undefined) — this
// is what penalizes uniform samples that miss small groups entirely.
// Spurious approximate groups (possible only with weight noise) are
// ignored, matching the paper's per-true-group accounting.
func GroupErrors(exact, approx *exec.Result) []float64 {
	approxIdx := approx.Index()
	var errs []float64
	for _, row := range exact.Rows {
		est, ok := approxIdx[exec.KeyOf(row.Set, row.Key)]
		for i, want := range row.Aggs {
			if !ok {
				errs = append(errs, 1)
				continue
			}
			errs = append(errs, RelativeError(want, est[i]))
		}
	}
	return errs
}

// GroupErrorsPerAgg is GroupErrors split by aggregate position: result
// [j] holds the per-group errors of the j-th aggregate output. Used by
// the weighted-aggregates experiment (Figure 2), which reports each
// aggregate's error separately.
func GroupErrorsPerAgg(exact, approx *exec.Result) [][]float64 {
	approxIdx := approx.Index()
	var out [][]float64
	for _, row := range exact.Rows {
		if out == nil {
			out = make([][]float64, len(row.Aggs))
		}
		est, ok := approxIdx[exec.KeyOf(row.Set, row.Key)]
		for i, want := range row.Aggs {
			if !ok {
				out[i] = append(out[i], 1)
				continue
			}
			out[i] = append(out[i], RelativeError(want, est[i]))
		}
	}
	return out
}

// Summary condenses a set of per-group errors.
type Summary struct {
	N      int
	Max    float64
	Mean   float64
	Median float64
}

// Summarize computes N, max, mean and median of errs. An empty input
// yields a zero Summary.
func Summarize(errs []float64) Summary {
	if len(errs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(errs)}
	var sum float64
	for _, e := range errs {
		sum += e
		if e > s.Max {
			s.Max = e
		}
	}
	s.Mean = sum / float64(len(errs))
	s.Median = Percentile(errs, 0.5)
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of errs using linear
// interpolation between order statistics. It does not modify errs.
func Percentile(errs []float64, p float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a summary as percentages.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d max=%.2f%% mean=%.2f%% median=%.2f%%",
		s.N, s.Max*100, s.Mean*100, s.Median*100)
}

// Average element-wise averages several summaries (used to average the
// five experiment repetitions).
func Average(summaries []Summary) Summary {
	if len(summaries) == 0 {
		return Summary{}
	}
	var out Summary
	for _, s := range summaries {
		out.N += s.N
		out.Max += s.Max
		out.Mean += s.Mean
		out.Median += s.Median
	}
	k := float64(len(summaries))
	out.N /= len(summaries)
	out.Max /= k
	out.Mean /= k
	out.Median /= k
	return out
}
