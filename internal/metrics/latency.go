package metrics

// Request-latency histograms for the serving layer's observability
// (per-endpoint p50/p95/p99 in /healthz). A Histogram is a fixed set
// of geometric buckets over lock-free atomic counters, so Observe on
// the hot request path costs one atomic add and never blocks; quantile
// estimation interpolates inside the bucket that crosses the rank,
// which is exact to within one bucket's resolution (a factor of 2).

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets is the bucket count: upper bounds 1µs<<i for
// i in [0, latencyBuckets-1], i.e. 1µs … ~2290s, covering everything
// from a cached registry hit to a pathological full-table build.
// Durations beyond the last bound land in the last bucket.
const latencyBuckets = 32

// bucketBase is the first bucket's upper bound.
const bucketBase = time.Microsecond

// NumBuckets is the number of geometric buckets a Histogram holds,
// exported for renderers (the Prometheus exposition in internal/obs)
// that walk the buckets directly.
const NumBuckets = latencyBuckets

// BucketUpper returns bucket i's inclusive upper bound (1µs << i).
// Indexes outside [0, NumBuckets-1] are clamped.
func BucketUpper(i int) time.Duration {
	if i < 0 {
		i = 0
	}
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	return bucketBase << i
}

// Histogram counts observations in geometric latency buckets. The
// zero value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [latencyBuckets]atomic.Int64
	total  atomic.Int64
	sumNS  atomic.Int64
}

// bucketOf returns the index of the smallest bucket whose upper bound
// 1µs<<i is >= d.
func bucketOf(d time.Duration) int {
	if d <= bucketBase {
		return 0
	}
	// ceil(d/1µs), then the position of its highest bit: the smallest
	// power of two (in µs) that is >= the duration
	us := uint64((d + bucketBase - 1) / bucketBase)
	i := bits.Len64(us - 1)
	if i >= latencyBuckets {
		return latencyBuckets - 1
	}
	return i
}

// bucketBounds returns bucket i's half-open (lo, hi] duration range.
func bucketBounds(i int) (lo, hi time.Duration) {
	hi = bucketBase << i
	if i > 0 {
		lo = bucketBase << (i - 1)
	}
	return lo, hi
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the total of all observed durations (the _sum series of
// a Prometheus histogram exposition).
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Buckets returns a frozen copy of the per-bucket counts and their
// total. Bucket i counts observations in (BucketUpper(i-1),
// BucketUpper(i)]; durations beyond the last bound land in the last
// bucket. One frozen copy keeps a rendered digest self-consistent
// under concurrent Observes.
func (h *Histogram) Buckets() (counts [NumBuckets]int64, total int64) {
	return h.freeze()
}

// freeze loads every bucket counter once and returns the frozen copy
// plus its total. All quantiles of one digest are computed from one
// frozen copy, so concurrent Observes cannot make p95 > p99 inside a
// single snapshot.
func (h *Histogram) freeze() (counts [latencyBuckets]int64, total int64) {
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// quantileOf estimates the q-quantile (q clamped to [0, 1]) of a
// frozen bucket array by linear interpolation inside the bucket
// containing the rank; 0 when nothing was observed.
func quantileOf(counts [latencyBuckets]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := 0; i < latencyBuckets; i++ {
		n := float64(counts[i])
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / n
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	// unreachable: rank <= total and the cumulative sum reaches total
	// exactly (bucket counts are integers, exact in float64)
	return 0
}

// Quantile estimates the q-quantile of the observed durations from a
// freshly frozen copy of the counters. For several quantiles of one
// consistent digest, use Snapshot (or freeze once yourself).
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total := h.freeze()
	return quantileOf(counts, total, q)
}

// LatencySummary is one label's latency digest.
type LatencySummary struct {
	Count         int64
	P50, P95, P99 time.Duration
}

// LatencySet keys histograms by label (the serving layer uses route
// patterns). The zero value is not usable; call NewLatencySet. Observe
// is read-locked on the steady state — a label allocates its histogram
// once, on first sight.
type LatencySet struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewLatencySet returns an empty set.
func NewLatencySet() *LatencySet {
	return &LatencySet{m: make(map[string]*Histogram)}
}

// Observe records one duration under the label.
func (s *LatencySet) Observe(label string, d time.Duration) {
	s.mu.RLock()
	h, ok := s.m[label]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if h, ok = s.m[label]; !ok {
			h = &Histogram{}
			s.m[label] = h
		}
		s.mu.Unlock()
	}
	h.Observe(d)
}

// Snapshot digests every label with at least one observation.
func (s *LatencySet) Snapshot() map[string]LatencySummary {
	s.mu.RLock()
	hists := make(map[string]*Histogram, len(s.m))
	for label, h := range s.m {
		hists[label] = h
	}
	s.mu.RUnlock()
	out := make(map[string]LatencySummary, len(hists))
	for label, h := range hists {
		// one frozen copy per histogram: count and all three quantiles
		// describe the same state, so p50 ≤ p95 ≤ p99 always holds
		counts, total := h.freeze()
		if total == 0 {
			continue
		}
		out[label] = LatencySummary{
			Count: total,
			P50:   quantileOf(counts, total, 0.50),
			P95:   quantileOf(counts, total, 0.95),
			P99:   quantileOf(counts, total, 0.99),
		}
	}
	return out
}
