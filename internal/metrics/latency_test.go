package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 fast observations in one bucket, 10 slow ones well above:
	// p50 must sit in the fast bucket, p99 in the slow one
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket (64µs, 128µs]
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond) // bucket (64ms, 128ms]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 <= 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Fatalf("p50 = %v, want within (64µs, 128µs]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 64*time.Millisecond || p99 > 128*time.Millisecond {
		t.Fatalf("p99 = %v, want within (64ms, 128ms]", p99)
	}
	if p95 := h.Quantile(0.95); p95 < p50 || p95 > p99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// out-of-range q clamps instead of panicking
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo > hi {
		t.Fatalf("clamped quantiles inverted: %v > %v", lo, hi)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// sub-microsecond and zero land in bucket 0; absurdly large
	// durations land in the last bucket instead of indexing past it
	var h Histogram
	h.Observe(0)
	h.Observe(time.Nanosecond)
	h.Observe(1000 * time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q <= 0 {
		t.Fatalf("max quantile = %v, want > 0", q)
	}
}

func TestLatencySetSnapshot(t *testing.T) {
	s := NewLatencySet()
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty set snapshot = %v", snap)
	}
	s.Observe("POST /v1/query", 2*time.Millisecond)
	s.Observe("POST /v1/query", 3*time.Millisecond)
	s.Observe("GET /healthz", 50*time.Microsecond)
	snap := s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d labels, want 2: %v", len(snap), snap)
	}
	q := snap["POST /v1/query"]
	if q.Count != 2 || q.P50 <= 0 || q.P99 < q.P50 {
		t.Fatalf("query summary implausible: %+v", q)
	}
	if h := snap["GET /healthz"]; h.Count != 1 {
		t.Fatalf("healthz count = %d, want 1", h.Count)
	}
}

// Concurrent observers on one label must not race (run with -race) and
// must not lose counts.
func TestLatencySetConcurrent(t *testing.T) {
	s := NewLatencySet()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe("route", time.Duration(1+i%1000)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Snapshot()["route"].Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}
