package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/exec"
)

func TestRelativeError(t *testing.T) {
	cases := []struct {
		exact, approx, want float64
	}{
		{100, 110, 0.1},
		{100, 90, 0.1},
		{-100, -90, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{0, 5, 1},
		{100, math.NaN(), 1},
		{100, math.Inf(1), 1},
	}
	for _, c := range cases {
		if got := RelativeError(c.exact, c.approx); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("RelativeError(%v,%v) = %v want %v", c.exact, c.approx, got, c.want)
		}
	}
}

func TestGroupErrors(t *testing.T) {
	exact := &exec.Result{Rows: []exec.Row{
		{Set: 0, Key: []string{"a"}, Aggs: []float64{10, 100}},
		{Set: 0, Key: []string{"b"}, Aggs: []float64{20, 200}},
		{Set: 0, Key: []string{"c"}, Aggs: []float64{5, 50}},
	}}
	approx := &exec.Result{Rows: []exec.Row{
		{Set: 0, Key: []string{"a"}, Aggs: []float64{11, 100}},
		{Set: 0, Key: []string{"b"}, Aggs: []float64{20, 150}},
		// c missing entirely
		{Set: 0, Key: []string{"phantom"}, Aggs: []float64{1, 1}},
	}}
	errs := GroupErrors(exact, approx)
	want := []float64{0.1, 0, 0, 0.25, 1, 1}
	if len(errs) != len(want) {
		t.Fatalf("errs = %v", errs)
	}
	for i := range want {
		if math.Abs(errs[i]-want[i]) > 1e-12 {
			t.Fatalf("err[%d] = %v want %v", i, errs[i], want[i])
		}
	}
}

func TestGroupErrorsAcrossSets(t *testing.T) {
	exact := &exec.Result{Rows: []exec.Row{
		{Set: 0, Key: []string{"a"}, Aggs: []float64{10}},
		{Set: 1, Key: []string{"a"}, Aggs: []float64{99}},
	}}
	approx := &exec.Result{Rows: []exec.Row{
		{Set: 0, Key: []string{"a"}, Aggs: []float64{10}},
		// set 1's "a" missing — must not be confused with set 0's
	}}
	errs := GroupErrors(exact, approx)
	if errs[0] != 0 || errs[1] != 1 {
		t.Fatalf("set separation broken: %v", errs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.1, 0.3, 0.2})
	if s.N != 3 || math.Abs(s.Max-0.3) > 1e-12 || math.Abs(s.Mean-0.2) > 1e-12 || math.Abs(s.Median-0.2) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	zero := Summarize(nil)
	if zero.N != 0 || zero.Max != 0 {
		t.Fatalf("empty summary = %+v", zero)
	}
	if !strings.Contains(s.String(), "max=30.00%") {
		t.Fatalf("render = %s", s.String())
	}
}

func TestPercentile(t *testing.T) {
	errs := []float64{0.4, 0.1, 0.2, 0.3}
	if got := Percentile(errs, 0); got != 0.1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(errs, 1); got != 0.4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(errs, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("p50 = %v", got)
	}
	// clamping
	if Percentile(errs, -3) != 0.1 || Percentile(errs, 7) != 0.4 {
		t.Fatalf("clamping broken")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatalf("empty percentile should be 0")
	}
	// must not mutate input
	if errs[0] != 0.4 {
		t.Fatalf("input mutated: %v", errs)
	}
}

func TestAverage(t *testing.T) {
	avg := Average([]Summary{
		{N: 10, Max: 0.2, Mean: 0.1, Median: 0.05},
		{N: 10, Max: 0.4, Mean: 0.3, Median: 0.15},
	})
	if avg.N != 10 || math.Abs(avg.Max-0.3) > 1e-12 || math.Abs(avg.Mean-0.2) > 1e-12 {
		t.Fatalf("average = %+v", avg)
	}
	if (Average(nil) != Summary{}) {
		t.Fatalf("empty average should be zero")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		errs := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			errs[i] = math.Abs(math.Mod(x, 100))
		}
		a := math.Abs(math.Mod(p1, 1))
		b := math.Abs(math.Mod(p2, 1))
		if a > b {
			a, b = b, a
		}
		return Percentile(errs, a) <= Percentile(errs, b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
