package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
)

// RunAblationLp explores the paper's future-work item (2): ℓp norms for
// p other than 2 and ∞. Allocation under ℓp is s_i ∝ β_i^{p/(p+2)}
// (Lemma 1 generalized, dropping the finite-population correction): p=2
// recovers CVOPT, larger p leans toward the worst group, p→∞ approaches
// CVOPT-INF. Reported: mean / p90 / max error of AQ3 per p.
func RunAblationLp(cfg Config) error {
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Ablation: lp-norm allocation on AQ3 (mean rises, max falls as p grows)")
	methods := []samplers.Sampler{
		&samplers.CVOPT{Opts: core.Options{Norm: core.Lp, P: 1}},
		&samplers.CVOPT{},
		&samplers.CVOPT{Opts: core.Options{Norm: core.Lp, P: 4}},
		&samplers.CVOPT{Opts: core.Options{Norm: core.Lp, P: 8}},
		&samplers.CVOPT{Opts: core.Options{Norm: core.LInf}},
	}
	exact, err := exec.Run(openaq, queryAQ3)
	if err != nil {
		return err
	}
	m := budget(openaq, 0.01)
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "norm\tmean\tp90\tmax")
	for _, s := range methods {
		var mean, p90, max float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 1200 + int64(rep)))
			rs, err := s.Build(openaq, specAQ3(), m, rng)
			if err != nil {
				return fmt.Errorf("ablp %s: %w", s.Name(), err)
			}
			approx, err := exec.RunWeighted(openaq, queryAQ3, rs.Rows, rs.Weights)
			if err != nil {
				return err
			}
			errs := metrics.GroupErrors(exact, approx)
			mean += metrics.Summarize(errs).Mean
			p90 += metrics.Percentile(errs, 0.9)
			max += metrics.Summarize(errs).Max
		}
		k := float64(cfg.Reps)
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", s.Name(), pct(mean/k), pct(p90/k), pct(max/k))
	}
	return tw.Flush()
}

// RunAblationCap isolates the design choice DESIGN.md §5(2) calls out:
// CVOPT's cap-at-population + surplus-redistribution + minimum-
// representation repair, versus the raw closed form (floor disabled) and
// versus RL's clip-and-lose behavior. Data: OpenAQ per-country strata,
// which include tiny countries whose closed-form share exceeds their
// size.
func RunAblationCap(cfg Config) error {
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Ablation: allocation repair (cap+redistribute+floor) on AQ3 strata with tiny groups")
	q := queryAQ3
	specs := specAQ3()
	exact, err := exec.Run(openaq, q)
	if err != nil {
		return err
	}
	m := budget(openaq, 0.01)
	methods := []struct {
		label string
		s     samplers.Sampler
	}{
		{"CVOPT (full repair)", &samplers.CVOPT{}},
		{"CVOPT (no floor)", &samplers.CVOPT{Opts: core.Options{MinPerStratum: -1}}},
		{"RL (clip, no redistribute)", samplers.RL{}},
	}
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "variant\tsampled rows\tgroups missing\tmean err\tmax err")
	for _, mth := range methods {
		var rowsUsed, missing, mean, max float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 1300 + int64(rep)))
			rs, err := mth.s.Build(openaq, specs, m, rng)
			if err != nil {
				return fmt.Errorf("ablcap %s: %w", mth.label, err)
			}
			rowsUsed += float64(rs.Len())
			approx, err := exec.RunWeighted(openaq, q, rs.Rows, rs.Weights)
			if err != nil {
				return err
			}
			// one index over the approximate answer, then O(1) membership
			// per exact group (previously a Lookup scan per group, O(G²))
			approxIdx := approx.Index()
			miss := 0
			for _, row := range exact.Rows {
				if _, ok := approxIdx[exec.KeyOf(row.Set, row.Key)]; !ok {
					miss++
				}
			}
			missing += float64(miss)
			errs := metrics.GroupErrors(exact, approx)
			mean += metrics.Summarize(errs).Mean
			max += metrics.Summarize(errs).Max
		}
		k := float64(cfg.Reps)
		fmt.Fprintf(tw, "%s\t%.0f/%d\t%.1f\t%s\t%s\n",
			mth.label, rowsUsed/k, m, missing/k, pct(mean/k), pct(max/k))
	}
	return tw.Flush()
}
