package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/samplers"
	"repro/internal/table"
)

// RunTable6 reproduces Table 6: CPU time of offline sample precomputation
// and of answering AQ1, on OpenAQ and a duplicated OpenAQ-Nx (the paper
// duplicates 25x to reach 1 TB; the factor here is Config.Scale). The
// absolute numbers are laptop-scale, but the structure the paper reports
// holds: stratified precomputation costs a small multiple of one full
// query; answering from the sample is orders of magnitude cheaper than
// the full table; Uniform's single pass is the cheapest precompute.
func RunTable6(cfg Config) error {
	cfg.setDefaults()
	openaq, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: cfg.OpenAQRows, Seed: cfg.Seed + 1})
	if err != nil {
		return err
	}
	big, err := datagen.Scale(openaq, cfg.Scale)
	if err != nil {
		return err
	}
	header(cfg.Out, fmt.Sprintf("Table 6: wall time (ms), precompute + query AQ1, OpenAQ (%d rows) and OpenAQ-%dx (%d rows)",
		openaq.NumRows(), cfg.Scale, big.NumRows()))

	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "method\tOpenAQ precompute\tOpenAQ query\tOpenAQ-Nx precompute\tOpenAQ-Nx query")

	fullQuery := func(tbl *table.Table) (time.Duration, error) {
		start := time.Now()
		if _, err := exec.Run(tbl, queryAQ1y18); err != nil {
			return 0, err
		}
		if _, err := exec.Run(tbl, queryAQ1y17); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	d1, err := fullQuery(openaq)
	if err != nil {
		return err
	}
	d2, err := fullQuery(big)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "Full Data\t-\t%d\t-\t%d\n", d1.Milliseconds(), d2.Milliseconds())

	methods := []samplers.Sampler{
		samplers.Uniform{}, samplers.SampleSeek{}, samplers.Congress{}, samplers.RL{}, &samplers.CVOPT{},
	}
	for _, s := range methods {
		cells := make([]int64, 0, 4)
		for _, tbl := range []*table.Table{openaq, big} {
			m := budget(tbl, 0.01)
			rng := rand.New(rand.NewSource(cfg.Seed + 1000))
			start := time.Now()
			rs, err := s.Build(tbl, specAQ1(), m, rng)
			if err != nil {
				return fmt.Errorf("table6 %s: %w", s.Name(), err)
			}
			pre := time.Since(start)
			start = time.Now()
			if _, err := exec.RunWeighted(tbl, queryAQ1y18, rs.Rows, rs.Weights); err != nil {
				return err
			}
			if _, err := exec.RunWeighted(tbl, queryAQ1y17, rs.Rows, rs.Weights); err != nil {
				return err
			}
			qt := time.Since(start)
			cells = append(cells, pre.Milliseconds(), qt.Milliseconds())
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", s.Name(), cells[0], cells[1], cells[2], cells[3])
	}
	return tw.Flush()
}
