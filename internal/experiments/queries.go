package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sqlparse"
)

// The paper's workload queries (appendix), transcribed against the
// synthetic schemas. HOUR(local_time)/YEAR(local_time)/MONTH(local_time)
// become the materialized hour/year/month columns; everything else is
// verbatim. AQ1's WITH...JOIN composes two group-bys, expressed here as
// its two halves and joined by composeAQ1.

// OpenAQ queries.
var (
	// AQ2 (MASG): multiple aggregates sharing one group-by.
	queryAQ2 = mustParse("SELECT country, parameter, unit, SUM(value) AS agg1, COUNT(*) AS agg2 FROM OpenAQ GROUP BY country, parameter, unit")
	// AQ3 (SASG) and its selectivity variants a/b/c (25%, 50%, 75%, 100%).
	queryAQ3  = mustParse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 23 GROUP BY country, parameter, unit")
	queryAQ3a = mustParse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 5 GROUP BY country, parameter, unit")
	queryAQ3b = mustParse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 11 GROUP BY country, parameter, unit")
	queryAQ3c = mustParse("SELECT country, parameter, unit, AVG(value) FROM OpenAQ WHERE hour BETWEEN 0 AND 17 GROUP BY country, parameter, unit")
	// AQ4 (SASG, realistic): average carbon monoxide by country and month.
	queryAQ4 = mustParse("SELECT AVG(value), country, month, year FROM OpenAQ WHERE parameter = 'co' GROUP BY country, month, year")
	// AQ5: northern-hemisphere measurements.
	queryAQ5 = mustParse("SELECT country, parameter, unit, AVG(value) AS average FROM OpenAQ WHERE latitude > 0 GROUP BY country, parameter, unit")
	// AQ6: high measurements in Vietnam; different group-by AND predicate
	// than the sample was optimized for (reuse study, Table 5).
	queryAQ6 = mustParse("SELECT parameter, unit, COUNT_IF(value > 0.5) AS count FROM OpenAQ WHERE country = 'VN' GROUP BY parameter, unit")
	// AQ7 (SAMG) and AQ8 (MAMG): cube queries.
	queryAQ7 = mustParse("SELECT country, parameter, SUM(value) FROM OpenAQ GROUP BY country, parameter WITH CUBE")
	queryAQ8 = mustParse("SELECT country, parameter, SUM(value), SUM(latitude) FROM OpenAQ GROUP BY country, parameter WITH CUBE")
	// AQ1 halves: per-country average and high-count of black carbon for
	// one year. The join on country happens in composeAQ1.
	queryAQ1y18 = mustParse("SELECT country, AVG(value) AS avg_value, COUNT_IF(value > 0.04) AS high_cnt FROM OpenAQ WHERE parameter = 'bc' AND year = 2018 GROUP BY country")
	queryAQ1y17 = mustParse("SELECT country, AVG(value) AS avg_value, COUNT_IF(value > 0.04) AS high_cnt FROM OpenAQ WHERE parameter = 'bc' AND year = 2017 GROUP BY country")
)

// Bikes queries.
var (
	queryB1 = mustParse("SELECT from_station_id, AVG(age) AS agg1, AVG(trip_duration) AS agg2 FROM Bikes WHERE age > 0 GROUP BY from_station_id")
	queryB2 = mustParse("SELECT from_station_id, AVG(trip_duration) FROM Bikes WHERE trip_duration > 0 GROUP BY from_station_id")
	queryB3 = mustParse("SELECT from_station_id, year, SUM(trip_duration) FROM Bikes WHERE age > 0 GROUP BY from_station_id, year WITH CUBE")
	queryB4 = mustParse("SELECT from_station_id, year, SUM(trip_duration), SUM(age) FROM Bikes GROUP BY from_station_id, year WITH CUBE")
)

// b2Variant builds the B2.{a,b,c} selectivity variants: a predicate
// trip_duration <= q keeps the q-quantile fraction of rows.
func b2Variant(threshold float64) *sqlparse.Query {
	return mustParse(fmt.Sprintf(
		"SELECT from_station_id, AVG(trip_duration) FROM Bikes WHERE trip_duration > 0 AND trip_duration <= %g GROUP BY from_station_id", threshold))
}

// Sample-optimization specs: the QuerySpec sets handed to the samplers.
// Stratified methods use the finest stratification over these.

// specAQ3 covers AQ2/AQ3/AQ5 style queries: (country, parameter, unit)
// grouping aggregating value.
func specAQ3() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"country", "parameter", "unit"},
		Aggs:    []core.AggColumn{{Column: "value"}},
	}}
}

// specAQ1 is the MASG spec for AQ1: per-country aggregates of value.
// AQ1 filters on parameter and year at query time, so the stratification
// includes both — the workload-aware choice Section 4's finest-
// stratification machinery exists for (a country-only stratification
// would leave the rare 'bc' rows underrepresented in every stratum).
func specAQ1() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"country", "parameter", "year"},
		Aggs:    []core.AggColumn{{Column: "value"}},
	}}
}

// specAQ4 matches AQ4's grouping.
func specAQ4() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"country", "month", "year"},
		Aggs:    []core.AggColumn{{Column: "value"}},
	}}
}

// specAQ2Weighted carries per-aggregate weights for the Figure 2 study.
// COUNT(*) is exactly recoverable from stratification metadata in our
// engine, so the weighted pair uses two genuinely noisy aggregates —
// AVG(value) and AVG(hour) — whose CVs are comparable (see
// EXPERIMENTS.md, substitution note).
func specAQ2Weighted(w1, w2 float64) []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"country", "parameter", "unit"},
		Aggs: []core.AggColumn{
			{Column: "value", Weight: w1},
			{Column: "hour", Weight: w2},
		},
	}}
}

// specB1 and specB1Weighted match B1 (two aggregates, one group-by).
func specB1() []core.QuerySpec { return specB1Weighted(1, 1) }

func specB1Weighted(w1, w2 float64) []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"from_station_id"},
		Aggs: []core.AggColumn{
			{Column: "age", Weight: w1},
			{Column: "trip_duration", Weight: w2},
		},
	}}
}

// specB2 matches B2.
func specB2() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"from_station_id"},
		Aggs:    []core.AggColumn{{Column: "trip_duration"}},
	}}
}

// specCubeAQ covers AQ7/AQ8: every grouping set of (country, parameter).
func specCubeAQ(cols ...string) []core.QuerySpec {
	aggs := make([]core.AggColumn, len(cols))
	for i, c := range cols {
		aggs[i] = core.AggColumn{Column: c}
	}
	return core.CubeQueries([]string{"country", "parameter"}, aggs)
}

// specCubeBikes covers B3/B4.
func specCubeBikes(cols ...string) []core.QuerySpec {
	aggs := make([]core.AggColumn, len(cols))
	for i, c := range cols {
		aggs[i] = core.AggColumn{Column: c}
	}
	return core.CubeQueries([]string{"from_station_id", "year"}, aggs)
}
