package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/samplers"
	"repro/internal/sqlparse"
)

// RunFig4 reproduces Figure 4: one materialized sample per dataset
// (optimized for AQ3 / B2) answers the selectivity variants AQ3.a-c and
// B2.a-c; maximum error per method as selectivity grows 25% -> 100%.
func RunFig4(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 4: predicate selectivity with one materialized sample (error shrinks as selectivity grows; CVOPT lowest)")

	// B2 selectivity thresholds from trip_duration quantiles.
	q25 := quantileOf(bikes, "trip_duration", 0.25)
	q50 := quantileOf(bikes, "trip_duration", 0.50)
	q75 := quantileOf(bikes, "trip_duration", 0.75)

	aqVariants := []struct {
		label string
		q     *sqlparse.Query
	}{
		{"25%", queryAQ3a}, {"50%", queryAQ3b}, {"75%", queryAQ3c}, {"100%", queryAQ3},
	}
	bVariants := []struct {
		label string
		q     *sqlparse.Query
	}{
		{"25%", b2Variant(q25)}, {"50%", b2Variant(q50)}, {"75%", b2Variant(q75)}, {"100%", queryB2},
	}

	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "AQ3.* selectivity\t%s\n", methodNames(fourMethods()))
	for vi, v := range aqVariants {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			var worst float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + 700 + int64(rep)))
				rs, err := s.Build(openaq, specAQ3(), budget(openaq, 0.01), rng)
				if err != nil {
					return fmt.Errorf("fig4 %s: %w", s.Name(), err)
				}
				sum, err := evalPrebuilt(openaq, v.q, rs)
				if err != nil {
					return err
				}
				worst += sum.Max
			}
			cells = append(cells, pct(worst/float64(cfg.Reps)))
		}
		fmt.Fprintf(tw, "%s\t%s\n", v.label, join(cells))
		_ = vi
	}
	fmt.Fprintf(tw, "\nB2.* selectivity\t%s\n", methodNames(fourMethods()))
	for _, v := range bVariants {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			var worst float64
			for rep := 0; rep < cfg.Reps; rep++ {
				rng := rand.New(rand.NewSource(cfg.Seed + 750 + int64(rep)))
				rs, err := s.Build(bikes, specB2(), budget(bikes, 0.05), rng)
				if err != nil {
					return fmt.Errorf("fig4 %s: %w", s.Name(), err)
				}
				sum, err := evalPrebuilt(bikes, v.q, rs)
				if err != nil {
					return err
				}
				worst += sum.Max
			}
			cells = append(cells, pct(worst/float64(cfg.Reps)))
		}
		fmt.Fprintf(tw, "%s\t%s\n", v.label, join(cells))
	}
	return tw.Flush()
}

// RunTable5 reproduces Table 5: the sample materialized for AQ3 answers
// six queries, including AQ5 (different predicate) and AQ6 (different
// predicate AND different group-by attributes); average error per method.
func RunTable5(cfg Config) error {
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Table 5: sample reuse, average error (paper: CVOPT 1.5/4.4/2.4/1.9/2.3/0.8; Uniform 98/21/21/18/100/100)")
	queries := []struct {
		label string
		q     *sqlparse.Query
	}{
		{"AQ3", queryAQ3}, {"AQ3.a", queryAQ3a}, {"AQ3.b", queryAQ3b},
		{"AQ3.c", queryAQ3c}, {"AQ5", queryAQ5}, {"AQ6", queryAQ6},
	}
	methods := fourMethods()
	m := budget(openaq, 0.01)

	// Build each method's materialized sample once per rep (optimized for
	// AQ3 only) and reuse it across all six queries.
	type rep struct{ samples []*samplers.RowSample }
	reps := make([]rep, cfg.Reps)
	for r := range reps {
		rng := rand.New(rand.NewSource(cfg.Seed + 800 + int64(r)))
		for _, s := range methods {
			rs, err := s.Build(openaq, specAQ3(), m, rng)
			if err != nil {
				return fmt.Errorf("table5 %s: %w", s.Name(), err)
			}
			reps[r].samples = append(reps[r].samples, rs)
		}
	}

	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "query\t%s\n", methodNames(methods))
	for _, qc := range queries {
		cells := make([]string, 0, len(methods))
		for mi := range methods {
			var mean float64
			for r := range reps {
				sum, err := evalPrebuilt(openaq, qc.q, reps[r].samples[mi])
				if err != nil {
					return err
				}
				mean += sum.Mean
			}
			cells = append(cells, pct(mean/float64(cfg.Reps)))
		}
		fmt.Fprintf(tw, "%s\t%s\n", qc.label, join(cells))
	}
	return tw.Flush()
}
