package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// percentileRanks are the x-axis of Figure 6.
var percentileRanks = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}

// errorPercentiles builds a sample and returns the per-group error
// distribution's values at percentileRanks, averaged over reps.
func errorPercentiles(tbl *table.Table, specs []core.QuerySpec, q *sqlparse.Query,
	s samplers.Sampler, m, reps int, seed int64) ([]float64, error) {
	exact, err := exec.Run(tbl, q)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(percentileRanks))
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + int64(rep)*31337))
		rs, err := s.Build(tbl, specs, m, rng)
		if err != nil {
			return nil, err
		}
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		if err != nil {
			return nil, err
		}
		errs := metrics.GroupErrors(exact, approx)
		for i, p := range percentileRanks {
			out[i] += metrics.Percentile(errs, p)
		}
	}
	for i := range out {
		out[i] /= float64(reps)
	}
	return out, nil
}

// RunFig6 reproduces Figure 6: the error distribution of CVOPT (ℓ2)
// versus CVOPT-INF (ℓ∞) on SASG queries AQ3 and B2. Consistent with the
// theory, CVOPT-INF's maximum error is lower while its mid-percentile
// errors are worse than CVOPT's.
func RunFig6(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 6: error percentiles, CVOPT vs CVOPT-INF (INF wins at MAX, loses at p90 and below)")

	l2 := &samplers.CVOPT{}
	linf := &samplers.CVOPT{Opts: core.Options{Norm: core.LInf}}

	type cse struct {
		label string
		tbl   *table.Table
		specs []core.QuerySpec
		q     *sqlparse.Query
		rate  float64
	}
	cases := []cse{
		{"AQ3", openaq, specAQ3(), queryAQ3, 0.01},
		{"B2", bikes, specB2(), queryB2, 0.05},
	}
	tw := newTab(cfg.Out)
	fmt.Fprint(tw, "series")
	for _, p := range percentileRanks {
		if p == 1 {
			fmt.Fprint(tw, "\tMAX")
		} else {
			fmt.Fprintf(tw, "\tp%g", p*100)
		}
	}
	fmt.Fprintln(tw)
	for _, c := range cases {
		for _, s := range []samplers.Sampler{l2, linf} {
			// the tail comparison needs extra repetitions to stabilize
			vals, err := errorPercentiles(c.tbl, c.specs, c.q, s, budget(c.tbl, c.rate), cfg.Reps*3, cfg.Seed+1100)
			if err != nil {
				return fmt.Errorf("fig6 %s %s: %w", c.label, s.Name(), err)
			}
			fmt.Fprintf(tw, "%s - %s", c.label, s.Name())
			for _, v := range vals {
				fmt.Fprintf(tw, "\t%s", pct(v))
			}
			fmt.Fprintln(tw)
		}
	}
	return tw.Flush()
}
