package experiments

import (
	"fmt"
)

// RunFig3 reproduces Figure 3: sensitivity of the maximum error to the
// sample rate, for MASG query AQ2 (rates 0.01%..10%) and SASG query B2
// (rates 0.1%..10%), methods Uniform/CS/RL/CVOPT.
func RunFig3(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 3: maximum error vs sample rate (CVOPT lowest at nearly all rates)")

	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "AQ2 rate\t%s\n", methodNames(fourMethods()))
	for _, rate := range []float64{0.0001, 0.001, 0.01, 0.1} {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			sum, err := evalCase(openaq, specAQ3(), queryAQ2, s, budget(openaq, rate), cfg.Reps, cfg.Seed+600)
			if err != nil {
				return fmt.Errorf("fig3 AQ2 %s: %w", s.Name(), err)
			}
			cells = append(cells, pct(sum.Max))
		}
		fmt.Fprintf(tw, "%.2f%%\t%s\n", rate*100, join(cells))
	}
	fmt.Fprintf(tw, "\nB2 rate\t%s\n", methodNames(fourMethods()))
	for _, rate := range []float64{0.001, 0.01, 0.05, 0.1} {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			sum, err := evalCase(bikes, specB2(), queryB2, s, budget(bikes, rate), cfg.Reps, cfg.Seed+650)
			if err != nil {
				return fmt.Errorf("fig3 B2 %s: %w", s.Name(), err)
			}
			cells = append(cells, pct(sum.Max))
		}
		fmt.Fprintf(tw, "%.2f%%\t%s\n", rate*100, join(cells))
	}
	return tw.Flush()
}
