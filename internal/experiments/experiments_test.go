package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
)

// smallCfg keeps the smoke tests fast; the real scales run via
// cmd/cvbench and the root benchmarks.
func smallCfg(buf *bytes.Buffer) Config {
	return Config{
		OpenAQRows: 40000,
		BikesRows:  30000,
		Scale:      2,
		Seed:       42,
		Reps:       1,
		Out:        buf,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	// every paper artifact is present
	for _, id := range []string{"fig1", "sec61", "table4", "fig2", "fig3", "fig4", "table5", "fig5", "table6", "fig6", "ablp", "ablcap"} {
		if !ids[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if _, ok := Find("fig1"); !ok {
		t.Fatalf("Find(fig1) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatalf("Find(nope) should fail")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(smallCfg(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "===") {
				t.Fatalf("%s produced no header:\n%s", e.ID, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s output too short:\n%s", e.ID, out)
			}
		})
	}
}

// The qualitative Figure 1 claim at test scale: CVOPT's AQ3 max error is
// lower than Uniform's, and not worse than CS and RL by more than a
// small factor.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	cfg := Config{OpenAQRows: 120000, Seed: 7, Reps: 2}
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := budget(openaq, 0.02)
	maxErr := map[string]float64{}
	for _, s := range fourMethods() {
		sum, err := evalCase(openaq, specAQ3(), queryAQ3, s, m, cfg.Reps, cfg.Seed)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		maxErr[s.Name()] = sum.Max
	}
	if maxErr["CVOPT"] >= maxErr["Uniform"] {
		t.Fatalf("CVOPT (%v) should beat Uniform (%v) on max error", maxErr["CVOPT"], maxErr["Uniform"])
	}
	if maxErr["CVOPT"] > 1.3*maxErr["CS"] {
		t.Fatalf("CVOPT (%v) should not lose badly to CS (%v)", maxErr["CVOPT"], maxErr["CS"])
	}
	if maxErr["CVOPT"] > 1.3*maxErr["RL"] {
		t.Fatalf("CVOPT (%v) should not lose badly to RL (%v)", maxErr["CVOPT"], maxErr["RL"])
	}
}

// Figure 2's monotonicity claim: raising w1 must not increase agg1's
// error (checked at the endpoints, where the signal is strongest).
func TestFig2Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	cfg := Config{BikesRows: 60000, Seed: 11, Reps: 3}
	cfg.setDefaults()
	_, bikes, err := datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := budget(bikes, 0.05)
	lo1, lo2, err := runWeightedCase(bikes, specB1Weighted(0.1, 0.9), queryB1, m, cfg.Reps, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	hi1, hi2, err := runWeightedCase(bikes, specB1Weighted(0.9, 0.1), queryB1, m, cfg.Reps, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if hi1 >= lo1 {
		t.Fatalf("raising w1 should reduce agg1 error: %v -> %v", lo1, hi1)
	}
	if hi2 <= lo2 {
		t.Fatalf("lowering w2 should raise agg2 error: %v -> %v", lo2, hi2)
	}
}

// Figure 6's claim: CVOPT-INF has lower max error but higher median than
// CVOPT on a SASG query.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	cfg := Config{BikesRows: 60000, Seed: 3, Reps: 3}
	cfg.setDefaults()
	_, bikes, err := datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := budget(bikes, 0.05)
	l2, err := errorPercentiles(bikes, specB2(), queryB2, &samplers.CVOPT{}, m, cfg.Reps, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	linf, err := errorPercentiles(bikes, specB2(), queryB2,
		&samplers.CVOPT{Opts: core.Options{Norm: core.LInf}}, m, cfg.Reps, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	maxIdx := len(percentileRanks) - 1
	if linf[maxIdx] > l2[maxIdx]*1.1 {
		t.Fatalf("INF max error %v should not exceed L2's %v", linf[maxIdx], l2[maxIdx])
	}
}

// AQ1 composition: differences of the two yearly halves are correct on a
// deterministic example.
func TestComposeAQ1(t *testing.T) {
	y18 := &exec.Result{Rows: []exec.Row{
		{Key: []string{"US"}, Aggs: []float64{5, 100}},
		{Key: []string{"VN"}, Aggs: []float64{3, 50}},
		{Key: []string{"only18"}, Aggs: []float64{1, 1}},
	}}
	y17 := &exec.Result{Rows: []exec.Row{
		{Key: []string{"US"}, Aggs: []float64{4, 90}},
		{Key: []string{"VN"}, Aggs: []float64{6, 80}},
		{Key: []string{"only17"}, Aggs: []float64{2, 2}},
	}}
	got := composeAQ1(y18, y17)
	if len(got) != 2 {
		t.Fatalf("join should keep only common countries: %v", got)
	}
	if got["US"][0] != 1 || got["US"][1] != 10 {
		t.Fatalf("US diff = %v", got["US"])
	}
	if got["VN"][0] != -3 || got["VN"][1] != -30 {
		t.Fatalf("VN diff = %v", got["VN"])
	}
}

func TestBudgetAndQuantile(t *testing.T) {
	cfg := Config{OpenAQRows: 20000, Seed: 1}
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := budget(openaq, 0.01); got != 200 {
		t.Fatalf("budget = %d want 200", got)
	}
	if got := budget(openaq, 0.0000001); got != 1 {
		t.Fatalf("budget should clamp to 1, got %d", got)
	}
	med := quantileOf(openaq, "hour", 0.5)
	if med < 8 || med > 15 {
		t.Fatalf("median hour = %v implausible", med)
	}
	// selectivity check: the 25% duration threshold keeps ~25% of rows
	q25 := quantileOf(openaq, "value", 0.25)
	vals := openaq.Column("value")
	kept := 0
	for r := 0; r < openaq.NumRows(); r++ {
		if vals.Float[r] <= q25 {
			kept++
		}
	}
	frac := float64(kept) / float64(openaq.NumRows())
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("quantile selectivity = %v want ~0.25", frac)
	}
}

func TestEvalPrebuiltAgainstKnownSample(t *testing.T) {
	cfg := Config{OpenAQRows: 20000, Seed: 5}
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rs, err := (&samplers.CVOPT{}).Build(openaq, specAQ3(), 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := evalPrebuilt(openaq, queryAQ3, rs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N == 0 {
		t.Fatalf("no groups evaluated")
	}
	if sum.Mean > 0.4 {
		t.Fatalf("10%% CVOPT sample mean error implausible: %v", sum.Mean)
	}
	_ = metrics.Summary{}
}
