package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// composeAQ1 joins the two yearly halves of AQ1 on country, producing
// per-country [avg_incre, cnt_incre] — the WITH ... JOIN of the paper's
// query rendered in the harness (our engine is single-table; the join
// combines two group-by results, which is how Hive executes it too).
func composeAQ1(y18, y17 *exec.Result) map[string][]float64 {
	idx17 := map[string][]float64{}
	for _, row := range y17.Rows {
		idx17[row.Key[0]] = row.Aggs
	}
	out := map[string][]float64{}
	for _, row := range y18.Rows {
		if prev, ok := idx17[row.Key[0]]; ok {
			out[row.Key[0]] = []float64{row.Aggs[0] - prev[0], row.Aggs[1] - prev[1]}
		}
	}
	return out
}

// aq1Errors evaluates AQ1 on a sample and returns per-(country, output)
// relative errors against the exact join.
func aq1Errors(tbl *table.Table, rs *samplers.RowSample) ([]float64, error) {
	ex18, err := exec.Run(tbl, queryAQ1y18)
	if err != nil {
		return nil, err
	}
	ex17, err := exec.Run(tbl, queryAQ1y17)
	if err != nil {
		return nil, err
	}
	exact := composeAQ1(ex18, ex17)

	ap18, err := exec.RunWeighted(tbl, queryAQ1y18, rs.Rows, rs.Weights)
	if err != nil {
		return nil, err
	}
	ap17, err := exec.RunWeighted(tbl, queryAQ1y17, rs.Rows, rs.Weights)
	if err != nil {
		return nil, err
	}
	approx := composeAQ1(ap18, ap17)

	var errs []float64
	for country, want := range exact {
		got, ok := approx[country]
		for i := range want {
			if !ok {
				errs = append(errs, 1)
				continue
			}
			errs = append(errs, metrics.RelativeError(want[i], got[i]))
		}
	}
	return errs, nil
}

// RunFig1 reproduces Figure 1: maximum relative error of MASG query AQ1
// and SASG query AQ3 with a 1% sample, for Uniform/CS/RL/CVOPT.
func RunFig1(cfg Config) error {
	cfg.setDefaults()
	openaq, _, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 1: maximum error, 1% sample (paper: AQ1 135/53/56/11%, AQ3 100/51/51/9%)")
	m := budget(openaq, 0.01)
	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "query\t%s\n", methodNames(fourMethods()))

	// AQ1 (MASG)
	cells := make([]string, 0, 4)
	for _, s := range fourMethods() {
		var worst float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(rep)))
			rs, err := s.Build(openaq, specAQ1(), m, rng)
			if err != nil {
				return fmt.Errorf("fig1 %s: %w", s.Name(), err)
			}
			errs, err := aq1Errors(openaq, rs)
			if err != nil {
				return err
			}
			worst += metrics.Summarize(errs).Max
		}
		cells = append(cells, pct(worst/float64(cfg.Reps)))
	}
	fmt.Fprintf(tw, "AQ1 (MASG)\t%s\n", join(cells))

	// AQ1's outputs are *differences* of two yearly aggregates; at
	// laptop-scale budgets the difference denominators amplify relative
	// error for every method (see EXPERIMENTS.md). The component row
	// reports the errors of the yearly halves themselves, which are the
	// well-conditioned counterpart.
	cells = cells[:0]
	for _, s := range fourMethods() {
		var worst float64
		for rep := 0; rep < cfg.Reps; rep++ {
			rng := rand.New(rand.NewSource(cfg.Seed + 150 + int64(rep)))
			rs, err := s.Build(openaq, specAQ1(), m, rng)
			if err != nil {
				return fmt.Errorf("fig1 %s: %w", s.Name(), err)
			}
			sum, err := evalPrebuilt(openaq, queryAQ1y18, rs)
			if err != nil {
				return err
			}
			worst += sum.Max
		}
		cells = append(cells, pct(worst/float64(cfg.Reps)))
	}
	fmt.Fprintf(tw, "AQ1 components\t%s\n", join(cells))

	// AQ3 (SASG)
	cells = cells[:0]
	for _, s := range fourMethods() {
		sum, err := evalCase(openaq, specAQ3(), queryAQ3, s, m, cfg.Reps, cfg.Seed+200)
		if err != nil {
			return fmt.Errorf("fig1 %s: %w", s.Name(), err)
		}
		cells = append(cells, pct(sum.Max))
	}
	fmt.Fprintf(tw, "AQ3 (SASG)\t%s\n", join(cells))
	return tw.Flush()
}

// RunSec61 reproduces the Section 6.1 prose numbers: maximum errors of
// MASG queries AQ2 and B1 and SASG queries B2 and AQ4.
func RunSec61(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Section 6.1: maximum errors (paper: AQ2 CS 10.1 / RL 29.5 / CVOPT 5.9; B1 11.7/8.8/7.7; B2 39/22/21; AQ4 14/34/8)")
	type cse struct {
		name  string
		tbl   *table.Table
		specs []core.QuerySpec
		q     *sqlparse.Query
		rate  float64
	}
	cases := []cse{
		{"AQ2 (MASG)", openaq, specAQ3(), queryAQ2, 0.01},
		{"B1 (MASG)", bikes, specB1(), queryB1, 0.05},
		{"B2 (SASG)", bikes, specB2(), queryB2, 0.05},
		{"AQ4 (SASG)", openaq, specAQ4(), queryAQ4, 0.01},
	}
	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "query\t%s\n", methodNames(fourMethods()))
	for _, c := range cases {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			sum, err := evalCase(c.tbl, c.specs, c.q, s, budget(c.tbl, c.rate), cfg.Reps, cfg.Seed+300)
			if err != nil {
				return fmt.Errorf("sec61 %s %s: %w", c.name, s.Name(), err)
			}
			cells = append(cells, pct(sum.Max))
		}
		fmt.Fprintf(tw, "%s\t%s\n", c.name, join(cells))
	}
	return tw.Flush()
}

// RunTable4 reproduces Table 4: average error of the four query classes
// on both datasets (OpenAQ 1% sample, Bikes 5% sample) for all five
// methods.
func RunTable4(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Table 4: average error % (paper: OpenAQ CVOPT 1.6/0.8/2.4/2.2; Bikes CVOPT 4.0/2.3/6.3/4.8)")
	type cse struct {
		class string
		tbl   *table.Table
		specs []core.QuerySpec
		q     *sqlparse.Query
		rate  float64
	}
	cases := []cse{
		{"OpenAQ SASG", openaq, specAQ3(), queryAQ3, 0.01},
		{"OpenAQ MASG", openaq, specAQ3(), queryAQ2, 0.01},
		{"OpenAQ SAMG", openaq, specCubeAQ("value"), queryAQ7, 0.01},
		{"OpenAQ MAMG", openaq, specCubeAQ("value", "latitude"), queryAQ8, 0.01},
		{"Bikes SASG", bikes, specB2(), queryB2, 0.05},
		{"Bikes MASG", bikes, specB1(), queryB1, 0.05},
		{"Bikes SAMG", bikes, specCubeBikes("trip_duration"), queryB3, 0.05},
		{"Bikes MAMG", bikes, specCubeBikes("trip_duration", "age"), queryB4, 0.05},
	}
	methods := samplers.All()
	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "case\t%s\n", methodNames(methods))
	for _, c := range cases {
		cells := make([]string, 0, len(methods))
		for _, s := range methods {
			sum, err := evalCase(c.tbl, c.specs, c.q, s, budget(c.tbl, c.rate), cfg.Reps, cfg.Seed+400)
			if err != nil {
				return fmt.Errorf("table4 %s %s: %w", c.class, s.Name(), err)
			}
			cells = append(cells, pct(sum.Mean))
		}
		fmt.Fprintf(tw, "%s\t%s\n", c.class, join(cells))
	}
	return tw.Flush()
}

func join(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += "\t"
		}
		out += c
	}
	return out
}
