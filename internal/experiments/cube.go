package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// RunFig5 reproduces Figure 5: maximum error of WITH CUBE queries —
// SAMG (AQ7, B3) and MAMG (AQ8, B4) — for Uniform/CS/RL/CVOPT. The
// samplers receive one QuerySpec per grouping set (the multiple-group-by
// machinery of Section 4), so the allocation jointly optimizes every
// grouping of the cube.
func RunFig5(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 5: CUBE queries, maximum error (paper: CVOPT < CS < RL << Uniform)")
	type cse struct {
		label string
		tbl   *table.Table
		specs []core.QuerySpec
		q     *sqlparse.Query
		rate  float64
	}
	cases := []cse{
		{"AQ7 (SAMG)", openaq, specCubeAQ("value"), queryAQ7, 0.01},
		{"B3 (SAMG)", bikes, specCubeBikes("trip_duration"), queryB3, 0.05},
		{"AQ8 (MAMG)", openaq, specCubeAQ("value", "latitude"), queryAQ8, 0.01},
		{"B4 (MAMG)", bikes, specCubeBikes("trip_duration", "age"), queryB4, 0.05},
	}
	tw := newTab(cfg.Out)
	fmt.Fprintf(tw, "query\t%s\n", methodNames(fourMethods()))
	for _, c := range cases {
		cells := make([]string, 0, 4)
		for _, s := range fourMethods() {
			sum, err := evalCase(c.tbl, c.specs, c.q, s, budget(c.tbl, c.rate), cfg.Reps, cfg.Seed+900)
			if err != nil {
				return fmt.Errorf("fig5 %s %s: %w", c.label, s.Name(), err)
			}
			cells = append(cells, pct(sum.Max))
		}
		fmt.Fprintf(tw, "%s\t%s\n", c.label, join(cells))
	}
	return tw.Flush()
}
